//! The Table I measurement harness.
//!
//! The paper compares volume rendering, line integrals, particle
//! tracing and LIC along three qualitative axes (communication cost,
//! load balance, ease of parallelisation). [`measure_techniques`] runs
//! all four over the instrumented substrate on the same geometry, field
//! and decomposition, and returns one [`TechniqueReport`] per technique.
//!
//! ## How the qualitative cells become numbers
//!
//! * **Communication cost** — the traffic that moves *simulation data*
//!   during the computation ([`TagClass::Visualisation`]) is reported
//!   separately from image *compositing* (result reduction,
//!   [`TagClass::Compositing`]), together with the number of dependency
//!   `rounds` on the critical path. Volume rendering moves **zero** data
//!   bytes ("low"); LIC moves a one-time bounded halo ("medium"); line
//!   integrals and particle tracing pay a round per hand-off generation
//!   or per simulation step ("high").
//! * **Load balance** — `max/mean` of per-rank work units.
//! * **Ease of parallelisation** — the round structure again: an
//!   embarrassingly parallel technique has zero mid-frame rounds.
//!
//! The α–β–γ cost model then projects each report onto machine presets
//! ([`TechniqueReport::projected_cost`]) so the experiment can show the
//! data-movement share growing towards exascale — the paper's premise.

use crate::camera::Camera;
use crate::compositing::binary_swap;
use crate::field::{SampledField, Scalar};
use crate::lic::{lic_distributed, LicConfig, VelocitySlice};
use crate::lines::{trace_distributed, TraceConfig};
use crate::particles::ParticleEnsemble;
use crate::transfer::TransferFunction;
use crate::volume::{render_brick, Brick};
use hemelb_core::FieldSnapshot;
use hemelb_geometry::{SparseGeometry, Vec3};
use hemelb_parallel::{run_spmd_with_stats, CostModel, ProjectedCost, StatsSummary, TagClass};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Measured characteristics of one technique on one frame/run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TechniqueReport {
    /// Technique name as in the paper's Table I.
    pub technique: String,
    /// Ranks used.
    pub ranks: usize,
    /// Simulation-data bytes moved during computation (vis class).
    pub data_bytes: u64,
    /// Simulation-data messages during computation.
    pub data_msgs: u64,
    /// Image-compositing (result reduction) bytes.
    pub composite_bytes: u64,
    /// Dependency rounds on the critical path (hand-off generations,
    /// per-step migrations, halo phases).
    pub rounds: u64,
    /// Collective synchronisation points entered (summed over ranks).
    pub sync_points: u64,
    /// `max work / mean work` over ranks (1.0 = perfect balance).
    pub work_imbalance: f64,
    /// Per-rank work units (technique-specific: samples, steps, pixels).
    pub work_per_rank: Vec<u64>,
    /// Estimated floating-point operations per work unit (for the cost
    /// model).
    pub flops_per_work: u64,
}

impl TechniqueReport {
    fn from_run(
        technique: &str,
        summary: &StatsSummary,
        work_per_rank: Vec<u64>,
        rounds: u64,
        flops_per_work: u64,
    ) -> TechniqueReport {
        let max = *work_per_rank.iter().max().unwrap_or(&0) as f64;
        let mean = work_per_rank.iter().sum::<u64>() as f64 / work_per_rank.len().max(1) as f64;
        TechniqueReport {
            technique: technique.to_string(),
            ranks: work_per_rank.len(),
            data_bytes: summary.total.bytes(TagClass::Visualisation),
            data_msgs: summary.total.msgs(TagClass::Visualisation),
            composite_bytes: summary.total.bytes(TagClass::Compositing),
            rounds,
            sync_points: summary.total.sync_points,
            work_imbalance: if mean > 0.0 { max / mean } else { 1.0 },
            work_per_rank,
            flops_per_work,
        }
    }

    /// Total work units across ranks.
    pub fn total_work(&self) -> u64 {
        self.work_per_rank.iter().sum()
    }

    /// Project this technique's frame cost onto a machine: α-term from
    /// data messages plus one per round of synchronisation, β-term from
    /// all moved bytes, γ-term from the work estimate.
    pub fn projected_cost(&self, model: &CostModel) -> ProjectedCost {
        model.critical_path(
            self.data_msgs + self.rounds * self.ranks as u64,
            self.data_bytes + self.composite_bytes,
            self.total_work() * self.flops_per_work,
        )
    }
}

/// Inputs shared by all four techniques.
#[derive(Clone)]
pub struct TechniqueInputs {
    /// The sparse lattice.
    pub geo: Arc<SparseGeometry>,
    /// The field frame to visualise.
    pub snap: Arc<FieldSnapshot>,
    /// Site → rank decomposition.
    pub owner: Arc<Vec<usize>>,
    /// Ranks.
    pub ranks: usize,
    /// Image size for the volume renderer.
    pub image: (u32, u32),
    /// Seed points for lines/particles.
    pub seeds: Arc<Vec<Vec3>>,
    /// In situ steps for the particle ensemble.
    pub particle_steps: usize,
    /// Integration parameters for the line integrals.
    pub trace: TraceConfig,
    /// z of the LIC slice plane (lattice units).
    pub lic_plane_z: f64,
}

impl TechniqueInputs {
    fn camera(&self) -> Camera {
        let s = self.geo.shape();
        Camera::framing(
            Vec3::ZERO,
            Vec3::new(s[0] as f64, s[1] as f64, s[2] as f64),
            Vec3::new(0.2, -1.0, 0.3),
            self.image.0,
            self.image.1,
        )
    }
}

/// Run all four techniques; returns reports in Table I column order.
pub fn measure_techniques(inputs: &TechniqueInputs) -> Vec<TechniqueReport> {
    vec![
        measure_volume(inputs),
        measure_lines(inputs),
        measure_particles(inputs),
        measure_lic(inputs),
    ]
}

/// Volume rendering: local ray casting + binary-swap compositing.
/// Zero data rounds: nothing is exchanged until the image reduction.
pub fn measure_volume(inputs: &TechniqueInputs) -> TechniqueReport {
    let inp = inputs.clone();
    let cam = inputs.camera();
    let out = run_spmd_with_stats(inputs.ranks, move |comm| {
        let mine: Vec<u32> = (0..inp.geo.fluid_count() as u32)
            .filter(|&s| inp.owner[s as usize] == comm.rank())
            .collect();
        let field = SampledField::new(&inp.geo, &inp.snap);
        let (lo, hi) = field.scalar_range(Scalar::Speed);
        let tf = TransferFunction::heat(lo, hi.max(lo + 1e-9));
        let step = 0.5;
        let (partial, samples) = match Brick::from_sites(&inp.geo, &inp.snap, Scalar::Speed, &mine)
        {
            Some(brick) => {
                let p = render_brick(&brick, &cam, &tf, step);
                let samples = estimate_samples(&brick, &cam, step);
                (p, samples)
            }
            None => (crate::image::PartialImage::new(cam.width, cam.height), 0),
        };
        binary_swap(comm, partial).unwrap();
        samples
    });
    // ~60 flops per trilinear sample + classification + blend.
    TechniqueReport::from_run("volume rendering", &out.summary, out.results, 0, 60)
}

fn estimate_samples(brick: &Brick, cam: &Camera, step: f64) -> u64 {
    let (lo, hi) = brick.bounds();
    let mut total = 0.0f64;
    for py in 0..cam.height {
        for px in 0..cam.width {
            let (o, d) = cam.ray(px, py);
            if let Some((t0, t1)) = crate::camera::ray_box(o, d, lo, hi) {
                total += ((t1 - t0.max(0.0)) / step).max(0.0);
            }
        }
    }
    total as u64
}

/// Line integrals: distributed streamline tracing with hand-off.
pub fn measure_lines(inputs: &TechniqueInputs) -> TechniqueReport {
    let inp = inputs.clone();
    let out = run_spmd_with_stats(inputs.ranks, move |comm| {
        let field = SampledField::new(&inp.geo, &inp.snap);
        let (_, stats) =
            trace_distributed(comm, &inp.geo, &field, &inp.owner, &inp.seeds, &inp.trace).unwrap();
        (stats.steps_computed, stats.rounds)
    });
    let rounds = out.results.iter().map(|r| r.1).max().unwrap_or(0);
    let work: Vec<u64> = out.results.iter().map(|r| r.0).collect();
    // 4 field evaluations per RK4 step, ~100 flops each.
    TechniqueReport::from_run("line integrals", &out.summary, work, rounds, 400)
}

/// Particle tracing: per-step advection + migration.
pub fn measure_particles(inputs: &TechniqueInputs) -> TechniqueReport {
    let inp = inputs.clone();
    let out = run_spmd_with_stats(inputs.ranks, move |comm| {
        let field = SampledField::new(&inp.geo, &inp.snap);
        let mut ens = ParticleEnsemble::new(comm, &inp.geo, &inp.owner, &inp.seeds, 0.5);
        for _ in 0..inp.particle_steps {
            ens.step(&inp.geo, &field).unwrap();
        }
        (ens.stats.updates, ens.stats.rounds)
    });
    let rounds = out.results.iter().map(|r| r.1).max().unwrap_or(0);
    let work: Vec<u64> = out.results.iter().map(|r| r.0).collect();
    TechniqueReport::from_run("particle tracing", &out.summary, work, rounds, 400)
}

/// LIC on the mid-plane slice: one halo phase, then local convolution.
pub fn measure_lic(inputs: &TechniqueInputs) -> TechniqueReport {
    let inp = inputs.clone();
    let out = run_spmd_with_stats(inputs.ranks, move |comm| {
        let field = SampledField::new(&inp.geo, &inp.snap);
        let slice = VelocitySlice::extract(&field, inp.lic_plane_z);
        let (_, stats) = lic_distributed(comm, &slice, &LicConfig::default()).unwrap();
        stats.pixels
    });
    // 2·half_kernel bilinear samples + noise per pixel.
    TechniqueReport::from_run("LIC", &out.summary, out.results, 1, 600)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_geometry::VesselBuilder;
    use hemelb_parallel::MachineModel;

    fn inputs(p: usize) -> TechniqueInputs {
        let geo = VesselBuilder::aneurysm(28.0, 4.0, 6.0).voxelise(1.0);
        let n = geo.fluid_count();
        // A developed-flow-like field: axial velocity, faster mid-tube.
        let u: Vec<[f64; 3]> = (0..n)
            .map(|i| {
                let pos = geo.position(i as u32);
                let cy = (geo.shape()[1] as f64 - 1.0) / 2.0;
                let r = (pos[1] as f64 - cy).abs() / 6.0;
                [(0.08 * (1.0 - r * r)).max(0.01), 0.0, 0.0]
            })
            .collect();
        let snap = FieldSnapshot {
            step: 0,
            rho: vec![1.0; n],
            u,
            shear: vec![0.1; n],
        };
        // Slab decomposition along x (a realistic compute partition).
        let owner: Vec<usize> = (0..n as u32)
            .map(|s| (geo.position(s)[0] as usize * p / geo.shape()[0]).min(p - 1))
            .collect();
        // Seeds clustered near the inlet (how users actually seed).
        let cy = (geo.shape()[1] as f64 - 1.0) / 2.0;
        let cz = (geo.shape()[2] as f64 - 1.0) / 2.0;
        let seeds: Vec<Vec3> = (0..16)
            .map(|i| {
                Vec3::new(
                    2.0,
                    cy + ((i % 4) as f64 - 1.5),
                    cz + ((i / 4) as f64 - 1.5),
                )
            })
            .collect();
        TechniqueInputs {
            geo: Arc::new(geo),
            snap: Arc::new(snap),
            owner: Arc::new(owner),
            ranks: p,
            image: (48, 36),
            seeds: Arc::new(seeds),
            particle_steps: 200,
            // Bounded lines (a typical interactive probe): they do not
            // span the whole domain, so clustered seeds stay clustered.
            trace: TraceConfig {
                h: 0.5,
                max_steps: 250,
                min_speed: 1e-8,
            },
            // Slice through the parent-vessel axis.
            lic_plane_z: 6.0 + 1.0,
        }
    }

    #[test]
    fn table1_orderings_hold() {
        let reports = measure_techniques(&inputs(4));
        let by_name = |n: &str| {
            reports
                .iter()
                .find(|r| r.technique.contains(n))
                .unwrap()
                .clone()
        };
        let volume = by_name("volume");
        let lines = by_name("line");
        let particles = by_name("particle");
        let lic = by_name("LIC");

        // Communication cost (Table I: low / high / high / medium):
        // volume moves NO simulation data during computation.
        assert_eq!(volume.data_bytes, 0, "volume rendering needs no exchange");
        assert_eq!(volume.rounds, 0);
        // LIC moves a bounded one-time halo (one round).
        assert!(lic.data_bytes > 0);
        assert_eq!(lic.rounds, 1);
        // Line integrals / particles pay repeated rounds on the critical
        // path, and move data every round.
        assert!(
            lines.rounds > lic.rounds,
            "hand-off generations: {}",
            lines.rounds
        );
        assert!(particles.rounds as usize >= 200, "one round per step");
        assert!(lines.data_bytes > 0);
        assert!(particles.data_bytes > 0);

        // Load balance (Table I: LIC good; tracing poor with clustered
        // seeds).
        assert!(
            lic.work_imbalance < lines.work_imbalance,
            "lic {} !< lines {}",
            lic.work_imbalance,
            lines.work_imbalance
        );

        // Ease of parallelisation: the embarrassingly parallel technique
        // has no mid-frame dependency rounds at all.
        assert!(volume.rounds < lic.rounds);
        assert!(lic.rounds < lines.rounds);
    }

    #[test]
    fn projected_cost_shows_exascale_data_movement_pressure() {
        let reports = measure_techniques(&inputs(2));
        for r in &reports {
            let xe6 = r.projected_cost(&CostModel::for_machine(MachineModel::CrayXe6));
            let exa = r.projected_cost(&CostModel::for_machine(MachineModel::ExascaleProjection));
            if r.data_bytes + r.composite_bytes > 0 {
                assert!(
                    exa.data_movement_fraction() >= xe6.data_movement_fraction() - 1e-12,
                    "{}: exascale must not reduce the data-movement share",
                    r.technique
                );
            }
            assert!(xe6.total_s() > 0.0);
        }
    }

    #[test]
    fn reports_have_positive_work() {
        let reports = measure_techniques(&inputs(2));
        for r in &reports {
            assert!(r.total_work() > 0, "{} did no work", r.technique);
            assert_eq!(r.ranks, 2);
        }
    }
}
