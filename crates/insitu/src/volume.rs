//! Distributed volume rendering by ray casting — the paper's favoured
//! technique: "Volume rendering … can be performed on each subdomain
//! without any data exchange with the neighbours."
//!
//! Each rank builds a dense *brick* over the bounding box of its own
//! sites, casts all camera rays through that brick with front-to-back
//! compositing (no communication), and the partial images meet only in
//! the sort-last compositing stage ([`crate::compositing`]).

use crate::camera::{ray_box, Camera};
use crate::field::Scalar;
use crate::image::PartialImage;
use crate::transfer::TransferFunction;
use hemelb_core::FieldSnapshot;
use hemelb_geometry::{SparseGeometry, Vec3};
use rayon::prelude::*;

/// A dense scalar grid over the bounding box of a set of sites.
#[derive(Debug, Clone)]
pub struct Brick {
    lo: [u32; 3],
    dims: [usize; 3],
    /// Scalar values; `NAN` marks absent (non-owned / non-fluid) cells.
    values: Vec<f32>,
}

impl Brick {
    /// Build from the subset `sites` of a geometry's fluid sites.
    /// Returns `None` if `sites` is empty.
    pub fn from_sites(
        geo: &SparseGeometry,
        snap: &FieldSnapshot,
        which: Scalar,
        sites: &[u32],
    ) -> Option<Brick> {
        let points: Vec<[u32; 3]> = sites.iter().map(|&s| geo.position(s)).collect();
        let values: Vec<f64> = sites
            .iter()
            .map(|&s| match which {
                Scalar::Density => snap.rho[s as usize],
                Scalar::Speed => snap.speed(s as usize),
                Scalar::Shear => snap.shear[s as usize],
            })
            .collect();
        Self::from_points(&points, &values)
    }

    /// Build directly from lattice points and their scalar values (the
    /// entry point for ranks that only hold a local snapshot).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn from_points(points: &[[u32; 3]], values: &[f64]) -> Option<Brick> {
        assert_eq!(points.len(), values.len());
        if points.is_empty() {
            return None;
        }
        let mut lo = [u32::MAX; 3];
        let mut hi = [0u32; 3];
        for p in points {
            for a in 0..3 {
                lo[a] = lo[a].min(p[a]);
                hi[a] = hi[a].max(p[a]);
            }
        }
        let dims = [
            (hi[0] - lo[0] + 1) as usize,
            (hi[1] - lo[1] + 1) as usize,
            (hi[2] - lo[2] + 1) as usize,
        ];
        let mut grid = vec![f32::NAN; dims[0] * dims[1] * dims[2]];
        for (p, &v) in points.iter().zip(values) {
            let i = ((p[0] - lo[0]) as usize * dims[1] + (p[1] - lo[1]) as usize) * dims[2]
                + (p[2] - lo[2]) as usize;
            grid[i] = v as f32;
        }
        Some(Brick {
            lo,
            dims,
            values: grid,
        })
    }

    /// World-space bounds (cell centres occupy `[lo, lo+dims-1]`; the
    /// box extends half a cell beyond).
    pub fn bounds(&self) -> (Vec3, Vec3) {
        (
            Vec3::new(
                self.lo[0] as f64 - 0.5,
                self.lo[1] as f64 - 0.5,
                self.lo[2] as f64 - 0.5,
            ),
            Vec3::new(
                self.lo[0] as f64 + self.dims[0] as f64 - 0.5,
                self.lo[1] as f64 + self.dims[1] as f64 - 0.5,
                self.lo[2] as f64 + self.dims[2] as f64 - 0.5,
            ),
        )
    }

    /// Memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.values.len() * 4
    }

    #[inline]
    fn value(&self, x: i64, y: i64, z: i64) -> Option<f64> {
        let bx = x - self.lo[0] as i64;
        let by = y - self.lo[1] as i64;
        let bz = z - self.lo[2] as i64;
        if bx < 0
            || by < 0
            || bz < 0
            || bx as usize >= self.dims[0]
            || by as usize >= self.dims[1]
            || bz as usize >= self.dims[2]
        {
            return None;
        }
        let v =
            self.values[(bx as usize * self.dims[1] + by as usize) * self.dims[2] + bz as usize];
        if v.is_nan() {
            None
        } else {
            Some(v as f64)
        }
    }

    /// Fluid-renormalised trilinear sample at a world point.
    pub fn sample(&self, p: Vec3) -> Option<f64> {
        let x0 = p.x.floor() as i64;
        let y0 = p.y.floor() as i64;
        let z0 = p.z.floor() as i64;
        let fx = p.x - x0 as f64;
        let fy = p.y - y0 as f64;
        let fz = p.z - z0 as f64;
        let mut acc = 0.0;
        let mut wsum = 0.0;
        for dx in 0..2i64 {
            for dy in 0..2i64 {
                for dz in 0..2i64 {
                    let w = (if dx == 0 { 1.0 - fx } else { fx })
                        * (if dy == 0 { 1.0 - fy } else { fy })
                        * (if dz == 0 { 1.0 - fz } else { fz });
                    if w <= 0.0 {
                        continue;
                    }
                    if let Some(v) = self.value(x0 + dx, y0 + dy, z0 + dz) {
                        acc += v * w;
                        wsum += w;
                    }
                }
            }
        }
        if wsum <= 1e-9 {
            None
        } else {
            Some(acc / wsum)
        }
    }
}

/// Ray-cast one brick into a partial image. `step` is the march step in
/// cells (0.5 is a good default). Embarrassingly parallel over pixels —
/// the "ease of parallelisation: easy" cell of Table I.
pub fn render_brick(brick: &Brick, cam: &Camera, tf: &TransferFunction, step: f64) -> PartialImage {
    assert!(step > 0.0);
    let (blo, bhi) = brick.bounds();
    let width = cam.width;
    let mut out = PartialImage::new(cam.width, cam.height);

    // Parallel over rows; each row is written independently.
    type RenderedRow = (u32, Vec<([f32; 4], f32)>);
    let rows: Vec<RenderedRow> = (0..cam.height)
        .into_par_iter()
        .map(|py| {
            let mut row = Vec::with_capacity(width as usize);
            for px in 0..width {
                let (origin, dir) = cam.ray(px, py);
                let mut rgba = [0.0f32; 4];
                let mut depth = f32::INFINITY;
                if let Some((t0, t1)) = ray_box(origin, dir, blo, bhi) {
                    let mut t = t0.max(0.0) + step * 0.5;
                    while t < t1 && rgba[3] < 0.995 {
                        let p = origin + dir * t;
                        if let Some(v) = brick.sample(p) {
                            let s = tf.sample(v, step);
                            if s[3] > 0.0 && depth.is_infinite() {
                                depth = t as f32;
                            }
                            // front-to-back: out += (1 - out.a) * sample
                            let k = 1.0 - rgba[3];
                            rgba[0] += s[0] * k;
                            rgba[1] += s[1] * k;
                            rgba[2] += s[2] * k;
                            rgba[3] += s[3] * k;
                        }
                        t += step;
                    }
                }
                row.push((rgba, depth));
            }
            (py, row)
        })
        .collect();

    for (py, row) in rows {
        for (px, (rgba, depth)) in row.into_iter().enumerate() {
            let idx = (py * width) as usize + px;
            out.image.pixels[idx] = rgba;
            out.depth[idx] = depth;
        }
    }
    out
}

/// Serial full-domain render: the reference the distributed pipeline is
/// compared against (and the generator of Fig. 4a).
pub fn render_full(
    geo: &SparseGeometry,
    snap: &FieldSnapshot,
    which: Scalar,
    cam: &Camera,
    tf: &TransferFunction,
    step: f64,
) -> PartialImage {
    let all: Vec<u32> = (0..geo.fluid_count() as u32).collect();
    let brick = Brick::from_sites(geo, snap, which, &all).expect("non-empty geometry");
    render_brick(&brick, cam, tf, step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_geometry::VesselBuilder;

    fn setup() -> (SparseGeometry, FieldSnapshot) {
        let geo = VesselBuilder::aneurysm(24.0, 4.0, 6.0).voxelise(1.0);
        let n = geo.fluid_count();
        let snap = FieldSnapshot {
            step: 0,
            rho: vec![1.0; n],
            u: vec![[0.05, 0.0, 0.0]; n],
            shear: vec![0.0; n],
        };
        (geo, snap)
    }

    fn camera(geo: &SparseGeometry) -> Camera {
        let s = geo.shape();
        Camera::framing(
            Vec3::ZERO,
            Vec3::new(s[0] as f64, s[1] as f64, s[2] as f64),
            Vec3::new(0.0, -1.0, 0.3),
            96,
            72,
        )
    }

    #[test]
    fn brick_samples_match_sites() {
        let (geo, snap) = setup();
        let all: Vec<u32> = (0..geo.fluid_count() as u32).collect();
        let brick = Brick::from_sites(&geo, &snap, Scalar::Density, &all).unwrap();
        for i in (0..geo.fluid_count() as u32).step_by(71) {
            let p = geo.position_v(i);
            let v = brick.sample(p).expect("fluid cell samples");
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_site_set_gives_no_brick() {
        let (geo, snap) = setup();
        assert!(Brick::from_sites(&geo, &snap, Scalar::Density, &[]).is_none());
    }

    #[test]
    fn render_covers_the_vessel_silhouette() {
        let (geo, snap) = setup();
        let cam = camera(&geo);
        let tf = TransferFunction::grey(0.9, 1.1);
        let out = render_full(&geo, &snap, Scalar::Density, &cam, &tf, 0.5);
        let cov = out.image.coverage();
        assert!(cov > 0.05, "silhouette should cover some pixels: {cov}");
        assert!(cov < 0.9, "background must stay empty: {cov}");
    }

    #[test]
    fn lit_pixels_have_finite_depth() {
        let (geo, snap) = setup();
        let cam = camera(&geo);
        let tf = TransferFunction::grey(0.9, 1.1);
        let out = render_full(&geo, &snap, Scalar::Density, &cam, &tf, 0.5);
        for (px, d) in out.image.pixels.iter().zip(&out.depth) {
            if px[3] > 1e-4 {
                assert!(d.is_finite());
            } else {
                assert!(d.is_infinite());
            }
        }
    }

    #[test]
    fn split_bricks_union_matches_full_render_coverage() {
        // Render left/right halves separately, merge, compare silhouette
        // with the full render — the sort-last correctness property for
        // a camera with no brick interleaving.
        let (geo, snap) = setup();
        let cam = camera(&geo);
        let tf = TransferFunction::grey(0.9, 1.1);
        let full = render_full(&geo, &snap, Scalar::Density, &cam, &tf, 0.5);

        let mid = geo.shape()[0] as u32 / 2;
        let left: Vec<u32> = (0..geo.fluid_count() as u32)
            .filter(|&s| geo.position(s)[0] < mid)
            .collect();
        let right: Vec<u32> = (0..geo.fluid_count() as u32)
            .filter(|&s| geo.position(s)[0] >= mid)
            .collect();
        let bl = Brick::from_sites(&geo, &snap, Scalar::Density, &left).unwrap();
        let br = Brick::from_sites(&geo, &snap, Scalar::Density, &right).unwrap();
        let mut pl = render_brick(&bl, &cam, &tf, 0.5);
        let pr = render_brick(&br, &cam, &tf, 0.5);
        pl.merge(&pr);

        // Same pixels lit (composited colour can differ slightly at the
        // seam, where one march is split into two).
        let mut mismatches = 0;
        for (a, b) in pl.image.pixels.iter().zip(&full.image.pixels) {
            if (a[3] > 1e-3) != (b[3] > 1e-3) {
                mismatches += 1;
            }
        }
        let frac = mismatches as f64 / pl.image.pixels.len() as f64;
        assert!(frac < 0.02, "silhouettes should agree, {frac} mismatched");
    }
}
