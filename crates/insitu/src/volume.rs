//! Distributed volume rendering by ray casting — the paper's favoured
//! technique: "Volume rendering … can be performed on each subdomain
//! without any data exchange with the neighbours."
//!
//! Each rank builds a dense *brick* over the bounding box of its own
//! sites, casts all camera rays through that brick with front-to-back
//! compositing (no communication), and the partial images meet only in
//! the sort-last compositing stage ([`crate::compositing`]).
//!
//! # Empty-space skipping
//!
//! A sparse vascular geometry fills only a small fraction of its
//! bounding box, so a naive marcher spends most of its samples in
//! non-fluid (`NaN`) space. Every brick therefore carries a *macrocell
//! grid*: per 8³-voxel cell, the min/max scalar over the cell's support
//! (one voxel of overlap, because a trilinear sample at `q` touches
//! voxels `floor(q)` and `floor(q)+1`). During a render, a macrocell is
//! *skippable* when its support holds no fluid at all or when the
//! transfer function is identically zero-opacity over its (slightly
//! widened) value range. Rays jump analytically across skippable cells.
//!
//! The jump is **bit-exact**: sample positions follow the index ladder
//! `t_k = t_start + k·step` (never an accumulated `t += step`), the
//! jump target undershoots the cell's exit conservatively (landing
//! early only costs a re-test, landing late is impossible by
//! construction), and a skipped sample would have contributed exactly
//! `±0.0` to every channel — so the accelerated image equals the naive
//! one at the bit level. Tests assert this across random geometries.

use crate::camera::{ray_box, Camera};
use crate::field::Scalar;
use crate::image::PartialImage;
use crate::transfer::{TransferFunction, TransferLut};
use hemelb_core::FieldSnapshot;
use hemelb_geometry::{SparseGeometry, Vec3};

/// Macrocell edge length in voxels (`1 << MACRO_SHIFT`).
const MACRO_SHIFT: u32 = 3;
/// Voxels per macrocell edge.
pub const MACROCELL: usize = 1 << MACRO_SHIFT;

/// Per-brick min/max acceleration grid over 8³-voxel macrocells.
///
/// `cells[c] = (min, max)` over the *fluid* voxels in the cell's
/// support `[c·8, min(c·8 + 8, dims-1)]` (inclusive, one voxel of
/// overlap into the next cell). A cell whose support holds no fluid
/// stores `(∞, -∞)`.
#[derive(Debug, Clone)]
struct MacroGrid {
    mdims: [usize; 3],
    cells: Vec<(f32, f32)>,
}

impl MacroGrid {
    fn build(dims: [usize; 3], values: &[f32]) -> MacroGrid {
        let mdims = [
            dims[0].div_ceil(MACROCELL),
            dims[1].div_ceil(MACROCELL),
            dims[2].div_ceil(MACROCELL),
        ];
        let mut cells = vec![(f32::INFINITY, f32::NEG_INFINITY); mdims[0] * mdims[1] * mdims[2]];
        for cx in 0..mdims[0] {
            let x_hi = ((cx + 1) * MACROCELL).min(dims[0] - 1);
            for cy in 0..mdims[1] {
                let y_hi = ((cy + 1) * MACROCELL).min(dims[1] - 1);
                for cz in 0..mdims[2] {
                    let z_hi = ((cz + 1) * MACROCELL).min(dims[2] - 1);
                    let mut mn = f32::INFINITY;
                    let mut mx = f32::NEG_INFINITY;
                    for x in cx * MACROCELL..=x_hi {
                        for y in cy * MACROCELL..=y_hi {
                            let row = (x * dims[1] + y) * dims[2];
                            for z in cz * MACROCELL..=z_hi {
                                let v = values[row + z];
                                if !v.is_nan() {
                                    mn = mn.min(v);
                                    mx = mx.max(v);
                                }
                            }
                        }
                    }
                    cells[(cx * mdims[1] + cy) * mdims[2] + cz] = (mn, mx);
                }
            }
        }
        MacroGrid { mdims, cells }
    }

    /// Per-cell skippability under `tf`: no fluid at all, or zero
    /// opacity over the cell's value range. The range is widened by a
    /// relative 1e-9 so the f64 rounding of a renormalised trilinear
    /// convex combination (≲1e-14 relative) can never escape it.
    fn skippable(&self, tf: &TransferFunction) -> Vec<bool> {
        self.cells
            .iter()
            .map(|&(mn, mx)| {
                if mn > mx {
                    return true;
                }
                let pad = (mn.abs().max(mx.abs()) as f64).max(f64::MIN_POSITIVE) * 1e-9;
                tf.zero_opacity_over(mn as f64 - pad, mx as f64 + pad)
            })
            .collect()
    }
}

/// A dense scalar grid over the bounding box of a set of sites.
#[derive(Debug, Clone)]
pub struct Brick {
    lo: [u32; 3],
    dims: [usize; 3],
    /// Scalar values; `NAN` marks absent (non-owned / non-fluid) cells.
    values: Vec<f32>,
    macro_grid: MacroGrid,
}

impl Brick {
    /// Build from the subset `sites` of a geometry's fluid sites, in a
    /// single pass over `sites` (positions, values and bounds gathered
    /// together; the grid allocated at its exact final size). Returns
    /// `None` if `sites` is empty.
    pub fn from_sites(
        geo: &SparseGeometry,
        snap: &FieldSnapshot,
        which: Scalar,
        sites: &[u32],
    ) -> Option<Brick> {
        if sites.is_empty() {
            return None;
        }
        let mut lo = [u32::MAX; 3];
        let mut hi = [0u32; 3];
        let mut pts: Vec<([u32; 3], f32)> = Vec::with_capacity(sites.len());
        for &s in sites {
            let p = geo.position(s);
            let v = match which {
                Scalar::Density => snap.rho[s as usize],
                Scalar::Speed => snap.speed(s as usize),
                Scalar::Shear => snap.shear[s as usize],
            };
            for a in 0..3 {
                lo[a] = lo[a].min(p[a]);
                hi[a] = hi[a].max(p[a]);
            }
            pts.push((p, v as f32));
        }
        let dims = [
            (hi[0] - lo[0] + 1) as usize,
            (hi[1] - lo[1] + 1) as usize,
            (hi[2] - lo[2] + 1) as usize,
        ];
        let mut grid = vec![f32::NAN; dims[0] * dims[1] * dims[2]];
        for (p, v) in pts {
            let i = ((p[0] - lo[0]) as usize * dims[1] + (p[1] - lo[1]) as usize) * dims[2]
                + (p[2] - lo[2]) as usize;
            grid[i] = v;
        }
        Some(Self::from_grid(lo, dims, grid))
    }

    /// Build directly from lattice points and their scalar values (the
    /// entry point for ranks that only hold a local snapshot).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn from_points(points: &[[u32; 3]], values: &[f64]) -> Option<Brick> {
        assert_eq!(points.len(), values.len());
        if points.is_empty() {
            return None;
        }
        let mut lo = [u32::MAX; 3];
        let mut hi = [0u32; 3];
        for p in points {
            for a in 0..3 {
                lo[a] = lo[a].min(p[a]);
                hi[a] = hi[a].max(p[a]);
            }
        }
        let dims = [
            (hi[0] - lo[0] + 1) as usize,
            (hi[1] - lo[1] + 1) as usize,
            (hi[2] - lo[2] + 1) as usize,
        ];
        let mut grid = vec![f32::NAN; dims[0] * dims[1] * dims[2]];
        for (p, &v) in points.iter().zip(values) {
            let i = ((p[0] - lo[0]) as usize * dims[1] + (p[1] - lo[1]) as usize) * dims[2]
                + (p[2] - lo[2]) as usize;
            grid[i] = v as f32;
        }
        Some(Self::from_grid(lo, dims, grid))
    }

    fn from_grid(lo: [u32; 3], dims: [usize; 3], values: Vec<f32>) -> Brick {
        let macro_grid = MacroGrid::build(dims, &values);
        Brick {
            lo,
            dims,
            values,
            macro_grid,
        }
    }

    /// World-space bounds (cell centres occupy `[lo, lo+dims-1]`; the
    /// box extends half a cell beyond).
    pub fn bounds(&self) -> (Vec3, Vec3) {
        (
            Vec3::new(
                self.lo[0] as f64 - 0.5,
                self.lo[1] as f64 - 0.5,
                self.lo[2] as f64 - 0.5,
            ),
            Vec3::new(
                self.lo[0] as f64 + self.dims[0] as f64 - 0.5,
                self.lo[1] as f64 + self.dims[1] as f64 - 0.5,
                self.lo[2] as f64 + self.dims[2] as f64 - 0.5,
            ),
        )
    }

    /// Memory footprint in bytes (scalar grid + macrocell grid).
    pub fn bytes(&self) -> usize {
        self.values.len() * 4 + self.macro_grid.cells.len() * 8
    }

    /// Macrocell count of the acceleration grid.
    pub fn macrocell_count(&self) -> usize {
        self.macro_grid.cells.len()
    }

    /// Fraction of macrocells a render with `tf` may skip outright.
    pub fn skippable_fraction(&self, tf: &TransferFunction) -> f64 {
        let mask = self.macro_grid.skippable(tf);
        mask.iter().filter(|&&b| b).count() as f64 / mask.len().max(1) as f64
    }

    #[inline]
    fn value(&self, x: i64, y: i64, z: i64) -> Option<f64> {
        let bx = x - self.lo[0] as i64;
        let by = y - self.lo[1] as i64;
        let bz = z - self.lo[2] as i64;
        if bx < 0
            || by < 0
            || bz < 0
            || bx as usize >= self.dims[0]
            || by as usize >= self.dims[1]
            || bz as usize >= self.dims[2]
        {
            return None;
        }
        let v =
            self.values[(bx as usize * self.dims[1] + by as usize) * self.dims[2] + bz as usize];
        if v.is_nan() {
            None
        } else {
            Some(v as f64)
        }
    }

    /// Fluid-renormalised trilinear sample at a world point.
    ///
    /// Interior samples take a fused eight-corner gather from one base
    /// index; corners on the brick border fall back to the bounds-checked
    /// per-corner path. Both paths accumulate corners in the same order
    /// with the same operations, so they are bit-identical.
    pub fn sample(&self, p: Vec3) -> Option<f64> {
        let x0 = p.x.floor() as i64;
        let y0 = p.y.floor() as i64;
        let z0 = p.z.floor() as i64;
        let fx = p.x - x0 as f64;
        let fy = p.y - y0 as f64;
        let fz = p.z - z0 as f64;
        let bx = x0 - self.lo[0] as i64;
        let by = y0 - self.lo[1] as i64;
        let bz = z0 - self.lo[2] as i64;
        let (d1, d2) = (self.dims[1], self.dims[2]);
        if bx >= 0
            && by >= 0
            && bz >= 0
            && (bx as usize) + 1 < self.dims[0]
            && (by as usize) + 1 < d1
            && (bz as usize) + 1 < d2
        {
            // Fused gather: all eight corners are in bounds, one base
            // index, contiguous offsets.
            let base = (bx as usize * d1 + by as usize) * d2 + bz as usize;
            let v = &self.values;
            let corners = [
                v[base],
                v[base + 1],
                v[base + d2],
                v[base + d2 + 1],
                v[base + d1 * d2],
                v[base + d1 * d2 + 1],
                v[base + d1 * d2 + d2],
                v[base + d1 * d2 + d2 + 1],
            ];
            let wx = [1.0 - fx, fx];
            let wy = [1.0 - fy, fy];
            let wz = [1.0 - fz, fz];
            let mut acc = 0.0;
            let mut wsum = 0.0;
            for (i, &cv) in corners.iter().enumerate() {
                let w = (wx[i >> 2] * wy[(i >> 1) & 1]) * wz[i & 1];
                if w <= 0.0 || cv.is_nan() {
                    continue;
                }
                acc += cv as f64 * w;
                wsum += w;
            }
            return if wsum <= 1e-9 { None } else { Some(acc / wsum) };
        }
        // Border path: bounds-checked corner reads.
        let mut acc = 0.0;
        let mut wsum = 0.0;
        for dx in 0..2i64 {
            for dy in 0..2i64 {
                for dz in 0..2i64 {
                    let w = (if dx == 0 { 1.0 - fx } else { fx })
                        * (if dy == 0 { 1.0 - fy } else { fy })
                        * (if dz == 0 { 1.0 - fz } else { fz });
                    if w <= 0.0 {
                        continue;
                    }
                    if let Some(v) = self.value(x0 + dx, y0 + dy, z0 + dz) {
                        acc += v * w;
                        wsum += w;
                    }
                }
            }
        }
        if wsum <= 1e-9 {
            None
        } else {
            Some(acc / wsum)
        }
    }

    /// The macrocell containing the sample at `p`, as (flat index, per-
    /// axis coordinates). Uses the same `floor` the sampler uses, so a
    /// sample's touched voxels always lie in the returned cell's support
    /// (or out of the brick entirely); out-of-grid positions clamp to
    /// the edge cells, whose supports cover them.
    #[inline]
    fn macrocell_of(&self, p: Vec3) -> (usize, [i64; 3]) {
        let md = &self.macro_grid.mdims;
        let cx =
            ((p.x.floor() as i64 - self.lo[0] as i64) >> MACRO_SHIFT).clamp(0, md[0] as i64 - 1);
        let cy =
            ((p.y.floor() as i64 - self.lo[1] as i64) >> MACRO_SHIFT).clamp(0, md[1] as i64 - 1);
        let cz =
            ((p.z.floor() as i64 - self.lo[2] as i64) >> MACRO_SHIFT).clamp(0, md[2] as i64 - 1);
        (
            (cx as usize * md[1] + cy as usize) * md[2] + cz as usize,
            [cx, cy, cz],
        )
    }

    /// First sample index after `k` that may lie outside macrocell
    /// `cell` along the ray. Conservative by a positional margin: every
    /// skipped index provably stays inside the cell (so contributes
    /// exactly nothing), and an undershoot merely re-enters the skip
    /// branch one sample later. Always ≥ `k + 1`.
    #[allow(clippy::too_many_arguments)]
    fn jump_past(
        &self,
        cell: [i64; 3],
        origin: Vec3,
        dir: Vec3,
        t_start: f64,
        t1: f64,
        step: f64,
        k: u64,
    ) -> u64 {
        // Margin in *position* space (cells). Plane-crossing and sample-
        // position arithmetic err by ≲1e-11 absolute at lattice scales,
        // so shrinking each cell face by 1e-6 makes overshoot impossible.
        const POS_EPS: f64 = 1e-6;
        let o = [origin.x, origin.y, origin.z];
        let d = [dir.x, dir.y, dir.z];
        let mut t_exit = t1;
        for a in 0..3 {
            let md = self.macro_grid.mdims[a] as i64;
            let c = cell[a];
            if d[a] > 0.0 && c + 1 < md {
                // No face on the high side of the last cell: positions
                // beyond it clamp back to this cell.
                let bound = self.lo[a] as f64 + ((c + 1) << MACRO_SHIFT) as f64 - POS_EPS;
                t_exit = t_exit.min((bound - o[a]) / d[a]);
            } else if d[a] < 0.0 && c > 0 {
                let bound = self.lo[a] as f64 + (c << MACRO_SHIFT) as f64 + POS_EPS;
                t_exit = t_exit.min((bound - o[a]) / d[a]);
            }
        }
        let mut kn = k + 1;
        if t_exit > t_start && t_exit.is_finite() {
            let est = ((t_exit - t_start) / step).ceil();
            if est > kn as f64 && est < u64::MAX as f64 {
                kn = est as u64;
            }
        }
        // Guard the ladder directly: no skipped sample may sit at or
        // beyond the conservative exit.
        while kn > k + 1 && t_start + (kn - 1) as f64 * step >= t_exit {
            kn -= 1;
        }
        kn
    }
}

/// Knobs of [`render_brick_opts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderOptions {
    /// Skip ray segments through skippable macrocells (bit-identical to
    /// the naive march; on by default).
    pub macrocells: bool,
    /// Shade through a precomputed transfer-function table of this many
    /// entries instead of exact classification. `None` (the default)
    /// keeps exact sampling — required for the determinism tests.
    pub lut_size: Option<usize>,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            macrocells: true,
            lut_size: None,
        }
    }
}

/// Work counters of one [`render_brick_opts`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenderStats {
    /// Rays cast (one per pixel).
    pub rays: u64,
    /// Samples evaluated through the trilinear + transfer path.
    pub samples_shaded: u64,
    /// Samples skipped by macrocell jumps.
    pub samples_skipped: u64,
    /// Analytic jumps taken.
    pub jumps: u64,
}

impl RenderStats {
    /// Samples the naive marcher would have evaluated.
    pub fn samples_total(&self) -> u64 {
        self.samples_shaded + self.samples_skipped
    }

    /// Fraction of samples the macrocell grid skipped.
    pub fn skip_fraction(&self) -> f64 {
        let total = self.samples_total();
        if total == 0 {
            0.0
        } else {
            self.samples_skipped as f64 / total as f64
        }
    }

    fn absorb(&mut self, o: &RenderStats) {
        self.rays += o.rays;
        self.samples_shaded += o.samples_shaded;
        self.samples_skipped += o.samples_skipped;
        self.jumps += o.jumps;
    }
}

/// March one ray through the brick. Sample positions follow the index
/// ladder `t_k = t_start + k·step` so the macrocell path can jump `k`
/// without changing any sample position the naive path would visit.
#[allow(clippy::too_many_arguments)]
fn march(
    brick: &Brick,
    tf: &TransferFunction,
    lut: Option<&TransferLut>,
    skippable: Option<&[bool]>,
    origin: Vec3,
    dir: Vec3,
    t_start: f64,
    t1: f64,
    step: f64,
    stats: &mut RenderStats,
) -> ([f32; 4], f32) {
    let mut rgba = [0.0f32; 4];
    let mut depth = f32::INFINITY;
    let mut k: u64 = 0;
    // First sample index that may lie outside the current (non-
    // skippable) macrocell: until then the mask need not be consulted,
    // so the per-sample overhead of skipping is one integer compare.
    let mut shade_until = 0u64;
    loop {
        let t = t_start + k as f64 * step;
        if t >= t1 || rgba[3] >= 0.995 {
            break;
        }
        let p = origin + dir * t;
        if let Some(mask) = skippable {
            if k >= shade_until {
                let (ci, cell) = brick.macrocell_of(p);
                let kn = brick.jump_past(cell, origin, dir, t_start, t1, step, k);
                if mask[ci] {
                    stats.jumps += 1;
                    stats.samples_skipped += kn - k;
                    k = kn;
                    continue;
                }
                shade_until = kn;
            }
        }
        stats.samples_shaded += 1;
        if let Some(v) = brick.sample(p) {
            let s = match lut {
                Some(l) => l.sample(v),
                None => tf.sample(v, step),
            };
            if s[3] > 0.0 && depth.is_infinite() {
                depth = t as f32;
            }
            // front-to-back: out += (1 - out.a) * sample
            let kk = 1.0 - rgba[3];
            rgba[0] += s[0] * kk;
            rgba[1] += s[1] * kk;
            rgba[2] += s[2] * kk;
            rgba[3] += s[3] * kk;
        }
        k += 1;
    }
    (rgba, depth)
}

/// Ray-cast one brick into a partial image. `step` is the march step in
/// cells (0.5 is a good default). Embarrassingly parallel over pixels —
/// the "ease of parallelisation: easy" cell of Table I. Macrocell
/// skipping is on (the result is bit-identical either way); use
/// [`render_brick_opts`] to switch modes or read the work counters.
pub fn render_brick(brick: &Brick, cam: &Camera, tf: &TransferFunction, step: f64) -> PartialImage {
    render_brick_opts(brick, cam, tf, step, &RenderOptions::default()).0
}

/// [`render_brick`] with explicit options, returning the work counters.
///
/// Rows are split into contiguous bands, one per worker; each band
/// writes its pixels and depths straight into the output's disjoint
/// sub-slices (no per-row allocation, no copy-back pass).
pub fn render_brick_opts(
    brick: &Brick,
    cam: &Camera,
    tf: &TransferFunction,
    step: f64,
    opts: &RenderOptions,
) -> (PartialImage, RenderStats) {
    assert!(step > 0.0);
    let (blo, bhi) = brick.bounds();
    let width = cam.width as usize;
    let height = cam.height as usize;
    let mut out = PartialImage::new(cam.width, cam.height);
    let skippable = if opts.macrocells {
        Some(brick.macro_grid.skippable(tf))
    } else {
        None
    };
    let lut = opts.lut_size.map(|n| TransferLut::build(tf, step, n));

    let rows_per = height.div_ceil(rayon::current_num_threads().clamp(1, height.max(1)));
    let n_bands = height.div_ceil(rows_per.max(1)).max(1);
    let mut band_stats = vec![RenderStats::default(); n_bands];

    rayon::scope(|s| {
        let mut px_rest = out.image.pixels.as_mut_slice();
        let mut dp_rest = out.depth.as_mut_slice();
        let mut st_rest = band_stats.as_mut_slice();
        let skippable = skippable.as_deref();
        let lut = lut.as_ref();
        let mut y0 = 0usize;
        while y0 < height {
            let rows = rows_per.min(height - y0);
            let (px_band, px_tail) = { px_rest }.split_at_mut(rows * width);
            let (dp_band, dp_tail) = { dp_rest }.split_at_mut(rows * width);
            let (st_band, st_tail) = { st_rest }.split_at_mut(1);
            px_rest = px_tail;
            dp_rest = dp_tail;
            st_rest = st_tail;
            s.spawn(move |_| {
                let st = &mut st_band[0];
                for r in 0..rows {
                    let py = (y0 + r) as u32;
                    for px in 0..width {
                        let (origin, dir) = cam.ray(px as u32, py);
                        st.rays += 1;
                        let (rgba, depth) = match ray_box(origin, dir, blo, bhi) {
                            Some((t0, t1)) => march(
                                brick,
                                tf,
                                lut,
                                skippable,
                                origin,
                                dir,
                                t0.max(0.0) + step * 0.5,
                                t1,
                                step,
                                st,
                            ),
                            None => ([0.0f32; 4], f32::INFINITY),
                        };
                        let idx = r * width + px;
                        px_band[idx] = rgba;
                        dp_band[idx] = depth;
                    }
                }
            });
            y0 += rows;
        }
    });

    let mut stats = RenderStats::default();
    for b in &band_stats {
        stats.absorb(b);
    }
    (out, stats)
}

/// Serial full-domain render: the reference the distributed pipeline is
/// compared against (and the generator of Fig. 4a).
pub fn render_full(
    geo: &SparseGeometry,
    snap: &FieldSnapshot,
    which: Scalar,
    cam: &Camera,
    tf: &TransferFunction,
    step: f64,
) -> PartialImage {
    let all: Vec<u32> = (0..geo.fluid_count() as u32).collect();
    let brick = Brick::from_sites(geo, snap, which, &all).expect("non-empty geometry");
    render_brick(&brick, cam, tf, step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_geometry::VesselBuilder;

    fn setup() -> (SparseGeometry, FieldSnapshot) {
        let geo = VesselBuilder::aneurysm(24.0, 4.0, 6.0).voxelise(1.0);
        let n = geo.fluid_count();
        let snap = FieldSnapshot {
            step: 0,
            rho: vec![1.0; n],
            u: vec![[0.05, 0.0, 0.0]; n],
            shear: vec![0.0; n],
        };
        (geo, snap)
    }

    fn varied_snapshot(geo: &SparseGeometry) -> FieldSnapshot {
        let n = geo.fluid_count();
        FieldSnapshot {
            step: 0,
            rho: (0..n)
                .map(|i| 1.0 + 0.05 * ((i * 37 % 101) as f64 / 101.0))
                .collect(),
            u: (0..n)
                .map(|i| [0.03 + 0.02 * ((i % 13) as f64 / 13.0), 0.01, 0.0])
                .collect(),
            shear: vec![0.0; n],
        }
    }

    fn camera(geo: &SparseGeometry) -> Camera {
        let s = geo.shape();
        Camera::framing(
            Vec3::ZERO,
            Vec3::new(s[0] as f64, s[1] as f64, s[2] as f64),
            Vec3::new(0.0, -1.0, 0.3),
            96,
            72,
        )
    }

    fn partials_bit_eq(a: &PartialImage, b: &PartialImage) -> bool {
        a.image.pixels.len() == b.image.pixels.len()
            && a.image
                .pixels
                .iter()
                .zip(&b.image.pixels)
                .all(|(pa, pb)| (0..4).all(|c| pa[c].to_bits() == pb[c].to_bits()))
            && a.depth
                .iter()
                .zip(&b.depth)
                .all(|(da, db)| da.to_bits() == db.to_bits())
    }

    /// The pre-macrocell reference sampler (branchy per-corner reads),
    /// kept verbatim to pin the fused gather's bit-exactness.
    fn sample_reference(brick: &Brick, p: Vec3) -> Option<f64> {
        let x0 = p.x.floor() as i64;
        let y0 = p.y.floor() as i64;
        let z0 = p.z.floor() as i64;
        let fx = p.x - x0 as f64;
        let fy = p.y - y0 as f64;
        let fz = p.z - z0 as f64;
        let mut acc = 0.0;
        let mut wsum = 0.0;
        for dx in 0..2i64 {
            for dy in 0..2i64 {
                for dz in 0..2i64 {
                    let w = (if dx == 0 { 1.0 - fx } else { fx })
                        * (if dy == 0 { 1.0 - fy } else { fy })
                        * (if dz == 0 { 1.0 - fz } else { fz });
                    if w <= 0.0 {
                        continue;
                    }
                    if let Some(v) = brick.value(x0 + dx, y0 + dy, z0 + dz) {
                        acc += v * w;
                        wsum += w;
                    }
                }
            }
        }
        if wsum <= 1e-9 {
            None
        } else {
            Some(acc / wsum)
        }
    }

    #[test]
    fn brick_samples_match_sites() {
        let (geo, snap) = setup();
        let all: Vec<u32> = (0..geo.fluid_count() as u32).collect();
        let brick = Brick::from_sites(&geo, &snap, Scalar::Density, &all).unwrap();
        for i in (0..geo.fluid_count() as u32).step_by(71) {
            let p = geo.position_v(i);
            let v = brick.sample(p).expect("fluid cell samples");
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn fused_gather_matches_reference_sampler_bitwise() {
        let (geo, _) = setup();
        let snap = varied_snapshot(&geo);
        let all: Vec<u32> = (0..geo.fluid_count() as u32).collect();
        let brick = Brick::from_sites(&geo, &snap, Scalar::Density, &all).unwrap();
        let (blo, bhi) = brick.bounds();
        // A deterministic scatter of probe points covering interior,
        // border and outside positions.
        let mut h = 0x243F6A8885A308D3u64;
        for _ in 0..4000 {
            let mut unit = || {
                h ^= h >> 12;
                h ^= h << 25;
                h ^= h >> 27;
                (h.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f64 / (1u64 << 24) as f64
            };
            let p = Vec3::new(
                blo.x - 1.0 + unit() * (bhi.x - blo.x + 2.0),
                blo.y - 1.0 + unit() * (bhi.y - blo.y + 2.0),
                blo.z - 1.0 + unit() * (bhi.z - blo.z + 2.0),
            );
            let fused = brick.sample(p);
            let reference = sample_reference(&brick, p);
            match (fused, reference) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "at {p:?}")
                }
                other => panic!("fused/reference disagree at {p:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn macrocell_render_is_bit_identical_to_naive() {
        let (geo, _) = setup();
        let snap = varied_snapshot(&geo);
        let cam = camera(&geo);
        let all: Vec<u32> = (0..geo.fluid_count() as u32).collect();
        for (which, tf) in [
            (Scalar::Density, TransferFunction::grey(0.9, 1.1)),
            (Scalar::Speed, TransferFunction::heat(0.0, 0.06)),
        ] {
            let brick = Brick::from_sites(&geo, &snap, which, &all).unwrap();
            let naive = RenderOptions {
                macrocells: false,
                lut_size: None,
            };
            let (img_naive, st_naive) = render_brick_opts(&brick, &cam, &tf, 0.5, &naive);
            let (img_accel, st_accel) =
                render_brick_opts(&brick, &cam, &tf, 0.5, &RenderOptions::default());
            assert!(
                partials_bit_eq(&img_naive, &img_accel),
                "macrocell render must be bit-identical"
            );
            assert_eq!(st_naive.samples_skipped, 0);
            assert!(
                st_accel.samples_skipped > 0,
                "a sparse vessel in its bounding box must skip something"
            );
            assert!(st_accel.samples_shaded < st_naive.samples_shaded);
            assert_eq!(st_accel.rays, st_naive.rays);
        }
    }

    #[test]
    fn fully_transparent_transfer_function_skips_everything() {
        let (geo, snap) = setup();
        let cam = camera(&geo);
        let all: Vec<u32> = (0..geo.fluid_count() as u32).collect();
        let brick = Brick::from_sites(&geo, &snap, Scalar::Density, &all).unwrap();
        let clear = TransferFunction {
            stops: vec![[1.0, 1.0, 1.0, 0.0], [0.0, 0.0, 0.0, 0.0]],
            ..TransferFunction::grey(0.9, 1.1)
        };
        assert_eq!(brick.skippable_fraction(&clear), 1.0);
        let (img, st) = render_brick_opts(&brick, &cam, &clear, 0.5, &RenderOptions::default());
        assert_eq!(st.samples_shaded, 0);
        assert!(st.samples_skipped > 0);
        assert_eq!(img.image.coverage(), 0.0);
    }

    #[test]
    fn empty_site_set_gives_no_brick() {
        let (geo, snap) = setup();
        assert!(Brick::from_sites(&geo, &snap, Scalar::Density, &[]).is_none());
    }

    #[test]
    fn from_sites_matches_from_points() {
        let (geo, _) = setup();
        let snap = varied_snapshot(&geo);
        let sites: Vec<u32> = (0..geo.fluid_count() as u32).step_by(3).collect();
        let a = Brick::from_sites(&geo, &snap, Scalar::Density, &sites).unwrap();
        let points: Vec<[u32; 3]> = sites.iter().map(|&s| geo.position(s)).collect();
        let values: Vec<f64> = sites.iter().map(|&s| snap.rho[s as usize]).collect();
        let b = Brick::from_points(&points, &values).unwrap();
        assert_eq!(a.lo, b.lo);
        assert_eq!(a.dims, b.dims);
        assert!(a
            .values
            .iter()
            .zip(&b.values)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn render_covers_the_vessel_silhouette() {
        let (geo, snap) = setup();
        let cam = camera(&geo);
        let tf = TransferFunction::grey(0.9, 1.1);
        let out = render_full(&geo, &snap, Scalar::Density, &cam, &tf, 0.5);
        let cov = out.image.coverage();
        assert!(cov > 0.05, "silhouette should cover some pixels: {cov}");
        assert!(cov < 0.9, "background must stay empty: {cov}");
    }

    #[test]
    fn lit_pixels_have_finite_depth() {
        let (geo, snap) = setup();
        let cam = camera(&geo);
        let tf = TransferFunction::grey(0.9, 1.1);
        let out = render_full(&geo, &snap, Scalar::Density, &cam, &tf, 0.5);
        for (px, d) in out.image.pixels.iter().zip(&out.depth) {
            if px[3] > 1e-4 {
                assert!(d.is_finite());
            } else {
                assert!(d.is_infinite());
            }
        }
    }

    #[test]
    fn split_bricks_union_matches_full_render_coverage() {
        // Render left/right halves separately, merge, compare silhouette
        // with the full render — the sort-last correctness property for
        // a camera with no brick interleaving.
        let (geo, snap) = setup();
        let cam = camera(&geo);
        let tf = TransferFunction::grey(0.9, 1.1);
        let full = render_full(&geo, &snap, Scalar::Density, &cam, &tf, 0.5);

        let mid = geo.shape()[0] as u32 / 2;
        let left: Vec<u32> = (0..geo.fluid_count() as u32)
            .filter(|&s| geo.position(s)[0] < mid)
            .collect();
        let right: Vec<u32> = (0..geo.fluid_count() as u32)
            .filter(|&s| geo.position(s)[0] >= mid)
            .collect();
        let bl = Brick::from_sites(&geo, &snap, Scalar::Density, &left).unwrap();
        let br = Brick::from_sites(&geo, &snap, Scalar::Density, &right).unwrap();
        let mut pl = render_brick(&bl, &cam, &tf, 0.5);
        let pr = render_brick(&br, &cam, &tf, 0.5);
        pl.merge(&pr);

        // Same pixels lit (composited colour can differ slightly at the
        // seam, where one march is split into two).
        let mut mismatches = 0;
        for (a, b) in pl.image.pixels.iter().zip(&full.image.pixels) {
            if (a[3] > 1e-3) != (b[3] > 1e-3) {
                mismatches += 1;
            }
        }
        let frac = mismatches as f64 / pl.image.pixels.len() as f64;
        assert!(frac < 0.02, "silhouettes should agree, {frac} mismatched");
    }
}
