//! In situ feature extraction (paper §I: "in situ visualisation and
//! feature extraction are promising approaches to reduce the amount of
//! data to handle"; §IV-C-2: path-lines reveal "features such as
//! vortices").
//!
//! * [`vorticity`] — the curl of the velocity field by central
//!   differences over the sparse lattice (one-sided at walls);
//! * [`swirling_regions`] — connected components of high-swirl sites: a
//!   vortex detector whose output is a handful of [`Feature`] records
//!   (centroid, extent, strength) instead of terabytes of field data —
//!   feature extraction *as* data reduction;
//! * [`FeatureReport`] — what an in situ run ships to the steering
//!   client about each detected structure.

use hemelb_core::FieldSnapshot;
use hemelb_geometry::SparseGeometry;
use serde::{Deserialize, Serialize};

/// Per-site vorticity vectors `ω = ∇ × u`.
///
/// Central differences where both neighbours are fluid, one-sided where
/// only one is, zero where isolated — consistent with the staircase
/// geometry the solver itself sees.
pub fn vorticity(geo: &SparseGeometry, snap: &FieldSnapshot) -> Vec<[f64; 3]> {
    assert_eq!(snap.len(), geo.fluid_count());
    let n = geo.fluid_count();
    // du[a][b] = ∂u_a/∂x_b at each site.
    let mut out = vec![[0.0f64; 3]; n];
    for s in 0..n as u32 {
        let [x, y, z] = geo.position(s);
        let (xi, yi, zi) = (x as i64, y as i64, z as i64);
        // derivative of component `comp` along axis `axis`
        let d = |comp: usize, axis: usize| -> f64 {
            let (dx, dy, dz) = match axis {
                0 => (1i64, 0i64, 0i64),
                1 => (0, 1, 0),
                _ => (0, 0, 1),
            };
            let plus = geo.site_at(xi + dx, yi + dy, zi + dz);
            let minus = geo.site_at(xi - dx, yi - dy, zi - dz);
            match (plus, minus) {
                (Some(p), Some(m)) => (snap.u[p as usize][comp] - snap.u[m as usize][comp]) / 2.0,
                (Some(p), None) => snap.u[p as usize][comp] - snap.u[s as usize][comp],
                (None, Some(m)) => snap.u[s as usize][comp] - snap.u[m as usize][comp],
                (None, None) => 0.0,
            }
        };
        // ω_x = ∂u_z/∂y − ∂u_y/∂z, etc.
        out[s as usize] = [d(2, 1) - d(1, 2), d(0, 2) - d(2, 0), d(1, 0) - d(0, 1)];
    }
    out
}

/// Magnitude of a vorticity vector.
#[inline]
pub fn vorticity_magnitude(w: [f64; 3]) -> f64 {
    (w[0] * w[0] + w[1] * w[1] + w[2] * w[2]).sqrt()
}

/// One extracted flow feature (a connected high-swirl region).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Feature {
    /// Number of sites in the region.
    pub sites: u32,
    /// Centroid in lattice coordinates.
    pub centroid: [f64; 3],
    /// Axis-aligned bounds (min corner, max corner).
    pub bounds: ([u32; 3], [u32; 3]),
    /// Peak vorticity magnitude inside the region.
    pub peak_vorticity: f64,
    /// Mean vorticity magnitude inside the region.
    pub mean_vorticity: f64,
}

/// The in situ feature-extraction result: a compact description of the
/// flow's vortical structures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureReport {
    /// Threshold used (vorticity magnitude).
    pub threshold: f64,
    /// Detected regions, largest first.
    pub features: Vec<Feature>,
    /// Total fluid sites scanned.
    pub scanned: u64,
}

impl FeatureReport {
    /// Bytes to ship this report (vs. the full field it summarises).
    pub fn approx_bytes(&self) -> usize {
        self.features.len() * 72 + 24
    }
}

/// Extract connected regions (6-neighbourhood) where the vorticity
/// magnitude exceeds `threshold`. Regions smaller than `min_sites` are
/// dropped as noise.
pub fn swirling_regions(
    geo: &SparseGeometry,
    snap: &FieldSnapshot,
    threshold: f64,
    min_sites: u32,
) -> FeatureReport {
    let w = vorticity(geo, snap);
    let n = geo.fluid_count();
    let mags: Vec<f64> = w.iter().map(|&v| vorticity_magnitude(v)).collect();

    let mut visited = vec![false; n];
    let mut features = Vec::new();
    for start in 0..n as u32 {
        if visited[start as usize] || mags[start as usize] < threshold {
            continue;
        }
        // Flood fill.
        let mut stack = vec![start];
        visited[start as usize] = true;
        let mut sites = 0u32;
        let mut sum = [0.0f64; 3];
        let mut lo = [u32::MAX; 3];
        let mut hi = [0u32; 3];
        let mut peak = 0.0f64;
        let mut total_mag = 0.0f64;
        while let Some(s) = stack.pop() {
            let p = geo.position(s);
            sites += 1;
            for a in 0..3 {
                sum[a] += p[a] as f64;
                lo[a] = lo[a].min(p[a]);
                hi[a] = hi[a].max(p[a]);
            }
            peak = peak.max(mags[s as usize]);
            total_mag += mags[s as usize];
            let (xi, yi, zi) = (p[0] as i64, p[1] as i64, p[2] as i64);
            for (dx, dy, dz) in [
                (1i64, 0i64, 0i64),
                (-1, 0, 0),
                (0, 1, 0),
                (0, -1, 0),
                (0, 0, 1),
                (0, 0, -1),
            ] {
                if let Some(t) = geo.site_at(xi + dx, yi + dy, zi + dz) {
                    if !visited[t as usize] && mags[t as usize] >= threshold {
                        visited[t as usize] = true;
                        stack.push(t);
                    }
                }
            }
        }
        if sites >= min_sites {
            features.push(Feature {
                sites,
                centroid: [
                    sum[0] / sites as f64,
                    sum[1] / sites as f64,
                    sum[2] / sites as f64,
                ],
                bounds: (lo, hi),
                peak_vorticity: peak,
                mean_vorticity: total_mag / sites as f64,
            });
        }
    }
    features.sort_by_key(|f| std::cmp::Reverse(f.sites));
    FeatureReport {
        threshold,
        features,
        scanned: n as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_geometry::VesselBuilder;

    fn tube() -> SparseGeometry {
        VesselBuilder::straight_tube(20.0, 5.0).voxelise(1.0)
    }

    fn snapshot_with(geo: &SparseGeometry, f: impl Fn([u32; 3]) -> [f64; 3]) -> FieldSnapshot {
        let n = geo.fluid_count();
        FieldSnapshot {
            step: 0,
            rho: vec![1.0; n],
            u: (0..n as u32).map(|s| f(geo.position(s))).collect(),
            shear: vec![0.0; n],
        }
    }

    #[test]
    fn uniform_flow_has_zero_vorticity() {
        let geo = tube();
        let snap = snapshot_with(&geo, |_| [0.05, 0.0, 0.0]);
        let w = vorticity(&geo, &snap);
        for v in w {
            assert!(vorticity_magnitude(v) < 1e-12);
        }
    }

    #[test]
    fn rigid_rotation_has_vorticity_two_omega() {
        // u = Ω × r with Ω = (ω, 0, 0) gives ω_vec = (2ω, 0, 0) exactly
        // (linear field ⇒ central differences are exact).
        let geo = tube();
        let omega = 0.01;
        let cy = (geo.shape()[1] as f64 - 1.0) / 2.0;
        let cz = (geo.shape()[2] as f64 - 1.0) / 2.0;
        let snap = snapshot_with(&geo, |p| {
            let y = p[1] as f64 - cy;
            let z = p[2] as f64 - cz;
            [0.0, -omega * z, omega * y]
        });
        let w = vorticity(&geo, &snap);
        // Check interior sites (one-sided stencils at walls are still
        // exact for linear fields, so all sites qualify).
        for v in &w {
            assert!((v[0] - 2.0 * omega).abs() < 1e-12, "{v:?}");
            assert!(v[1].abs() < 1e-12);
            assert!(v[2].abs() < 1e-12);
        }
    }

    #[test]
    fn shear_flow_vorticity_matches_gradient() {
        // u_x = k·y ⇒ ω_z = −k.
        let geo = tube();
        let k = 0.004;
        let snap = snapshot_with(&geo, |p| [k * p[1] as f64, 0.0, 0.0]);
        let w = vorticity(&geo, &snap);
        for v in &w {
            assert!((v[2] + k).abs() < 1e-12, "{v:?}");
        }
    }

    #[test]
    fn swirling_region_found_where_planted() {
        // Rotation only inside a ball at the tube centre; rest at rest.
        let geo = tube();
        let centre = [
            10.0,
            (geo.shape()[1] as f64 - 1.0) / 2.0,
            (geo.shape()[2] as f64 - 1.0) / 2.0,
        ];
        let snap = snapshot_with(&geo, |p| {
            let dx = p[0] as f64 - centre[0];
            let dy = p[1] as f64 - centre[1];
            let dz = p[2] as f64 - centre[2];
            if dx * dx + dy * dy + dz * dz < 9.0 {
                [0.0, -0.02 * dz, 0.02 * dy]
            } else {
                [0.0; 3]
            }
        });
        let report = swirling_regions(&geo, &snap, 0.02, 3);
        assert!(!report.features.is_empty(), "the planted vortex is found");
        let f = &report.features[0];
        assert!(
            (f.centroid[0] - centre[0]).abs() < 2.0,
            "centroid near the plant: {:?}",
            f.centroid
        );
        assert!(f.peak_vorticity > 0.03, "2ω = 0.04 inside");
        // Data reduction: the report is tiny compared with the field.
        assert!(report.approx_bytes() < geo.fluid_count() * 8 / 10);
    }

    #[test]
    fn still_fluid_yields_no_features() {
        let geo = tube();
        let snap = snapshot_with(&geo, |_| [0.0; 3]);
        let report = swirling_regions(&geo, &snap, 1e-6, 1);
        assert!(report.features.is_empty());
        assert_eq!(report.scanned, geo.fluid_count() as u64);
    }

    #[test]
    fn min_sites_filters_specks() {
        let geo = tube();
        // One-site "vortex": a single site with nonzero neighbours' curl.
        let target = geo.position(geo.fluid_count() as u32 / 2);
        let snap = snapshot_with(&geo, |p| {
            if p == target {
                [0.0, 0.05, 0.0]
            } else {
                [0.0; 3]
            }
        });
        let loose = swirling_regions(&geo, &snap, 1e-4, 1);
        let strict = swirling_regions(&geo, &snap, 1e-4, 50);
        assert!(loose.features.len() >= strict.features.len());
        assert!(strict.features.is_empty());
    }
}
