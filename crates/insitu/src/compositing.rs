//! Sort-last image compositing: direct-send and binary-swap.
//!
//! After every rank ray-casts its own brick, the partial images are
//! combined by depth. Direct-send ships whole partials to the master;
//! binary-swap exchanges image *halves* over log₂P rounds so the
//! per-rank bandwidth stays O(pixels) instead of O(pixels·P) — the
//! classic scalability fix for exactly the data-movement concern the
//! paper opens with.

use crate::image::{Image, PartialImage};
use bytes::Bytes;
use hemelb_parallel::{CommResult, Communicator, Tag, WireReader, WireWriter};

const T_DIRECT: Tag = Tag::composite(0);
const T_SWAP: Tag = Tag::composite(1);
const T_GATHER: Tag = Tag::composite(64);

/// Serialise a pixel range of a partial image (premultiplied RGBA +
/// depth, 20 B per pixel).
fn encode_range(p: &PartialImage, range: std::ops::Range<usize>) -> Bytes {
    let mut w = WireWriter::with_capacity(16 + range.len() * 20);
    w.put_usize(range.start);
    w.put_usize(range.len());
    for i in range {
        let px = p.image.pixels[i];
        w.put_f32(px[0]);
        w.put_f32(px[1]);
        w.put_f32(px[2]);
        w.put_f32(px[3]);
        w.put_f32(p.depth[i]);
    }
    w.finish()
}

/// Merge an encoded pixel range into `into` (depth-ordered over).
fn merge_range(into: &mut PartialImage, payload: Bytes) -> CommResult<std::ops::Range<usize>> {
    let mut r = WireReader::new(payload);
    let start = r.get_usize()?;
    let len = r.get_usize()?;
    for i in start..start + len {
        let px = [r.get_f32()?, r.get_f32()?, r.get_f32()?, r.get_f32()?];
        let d = r.get_f32()?;
        let (a, da) = (into.image.pixels[i], into.depth[i]);
        let (front, back, dmin) = if da <= d { (a, px, da) } else { (px, a, d) };
        into.image.pixels[i] = crate::image::over_px(front, back);
        into.depth[i] = dmin;
    }
    Ok(start..start + len)
}

/// Direct-send compositing: every rank ships its whole partial to rank
/// 0, which merges them in rank order. O(P·pixels) bytes into one node.
pub fn direct_send(comm: &Communicator, mine: PartialImage) -> CommResult<Option<Image>> {
    comm.note_sync();
    let n = mine.image.pixels.len();
    if comm.is_master() {
        let mut acc = mine;
        // Per-source receives: deterministic merge order, and repeated
        // frames cannot mix (FIFO per `(src, tag)`), unlike `recv_any`.
        for src in 1..comm.size() {
            let payload = comm.recv(src, T_DIRECT)?;
            merge_range(&mut acc, payload)?;
        }
        Ok(Some(acc.image))
    } else {
        comm.send(0, T_DIRECT, encode_range(&mine, 0..n))?;
        Ok(None)
    }
}

/// Binary-swap compositing for power-of-two worlds; falls back to
/// [`direct_send`] otherwise. After log₂P rounds each rank owns a fully
/// composited 1/P of the image, which is then gathered at rank 0.
pub fn binary_swap(comm: &Communicator, mine: PartialImage) -> CommResult<Option<Image>> {
    let p = comm.size();
    if !p.is_power_of_two() || p == 1 {
        return direct_send(comm, mine);
    }
    comm.note_sync();
    let npix = mine.image.pixels.len();
    let me = comm.rank();
    let mut acc = mine;
    let mut range = 0..npix;
    let mut bit = 1usize;
    let mut round = 0u32;
    while bit < p {
        let partner = me ^ bit;
        let half = (range.end - range.start) / 2;
        let (keep, send) = if me & bit == 0 {
            (
                range.start..range.start + half,
                range.start + half..range.end,
            )
        } else {
            (
                range.start + half..range.end,
                range.start..range.start + half,
            )
        };
        let tag = Tag(T_SWAP.0 + round);
        comm.send(partner, tag, encode_range(&acc, send))?;
        let payload = comm.recv(partner, tag)?;
        let merged = merge_range(&mut acc, payload)?;
        debug_assert_eq!(merged, keep);
        range = keep;
        bit <<= 1;
        round += 1;
    }
    // Gather the owned slivers at rank 0.
    if comm.is_master() {
        let mut final_img = Image::new(acc.image.width, acc.image.height);
        final_img.pixels[range.clone()].copy_from_slice(&acc.image.pixels[range.clone()]);
        for src in 1..p {
            let payload = comm.recv(src, T_GATHER)?;
            let mut r = WireReader::new(payload);
            let start = r.get_usize()?;
            let len = r.get_usize()?;
            for i in start..start + len {
                final_img.pixels[i] = [r.get_f32()?, r.get_f32()?, r.get_f32()?, r.get_f32()?];
                r.get_f32()?; // depth, unused in the final image
            }
        }
        Ok(Some(final_img))
    } else {
        comm.send(0, T_GATHER, encode_range(&acc, range))?;
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_parallel::{run_spmd, run_spmd_with_stats, TagClass};

    /// A deterministic synthetic partial for rank `r` of `p`: each rank
    /// owns a horizontal band at depth `r`, coloured by rank.
    fn synthetic_partial(r: usize, p: usize, w: u32, h: u32) -> PartialImage {
        let mut out = PartialImage::new(w, h);
        let band = h as usize / p;
        for y in r * band..(r + 1) * band {
            for x in 0..w as usize {
                let i = y * w as usize + x;
                out.image.pixels[i] = [r as f32 / p as f32, 0.5, 0.25, 1.0];
                out.depth[i] = r as f32 + 1.0;
            }
        }
        out
    }

    fn reference(p: usize, w: u32, h: u32) -> Image {
        let mut acc = synthetic_partial(0, p, w, h);
        for r in 1..p {
            acc.merge(&synthetic_partial(r, p, w, h));
        }
        acc.image
    }

    #[test]
    fn direct_send_matches_local_merge() {
        for p in [1, 2, 3, 5] {
            let results = run_spmd(p, move |comm| {
                let mine = synthetic_partial(comm.rank(), comm.size(), 16, 20);
                direct_send(comm, mine).unwrap()
            });
            let img = results[0].as_ref().expect("master gets the image");
            assert_eq!(img.pixels, reference(p, 16, 20).pixels, "p={p}");
            for res in results.iter().take(p).skip(1) {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn binary_swap_matches_direct_send() {
        for p in [2usize, 4, 8] {
            let results = run_spmd(p, move |comm| {
                let mine = synthetic_partial(comm.rank(), comm.size(), 16, 16);
                binary_swap(comm, mine).unwrap()
            });
            let img = results[0].as_ref().unwrap();
            assert_eq!(img.pixels, reference(p, 16, 16).pixels, "p={p}");
        }
    }

    #[test]
    fn binary_swap_bounds_per_rank_traffic() {
        let p = 8;
        let (w, h) = (64u32, 64u32);
        let swap = run_spmd_with_stats(p, move |comm| {
            let mine = synthetic_partial(comm.rank(), comm.size(), w, h);
            binary_swap(comm, mine).unwrap();
        });
        let direct = run_spmd_with_stats(p, move |comm| {
            let mine = synthetic_partial(comm.rank(), comm.size(), w, h);
            direct_send(comm, mine).unwrap();
        });
        let max_swap = swap
            .stats
            .iter()
            .map(|s| s.bytes(TagClass::Compositing))
            .max()
            .unwrap();
        let max_direct = direct
            .stats
            .iter()
            .map(|s| s.bytes(TagClass::Compositing))
            .max()
            .unwrap();
        // Binary swap sends ~pixels·(1 - 1/P) + sliver; direct send's
        // non-root ranks each send the full image but the *hotspot* is
        // that rank 0 receives P-1 full images. Compare inbound hotspot:
        // rank 0 receives nothing in swap's merge rounds beyond halves.
        // The robust, machine-independent claim: per-rank max send in
        // swap ≤ full image, while total direct bytes = (P-1)·full.
        let full_image = (w * h) as u64 * 20;
        assert!(
            max_swap <= full_image + 64 * 7,
            "swap per-rank send {max_swap} should not exceed one image {full_image}"
        );
        assert!(direct.summary.total.bytes(TagClass::Compositing) >= (p as u64 - 1) * full_image);
        let _ = max_direct;
    }

    #[test]
    fn non_power_of_two_falls_back() {
        let results = run_spmd(3, |comm| {
            let mine = synthetic_partial(comm.rank(), comm.size(), 8, 9);
            binary_swap(comm, mine).unwrap()
        });
        assert_eq!(
            results[0].as_ref().unwrap().pixels,
            reference(3, 8, 9).pixels
        );
    }
}
