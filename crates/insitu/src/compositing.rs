//! Sort-last image compositing: direct-send and binary-swap.
//!
//! After every rank ray-casts its own brick, the partial images are
//! combined by depth. Direct-send ships whole partials to the master;
//! binary-swap exchanges image *halves* over log₂P rounds so the
//! per-rank bandwidth stays O(pixels) instead of O(pixels·P) — the
//! classic scalability fix for exactly the data-movement concern the
//! paper opens with.
//!
//! # Sparse pixel runs
//!
//! A sparse vascular geometry lights only a small fraction of each
//! partial image, so shipping every pixel at 20 B (RGBA + depth) wastes
//! most of the compositing bandwidth on background. Both algorithms
//! therefore encode pixel ranges as *lit runs*: maximal spans of pixels
//! that differ from the background (any colour bit set, or a finite
//! depth). The layout is
//!
//! ```text
//! start:u64  len:u64  nruns:u64
//! (offset_in_range:u64  runlen:u64) × nruns
//! floats:u64-length-prefixed f32 slice   — 5 per lit pixel,
//!                                          r,g,b,a,depth, run order
//! ```
//!
//! versus `16 + 20·len` bytes dense. The encoding is lossless at the
//! bit level: unlit pixels are exactly the `PartialImage` defaults
//! (`+0.0` colour, `+∞` depth), so skipping them reproduces the dense
//! merge bit for bit. Every send records `vis.composite.bytes_wire`
//! (actual payload) and `vis.composite.bytes_dense` (what the dense
//! format would have shipped) as obs counters.

use crate::image::{Image, PartialImage};
use bytes::Bytes;
use hemelb_parallel::{CommError, CommResult, Communicator, Tag, WireReader, WireWriter};
use std::ops::Range;
use std::time::Duration;

const T_DIRECT: Tag = Tag::composite(0);
const T_SWAP: Tag = Tag::composite(1);
const T_GATHER: Tag = Tag::composite(64);
/// Base tag for [`DeadlineCompositor`] frames. Each frame uses
/// `T_DEADLINE + epoch mod 2^19`, so a payload that misses its frame's
/// deadline can never FIFO-match a later frame's receive.
const T_DEADLINE: Tag = Tag::composite(1024);
const EPOCH_TAGS: u64 = 1 << 19;

/// Wire size of the dense (pre-RLE) encoding of a pixel range: 16 B of
/// header plus 20 B (premultiplied RGBA + depth) per pixel.
pub fn dense_bytes(len: usize) -> usize {
    16 + 20 * len
}

/// Whether a pixel differs from the background a fresh [`PartialImage`]
/// holds (`+0.0` colour, `+∞` depth). Bit-level on purpose: run
/// boundaries must not depend on FP comparison quirks.
#[inline]
fn is_lit(px: &[f32; 4], depth: f32) -> bool {
    px[0].to_bits() != 0
        || px[1].to_bits() != 0
        || px[2].to_bits() != 0
        || px[3].to_bits() != 0
        || depth.to_bits() != f32::INFINITY.to_bits()
}

/// Serialise a pixel range of a partial image as lit runs (see the
/// module docs for the layout). Lossless: [`merge_pixel_runs`] into a
/// fresh image reproduces the range bit for bit.
pub fn encode_pixel_runs(p: &PartialImage, range: Range<usize>) -> Bytes {
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut lit = 0usize;
    let mut i = range.start;
    while i < range.end {
        if is_lit(&p.image.pixels[i], p.depth[i]) {
            let start = i;
            while i < range.end && is_lit(&p.image.pixels[i], p.depth[i]) {
                i += 1;
            }
            runs.push((start - range.start, i - start));
            lit += i - start;
        } else {
            i += 1;
        }
    }
    let mut w = WireWriter::with_capacity(32 + runs.len() * 16 + lit * 20);
    w.put_usize(range.start);
    w.put_usize(range.len());
    w.put_usize(runs.len());
    let mut floats: Vec<f32> = Vec::with_capacity(lit * 5);
    for &(off, len) in &runs {
        w.put_usize(off);
        w.put_usize(len);
        for i in range.start + off..range.start + off + len {
            let px = p.image.pixels[i];
            floats.extend_from_slice(&[px[0], px[1], px[2], px[3], p.depth[i]]);
        }
    }
    w.put_f32_slice(&floats);
    w.finish()
}

fn decode_err(reason: String) -> CommError {
    CommError::Decode { reason }
}

/// Merge an encoded pixel-run payload into `into` (depth-ordered over).
/// Unlit gaps are untouched — bit-identical to merging them explicitly,
/// because a background pixel is an exact no-op under the depth-ordered
/// over operator.
pub fn merge_pixel_runs(into: &mut PartialImage, payload: Bytes) -> CommResult<Range<usize>> {
    let mut r = WireReader::new(payload);
    let start = r.get_usize()?;
    let len = r.get_usize()?;
    let nruns = r.get_usize()?;
    if start + len > into.image.pixels.len() {
        return Err(decode_err(format!(
            "pixel range {start}+{len} exceeds image of {}",
            into.image.pixels.len()
        )));
    }
    if nruns > len {
        return Err(decode_err(format!("{nruns} runs in a range of {len}")));
    }
    let mut runs = Vec::with_capacity(nruns);
    let mut lit = 0usize;
    for _ in 0..nruns {
        let off = r.get_usize()?;
        let rl = r.get_usize()?;
        if off + rl > len {
            return Err(decode_err(format!("run {off}+{rl} exceeds range of {len}")));
        }
        runs.push((off, rl));
        lit += rl;
    }
    let mut floats: Vec<f32> = Vec::new();
    r.get_f32_slice(&mut floats)?;
    if floats.len() != lit * 5 {
        return Err(decode_err(format!(
            "{} floats for {lit} lit pixels",
            floats.len()
        )));
    }
    let mut f = 0usize;
    for (off, rl) in runs {
        for i in start + off..start + off + rl {
            let px = [floats[f], floats[f + 1], floats[f + 2], floats[f + 3]];
            let d = floats[f + 4];
            f += 5;
            let (a, da) = (into.image.pixels[i], into.depth[i]);
            let (front, back, dmin) = if da <= d { (a, px, da) } else { (px, a, d) };
            into.image.pixels[i] = crate::image::over_px(front, back);
            into.depth[i] = dmin;
        }
    }
    Ok(start..start + len)
}

/// Record one compositing send's wire bytes against what the dense
/// encoding would have cost.
fn note_wire(comm: &Communicator, range_len: usize, payload: &Bytes) {
    let (dense, wire) = (dense_bytes(range_len) as u64, payload.len() as u64);
    comm.with_obs(|o| {
        o.count("vis.composite.bytes_dense", dense);
        o.count("vis.composite.bytes_wire", wire);
    });
}

/// Direct-send compositing: every rank ships its whole partial to rank
/// 0, which merges them in rank order. O(P·pixels) bytes into one node
/// (before run-length sparsity).
pub fn direct_send(comm: &Communicator, mine: PartialImage) -> CommResult<Option<Image>> {
    comm.note_sync();
    let n = mine.image.pixels.len();
    if comm.is_master() {
        let mut acc = mine;
        // Per-source receives: deterministic merge order, and repeated
        // frames cannot mix (FIFO per `(src, tag)`), unlike `recv_any`.
        for src in 1..comm.size() {
            let payload = comm.recv(src, T_DIRECT)?;
            merge_pixel_runs(&mut acc, payload)?;
        }
        Ok(Some(acc.image))
    } else {
        let payload = encode_pixel_runs(&mine, 0..n);
        note_wire(comm, n, &payload);
        comm.send(0, T_DIRECT, payload)?;
        Ok(None)
    }
}

/// Binary-swap compositing for power-of-two worlds; falls back to
/// [`direct_send`] otherwise (which performs the round's single
/// [`Communicator::note_sync`] — the fallback must not double-count).
/// After log₂P rounds each rank owns a fully composited 1/P of the
/// image, which is then gathered at rank 0.
pub fn binary_swap(comm: &Communicator, mine: PartialImage) -> CommResult<Option<Image>> {
    let p = comm.size();
    if !p.is_power_of_two() || p == 1 {
        return direct_send(comm, mine);
    }
    comm.note_sync();
    let npix = mine.image.pixels.len();
    let me = comm.rank();
    let mut acc = mine;
    let mut range = 0..npix;
    let mut bit = 1usize;
    let mut round = 0u32;
    while bit < p {
        let partner = me ^ bit;
        let half = (range.end - range.start) / 2;
        let (keep, send) = if me & bit == 0 {
            (
                range.start..range.start + half,
                range.start + half..range.end,
            )
        } else {
            (
                range.start + half..range.end,
                range.start..range.start + half,
            )
        };
        let tag = Tag(T_SWAP.0 + round);
        let payload = encode_pixel_runs(&acc, send.clone());
        note_wire(comm, send.len(), &payload);
        comm.send(partner, tag, payload)?;
        let payload = comm.recv(partner, tag)?;
        let merged = merge_pixel_runs(&mut acc, payload)?;
        debug_assert_eq!(merged, keep);
        range = keep;
        bit <<= 1;
        round += 1;
    }
    // Gather the owned slivers at rank 0.
    if comm.is_master() {
        let mut gathered = PartialImage::new(acc.image.width, acc.image.height);
        gathered.image.pixels[range.clone()].copy_from_slice(&acc.image.pixels[range.clone()]);
        gathered.depth[range.clone()].copy_from_slice(&acc.depth[range.clone()]);
        for src in 1..p {
            let payload = comm.recv(src, T_GATHER)?;
            // Slivers are disjoint and `gathered` holds background, so
            // the depth-ordered merge is a plain bit copy of lit runs.
            merge_pixel_runs(&mut gathered, payload)?;
        }
        Ok(Some(gathered.image))
    } else {
        let payload = encode_pixel_runs(&acc, range.clone());
        note_wire(comm, range.len(), &payload);
        comm.send(0, T_GATHER, payload)?;
        Ok(None)
    }
}

/// Result of one [`DeadlineCompositor`] frame.
#[derive(Debug, Default)]
pub struct CompositeOutcome {
    /// The composited image on rank 0; `None` on workers.
    pub image: Option<Image>,
    /// Ranks whose partials missed the deadline this frame (rank 0
    /// only). Empty means the frame is complete.
    pub dropped: Vec<usize>,
}

/// Direct-send compositing with a per-source deadline: a slow or dead
/// worker delays the frame by at most `deadline`, after which its
/// partial is simply left out and the rank is reported in
/// [`CompositeOutcome::dropped`] (and counted as
/// `vis.composite.dropped`). The closed loop uses this so a faulty
/// render rank degrades the picture instead of hanging the pipeline.
///
/// Every frame gets an epoch-unique tag, so a payload that arrives
/// *after* its deadline sits harmlessly in the match buffer instead of
/// corrupting the next frame. The master reaps such late payloads on
/// subsequent frames (counted as `vis.composite.late`).
///
/// All ranks of the world must call [`composite`](Self::composite) the
/// same number of times; the compositor is stateful (the epoch counter
/// is the wire protocol), one instance per rank per loop.
#[derive(Debug, Default)]
pub struct DeadlineCompositor {
    epoch: u64,
    /// `(src, tag)` of payloads that missed their frame, awaiting reap.
    late: Vec<(usize, Tag)>,
}

impl DeadlineCompositor {
    /// A fresh compositor at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Frames composited so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Discard buffered payloads from previously dropped frames that
    /// have since arrived, so the match buffer does not grow without
    /// bound while a slow rank catches up.
    fn reap_late(&mut self, comm: &Communicator) {
        self.late.retain(|&(src, tag)| {
            match comm.try_recv(src, tag) {
                Ok(Some(_)) => {
                    comm.with_obs(|o| o.count("vis.composite.late", 1));
                    false
                }
                // Not arrived yet (or unreachable): keep waiting.
                _ => true,
            }
        });
        // A permanently dead rank never delivers; cap the watch list so
        // it cannot grow one entry per frame forever.
        if self.late.len() > 64 {
            let excess = self.late.len() - 64;
            self.late.drain(..excess);
        }
    }

    /// Composite one frame with a per-source `deadline` (rank 0 blocks
    /// at most `deadline` per missing worker). Workers always send and
    /// never block.
    pub fn composite(
        &mut self,
        comm: &Communicator,
        mine: PartialImage,
        deadline: Duration,
    ) -> CommResult<CompositeOutcome> {
        comm.note_sync();
        let tag = Tag(T_DEADLINE.0 + (self.epoch % EPOCH_TAGS) as u32);
        self.epoch += 1;
        let n = mine.image.pixels.len();
        if !comm.is_master() {
            let payload = encode_pixel_runs(&mine, 0..n);
            note_wire(comm, n, &payload);
            comm.send(0, tag, payload)?;
            return Ok(CompositeOutcome::default());
        }
        self.reap_late(comm);
        let mut acc = mine;
        let mut dropped = Vec::new();
        // Fast pass: merge whatever already arrived without waiting.
        let mut pending = Vec::new();
        for src in 1..comm.size() {
            match comm.try_recv(src, tag)? {
                Some(payload) => {
                    merge_pixel_runs(&mut acc, payload)?;
                }
                None => pending.push(src),
            }
        }
        for src in pending {
            match comm.recv_deadline(src, tag, deadline) {
                Ok(payload) => {
                    merge_pixel_runs(&mut acc, payload)?;
                }
                Err(CommError::Timeout { .. }) => {
                    dropped.push(src);
                    self.late.push((src, tag));
                    comm.with_obs(|o| o.count("vis.composite.dropped", 1));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(CompositeOutcome {
            image: Some(acc.image),
            dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_parallel::{run_spmd, run_spmd_with_stats, TagClass};

    /// A deterministic synthetic partial for rank `r` of `p`: each rank
    /// owns a horizontal band at depth `r`, coloured by rank.
    fn synthetic_partial(r: usize, p: usize, w: u32, h: u32) -> PartialImage {
        let mut out = PartialImage::new(w, h);
        let band = h as usize / p;
        for y in r * band..(r + 1) * band {
            for x in 0..w as usize {
                let i = y * w as usize + x;
                out.image.pixels[i] = [r as f32 / p as f32, 0.5, 0.25, 1.0];
                out.depth[i] = r as f32 + 1.0;
            }
        }
        out
    }

    fn reference(p: usize, w: u32, h: u32) -> Image {
        let mut acc = synthetic_partial(0, p, w, h);
        for r in 1..p {
            acc.merge(&synthetic_partial(r, p, w, h));
        }
        acc.image
    }

    fn partials_bit_eq(a: &PartialImage, b: &PartialImage) -> bool {
        a.image
            .pixels
            .iter()
            .zip(&b.image.pixels)
            .all(|(pa, pb)| (0..4).all(|c| pa[c].to_bits() == pb[c].to_bits()))
            && a.depth
                .iter()
                .zip(&b.depth)
                .all(|(da, db)| da.to_bits() == db.to_bits())
    }

    #[test]
    fn pixel_run_encoding_is_lossless() {
        // A scattered pattern: isolated pixels, multi-pixel runs, a
        // depth-only lit pixel, range boundaries lit.
        let mut p = PartialImage::new(16, 4);
        for &i in &[0usize, 3, 4, 5, 20, 21, 63] {
            p.image.pixels[i] = [0.1 * i as f32, 0.2, 0.3, 0.5];
            p.depth[i] = i as f32;
        }
        p.depth[40] = 7.5; // lit by depth alone
        let payload = encode_pixel_runs(&p, 0..64);
        let mut back = PartialImage::new(16, 4);
        let range = merge_pixel_runs(&mut back, payload).unwrap();
        assert_eq!(range, 0..64);
        assert!(partials_bit_eq(&p, &back));

        // Sub-range encoding only touches that range.
        let payload = encode_pixel_runs(&p, 4..22);
        let mut back = PartialImage::new(16, 4);
        merge_pixel_runs(&mut back, payload).unwrap();
        for i in 0..64 {
            let expect_lit = (4..22).contains(&i) && is_lit(&p.image.pixels[i], p.depth[i]);
            assert_eq!(is_lit(&back.image.pixels[i], back.depth[i]), expect_lit);
        }
    }

    #[test]
    fn pixel_run_edge_cases() {
        // All-transparent: header only, far below dense size.
        let empty = PartialImage::new(8, 8);
        let payload = encode_pixel_runs(&empty, 0..64);
        assert_eq!(payload.len(), 32, "start+len+nruns+empty floats");
        assert!(payload.len() < dense_bytes(64));
        let mut back = PartialImage::new(8, 8);
        merge_pixel_runs(&mut back, payload).unwrap();
        assert!(partials_bit_eq(&empty, &back));

        // All-lit: one run, costs the dense floats plus one run header.
        let mut full = PartialImage::new(8, 8);
        for i in 0..64 {
            full.image.pixels[i] = [0.5, 0.25, 0.125, 1.0];
            full.depth[i] = 2.0;
        }
        let payload = encode_pixel_runs(&full, 0..64);
        assert_eq!(payload.len(), 32 + 16 + 64 * 20);
        let mut back = PartialImage::new(8, 8);
        merge_pixel_runs(&mut back, payload).unwrap();
        assert!(partials_bit_eq(&full, &back));

        // Truncated/corrupt payloads fail cleanly.
        let good = encode_pixel_runs(&full, 0..64);
        let truncated = Bytes::copy_from_slice(&good.to_vec()[..good.len() - 3]);
        let mut into = PartialImage::new(8, 8);
        assert!(merge_pixel_runs(&mut into, truncated).is_err());
        let mut small = PartialImage::new(2, 2);
        assert!(merge_pixel_runs(&mut small, good).is_err(), "range bound");
    }

    #[test]
    fn direct_send_matches_local_merge() {
        for p in [1, 2, 3, 5] {
            let results = run_spmd(p, move |comm| {
                let mine = synthetic_partial(comm.rank(), comm.size(), 16, 20);
                direct_send(comm, mine).unwrap()
            });
            let img = results[0].as_ref().expect("master gets the image");
            assert_eq!(img.pixels, reference(p, 16, 20).pixels, "p={p}");
            for res in results.iter().take(p).skip(1) {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn binary_swap_matches_direct_send() {
        for p in [2usize, 4, 8] {
            let results = run_spmd(p, move |comm| {
                let mine = synthetic_partial(comm.rank(), comm.size(), 16, 16);
                binary_swap(comm, mine).unwrap()
            });
            let img = results[0].as_ref().unwrap();
            assert_eq!(img.pixels, reference(p, 16, 16).pixels, "p={p}");
        }
    }

    #[test]
    fn sparse_compositing_reduces_traffic() {
        // Each rank lights only 1/P of its image, so run-length payloads
        // must undercut the dense format by roughly that factor.
        let p = 8;
        let (w, h) = (64u32, 64u32);
        let direct = run_spmd_with_stats(p, move |comm| {
            let mine = synthetic_partial(comm.rank(), comm.size(), w, h);
            direct_send(comm, mine).unwrap();
        });
        let full_dense = dense_bytes((w * h) as usize) as u64;
        let total = direct.summary.total.bytes(TagClass::Compositing);
        // Every worker still ships its lit band in full…
        let band_floats = ((w * h) as usize / p * 20) as u64;
        assert!(total >= (p as u64 - 1) * band_floats, "{total}");
        // …but far less than the dense all-pixels format.
        assert!(
            total < (p as u64 - 1) * full_dense / 2,
            "sparse {total} should undercut dense {}",
            (p as u64 - 1) * full_dense
        );
    }

    #[test]
    fn binary_swap_bounds_per_rank_traffic() {
        let p = 8;
        let (w, h) = (64u32, 64u32);
        let swap = run_spmd_with_stats(p, move |comm| {
            let mine = synthetic_partial(comm.rank(), comm.size(), w, h);
            binary_swap(comm, mine).unwrap();
        });
        let max_swap = swap
            .stats
            .iter()
            .map(|s| s.bytes(TagClass::Compositing))
            .max()
            .unwrap();
        // Binary swap sends ~pixels·(1 - 1/P) + sliver per rank; even
        // dense that stays within one full image, and run-length
        // encoding only shrinks it.
        let full_dense = dense_bytes((w * h) as usize) as u64;
        assert!(
            max_swap <= full_dense + 64 * 7,
            "swap per-rank send {max_swap} should not exceed one image {full_dense}"
        );
    }

    #[test]
    fn wire_and_dense_counters_track_sends() {
        let p = 4;
        let (w, h) = (32u32, 32u32);
        let out = run_spmd_with_stats(p, move |comm| {
            let mine = synthetic_partial(comm.rank(), comm.size(), w, h);
            binary_swap(comm, mine).unwrap();
        });
        let merged = out.merged_obs();
        let dense = merged.counters["vis.composite.bytes_dense"];
        let wire = merged.counters["vis.composite.bytes_wire"];
        assert!(wire > 0);
        assert!(
            wire < dense,
            "quarter-lit bands must compress: wire {wire} vs dense {dense}"
        );
        // The wire counter is the truth: it matches the comm layer's own
        // compositing byte count.
        assert_eq!(wire, out.summary.total.bytes(TagClass::Compositing));
    }

    #[test]
    fn non_power_of_two_falls_back() {
        let results = run_spmd(3, |comm| {
            let mine = synthetic_partial(comm.rank(), comm.size(), 8, 9);
            binary_swap(comm, mine).unwrap()
        });
        assert_eq!(
            results[0].as_ref().unwrap().pixels,
            reference(3, 8, 9).pixels
        );
    }

    #[test]
    fn deadline_compositor_matches_direct_send_when_all_arrive() {
        for p in [1usize, 3, 4] {
            let results = run_spmd(p, move |comm| {
                let mut dc = DeadlineCompositor::new();
                let mut frames = Vec::new();
                for _ in 0..3 {
                    let mine = synthetic_partial(comm.rank(), comm.size(), 16, 20);
                    let out = dc
                        .composite(comm, mine, std::time::Duration::from_secs(5))
                        .unwrap();
                    assert!(out.dropped.is_empty());
                    frames.push(out.image);
                }
                frames
            });
            for frame in &results[0] {
                assert_eq!(
                    frame.as_ref().unwrap().pixels,
                    reference(p, 16, 20).pixels,
                    "p={p}"
                );
            }
            for worker in results.iter().skip(1) {
                assert!(worker.iter().all(|f| f.is_none()));
            }
        }
    }

    #[test]
    fn deadline_compositor_drops_slow_rank_then_recovers() {
        use std::time::Duration;
        let p = 3usize;
        let out = run_spmd_with_stats(p, move |comm| {
            let mut dc = DeadlineCompositor::new();
            let mk = |r| synthetic_partial(r, p, 16, 18);
            // Frame 0: rank 2 oversleeps its deadline.
            if comm.rank() == 2 {
                std::thread::sleep(Duration::from_millis(300));
            }
            let f0 = dc
                .composite(comm, mk(comm.rank()), Duration::from_millis(40))
                .unwrap();
            if comm.is_master() {
                assert_eq!(f0.dropped, vec![2], "slow rank dropped from frame 0");
                // Frame is degraded, not corrupt: ranks 0 and 1 only.
                let mut partial = mk(0);
                partial.merge(&mk(1));
                assert_eq!(f0.image.unwrap().pixels, partial.image.pixels);
            }
            // Everyone (including the late payload) lands before frame 1.
            comm.barrier().unwrap();
            let f1 = dc
                .composite(comm, mk(comm.rank()), Duration::from_secs(5))
                .unwrap();
            if comm.is_master() {
                assert!(f1.dropped.is_empty());
                assert_eq!(
                    f1.image.unwrap().pixels,
                    reference(p, 16, 18).pixels,
                    "late frame-0 payload must not leak into frame 1"
                );
            }
        });
        let merged = out.merged_obs();
        assert_eq!(merged.counters["vis.composite.dropped"], 1);
        assert_eq!(
            merged.counters["vis.composite.late"], 1,
            "frame 1 reaps rank 2's stale frame-0 payload"
        );
    }

    #[test]
    fn fallback_path_counts_one_sync_per_composite() {
        // Regression guard for the non-power-of-two fallback: exactly
        // one `note_sync` per composite on every rank, whether the call
        // runs binary-swap proper (p = 2, 4) or falls back (p = 3).
        for p in [2usize, 3, 4] {
            let out = run_spmd_with_stats(p, move |comm| {
                let mine = synthetic_partial(comm.rank(), comm.size(), 8, 8);
                binary_swap(comm, mine).unwrap();
            });
            for (rank, st) in out.stats.iter().enumerate() {
                assert_eq!(
                    st.sync_points, 1,
                    "p={p} rank={rank}: composite must sync exactly once"
                );
            }
        }
    }
}
