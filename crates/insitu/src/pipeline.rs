//! The post-processing pipeline of the paper's Fig. 3: data passes
//! through *extract → filter → map → render* stages, with the user
//! iterating on any stage's parameters.
//!
//! The pipeline is generic over the payload so concrete pipelines (the
//! volume path, the LIC path, …) share the instrumentation: per-stage
//! wall time and payload size, which is what experiment E4 reports.

use std::time::Instant;

/// Instrumentation record for one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name ("extract", "filter", "map", "render", …).
    pub name: String,
    /// Executions so far.
    pub calls: u64,
    /// Total wall seconds across calls.
    pub seconds: f64,
    /// Payload size estimate after the most recent call, if the payload
    /// reports one.
    pub last_bytes: Option<usize>,
}

/// Payloads that can report their transport size (for the data-reduction
/// accounting of Fig. 3 / §V).
pub trait Sized2 {
    /// Approximate bytes this payload would cost to ship.
    fn approx_bytes(&self) -> usize;
}

/// A linear pipeline of named stages over payload `T`.
pub struct Pipeline<T> {
    stages: Vec<(String, Box<dyn FnMut(T) -> T>, StageStats)>,
}

impl<T> Default for Pipeline<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Pipeline<T> {
    /// An empty pipeline.
    pub fn new() -> Self {
        Pipeline { stages: Vec::new() }
    }

    /// Append a stage.
    pub fn stage(mut self, name: &str, f: impl FnMut(T) -> T + 'static) -> Self {
        self.stages.push((
            name.to_string(),
            Box::new(f),
            StageStats {
                name: name.to_string(),
                calls: 0,
                seconds: 0.0,
                last_bytes: None,
            },
        ));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Run the payload through every stage in order.
    pub fn run(&mut self, input: T) -> T {
        let mut data = input;
        for (_, f, stats) in self.stages.iter_mut() {
            let t0 = Instant::now();
            data = f(data);
            stats.seconds += t0.elapsed().as_secs_f64();
            stats.calls += 1;
        }
        data
    }

    /// Per-stage statistics.
    pub fn stats(&self) -> Vec<&StageStats> {
        self.stages.iter().map(|(_, _, s)| s).collect()
    }
}

impl<T: Sized2> Pipeline<T> {
    /// Like [`Pipeline::run`], additionally recording each stage's
    /// output size — the per-stage data-reduction trace.
    pub fn run_tracked(&mut self, input: T) -> T {
        let mut data = input;
        for (_, f, stats) in self.stages.iter_mut() {
            let t0 = Instant::now();
            data = f(data);
            stats.seconds += t0.elapsed().as_secs_f64();
            stats.calls += 1;
            stats.last_bytes = Some(data.approx_bytes());
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl Sized2 for Vec<f64> {
        fn approx_bytes(&self) -> usize {
            self.len() * 8
        }
    }

    #[test]
    fn stages_run_in_order() {
        let mut p: Pipeline<Vec<f64>> = Pipeline::new()
            .stage("extract", |mut v: Vec<f64>| {
                v.push(1.0);
                v
            })
            .stage("filter", |v: Vec<f64>| {
                v.into_iter().filter(|&x| x > 0.0).collect()
            })
            .stage("map", |v: Vec<f64>| v.iter().map(|x| x * 2.0).collect());
        let out = p.run(vec![-3.0, 2.0]);
        assert_eq!(out, vec![4.0, 2.0]);
        assert_eq!(p.len(), 3);
        for s in p.stats() {
            assert_eq!(s.calls, 1);
        }
    }

    #[test]
    fn tracked_run_records_shrinking_payloads() {
        let mut p: Pipeline<Vec<f64>> = Pipeline::new()
            .stage("extract", |v: Vec<f64>| v)
            .stage("filter", |v: Vec<f64>| {
                v.into_iter().step_by(4).collect()
            });
        p.run_tracked((0..100).map(|i| i as f64).collect());
        let stats = p.stats();
        assert_eq!(stats[0].last_bytes, Some(800));
        assert_eq!(stats[1].last_bytes, Some(200), "filter reduces 4×");
    }

    #[test]
    fn repeated_runs_accumulate() {
        let mut p: Pipeline<Vec<f64>> = Pipeline::new().stage("noop", |v: Vec<f64>| v);
        for _ in 0..5 {
            p.run(vec![1.0]);
        }
        assert_eq!(p.stats()[0].calls, 5);
        assert!(p.stats()[0].seconds >= 0.0);
    }
}
