//! The post-processing pipeline of the paper's Fig. 3: data passes
//! through *extract → filter → map → render* stages, with the user
//! iterating on any stage's parameters.
//!
//! The pipeline is generic over the payload so concrete pipelines (the
//! volume path, the LIC path, …) share the instrumentation: per-stage
//! wall time and payload size, which is what experiment E4 reports.
//!
//! Stage timing runs through the observability layer ([`hemelb_obs`]):
//! every stage execution is a recorded span, so besides the cumulative
//! [`StageStats`] the pipeline exports a full [`hemelb_obs::ObsReport`]
//! with per-stage latency histograms (p50/p95/p99/max) and a timeline.

use hemelb_obs::{ObsReport, Recorder};

/// Instrumentation record for one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name ("extract", "filter", "map", "render", …).
    pub name: String,
    /// Executions so far.
    pub calls: u64,
    /// Total wall seconds across calls.
    pub seconds: f64,
    /// Payload size estimate after the most recent call, if the payload
    /// reports one.
    pub last_bytes: Option<usize>,
}

/// Payloads that can report their transport size (for the data-reduction
/// accounting of Fig. 3 / §V).
pub trait Sized2 {
    /// Approximate bytes this payload would cost to ship.
    fn approx_bytes(&self) -> usize;
}

type Stage<T> = (String, Box<dyn FnMut(T) -> T>, StageStats);

/// A linear pipeline of named stages over payload `T`.
pub struct Pipeline<T> {
    stages: Vec<Stage<T>>,
    recorder: Recorder,
}

impl<T> Default for Pipeline<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Pipeline<T> {
    /// An empty pipeline.
    pub fn new() -> Self {
        Pipeline {
            stages: Vec::new(),
            recorder: Recorder::new(),
        }
    }

    /// Append a stage.
    pub fn stage(mut self, name: &str, f: impl FnMut(T) -> T + 'static) -> Self {
        self.stages.push((
            name.to_string(),
            Box::new(f),
            StageStats {
                name: name.to_string(),
                calls: 0,
                seconds: 0.0,
                last_bytes: None,
            },
        ));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Run the payload through every stage in order.
    pub fn run(&mut self, input: T) -> T {
        let mut data = input;
        for (_, f, stats) in self.stages.iter_mut() {
            let span = self.recorder.begin();
            data = f(data);
            let secs = span.end(&mut self.recorder, &stats.name);
            stats.seconds += secs;
            stats.calls += 1;
        }
        data
    }

    /// Per-stage statistics.
    pub fn stats(&self) -> Vec<&StageStats> {
        self.stages.iter().map(|(_, _, s)| s).collect()
    }

    /// Full observability report: one phase per stage, with the latency
    /// distribution of individual stage executions.
    pub fn obs_report(&self) -> ObsReport {
        self.recorder.report()
    }

    /// The pipeline's recorder (e.g. to add custom counters or disable
    /// recording).
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.recorder
    }
}

impl<T: Sized2> Pipeline<T> {
    /// Like [`Pipeline::run`], additionally recording each stage's
    /// output size — the per-stage data-reduction trace.
    pub fn run_tracked(&mut self, input: T) -> T {
        let mut data = input;
        for (_, f, stats) in self.stages.iter_mut() {
            let span = self.recorder.begin();
            data = f(data);
            let secs = span.end(&mut self.recorder, &stats.name);
            stats.seconds += secs;
            stats.calls += 1;
            stats.last_bytes = Some(data.approx_bytes());
        }
        data
    }
}

/// Outcome of driving the same in situ pipeline once from the serial
/// solver and once from the thread-parallel solver (see
/// [`compare_solver_backends`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BackendComparison {
    /// Wall seconds for the serial solver + pipeline pass.
    pub serial_seconds: f64,
    /// Wall seconds for the parallel solver + pipeline pass.
    pub parallel_seconds: f64,
    /// Wall seconds for the serial SoA-SIMD solver + pipeline pass.
    pub simd_seconds: f64,
    /// Worker threads of the parallel backend.
    pub threads: usize,
    /// Time steps advanced per backend.
    pub steps: u64,
    /// Snapshots fed through the pipeline per backend.
    pub frames: usize,
    /// Whether every pipeline output matched bit-for-bit between the
    /// two backends (`f64::to_bits` equality over ρ, u and shear).
    pub bit_identical: bool,
}

fn snapshots_bit_identical(a: &hemelb_core::FieldSnapshot, b: &hemelb_core::FieldSnapshot) -> bool {
    a.rho.len() == b.rho.len()
        && a.rho
            .iter()
            .zip(&b.rho)
            .all(|(x, y)| x.to_bits() == y.to_bits())
        && a.u
            .iter()
            .zip(&b.u)
            .all(|(x, y)| (0..3).all(|k| x[k].to_bits() == y[k].to_bits()))
        && a.shear
            .iter()
            .zip(&b.shear)
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Drive the same extract→…→render pipeline from all solver backends:
/// the serial [`hemelb_core::Solver`], the chunk-parallel
/// [`hemelb_core::ParallelSolver`] with `threads` workers, and the
/// serial solver on the SoA-SIMD kernel layout. Every
/// `snapshot_every` steps a macroscopic snapshot is taken and pushed
/// through a fresh pipeline built by `make_pipeline`; the comparison
/// records wall time per backend and whether all pipeline outputs were
/// bit-identical (the determinism contract says they must be).
///
/// On a single hardware core the parallel backend cannot be faster —
/// this is a correctness-and-accounting harness, not a speedup claim.
pub fn compare_solver_backends<F>(
    geo: &std::sync::Arc<hemelb_geometry::SparseGeometry>,
    cfg: &hemelb_core::SolverConfig,
    threads: usize,
    steps: u64,
    snapshot_every: u64,
    make_pipeline: F,
) -> BackendComparison
where
    F: Fn() -> Pipeline<hemelb_core::FieldSnapshot>,
{
    assert!(snapshot_every > 0);
    let mut rec = Recorder::new();

    let span = rec.begin();
    let mut serial = hemelb_core::Solver::new(geo.clone(), cfg.clone());
    let mut serial_pipe = make_pipeline();
    let mut serial_frames = Vec::new();
    for _ in 0..steps / snapshot_every {
        serial.step_n(snapshot_every);
        serial_frames.push(serial_pipe.run(serial.snapshot()));
    }
    let serial_seconds = span.end(&mut rec, "backend.serial");

    let span = rec.begin();
    let mut par = hemelb_core::ParallelSolver::new(geo.clone(), cfg.clone(), threads);
    let mut par_pipe = make_pipeline();
    let mut par_frames = Vec::new();
    for _ in 0..steps / snapshot_every {
        par.step_n(snapshot_every);
        par_frames.push(par_pipe.run(par.snapshot()));
    }
    let parallel_seconds = span.end(&mut rec, "backend.parallel");

    let span = rec.begin();
    let mut simd = hemelb_core::Solver::new(
        geo.clone(),
        cfg.clone().with_layout(hemelb_core::KernelLayout::SoaSimd),
    );
    let mut simd_pipe = make_pipeline();
    let mut simd_frames = Vec::new();
    for _ in 0..steps / snapshot_every {
        simd.step_n(snapshot_every);
        simd_frames.push(simd_pipe.run(simd.snapshot()));
    }
    let simd_seconds = span.end(&mut rec, "backend.simd");

    let bit_identical = serial_frames.len() == par_frames.len()
        && serial_frames.len() == simd_frames.len()
        && serial_frames
            .iter()
            .zip(&par_frames)
            .all(|(a, b)| snapshots_bit_identical(a, b))
        && serial_frames
            .iter()
            .zip(&simd_frames)
            .all(|(a, b)| snapshots_bit_identical(a, b));
    BackendComparison {
        serial_seconds,
        parallel_seconds,
        simd_seconds,
        threads,
        steps,
        frames: serial_frames.len(),
        bit_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl Sized2 for Vec<f64> {
        fn approx_bytes(&self) -> usize {
            self.len() * 8
        }
    }

    #[test]
    fn stages_run_in_order() {
        let mut p: Pipeline<Vec<f64>> = Pipeline::new()
            .stage("extract", |mut v: Vec<f64>| {
                v.push(1.0);
                v
            })
            .stage("filter", |v: Vec<f64>| {
                v.into_iter().filter(|&x| x > 0.0).collect()
            })
            .stage("map", |v: Vec<f64>| v.iter().map(|x| x * 2.0).collect());
        let out = p.run(vec![-3.0, 2.0]);
        assert_eq!(out, vec![4.0, 2.0]);
        assert_eq!(p.len(), 3);
        for s in p.stats() {
            assert_eq!(s.calls, 1);
        }
    }

    #[test]
    fn tracked_run_records_shrinking_payloads() {
        let mut p: Pipeline<Vec<f64>> = Pipeline::new()
            .stage("extract", |v: Vec<f64>| v)
            .stage("filter", |v: Vec<f64>| v.into_iter().step_by(4).collect());
        p.run_tracked((0..100).map(|i| i as f64).collect());
        let stats = p.stats();
        assert_eq!(stats[0].last_bytes, Some(800));
        assert_eq!(stats[1].last_bytes, Some(200), "filter reduces 4×");
    }

    #[test]
    fn solver_backends_feed_the_pipeline_identically() {
        use hemelb_geometry::VesselBuilder;
        let geo = std::sync::Arc::new(VesselBuilder::straight_tube(14.0, 3.0).voxelise(1.0));
        let cfg = hemelb_core::SolverConfig::pressure_driven(1.01, 0.99);
        let cmp = compare_solver_backends(&geo, &cfg, 4, 20, 5, || {
            Pipeline::new()
                .stage("extract", |s: hemelb_core::FieldSnapshot| s)
                .stage("filter", |mut s: hemelb_core::FieldSnapshot| {
                    // Zero out slow sites: a typical thresholding filter.
                    for i in 0..s.rho.len() {
                        if s.speed(i) < 1e-6 {
                            s.u[i] = [0.0; 3];
                        }
                    }
                    s
                })
        });
        assert!(cmp.bit_identical, "{cmp:?}");
        assert_eq!(cmp.frames, 4);
        assert_eq!(cmp.threads, 4);
        assert!(cmp.serial_seconds > 0.0 && cmp.parallel_seconds > 0.0);
        assert!(cmp.simd_seconds > 0.0);
    }

    #[test]
    fn repeated_runs_accumulate() {
        let mut p: Pipeline<Vec<f64>> = Pipeline::new().stage("noop", |v: Vec<f64>| v);
        for _ in 0..5 {
            p.run(vec![1.0]);
        }
        assert_eq!(p.stats()[0].calls, 5);
        assert!(p.stats()[0].seconds >= 0.0);
    }
}
