//! Continuous sampling of the sparse macroscopic fields.
//!
//! The renderers and tracers need field values at arbitrary points; this
//! wraps a geometry + snapshot pair with trilinear interpolation over
//! the eight surrounding cells, renormalising over the fluid subset
//! (walls contribute nothing rather than dragging values to zero).

use hemelb_core::FieldSnapshot;
use hemelb_geometry::{SparseGeometry, Vec3};

/// Which scalar to sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scalar {
    /// Density ρ.
    Density,
    /// Velocity magnitude |u|.
    Speed,
    /// Shear-rate magnitude.
    Shear,
}

/// A geometry + snapshot pair, sampled continuously.
#[derive(Debug, Clone, Copy)]
pub struct SampledField<'a> {
    /// The sparse lattice.
    pub geo: &'a SparseGeometry,
    /// The field snapshot.
    pub snap: &'a FieldSnapshot,
}

impl<'a> SampledField<'a> {
    /// Pair a geometry with a snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot does not cover the geometry.
    pub fn new(geo: &'a SparseGeometry, snap: &'a FieldSnapshot) -> Self {
        assert_eq!(
            geo.fluid_count(),
            snap.len(),
            "snapshot must match geometry"
        );
        SampledField { geo, snap }
    }

    /// Whether the cell containing `p` is fluid.
    pub fn in_fluid(&self, p: Vec3) -> bool {
        self.geo
            .site_at(p.x.round() as i64, p.y.round() as i64, p.z.round() as i64)
            .is_some()
    }

    /// Trilinearly interpolated velocity at `p`; `None` if none of the
    /// surrounding cells are fluid.
    pub fn velocity_at(&self, p: Vec3) -> Option<[f64; 3]> {
        let mut acc = [0.0f64; 3];
        let mut wsum = 0.0;
        self.gather(p, |site, w| {
            let u = self.snap.u[site as usize];
            acc[0] += u[0] * w;
            acc[1] += u[1] * w;
            acc[2] += u[2] * w;
            wsum += w;
        });
        if wsum <= 1e-12 {
            None
        } else {
            Some([acc[0] / wsum, acc[1] / wsum, acc[2] / wsum])
        }
    }

    /// Trilinearly interpolated scalar at `p`.
    pub fn scalar_at(&self, p: Vec3, which: Scalar) -> Option<f64> {
        let mut acc = 0.0f64;
        let mut wsum = 0.0;
        self.gather(p, |site, w| {
            let v = match which {
                Scalar::Density => self.snap.rho[site as usize],
                Scalar::Speed => self.snap.speed(site as usize),
                Scalar::Shear => self.snap.shear[site as usize],
            };
            acc += v * w;
            wsum += w;
        });
        if wsum <= 1e-12 {
            None
        } else {
            Some(acc / wsum)
        }
    }

    /// Visit the up-to-8 fluid cells around `p` with trilinear weights.
    fn gather(&self, p: Vec3, mut visit: impl FnMut(u32, f64)) {
        let x0 = p.x.floor() as i64;
        let y0 = p.y.floor() as i64;
        let z0 = p.z.floor() as i64;
        let fx = p.x - x0 as f64;
        let fy = p.y - y0 as f64;
        let fz = p.z - z0 as f64;
        for dx in 0..2i64 {
            for dy in 0..2i64 {
                for dz in 0..2i64 {
                    let w = (if dx == 0 { 1.0 - fx } else { fx })
                        * (if dy == 0 { 1.0 - fy } else { fy })
                        * (if dz == 0 { 1.0 - fz } else { fz });
                    if w <= 0.0 {
                        continue;
                    }
                    if let Some(site) = self.geo.site_at(x0 + dx, y0 + dy, z0 + dz) {
                        visit(site, w);
                    }
                }
            }
        }
    }

    /// Scalar range over all sites — used to calibrate transfer
    /// functions.
    pub fn scalar_range(&self, which: Scalar) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..self.snap.len() {
            let v = match which {
                Scalar::Density => self.snap.rho[i],
                Scalar::Speed => self.snap.speed(i),
                Scalar::Shear => self.snap.shear[i],
            };
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_geometry::VesselBuilder;

    fn setup() -> (SparseGeometry, FieldSnapshot) {
        let geo = VesselBuilder::straight_tube(16.0, 4.0).voxelise(1.0);
        let n = geo.fluid_count();
        // Velocity = position-dependent linear field: u = (x, 0, 0)·0.01.
        let u: Vec<[f64; 3]> = (0..n)
            .map(|i| {
                let p = geo.position(i as u32);
                [p[0] as f64 * 0.01, 0.0, 0.0]
            })
            .collect();
        let snap = FieldSnapshot {
            step: 0,
            rho: vec![1.0; n],
            u,
            shear: vec![0.0; n],
        };
        (geo, snap)
    }

    #[test]
    fn interpolation_reproduces_linear_fields() {
        let (geo, snap) = setup();
        let f = SampledField::new(&geo, &snap);
        // Deep inside the tube, interpolation of a linear-in-x field is
        // exact (all 8 neighbours are fluid).
        let p = Vec3::new(
            8.3,
            geo.shape()[1] as f64 / 2.0,
            geo.shape()[2] as f64 / 2.0,
        );
        let u = f.velocity_at(p).unwrap();
        assert!((u[0] - 0.083).abs() < 1e-9, "{}", u[0]);
        assert!(u[1].abs() < 1e-12);
    }

    #[test]
    fn at_cell_centres_interpolation_is_exact() {
        let (geo, snap) = setup();
        let f = SampledField::new(&geo, &snap);
        for i in (0..geo.fluid_count() as u32).step_by(53) {
            let pos = geo.position_v(i);
            if let Some(u) = f.velocity_at(pos) {
                // Centre sample may mix neighbours only if some are
                // missing; in the bulk it must be exact.
                let expect = snap.u[i as usize];
                if geo.kind(i) == hemelb_geometry::SiteKind::Bulk {
                    assert!((u[0] - expect[0]).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn far_outside_returns_none() {
        let (geo, snap) = setup();
        let f = SampledField::new(&geo, &snap);
        assert!(f.velocity_at(Vec3::new(-50.0, 0.0, 0.0)).is_none());
        assert!(f
            .scalar_at(Vec3::new(1e6, 0.0, 0.0), Scalar::Speed)
            .is_none());
    }

    #[test]
    fn scalar_range_covers_field() {
        let (geo, snap) = setup();
        let f = SampledField::new(&geo, &snap);
        let (lo, hi) = f.scalar_range(Scalar::Speed);
        assert!(lo >= 0.0);
        assert!(hi > lo);
        let (rlo, rhi) = f.scalar_range(Scalar::Density);
        assert_eq!(rlo, 1.0);
        assert_eq!(rhi, 1.0);
    }
}
