//! Transfer functions: scalar → premultiplied RGBA.

use serde::{Deserialize, Serialize};

/// A piecewise-linear colour/opacity map over a scalar range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFunction {
    /// Scalar value mapped to the first control point.
    pub lo: f64,
    /// Scalar value mapped to the last control point.
    pub hi: f64,
    /// Control points: straight RGB + opacity, interpolated linearly.
    pub stops: Vec<[f32; 4]>,
    /// Global opacity scale (per unit length of ray travel).
    pub opacity_scale: f32,
}

impl TransferFunction {
    /// A blue→cyan→yellow→red "heat" map, the usual choice for speed.
    pub fn heat(lo: f64, hi: f64) -> Self {
        TransferFunction {
            lo,
            hi,
            stops: vec![
                [0.05, 0.05, 0.5, 0.02],
                [0.0, 0.8, 0.9, 0.25],
                [0.95, 0.9, 0.1, 0.6],
                [0.9, 0.05, 0.05, 0.95],
            ],
            opacity_scale: 1.0,
        }
    }

    /// A greyscale ramp (density-style rendering).
    pub fn grey(lo: f64, hi: f64) -> Self {
        TransferFunction {
            lo,
            hi,
            stops: vec![[0.0, 0.0, 0.0, 0.0], [1.0, 1.0, 1.0, 1.0]],
            opacity_scale: 1.0,
        }
    }

    /// Classify a scalar: straight RGB and opacity in `[0, 1]`.
    pub fn classify(&self, v: f64) -> [f32; 4] {
        let t = if self.hi > self.lo {
            ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let n = self.stops.len();
        if n == 1 {
            return self.stops[0];
        }
        let scaled = t * (n - 1) as f64;
        let i = (scaled.floor() as usize).min(n - 2);
        let frac = (scaled - i as f64) as f32;
        let a = self.stops[i];
        let b = self.stops[i + 1];
        [
            a[0] + (b[0] - a[0]) * frac,
            a[1] + (b[1] - a[1]) * frac,
            a[2] + (b[2] - a[2]) * frac,
            (a[3] + (b[3] - a[3]) * frac) * self.opacity_scale,
        ]
    }

    /// Classify and convert to a premultiplied sample for a ray segment
    /// of length `ds` (Beer–Lambert opacity accumulation).
    pub fn sample(&self, v: f64, ds: f64) -> [f32; 4] {
        let c = self.classify(v);
        let alpha = 1.0 - (-c[3] as f64 * ds).exp() as f32;
        [c[0] * alpha, c[1] * alpha, c[2] * alpha, alpha]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_clamps_out_of_range() {
        let tf = TransferFunction::heat(0.0, 1.0);
        assert_eq!(tf.classify(-5.0), tf.classify(0.0));
        assert_eq!(tf.classify(9.0), tf.classify(1.0));
    }

    #[test]
    fn classify_interpolates_between_stops() {
        let tf = TransferFunction::grey(0.0, 1.0);
        let mid = tf.classify(0.5);
        for c in mid {
            assert!((c - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn endpoints_hit_exact_stops() {
        let tf = TransferFunction::heat(2.0, 4.0);
        assert_eq!(tf.classify(2.0), tf.stops[0]);
        let last = tf.classify(4.0);
        for (l, s) in last.iter().zip(&tf.stops[3]) {
            assert!((l - s).abs() < 1e-6);
        }
    }

    #[test]
    fn sample_opacity_grows_with_path_length() {
        let tf = TransferFunction::heat(0.0, 1.0);
        let thin = tf.sample(0.8, 0.1);
        let thick = tf.sample(0.8, 2.0);
        assert!(thick[3] > thin[3]);
        assert!(thick[3] <= 1.0);
        assert!(thin[3] > 0.0);
    }

    #[test]
    fn zero_opacity_scalar_is_transparent() {
        let tf = TransferFunction::grey(0.0, 1.0);
        let s = tf.sample(0.0, 1.0);
        assert_eq!(s, [0.0; 4]);
    }

    #[test]
    fn degenerate_range_does_not_divide_by_zero() {
        let tf = TransferFunction::grey(1.0, 1.0);
        let c = tf.classify(1.0);
        assert!(c.iter().all(|v| v.is_finite()));
    }
}
