//! Transfer functions: scalar → premultiplied RGBA.

use serde::{Deserialize, Serialize};

/// A piecewise-linear colour/opacity map over a scalar range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFunction {
    /// Scalar value mapped to the first control point.
    pub lo: f64,
    /// Scalar value mapped to the last control point.
    pub hi: f64,
    /// Control points: straight RGB + opacity, interpolated linearly.
    pub stops: Vec<[f32; 4]>,
    /// Global opacity scale (per unit length of ray travel).
    pub opacity_scale: f32,
}

impl TransferFunction {
    /// A blue→cyan→yellow→red "heat" map, the usual choice for speed.
    pub fn heat(lo: f64, hi: f64) -> Self {
        TransferFunction {
            lo,
            hi,
            stops: vec![
                [0.05, 0.05, 0.5, 0.02],
                [0.0, 0.8, 0.9, 0.25],
                [0.95, 0.9, 0.1, 0.6],
                [0.9, 0.05, 0.05, 0.95],
            ],
            opacity_scale: 1.0,
        }
    }

    /// A greyscale ramp (density-style rendering).
    pub fn grey(lo: f64, hi: f64) -> Self {
        TransferFunction {
            lo,
            hi,
            stops: vec![[0.0, 0.0, 0.0, 0.0], [1.0, 1.0, 1.0, 1.0]],
            opacity_scale: 1.0,
        }
    }

    /// FNV-1a hash of the transfer-function *family*: the control
    /// points and opacity scale, excluding the scalar range `lo`/`hi`.
    /// The closed loop derives the range deterministically from the
    /// displayed data (a global min/max reduction over the step, field
    /// and ROI), so a frame-cache key built from `(step, field, ROI,
    /// family)` already pins the range — hashing `lo`/`hi` here would
    /// force the reduction to run before the cache can be consulted,
    /// defeating the point of a hit.
    pub fn family_hash(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |bits: u64| {
            for b in bits.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.stops.len() as u64);
        for stop in &self.stops {
            for c in stop {
                mix(c.to_bits() as u64);
            }
        }
        mix(self.opacity_scale.to_bits() as u64);
        h
    }

    /// Classify a scalar: straight RGB and opacity in `[0, 1]`.
    pub fn classify(&self, v: f64) -> [f32; 4] {
        let t = if self.hi > self.lo {
            ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let n = self.stops.len();
        if n == 1 {
            return self.stops[0];
        }
        let scaled = t * (n - 1) as f64;
        let i = (scaled.floor() as usize).min(n - 2);
        let frac = (scaled - i as f64) as f32;
        let a = self.stops[i];
        let b = self.stops[i + 1];
        [
            a[0] + (b[0] - a[0]) * frac,
            a[1] + (b[1] - a[1]) * frac,
            a[2] + (b[2] - a[2]) * frac,
            (a[3] + (b[3] - a[3]) * frac) * self.opacity_scale,
        ]
    }

    /// Classify and convert to a premultiplied sample for a ray segment
    /// of length `ds` (Beer–Lambert opacity accumulation).
    pub fn sample(&self, v: f64, ds: f64) -> [f32; 4] {
        let c = self.classify(v);
        let alpha = 1.0 - (-c[3] as f64 * ds).exp() as f32;
        [c[0] * alpha, c[1] * alpha, c[2] * alpha, alpha]
    }

    /// Whether [`TransferFunction::classify`] returns opacity *exactly*
    /// `0.0` for every scalar in `[vmin, vmax]` — the empty-space test
    /// behind macrocell skipping ([`crate::volume`]).
    ///
    /// The guarantee is at the bit level, not merely approximate: the
    /// `v → t` mapping is monotone under IEEE rounding, so every `v` in
    /// the interval lands in a stop segment between `vmin`'s and
    /// `vmax`'s. If all stops touching those segments carry opacity
    /// `0.0`, the interpolation `0.0 + (0.0 - 0.0)·frac` (then scaled)
    /// is exactly `±0.0` for any `frac` — and a `±0.0`-opacity sample
    /// contributes nothing to front-to-back compositing.
    pub fn zero_opacity_over(&self, vmin: f64, vmax: f64) -> bool {
        if vmin.is_nan() || vmax.is_nan() || vmin > vmax {
            return false;
        }
        let n = self.stops.len();
        if n == 1 {
            return self.stops[0][3] == 0.0;
        }
        let t_of = |v: f64| {
            if self.hi > self.lo {
                ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        let seg = |t: f64| ((t * (n - 1) as f64).floor() as usize).min(n - 2);
        let (s_lo, s_hi) = (seg(t_of(vmin)), seg(t_of(vmax)));
        self.stops[s_lo..=s_hi + 1].iter().all(|s| s[3] == 0.0)
    }
}

/// A precomputed table of [`TransferFunction::sample`] values over the
/// function's scalar range, for renders where shading throughput matters
/// more than exact classification (the table quantises `v`, so LUT
/// renders are *not* bit-identical to exact-sampling renders — the
/// determinism tests always use the exact path).
#[derive(Debug, Clone)]
pub struct TransferLut {
    lo: f64,
    scale: f64,
    table: Vec<[f32; 4]>,
}

impl TransferLut {
    /// Tabulate `tf.sample(·, ds)` at `n` evenly spaced scalars across
    /// `[tf.lo, tf.hi]` (`n` is clamped to at least 2). Out-of-range
    /// scalars clamp to the end entries, mirroring `classify`.
    pub fn build(tf: &TransferFunction, ds: f64, n: usize) -> Self {
        let n = n.max(2);
        let table = (0..n)
            .map(|i| {
                let v = tf.lo + (tf.hi - tf.lo) * i as f64 / (n - 1) as f64;
                tf.sample(v, ds)
            })
            .collect();
        let width = tf.hi - tf.lo;
        TransferLut {
            lo: tf.lo,
            scale: if width > 0.0 {
                (n - 1) as f64 / width
            } else {
                0.0
            },
            table,
        }
    }

    /// Nearest tabulated premultiplied sample for scalar `v`.
    #[inline]
    pub fn sample(&self, v: f64) -> [f32; 4] {
        let i = ((v - self.lo) * self.scale + 0.5) as isize;
        let i = i.clamp(0, self.table.len() as isize - 1) as usize;
        self.table[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_clamps_out_of_range() {
        let tf = TransferFunction::heat(0.0, 1.0);
        assert_eq!(tf.classify(-5.0), tf.classify(0.0));
        assert_eq!(tf.classify(9.0), tf.classify(1.0));
    }

    #[test]
    fn classify_interpolates_between_stops() {
        let tf = TransferFunction::grey(0.0, 1.0);
        let mid = tf.classify(0.5);
        for c in mid {
            assert!((c - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn endpoints_hit_exact_stops() {
        let tf = TransferFunction::heat(2.0, 4.0);
        assert_eq!(tf.classify(2.0), tf.stops[0]);
        let last = tf.classify(4.0);
        for (l, s) in last.iter().zip(&tf.stops[3]) {
            assert!((l - s).abs() < 1e-6);
        }
    }

    #[test]
    fn sample_opacity_grows_with_path_length() {
        let tf = TransferFunction::heat(0.0, 1.0);
        let thin = tf.sample(0.8, 0.1);
        let thick = tf.sample(0.8, 2.0);
        assert!(thick[3] > thin[3]);
        assert!(thick[3] <= 1.0);
        assert!(thin[3] > 0.0);
    }

    #[test]
    fn zero_opacity_scalar_is_transparent() {
        let tf = TransferFunction::grey(0.0, 1.0);
        let s = tf.sample(0.0, 1.0);
        assert_eq!(s, [0.0; 4]);
    }

    #[test]
    fn degenerate_range_does_not_divide_by_zero() {
        let tf = TransferFunction::grey(1.0, 1.0);
        let c = tf.classify(1.0);
        assert!(c.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn zero_opacity_interval_agrees_with_pointwise_classify() {
        // A map that is transparent over its lower half: stops 0 and 1
        // carry no opacity, stop 2 does.
        let tf = TransferFunction {
            lo: 0.0,
            hi: 1.0,
            stops: vec![
                [0.1, 0.2, 0.3, 0.0],
                [0.4, 0.5, 0.6, 0.0],
                [1.0, 1.0, 1.0, 0.8],
            ],
            opacity_scale: 1.0,
        };
        assert!(tf.zero_opacity_over(0.0, 0.49));
        assert!(tf.zero_opacity_over(-10.0, 0.3), "below-range clamps");
        assert!(!tf.zero_opacity_over(0.0, 0.75));
        assert!(!tf.zero_opacity_over(0.9, 2.0), "above-range clamps");
        assert!(!tf.zero_opacity_over(0.3, f64::NAN));
        // Spot-check the bit-level guarantee across a claimed-zero span.
        for i in 0..=1000 {
            let v = 0.49 * i as f64 / 1000.0;
            assert_eq!(tf.classify(v)[3], 0.0, "v={v}");
        }
    }

    #[test]
    fn zero_opacity_interval_is_conservative_near_breakpoints() {
        let tf = TransferFunction::heat(0.0, 1.0);
        // heat() has opacity everywhere, so nothing is skippable.
        assert!(!tf.zero_opacity_over(0.0, 0.0));
        assert!(!tf.zero_opacity_over(0.2, 0.2));
        // A fully transparent map is skippable over any interval.
        let clear = TransferFunction {
            opacity_scale: 3.0,
            stops: vec![[1.0, 0.0, 0.0, 0.0], [0.0, 1.0, 0.0, 0.0]],
            ..TransferFunction::grey(0.0, 1.0)
        };
        assert!(clear.zero_opacity_over(-5.0, 5.0));
    }

    #[test]
    fn family_hash_ignores_range_but_not_stops() {
        // Same family, different data-derived range: one cache family.
        assert_eq!(
            TransferFunction::heat(0.0, 1.0).family_hash(),
            TransferFunction::heat(-3.0, 42.0).family_hash()
        );
        assert_ne!(
            TransferFunction::heat(0.0, 1.0).family_hash(),
            TransferFunction::grey(0.0, 1.0).family_hash()
        );
        let mut scaled = TransferFunction::heat(0.0, 1.0);
        scaled.opacity_scale = 2.0;
        assert_ne!(
            TransferFunction::heat(0.0, 1.0).family_hash(),
            scaled.family_hash()
        );
    }

    #[test]
    fn lut_approximates_exact_sampling() {
        let tf = TransferFunction::heat(0.0, 1.0);
        let lut = TransferLut::build(&tf, 0.5, 4096);
        for i in 0..=200 {
            let v = -0.2 + 1.4 * i as f64 / 200.0;
            let exact = tf.sample(v, 0.5);
            let approx = lut.sample(v);
            for (e, a) in exact.iter().zip(&approx) {
                assert!((e - a).abs() < 2e-3, "v={v}: {exact:?} vs {approx:?}");
            }
        }
        // Table entries themselves are hit exactly at the grid points.
        assert_eq!(lut.sample(0.0), tf.sample(0.0, 0.5));
        assert_eq!(lut.sample(1.0), tf.sample(1.0, 0.5));
    }
}
