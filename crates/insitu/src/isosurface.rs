//! Isosurface extraction — the "extract" stage of the paper's
//! post-processing pipeline made concrete: a triangle mesh of a field's
//! level set (e.g. a wall-shear-stress or velocity-magnitude surface),
//! computed in situ so that only geometry leaves the simulation, not
//! the field.
//!
//! The method is **marching tetrahedra**: each lattice cube is split
//! into six tetrahedra around its main diagonal and each tetrahedron is
//! contoured independently. Unlike table-driven marching cubes this is
//! correct by construction (no 256-case table to mistranscribe) and
//! produces a consistent, crack-free surface; the price is more, smaller
//! triangles.

use crate::camera::Camera;
use crate::image::Image;
use hemelb_geometry::Vec3;
use std::collections::HashMap;

/// An indexed triangle mesh in lattice coordinates.
#[derive(Debug, Clone, Default)]
pub struct TriangleMesh {
    /// Vertex positions.
    pub vertices: Vec<Vec3>,
    /// Triangles as vertex-index triples (counter-clockwise seen from
    /// the positive side of the field).
    pub triangles: Vec<[u32; 3]>,
}

impl TriangleMesh {
    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Check the watertightness invariant: every undirected edge is
    /// shared by exactly two triangles. True for a level set that
    /// closes inside the sampled region.
    pub fn is_watertight(&self) -> bool {
        let mut edges: HashMap<(u32, u32), u32> = HashMap::new();
        for t in &self.triangles {
            for k in 0..3 {
                let (a, b) = (t[k], t[(k + 1) % 3]);
                let key = (a.min(b), a.max(b));
                *edges.entry(key).or_insert(0) += 1;
            }
        }
        !edges.is_empty() && edges.values().all(|&c| c == 2)
    }

    /// Total surface area.
    pub fn area(&self) -> f64 {
        self.triangles
            .iter()
            .map(|t| {
                let a = self.vertices[t[0] as usize];
                let b = self.vertices[t[1] as usize];
                let c = self.vertices[t[2] as usize];
                (b - a).cross(c - a).norm() * 0.5
            })
            .sum()
    }

    /// Approximate transport size (the in situ reduction argument:
    /// geometry is far smaller than the field it summarises).
    pub fn approx_bytes(&self) -> usize {
        self.vertices.len() * 24 + self.triangles.len() * 12
    }
}

/// The Freudenthal (Kuhn) six-tetrahedra decomposition of a unit cube
/// around the 0–7 main diagonal: one tetrahedron per axis permutation,
/// `0 → 0+e_i → 0+e_i+e_j → 7`. Applied uniformly to every cube this
/// subdivision is *face-consistent* (shared faces get the same
/// diagonal), which is what makes the extracted surface crack-free.
/// Corner numbering: bit 0 = +x, bit 1 = +y, bit 2 = +z.
const TETS: [[usize; 4]; 6] = [
    [0, 1, 3, 7], // x, y, z
    [0, 1, 5, 7], // x, z, y
    [0, 2, 3, 7], // y, x, z
    [0, 2, 6, 7], // y, z, x
    [0, 4, 5, 7], // z, x, y
    [0, 4, 6, 7], // z, y, x
];

/// Corner offset for cube-corner index `c`.
#[inline]
fn corner(c: usize) -> (i64, i64, i64) {
    ((c & 1) as i64, ((c >> 1) & 1) as i64, ((c >> 2) & 1) as i64)
}

/// Extract the `iso` level set of a sampled scalar field over the grid
/// `[0, dims)³`. `sample(x, y, z)` returns `None` outside the domain
/// (e.g. solid cells); tetrahedra touching missing samples are skipped,
/// clipping the surface at the domain boundary.
pub fn marching_tetrahedra<F>(dims: [usize; 3], sample: F, iso: f64) -> TriangleMesh
where
    F: Fn(i64, i64, i64) -> Option<f64>,
{
    let mut mesh = TriangleMesh::default();
    // Dedup vertices on their (sorted) grid-edge key so shared edges
    // share vertices (needed for the watertightness invariant).
    let mut edge_vertex: HashMap<(i64, i64, i64, i64, i64, i64), u32> = HashMap::new();

    let mut vertex_on_edge = |mesh: &mut TriangleMesh,
                              (ax, ay, az): (i64, i64, i64),
                              va: f64,
                              (bx, by, bz): (i64, i64, i64),
                              vb: f64|
     -> u32 {
        let key = if (ax, ay, az) <= (bx, by, bz) {
            (ax, ay, az, bx, by, bz)
        } else {
            (bx, by, bz, ax, ay, az)
        };
        if let Some(&idx) = edge_vertex.get(&key) {
            return idx;
        }
        let t = if (vb - va).abs() < 1e-300 {
            0.5
        } else {
            ((iso - va) / (vb - va)).clamp(0.0, 1.0)
        };
        let p = Vec3::new(
            ax as f64 + (bx - ax) as f64 * t,
            ay as f64 + (by - ay) as f64 * t,
            az as f64 + (bz - az) as f64 * t,
        );
        let idx = mesh.vertices.len() as u32;
        mesh.vertices.push(p);
        edge_vertex.insert(key, idx);
        idx
    };

    for x in 0..dims[0] as i64 - 1 {
        for y in 0..dims[1] as i64 - 1 {
            for z in 0..dims[2] as i64 - 1 {
                // Gather the cube's 8 corner samples.
                let mut vals = [0.0f64; 8];
                let mut pos = [(0i64, 0i64, 0i64); 8];
                let mut complete = true;
                for c in 0..8 {
                    let (dx, dy, dz) = corner(c);
                    let (px, py, pz) = (x + dx, y + dy, z + dz);
                    match sample(px, py, pz) {
                        Some(v) => {
                            vals[c] = v;
                            pos[c] = (px, py, pz);
                        }
                        None => {
                            complete = false;
                            break;
                        }
                    }
                }
                if !complete {
                    continue;
                }
                for tet in &TETS {
                    contour_tet(&mut mesh, &mut vertex_on_edge, tet, &pos, &vals, iso);
                }
            }
        }
    }
    mesh
}

/// Contour one tetrahedron: 0, 1 or 2 triangles.
fn contour_tet<FV>(
    mesh: &mut TriangleMesh,
    vertex_on_edge: &mut FV,
    tet: &[usize; 4],
    pos: &[(i64, i64, i64); 8],
    vals: &[f64; 8],
    iso: f64,
) where
    FV: FnMut(&mut TriangleMesh, (i64, i64, i64), f64, (i64, i64, i64), f64) -> u32,
{
    // Which tet corners are above the iso value?
    let above: Vec<usize> = (0..4).filter(|&k| vals[tet[k]] >= iso).collect();
    let below: Vec<usize> = (0..4).filter(|&k| vals[tet[k]] < iso).collect();
    let emit = |mesh: &mut TriangleMesh, a: u32, b: u32, c: u32| {
        if a != b && b != c && a != c {
            mesh.triangles.push([a, b, c]);
        }
    };
    match above.len() {
        0 | 4 => {}
        1 | 3 => {
            // One corner isolated: one triangle on the three edges from
            // the isolated corner.
            let (lone, others) = if above.len() == 1 {
                (above[0], &below)
            } else {
                (below[0], &above)
            };
            let l = tet[lone];
            let verts: Vec<u32> = others
                .iter()
                .map(|&k| {
                    let o = tet[k];
                    vertex_on_edge(mesh, pos[l], vals[l], pos[o], vals[o])
                })
                .collect();
            emit(mesh, verts[0], verts[1], verts[2]);
        }
        2 => {
            // Two vs two: a quad on the four crossing edges, split into
            // two triangles. Edge order matters for a valid strip:
            // (a0-b0, a0-b1, a1-b1, a1-b0) walks the quad perimeter.
            let (a0, a1) = (tet[above[0]], tet[above[1]]);
            let (b0, b1) = (tet[below[0]], tet[below[1]]);
            let v00 = vertex_on_edge(mesh, pos[a0], vals[a0], pos[b0], vals[b0]);
            let v01 = vertex_on_edge(mesh, pos[a0], vals[a0], pos[b1], vals[b1]);
            let v11 = vertex_on_edge(mesh, pos[a1], vals[a1], pos[b1], vals[b1]);
            let v10 = vertex_on_edge(mesh, pos[a1], vals[a1], pos[b0], vals[b0]);
            emit(mesh, v00, v01, v11);
            emit(mesh, v00, v11, v10);
        }
        _ => unreachable!(),
    }
}

/// Flat-shade a mesh into an image with a z-buffer (the minimal path
/// from extracted geometry to pixels; Fig. 4-style artefacts for
/// surfaces).
pub fn render_mesh(mesh: &TriangleMesh, cam: &Camera, colour: [f32; 3]) -> Image {
    let mut img = Image::new(cam.width, cam.height);
    let mut zbuf = vec![f32::INFINITY; (cam.width * cam.height) as usize];
    let (_, _, forward) = cam.basis();
    let light = (forward * -1.0).normalised();

    for t in &mesh.triangles {
        let a = mesh.vertices[t[0] as usize];
        let b = mesh.vertices[t[1] as usize];
        let c = mesh.vertices[t[2] as usize];
        let n = (b - a).cross(c - a).normalised();
        let shade = (n.dot(light).abs() * 0.8 + 0.2) as f32;

        let (Some(pa), Some(pb), Some(pc)) = (cam.project(a), cam.project(b), cam.project(c))
        else {
            continue;
        };
        // Bounding box in pixels.
        let min_x = pa.0.min(pb.0).min(pc.0).floor().max(0.0) as i64;
        let max_x = pa.0.max(pb.0).max(pc.0).ceil().min(cam.width as f64 - 1.0) as i64;
        let min_y = pa.1.min(pb.1).min(pc.1).floor().max(0.0) as i64;
        let max_y = pa.1.max(pb.1).max(pc.1).ceil().min(cam.height as f64 - 1.0) as i64;
        let area = (pb.0 - pa.0) * (pc.1 - pa.1) - (pc.0 - pa.0) * (pb.1 - pa.1);
        if area.abs() < 1e-12 {
            continue;
        }
        for py in min_y..=max_y {
            for px in min_x..=max_x {
                let (fx, fy) = (px as f64 + 0.5, py as f64 + 0.5);
                // Barycentric coordinates.
                let w0 = ((pb.0 - fx) * (pc.1 - fy) - (pc.0 - fx) * (pb.1 - fy)) / area;
                let w1 = ((pc.0 - fx) * (pa.1 - fy) - (pa.0 - fx) * (pc.1 - fy)) / area;
                let w2 = 1.0 - w0 - w1;
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                let depth = (w0 * pa.2 + w1 * pb.2 + w2 * pc.2) as f32;
                let idx = (py as u32 * cam.width + px as u32) as usize;
                if depth < zbuf[idx] {
                    zbuf[idx] = depth;
                    img.pixels[idx] =
                        [colour[0] * shade, colour[1] * shade, colour[2] * shade, 1.0];
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sphere SDF sampled on a grid: the canonical closed level set.
    fn sphere_field(
        dims: [usize; 3],
        centre: [f64; 3],
        r: f64,
    ) -> impl Fn(i64, i64, i64) -> Option<f64> {
        move |x, y, z| {
            if x < 0
                || y < 0
                || z < 0
                || x >= dims[0] as i64
                || y >= dims[1] as i64
                || z >= dims[2] as i64
            {
                return None;
            }
            let dx = x as f64 - centre[0];
            let dy = y as f64 - centre[1];
            let dz = z as f64 - centre[2];
            Some((dx * dx + dy * dy + dz * dz).sqrt() - r)
        }
    }

    #[test]
    fn sphere_isosurface_is_watertight() {
        let dims = [20usize, 20, 20];
        let mesh = marching_tetrahedra(dims, sphere_field(dims, [9.5, 9.5, 9.5], 5.0), 0.0);
        assert!(mesh.triangle_count() > 100);
        assert!(mesh.is_watertight(), "closed surface, shared edges");
    }

    #[test]
    fn sphere_vertices_lie_on_the_sphere() {
        let dims = [20usize, 20, 20];
        let c = [9.5, 9.5, 9.5];
        let r = 5.0;
        let mesh = marching_tetrahedra(dims, sphere_field(dims, c, r), 0.0);
        for v in &mesh.vertices {
            let d = ((v.x - c[0]).powi(2) + (v.y - c[1]).powi(2) + (v.z - c[2]).powi(2)).sqrt();
            // Linear interpolation of an SDF along unit edges is exact
            // up to curvature.
            assert!((d - r).abs() < 0.15, "vertex at distance {d}");
        }
    }

    #[test]
    fn sphere_area_approximates_4_pi_r2() {
        let dims = [26usize, 26, 26];
        let r = 8.0;
        let mesh = marching_tetrahedra(dims, sphere_field(dims, [12.5, 12.5, 12.5], r), 0.0);
        let expect = 4.0 * std::f64::consts::PI * r * r;
        let got = mesh.area();
        // Marching-tet meshes overestimate area slightly (faceting);
        // within 10% is a correct implementation.
        assert!(
            (got - expect).abs() / expect < 0.10,
            "area {got} vs 4πr² = {expect}"
        );
    }

    #[test]
    fn empty_level_set_gives_empty_mesh() {
        let dims = [10usize, 10, 10];
        let mesh = marching_tetrahedra(dims, sphere_field(dims, [5.0, 5.0, 5.0], 3.0), 100.0);
        assert_eq!(mesh.triangle_count(), 0);
        assert!(!mesh.is_watertight(), "vacuously no edges");
    }

    #[test]
    fn missing_samples_clip_the_surface() {
        // Same sphere but the x > centre half of the grid is missing:
        // the surface is cut open (not watertight, about half the area).
        let dims = [20usize, 20, 20];
        let full = marching_tetrahedra(dims, sphere_field(dims, [9.5, 9.5, 9.5], 5.0), 0.0);
        let base = sphere_field(dims, [9.5, 9.5, 9.5], 5.0);
        let half = marching_tetrahedra(
            dims,
            move |x, y, z| {
                if x > 9 {
                    None
                } else {
                    base(x, y, z)
                }
            },
            0.0,
        );
        assert!(half.triangle_count() > 0);
        assert!(!half.is_watertight());
        let ratio = half.area() / full.area();
        assert!((0.3..0.7).contains(&ratio), "half the sphere: {ratio}");
    }

    #[test]
    fn mesh_renders_to_pixels() {
        let dims = [20usize, 20, 20];
        let mesh = marching_tetrahedra(dims, sphere_field(dims, [9.5, 9.5, 9.5], 5.0), 0.0);
        let cam = Camera::framing(
            Vec3::ZERO,
            Vec3::new(20.0, 20.0, 20.0),
            Vec3::new(0.3, -1.0, 0.4),
            80,
            60,
        );
        let img = render_mesh(&mesh, &cam, [0.8, 0.2, 0.2]);
        let cov = img.coverage();
        assert!(cov > 0.02, "sphere visible: {cov}");
        assert!(cov < 0.8, "background empty: {cov}");
    }

    #[test]
    fn transport_size_is_a_reduction() {
        let dims = [24usize, 24, 24];
        let mesh = marching_tetrahedra(dims, sphere_field(dims, [11.5, 11.5, 11.5], 7.0), 0.0);
        let field_bytes = dims[0] * dims[1] * dims[2] * 8;
        assert!(
            mesh.approx_bytes() < field_bytes * 2,
            "mesh {} vs field {field_bytes}",
            mesh.approx_bytes()
        );
    }
}
