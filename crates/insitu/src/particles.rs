//! Distributed massless particle tracing.
//!
//! The paper lists particle tracing as its own technique (Table I):
//! ensembles of tracers advected *with the simulation*, one advection
//! step per solver step, migrating between ranks as they cross
//! subdomain boundaries. Communication is therefore per-step (high),
//! and load follows the seeding density (can be optimised by vis-aware
//! partitioning — the "can be optimised" cell of the table).

use crate::field::SampledField;
use crate::lines::{owner_of_point, rk4_step, WireParticle};
use hemelb_geometry::{SparseGeometry, Vec3};
use hemelb_parallel::{CommResult, Communicator};
use serde::{Deserialize, Serialize};

/// Per-rank statistics of an in situ particle run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParticleStats {
    /// Advection updates this rank computed.
    pub updates: u64,
    /// Particles migrated away from this rank.
    pub migrations: u64,
    /// Collective rounds (one per simulation step).
    pub rounds: u64,
}

/// A distributed tracer ensemble co-resident with the solver ranks.
pub struct ParticleEnsemble<'a> {
    comm: &'a Communicator,
    owner: &'a [usize],
    /// Live particles owned by this rank.
    pub local: Vec<WireParticle>,
    /// Finished (exited / stagnant) particles retained for analysis.
    pub finished: Vec<WireParticle>,
    /// Advection sub-step.
    pub h: f64,
    /// Running statistics.
    pub stats: ParticleStats,
}

impl<'a> ParticleEnsemble<'a> {
    /// Seed an ensemble collectively: every rank passes the full seed
    /// list and keeps the particles it owns.
    pub fn new(
        comm: &'a Communicator,
        geo: &SparseGeometry,
        owner: &'a [usize],
        seeds: &[Vec3],
        h: f64,
    ) -> Self {
        let local = seeds
            .iter()
            .enumerate()
            .filter(|(_, &s)| owner_of_point(geo, owner, s) == Some(comm.rank()))
            .map(|(i, &s)| WireParticle {
                id: i as u32,
                steps: 0,
                pos: s.to_array(),
            })
            .collect();
        ParticleEnsemble {
            comm,
            owner,
            local,
            finished: Vec::new(),
            h,
            stats: ParticleStats::default(),
        }
    }

    /// One in situ step: advance every local particle once through the
    /// current field, then migrate border-crossers. Collective — all
    /// ranks must call it once per solver step.
    pub fn step(&mut self, geo: &SparseGeometry, field: &SampledField<'_>) -> CommResult<()> {
        let me = self.comm.rank();
        let mut outgoing: Vec<Vec<WireParticle>> = vec![Vec::new(); self.comm.size()];
        let mut keep = Vec::with_capacity(self.local.len());
        for mut part in self.local.drain(..) {
            let p = Vec3::from(part.pos);
            let v = |q: Vec3| field.velocity_at(q);
            match rk4_step(&v, p, self.h) {
                None => self.finished.push(part),
                Some(next) => {
                    part.pos = next.to_array();
                    part.steps += 1;
                    self.stats.updates += 1;
                    match owner_of_point(geo, self.owner, next) {
                        Some(o) if o == me => keep.push(part),
                        Some(o) => {
                            outgoing[o].push(part);
                            self.stats.migrations += 1;
                        }
                        None => self.finished.push(part),
                    }
                }
            }
        }
        self.local = keep;

        crate::lines::exchange_particles(self.comm, &outgoing, &mut self.local)?;
        self.stats.rounds += 1;
        Ok(())
    }

    /// Global live-particle count (collective).
    pub fn global_active(&self) -> CommResult<u64> {
        self.comm
            .all_reduce_u64(self.local.len() as u64, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_core::FieldSnapshot;
    use hemelb_geometry::VesselBuilder;
    use hemelb_parallel::run_spmd;

    fn uniform_flow() -> (SparseGeometry, FieldSnapshot) {
        let geo = VesselBuilder::straight_tube(32.0, 5.0).voxelise(1.0);
        let n = geo.fluid_count();
        let snap = FieldSnapshot {
            step: 0,
            rho: vec![1.0; n],
            u: vec![[0.08, 0.0, 0.0]; n],
            shear: vec![0.0; n],
        };
        (geo, snap)
    }

    fn seeds(geo: &SparseGeometry, n: usize) -> Vec<Vec3> {
        let cy = (geo.shape()[1] as f64 - 1.0) / 2.0;
        let cz = (geo.shape()[2] as f64 - 1.0) / 2.0;
        (0..n)
            .map(|i| Vec3::new(2.0 + (i % 3) as f64, cy + (i as f64 * 0.37).sin(), cz))
            .collect()
    }

    #[test]
    fn particles_conserve_count_until_exit() {
        let (geo, snap) = uniform_flow();
        let seed_list = seeds(&geo, 12);
        let n_seeds = seed_list.len() as u64;
        let results = run_spmd(3, move |comm| {
            let owner: Vec<usize> = (0..geo.fluid_count() as u32)
                .map(|s| {
                    (geo.position(s)[0] as usize * comm.size() / geo.shape()[0])
                        .min(comm.size() - 1)
                })
                .collect();
            let field = SampledField::new(&geo, &snap);
            let mut ens = ParticleEnsemble::new(comm, &geo, &owner, &seed_list, 1.0);
            let mut counts = Vec::new();
            for _ in 0..200 {
                ens.step(&geo, &field).unwrap();
                counts.push(ens.global_active().unwrap() + global_finished(comm, &ens));
            }
            (counts, ens.stats.clone())
        });
        // Live + finished always equals the seed count.
        for (counts, _) in &results {
            for &c in counts {
                assert_eq!(c, n_seeds);
            }
        }
        // Downstream advection must migrate particles across slabs.
        let migrations: u64 = results.iter().map(|(_, s)| s.migrations).sum();
        assert!(migrations > 0);
    }

    fn global_finished(comm: &hemelb_parallel::Communicator, ens: &ParticleEnsemble) -> u64 {
        comm.all_reduce_u64(ens.finished.len() as u64, |a, b| a + b)
            .unwrap()
    }

    #[test]
    fn particles_eventually_exit_the_outlet() {
        let (geo, snap) = uniform_flow();
        let seed_list = seeds(&geo, 6);
        let results = run_spmd(2, move |comm| {
            let owner: Vec<usize> = (0..geo.fluid_count() as u32)
                .map(|s| {
                    (geo.position(s)[0] as usize * comm.size() / geo.shape()[0])
                        .min(comm.size() - 1)
                })
                .collect();
            let field = SampledField::new(&geo, &snap);
            let mut ens = ParticleEnsemble::new(comm, &geo, &owner, &seed_list, 0.5);
            for _ in 0..2000 {
                ens.step(&geo, &field).unwrap();
                if ens.global_active().unwrap() == 0 {
                    break;
                }
            }
            ens.global_active().unwrap()
        });
        assert_eq!(results[0], 0, "all particles should leave the tube");
    }

    #[test]
    fn single_rank_never_migrates() {
        let (geo, snap) = uniform_flow();
        let seed_list = seeds(&geo, 5);
        let results = run_spmd(1, move |comm| {
            let owner = vec![0usize; geo.fluid_count()];
            let field = SampledField::new(&geo, &snap);
            let mut ens = ParticleEnsemble::new(comm, &geo, &owner, &seed_list, 0.5);
            for _ in 0..10 {
                ens.step(&geo, &field).unwrap();
            }
            ens.stats.clone()
        });
        assert_eq!(results[0].migrations, 0);
        assert!(results[0].updates > 0);
    }
}
