//! Line integral convolution on a slice plane, serial and distributed.
//!
//! Table I's middle column: LIC convolves a white-noise texture along
//! the in-plane flow, so each output pixel needs velocity data within a
//! *bounded* distance (the kernel length). Distributing the slice into
//! slabs therefore costs a **one-time halo exchange** of kernel-width
//! boundary strips — more traffic than volume rendering's nothing, far
//! less than per-step particle hand-off; and pixels distribute evenly,
//! so load balance is good. Exactly the "medium / good / moderate" row.

use crate::field::SampledField;
use hemelb_geometry::Vec3;
use hemelb_parallel::{CommResult, Communicator, Tag, WireReader, WireWriter};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

const T_HALO: Tag = Tag::vis(20);

/// A 2-D slice of the in-plane velocity field at `z = plane_z`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VelocitySlice {
    /// Pixels along x.
    pub nx: usize,
    /// Pixels along y.
    pub ny: usize,
    /// The slicing plane's z (lattice units).
    pub plane_z: f64,
    /// In-plane velocity per pixel (`None`→ NaN pair for solid).
    pub uv: Vec<[f32; 2]>,
}

impl VelocitySlice {
    /// Extract the slice at `plane_z` from a sampled field, one pixel
    /// per lattice cell.
    pub fn extract(field: &SampledField<'_>, plane_z: f64) -> Self {
        let shape = field.geo.shape();
        let (nx, ny) = (shape[0], shape[1]);
        let mut uv = vec![[f32::NAN; 2]; nx * ny];
        for x in 0..nx {
            for y in 0..ny {
                let p = Vec3::new(x as f64, y as f64, plane_z);
                if field.in_fluid(p) {
                    if let Some(v) = field.velocity_at(p) {
                        uv[x * ny + y] = [v[0] as f32, v[1] as f32];
                    }
                }
            }
        }
        VelocitySlice {
            nx,
            ny,
            plane_z,
            uv,
        }
    }

    /// In-plane velocity at integer pixel, `None` outside fluid.
    #[inline]
    pub fn at(&self, x: i64, y: i64) -> Option<[f32; 2]> {
        if x < 0 || y < 0 || x as usize >= self.nx || y as usize >= self.ny {
            return None;
        }
        let v = self.uv[x as usize * self.ny + y as usize];
        if v[0].is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// Bilinear in-plane velocity at a fractional position.
    pub fn sample(&self, x: f64, y: f64) -> Option<[f32; 2]> {
        let x0 = x.floor() as i64;
        let y0 = y.floor() as i64;
        let fx = (x - x0 as f64) as f32;
        let fy = (y - y0 as f64) as f32;
        let mut acc = [0.0f32; 2];
        let mut wsum = 0.0f32;
        for dx in 0..2i64 {
            for dy in 0..2i64 {
                let w =
                    (if dx == 0 { 1.0 - fx } else { fx }) * (if dy == 0 { 1.0 - fy } else { fy });
                if w <= 0.0 {
                    continue;
                }
                if let Some(v) = self.at(x0 + dx, y0 + dy) {
                    acc[0] += v[0] * w;
                    acc[1] += v[1] * w;
                    wsum += w;
                }
            }
        }
        if wsum <= 1e-6 {
            None
        } else {
            Some([acc[0] / wsum, acc[1] / wsum])
        }
    }
}

/// Deterministic per-pixel white noise in `[0, 1)`.
#[inline]
pub fn noise(x: u32, y: u32, seed: u64) -> f32 {
    let mut h = seed ^ ((x as u64) << 32 | y as u64);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
    h ^= h >> 33;
    (h >> 40) as f32 / (1u64 << 24) as f32
}

/// LIC parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LicConfig {
    /// Half kernel length in integration steps.
    pub half_kernel: usize,
    /// Integration step (pixels).
    pub h: f64,
    /// Noise seed.
    pub seed: u64,
}

impl Default for LicConfig {
    fn default() -> Self {
        LicConfig {
            half_kernel: 10,
            h: 0.7,
            seed: 0xC0FFEE,
        }
    }
}

/// Convolve noise along the flow through pixel `(px, py)`.
fn lic_pixel(slice: &VelocitySlice, px: usize, py: usize, cfg: &LicConfig) -> Option<f32> {
    slice.at(px as i64, py as i64)?;
    let mut sum = noise(px as u32, py as u32, cfg.seed);
    let mut count = 1.0f32;
    // Walk both directions along the in-plane field.
    for dir in [1.0f64, -1.0] {
        let mut x = px as f64;
        let mut y = py as f64;
        for _ in 0..cfg.half_kernel {
            let Some(v) = slice.sample(x, y) else { break };
            let speed = (v[0] * v[0] + v[1] * v[1]).sqrt() as f64;
            if speed < 1e-12 {
                break;
            }
            x += dir * cfg.h * v[0] as f64 / speed;
            y += dir * cfg.h * v[1] as f64 / speed;
            if x < 0.0 || y < 0.0 || x >= slice.nx as f64 || y >= slice.ny as f64 {
                break;
            }
            sum += noise(x.round() as u32, y.round() as u32, cfg.seed);
            count += 1.0;
        }
    }
    Some(sum / count)
}

/// Serial-equivalent LIC over the whole slice, convolving pixel columns
/// in parallel (each worker owns a disjoint run of `ny`-sized rows, so
/// the output is identical to the sequential loop). `None` pixels
/// (solid) become NaN.
pub fn lic_serial(slice: &VelocitySlice, cfg: &LicConfig) -> Vec<f32> {
    let mut out = vec![f32::NAN; slice.nx * slice.ny];
    out.par_chunks_mut(slice.ny).enumerate_for_each(|x, row| {
        for (y, slot) in row.iter_mut().enumerate() {
            if let Some(v) = lic_pixel(slice, x, y, cfg) {
                *slot = v;
            }
        }
    });
    out
}

/// Per-rank statistics of a distributed LIC.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LicStats {
    /// Pixels this rank convolved (work metric).
    pub pixels: u64,
    /// Halo columns received.
    pub halo_columns: u64,
}

/// Distributed LIC: the slice is split into x-slabs; each rank receives
/// a one-time halo of `halo_width` columns from each side, computes its
/// slab, and rank 0 gathers the image. The result equals the serial LIC
/// except where a streamline would have run beyond the halo (bounded by
/// `halo_width ≥ half_kernel · h`). Collective.
pub fn lic_distributed(
    comm: &Communicator,
    slice: &VelocitySlice,
    cfg: &LicConfig,
) -> CommResult<(Option<Vec<f32>>, LicStats)> {
    let p = comm.size();
    let me = comm.rank();
    let halo_width = ((cfg.half_kernel as f64 * cfg.h).ceil() as usize + 1).min(slice.nx);
    let slab = |r: usize| -> std::ops::Range<usize> {
        let per = slice.nx / p;
        let extra = slice.nx % p;
        let start = r * per + r.min(extra);
        let len = per + usize::from(r < extra);
        start..start + len
    };
    let mine = slab(me);

    // In a real deployment each rank owns only its slab; we model that
    // by masking: the local working slice keeps [mine - halo, mine + halo)
    // columns and NaNs elsewhere. The halo columns are *received* from
    // the neighbouring ranks (counted as real traffic).
    let mut working = VelocitySlice {
        nx: slice.nx,
        ny: slice.ny,
        plane_z: slice.plane_z,
        uv: vec![[f32::NAN; 2]; slice.nx * slice.ny],
    };
    for x in mine.clone() {
        for y in 0..slice.ny {
            working.uv[x * slice.ny + y] = slice.uv[x * slice.ny + y];
        }
    }

    // Exchange halo strips with left/right neighbours.
    let mut stats = LicStats::default();
    let mut outgoing = Vec::new();
    let mut expect = Vec::new();
    for (neigh, cols) in [
        (
            me.checked_sub(1),
            mine.start..(mine.start + halo_width).min(mine.end),
        ),
        (
            (me + 1 < p).then_some(me + 1),
            mine.end.saturating_sub(halo_width).max(mine.start)..mine.end,
        ),
    ] {
        if let Some(n) = neigh {
            let mut w = WireWriter::with_capacity(16 + cols.len() * slice.ny * 8);
            w.put_usize(cols.start);
            w.put_usize(cols.len());
            for x in cols {
                for y in 0..slice.ny {
                    let v = slice.uv[x * slice.ny + y];
                    w.put_f32(v[0]);
                    w.put_f32(v[1]);
                }
            }
            outgoing.push((n, w.finish()));
            expect.push(n);
        }
    }
    let received = comm.exchange(T_HALO, &outgoing, &expect)?;
    for payload in received {
        let mut r = WireReader::new(payload);
        let start = r.get_usize()?;
        let len = r.get_usize()?;
        stats.halo_columns += len as u64;
        for x in start..start + len {
            for y in 0..slice.ny {
                working.uv[x * slice.ny + y] = [r.get_f32()?, r.get_f32()?];
            }
        }
    }

    // Convolve the owned slab, x-columns in parallel.
    let mut local = vec![f32::NAN; mine.len() * slice.ny];
    let working_ref = &working;
    let slab_start = mine.start;
    local.par_chunks_mut(slice.ny).enumerate_for_each(|i, row| {
        let x = slab_start + i;
        for (y, slot) in row.iter_mut().enumerate() {
            if let Some(v) = lic_pixel(working_ref, x, y, cfg) {
                *slot = v;
            }
        }
    });
    // `lic_pixel` never yields NaN (its kernel average has count ≥ 1),
    // so the convolved-pixel count survives the parallel rewrite.
    stats.pixels = local.iter().filter(|v| !v.is_nan()).count() as u64;

    // Gather slabs at rank 0.
    let mut w = WireWriter::with_capacity(16 + local.len() * 4);
    w.put_usize(mine.start);
    w.put_usize(mine.len());
    w.put_f32_slice(&local);
    let gathered = comm.gather(0, w.finish())?;
    let image = match gathered {
        None => None,
        Some(parts) => {
            let mut out = vec![f32::NAN; slice.nx * slice.ny];
            for payload in parts {
                let mut r = WireReader::new(payload);
                let start = r.get_usize()?;
                let len = r.get_usize()?;
                let vals = r.get_f32_vec()?;
                for i in 0..len {
                    for y in 0..slice.ny {
                        out[(start + i) * slice.ny + y] = vals[i * slice.ny + y];
                    }
                }
            }
            Some(out)
        }
    };
    Ok((image, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_core::FieldSnapshot;
    use hemelb_geometry::VesselBuilder;
    use hemelb_parallel::{run_spmd, run_spmd_with_stats, TagClass};

    fn slice_of_tube() -> VelocitySlice {
        let geo = VesselBuilder::straight_tube(32.0, 5.0).voxelise(1.0);
        let n = geo.fluid_count();
        let snap = FieldSnapshot {
            step: 0,
            rho: vec![1.0; n],
            u: vec![[0.05, 0.01, 0.0]; n],
            shear: vec![0.0; n],
        };
        let field = SampledField::new(&geo, &snap);
        let z = (geo.shape()[2] as f64 - 1.0) / 2.0;
        VelocitySlice::extract(&field, z)
    }

    #[test]
    fn slice_has_fluid_and_solid_pixels() {
        let s = slice_of_tube();
        let fluid = s.uv.iter().filter(|v| !v[0].is_nan()).count();
        assert!(fluid > 0);
        assert!(fluid < s.nx * s.ny);
    }

    #[test]
    fn noise_is_deterministic_and_uniformish() {
        let a = noise(3, 7, 1);
        assert_eq!(a, noise(3, 7, 1));
        assert_ne!(a, noise(3, 8, 1));
        let mean: f32 = (0..1000).map(|i| noise(i, i * 3 + 1, 9)).sum::<f32>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn lic_smooths_along_flow() {
        // With flow along +x, adjacent pixels along x share most of
        // their convolution path, so the LIC value correlation along x
        // exceeds that along y.
        let s = slice_of_tube();
        let cfg = LicConfig::default();
        let img = lic_serial(&s, &cfg);
        let at = |x: usize, y: usize| img[x * s.ny + y];
        let mut dx_diff = 0.0f64;
        let mut dy_diff = 0.0f64;
        let mut count = 0usize;
        for x in 5..s.nx - 5 {
            for y in 5..s.ny - 5 {
                let (c, rx, ry) = (at(x, y), at(x + 1, y), at(x, y + 1));
                if c.is_nan() || rx.is_nan() || ry.is_nan() {
                    continue;
                }
                dx_diff += (c - rx).abs() as f64;
                dy_diff += (c - ry).abs() as f64;
                count += 1;
            }
        }
        assert!(count > 50, "interior pixels: {count}");
        assert!(
            dx_diff < dy_diff * 0.8,
            "streamwise smoothing expected: dx={dx_diff}, dy={dy_diff}"
        );
    }

    #[test]
    fn distributed_lic_matches_serial() {
        let s = slice_of_tube();
        let cfg = LicConfig::default();
        let serial = lic_serial(&s, &cfg);
        for p in [1usize, 2, 4] {
            let s2 = s.clone();
            let results = run_spmd(p, move |comm| lic_distributed(comm, &s2, &cfg).unwrap().0);
            let img = results[0].as_ref().unwrap();
            let mut mismatched = 0usize;
            let mut total = 0usize;
            for (a, b) in img.iter().zip(&serial) {
                if a.is_nan() != b.is_nan() {
                    mismatched += 1;
                } else if !a.is_nan() {
                    total += 1;
                    if (a - b).abs() > 1e-5 {
                        mismatched += 1;
                    }
                }
            }
            assert_eq!(mismatched, 0, "p={p}: {mismatched}/{total} differ");
        }
    }

    #[test]
    fn halo_traffic_is_one_time_and_bounded() {
        let s = slice_of_tube();
        let cfg = LicConfig::default();
        let ny = s.ny;
        let out = run_spmd_with_stats(4, move |comm| lic_distributed(comm, &s, &cfg).unwrap().1);
        let vis_bytes = out.summary.total.bytes(TagClass::Visualisation);
        // Each interior rank exchanges ≤ 2 halos of halo_width × ny × 8 B
        // plus the final gather. Bound generously.
        let halo_width = (cfg.half_kernel as f64 * cfg.h).ceil() as u64 + 1;
        let bound = 8 * halo_width * ny as u64 * 8 + 16 * 8;
        assert!(
            out.stats
                .iter()
                .map(|st| st.bytes(TagClass::Visualisation))
                .max()
                .unwrap()
                <= bound,
            "per-rank vis traffic bounded by halo size"
        );
        assert!(vis_bytes > 0);
        // Work is evenly spread.
        let pixels: Vec<u64> = out.results.iter().map(|r| r.pixels).collect();
        let max = *pixels.iter().max().unwrap() as f64;
        let mean = pixels.iter().sum::<u64>() as f64 / pixels.len() as f64;
        assert!(max / mean < 1.7, "LIC load balance: {pixels:?}");
    }
}
