//! # hemelb-insitu
//!
//! In situ post-processing for the sparse-geometry LB solver: the
//! four visualisation techniques of the paper's Table I, each in a
//! distributed, instrumented implementation, plus the extract → filter →
//! map → render pipeline of its Fig. 3.
//!
//! | Technique | Module | Communication structure |
//! |---|---|---|
//! | Volume rendering | [`volume`] | none during sampling; sort-last compositing ([`compositing`]) |
//! | Line integrals (stream/path/streak) | [`lines`] | per-step particle hand-off between ranks |
//! | Particle tracing | [`particles`] | per-step migration |
//! | LIC | [`lic`] | one-time slice halo exchange |
//!
//! The paper tabulates these qualitatively (communication cost, load
//! balance, ease of parallelisation); running them here over the
//! instrumented [`hemelb_parallel`] substrate turns every cell of that
//! table into a measured number (experiment E1), and the renderers also
//! regenerate its Fig. 4 images ([`image::Image::write_ppm`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod camera;
pub mod compositing;
pub mod features;
pub mod field;
pub mod histogram;
pub mod image;
pub mod isosurface;
pub mod lic;
pub mod lines;
pub mod particles;
pub mod pipeline;
pub mod report;
pub mod transfer;
pub mod unsteady;
pub mod volume;

pub use camera::Camera;
pub use compositing::{CompositeOutcome, DeadlineCompositor};
pub use field::SampledField;
pub use image::Image;
pub use pipeline::{compare_solver_backends, BackendComparison, Pipeline, StageStats};
pub use report::TechniqueReport;
pub use transfer::TransferFunction;
