//! Images: RGBA accumulation buffers, the *over* operator, and PPM
//! output (how this repository regenerates the paper's Fig. 4 panels).

use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::path::Path;

/// An RGBA image with premultiplied-alpha `f32` channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Pixels, row-major; premultiplied alpha.
    pub pixels: Vec<[f32; 4]>,
}

impl Image {
    /// A transparent black image.
    pub fn new(width: u32, height: u32) -> Self {
        Image {
            width,
            height,
            pixels: vec![[0.0; 4]; (width * height) as usize],
        }
    }

    /// Pixel accessor.
    #[inline]
    pub fn at(&self, x: u32, y: u32) -> [f32; 4] {
        self.pixels[(y * self.width + x) as usize]
    }

    /// Mutable pixel accessor.
    #[inline]
    pub fn at_mut(&mut self, x: u32, y: u32) -> &mut [f32; 4] {
        &mut self.pixels[(y * self.width + x) as usize]
    }

    /// Fraction of pixels with any opacity — a cheap "did we draw
    /// something sensible" check used by tests.
    pub fn coverage(&self) -> f64 {
        let lit = self.pixels.iter().filter(|p| p[3] > 1e-4).count();
        lit as f64 / self.pixels.len() as f64
    }

    /// Composite `front` OVER `self` pixel-wise (both premultiplied).
    pub fn over(&mut self, front: &Image) {
        assert_eq!(self.width, front.width);
        assert_eq!(self.height, front.height);
        for (b, f) in self.pixels.iter_mut().zip(&front.pixels) {
            *b = over_px(*f, *b);
        }
    }

    /// Flatten to 8-bit RGB against a white background (the encoding the
    /// steering protocol ships to the client).
    pub fn to_rgb8(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pixels.len() * 3);
        for p in &self.pixels {
            let a = p[3].clamp(0.0, 1.0);
            for &pc in p.iter().take(3) {
                let v = pc + (1.0 - a);
                out.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        out
    }

    /// Write as a binary PPM (P6) against a white background.
    pub fn write_ppm(&self, path: &Path) -> io::Result<()> {
        let mut out = Vec::with_capacity(self.pixels.len() * 3 + 32);
        write!(out, "P6\n{} {}\n255\n", self.width, self.height)?;
        out.extend(self.to_rgb8());
        std::fs::write(path, out)
    }
}

/// The premultiplied-alpha *over* operator: `f OVER b`.
#[inline]
pub fn over_px(f: [f32; 4], b: [f32; 4]) -> [f32; 4] {
    let k = 1.0 - f[3];
    [
        f[0] + b[0] * k,
        f[1] + b[1] * k,
        f[2] + b[2] * k,
        f[3] + b[3] * k,
    ]
}

/// A partial image with per-pixel depth, as produced by one rank of the
/// sort-last volume renderer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialImage {
    /// The RGBA content (premultiplied).
    pub image: Image,
    /// Per-pixel depth of the *nearest contribution* (f32::INFINITY
    /// where the rank contributed nothing). Used to order partials.
    pub depth: Vec<f32>,
}

impl PartialImage {
    /// A transparent partial with infinite depth.
    pub fn new(width: u32, height: u32) -> Self {
        PartialImage {
            image: Image::new(width, height),
            depth: vec![f32::INFINITY; (width * height) as usize],
        }
    }

    /// Merge another partial into this one, per pixel, ordering the two
    /// contributions by depth (near over far). Associative for
    /// non-overlapping depth ranges — the convex-brick case sort-last
    /// compositing relies on.
    pub fn merge(&mut self, other: &PartialImage) {
        assert_eq!(self.image.width, other.image.width);
        assert_eq!(self.image.height, other.image.height);
        for i in 0..self.image.pixels.len() {
            let (a, da) = (self.image.pixels[i], self.depth[i]);
            let (b, db) = (other.image.pixels[i], other.depth[i]);
            let (front, back, dmin) = if da <= db { (a, b, da) } else { (b, a, db) };
            self.image.pixels[i] = over_px(front, back);
            self.depth[i] = dmin;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn over_with_opaque_front_hides_back() {
        let f = [0.8, 0.1, 0.1, 1.0];
        let b = [0.0, 1.0, 0.0, 1.0];
        assert_eq!(over_px(f, b), f);
    }

    #[test]
    fn over_with_transparent_front_is_identity() {
        let b = [0.2, 0.3, 0.4, 0.9];
        assert_eq!(over_px([0.0; 4], b), b);
    }

    #[test]
    fn over_is_associative() {
        let a = [0.3, 0.0, 0.0, 0.4];
        let b = [0.0, 0.25, 0.0, 0.5];
        let c = [0.0, 0.0, 0.2, 0.6];
        let left = over_px(over_px(a, b), c);
        let right = over_px(a, over_px(b, c));
        for i in 0..4 {
            assert!((left[i] - right[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn partial_merge_orders_by_depth() {
        let mut near = PartialImage::new(1, 1);
        near.image.pixels[0] = [1.0, 0.0, 0.0, 1.0];
        near.depth[0] = 1.0;
        let mut far = PartialImage::new(1, 1);
        far.image.pixels[0] = [0.0, 1.0, 0.0, 1.0];
        far.depth[0] = 5.0;
        // Merging in either order gives the same (near wins) result.
        let mut m1 = near.clone();
        m1.merge(&far);
        let mut m2 = far.clone();
        m2.merge(&near);
        assert_eq!(m1.image.pixels[0], [1.0, 0.0, 0.0, 1.0]);
        assert_eq!(m2.image.pixels[0], [1.0, 0.0, 0.0, 1.0]);
        assert_eq!(m1.depth[0], 1.0);
        assert_eq!(m2.depth[0], 1.0);
    }

    #[test]
    fn ppm_output_has_correct_size() {
        let img = Image::new(7, 3);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("hemelb_ppm_test_{}.ppm", std::process::id()));
        img.write_ppm(&path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P6\n7 3\n255\n"));
        assert_eq!(data.len(), b"P6\n7 3\n255\n".len() + 7 * 3 * 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn coverage_counts_lit_pixels() {
        let mut img = Image::new(2, 2);
        assert_eq!(img.coverage(), 0.0);
        *img.at_mut(0, 0) = [0.1, 0.0, 0.0, 0.5];
        assert_eq!(img.coverage(), 0.25);
    }
}
