//! Distributed unsteady line integrals: path-lines and **streak-lines**
//! co-advancing with the (distributed) simulation.
//!
//! The paper names streak-lines explicitly among the "physiologically
//! relevant data sets … for the visualisation of the flow field". A
//! streak-line is the locus of all particles released from a fixed seed
//! point over time, so in situ it must be advected *with* the run: one
//! advection per solver step against the current field, with released
//! particles migrating between ranks like any other tracer.

use crate::field::SampledField;
use crate::lines::{exchange_particles, owner_of_point, rk4_step};
use hemelb_geometry::{SparseGeometry, Vec3};
use hemelb_parallel::{CommResult, Communicator, Wire, WireReader, WireWriter};
use serde::{Deserialize, Serialize};

/// A tracer particle of an unsteady line: which seed released it, and
/// when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreakParticle {
    /// Seed index.
    pub seed: u32,
    /// Simulation step at release.
    pub release: u32,
    /// Current position.
    pub pos: [f64; 3],
}

impl Wire for StreakParticle {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.seed);
        w.put_u32(self.release);
        w.put(&self.pos);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        Ok(StreakParticle {
            seed: r.get_u32()?,
            release: r.get_u32()?,
            pos: r.get()?,
        })
    }
}

/// Per-rank statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreakStats {
    /// Advection updates computed by this rank.
    pub updates: u64,
    /// Particles migrated away.
    pub migrations: u64,
    /// Particles released by this rank.
    pub released: u64,
}

/// Distributed streak-line tracer. Collective: every rank constructs it
/// with the full seed list and calls [`DistStreaklines::step`] once per
/// solver step.
pub struct DistStreaklines<'a> {
    comm: &'a Communicator,
    owner: &'a [usize],
    seeds: Vec<Vec3>,
    /// Live particles owned by this rank.
    pub live: Vec<StreakParticle>,
    /// Advection sub-step per solver step.
    pub h: f64,
    /// Steps taken so far.
    pub step: u32,
    /// Running statistics.
    pub stats: StreakStats,
}

impl<'a> DistStreaklines<'a> {
    /// Create with no particles yet; releases start with the first
    /// [`DistStreaklines::step`].
    pub fn new(comm: &'a Communicator, owner: &'a [usize], seeds: Vec<Vec3>, h: f64) -> Self {
        DistStreaklines {
            comm,
            owner,
            seeds,
            live: Vec::new(),
            h,
            step: 0,
            stats: StreakStats::default(),
        }
    }

    /// One in situ step against the *current* field: advect every live
    /// particle, then release a fresh particle at every seed (on the
    /// rank owning the seed's cell). Collective.
    pub fn step(&mut self, geo: &SparseGeometry, field: &SampledField<'_>) -> CommResult<()> {
        let me = self.comm.rank();
        let mut outgoing: Vec<Vec<StreakParticle>> = vec![Vec::new(); self.comm.size()];
        let mut keep = Vec::with_capacity(self.live.len() + self.seeds.len());
        for mut part in self.live.drain(..) {
            let v = |q: Vec3| field.velocity_at(q);
            match rk4_step(&v, Vec3::from(part.pos), self.h) {
                None => {} // left the fluid: the streak ends here
                Some(next) => {
                    part.pos = next.to_array();
                    self.stats.updates += 1;
                    match owner_of_point(geo, self.owner, next) {
                        Some(o) if o == me => keep.push(part),
                        Some(o) => {
                            outgoing[o].push(part);
                            self.stats.migrations += 1;
                        }
                        None => {}
                    }
                }
            }
        }
        self.live = keep;
        exchange_particles(self.comm, &outgoing, &mut self.live)?;

        // Release this step's particles from seeds this rank owns.
        self.step += 1;
        for (i, &s) in self.seeds.iter().enumerate() {
            if owner_of_point(geo, self.owner, s) == Some(me) {
                self.live.push(StreakParticle {
                    seed: i as u32,
                    release: self.step,
                    pos: s.to_array(),
                });
                self.stats.released += 1;
            }
        }
        Ok(())
    }

    /// Gather complete streak-lines at rank 0 (collective): for each
    /// seed, live particle positions ordered newest-first (from the
    /// seed outwards).
    pub fn gather(&self) -> CommResult<Option<Vec<Vec<Vec3>>>> {
        let mut w = WireWriter::with_capacity(8 + self.live.len() * 32);
        w.put_usize(self.live.len());
        for p in &self.live {
            p.encode(&mut w);
        }
        let Some(parts) = self.comm.gather(0, w.finish())? else {
            return Ok(None);
        };
        let mut all: Vec<StreakParticle> = Vec::new();
        for part in parts {
            let mut r = WireReader::new(part);
            let n = r.get_usize()?;
            for _ in 0..n {
                all.push(StreakParticle::decode(&mut r)?);
            }
        }
        let mut lines = vec![Vec::new(); self.seeds.len()];
        all.sort_by_key(|p| (p.seed, std::cmp::Reverse(p.release)));
        for p in all {
            lines[p.seed as usize].push(Vec3::from(p.pos));
        }
        Ok(Some(lines))
    }

    /// Global live-particle count (collective).
    pub fn global_live(&self) -> CommResult<u64> {
        self.comm
            .all_reduce_u64(self.live.len() as u64, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lines::UnsteadyTracer;
    use hemelb_core::FieldSnapshot;
    use hemelb_geometry::VesselBuilder;
    use hemelb_parallel::run_spmd;

    fn uniform_flow() -> (SparseGeometry, FieldSnapshot) {
        let geo = VesselBuilder::straight_tube(32.0, 5.0).voxelise(1.0);
        let n = geo.fluid_count();
        let snap = FieldSnapshot {
            step: 0,
            rho: vec![1.0; n],
            u: vec![[0.06, 0.005, 0.0]; n],
            shear: vec![0.0; n],
        };
        (geo, snap)
    }

    fn seed(geo: &SparseGeometry) -> Vec3 {
        Vec3::new(
            2.0,
            (geo.shape()[1] as f64 - 1.0) / 2.0,
            (geo.shape()[2] as f64 - 1.0) / 2.0,
        )
    }

    #[test]
    fn distributed_streaklines_match_serial_tracer() {
        let (geo, snap) = uniform_flow();
        let s = seed(&geo);

        // Serial reference: the shared-memory UnsteadyTracer in streak
        // mode. Note its release happens before the first advection of
        // that particle, same as the distributed protocol.
        let field = SampledField::new(&geo, &snap);
        let mut serial = UnsteadyTracer::new(vec![s], 0.5, true);
        for _ in 0..400 {
            serial.advect(&field);
        }
        // UnsteadyTracer seeds one particle at construction; the
        // distributed tracer releases only per step. Compare the common
        // suffix (particles released at steps 1..=30).
        let serial_streak = serial.streakline(0);

        for p in [1usize, 3] {
            let geo2 = geo.clone();
            let snap2 = snap.clone();
            let results = run_spmd(p, move |comm| {
                let owner: Vec<usize> = (0..geo2.fluid_count() as u32)
                    .map(|st| {
                        (geo2.position(st)[0] as usize * comm.size() / geo2.shape()[0])
                            .min(comm.size() - 1)
                    })
                    .collect();
                let field = SampledField::new(&geo2, &snap2);
                let mut tracer = DistStreaklines::new(comm, &owner, vec![seed(&geo2)], 0.5);
                for _ in 0..400 {
                    tracer.step(&geo2, &field).unwrap();
                }
                (tracer.gather().unwrap(), tracer.stats.clone())
            });
            let lines = results[0].0.as_ref().unwrap();
            let streak = &lines[0];
            assert_eq!(streak.len(), 400, "p={p}: 400 releases all alive");
            // The distributed streak (newest first) must match the
            // serial one's released particles (skip the construction
            // seed particle, which is the oldest = last in newest-first
            // order).
            for (a, b) in streak.iter().zip(serial_streak.iter()) {
                assert!((*a - *b).norm() < 1e-9, "p={p}");
            }
            if p > 1 {
                let migrations: u64 = results.iter().map(|r| r.1.migrations).sum();
                assert!(migrations > 0, "streak must cross slabs");
            }
        }
    }

    #[test]
    fn streak_particles_exit_at_the_outlet() {
        let (geo, snap) = uniform_flow();
        let s = seed(&geo);
        let results = run_spmd(2, move |comm| {
            let owner: Vec<usize> = (0..geo.fluid_count() as u32)
                .map(|st| {
                    (geo.position(st)[0] as usize * comm.size() / geo.shape()[0])
                        .min(comm.size() - 1)
                })
                .collect();
            let field = SampledField::new(&geo, &snap);
            let mut tracer = DistStreaklines::new(comm, &owner, vec![s], 1.0);
            for _ in 0..1500 {
                tracer.step(&geo, &field).unwrap();
            }
            tracer.global_live().unwrap()
        });
        // Releases continue, but the oldest particles have left: the
        // live count is bounded by the transit time, far below 1500.
        assert!(results[0] < 800, "live particles bounded: {}", results[0]);
        assert!(results[0] > 0);
    }

    #[test]
    fn wire_streak_particle_round_trip() {
        let p = StreakParticle {
            seed: 3,
            release: 77,
            pos: [0.5, -1.25, 9.0],
        };
        assert_eq!(StreakParticle::from_bytes(p.to_bytes()).unwrap(), p);
    }
}
