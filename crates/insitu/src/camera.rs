//! Pinhole camera: ray generation for the volume renderer and point
//! projection for the line renderer.

use hemelb_geometry::Vec3;
use serde::{Deserialize, Serialize};

/// A look-at pinhole camera.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Eye position (lattice units).
    pub eye: Vec3,
    /// Point looked at.
    pub target: Vec3,
    /// Up hint (not necessarily orthogonal to the view direction).
    pub up: Vec3,
    /// Vertical field of view, radians.
    pub fov_y: f64,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl Camera {
    /// A camera framing the axis-aligned box `[lo, hi]`, looking along
    /// `-view_dir` from far enough away to see everything.
    pub fn framing(lo: Vec3, hi: Vec3, view_dir: Vec3, width: u32, height: u32) -> Self {
        let centre = (lo + hi) * 0.5;
        let radius = (hi - lo).norm() * 0.5;
        let fov_y = 45f64.to_radians();
        let dist = radius / (fov_y / 2.0).tan() * 1.2;
        let dir = view_dir.normalised();
        Camera {
            eye: centre + dir * dist,
            target: centre,
            up: if dir.cross(Vec3::new(0.0, 0.0, 1.0)).norm() > 1e-6 {
                Vec3::new(0.0, 0.0, 1.0)
            } else {
                Vec3::new(0.0, 1.0, 0.0)
            },
            fov_y,
            width,
            height,
        }
    }

    /// Orthonormal camera basis `(right, up, forward)`.
    pub fn basis(&self) -> (Vec3, Vec3, Vec3) {
        let forward = (self.target - self.eye).normalised();
        let right = forward.cross(self.up).normalised();
        let up = right.cross(forward);
        (right, up, forward)
    }

    /// The world-space ray through pixel `(px, py)` (pixel centres).
    /// Returns `(origin, unit direction)`.
    pub fn ray(&self, px: u32, py: u32) -> (Vec3, Vec3) {
        let (right, up, forward) = self.basis();
        let aspect = self.width as f64 / self.height as f64;
        let tan_half = (self.fov_y / 2.0).tan();
        // NDC in [-1, 1] with y up.
        let x = (2.0 * (px as f64 + 0.5) / self.width as f64 - 1.0) * tan_half * aspect;
        let y = (1.0 - 2.0 * (py as f64 + 0.5) / self.height as f64) * tan_half;
        let dir = (forward + right * x + up * y).normalised();
        (self.eye, dir)
    }

    /// FNV-1a hash over the exact bit patterns of every camera
    /// parameter. Two cameras hash equal iff they produce identical
    /// rays, so the steering gateway can key its rendered-frame cache
    /// on this without ever comparing floats for "closeness".
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |bits: u64| {
            for b in bits.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for v in [self.eye, self.target, self.up] {
            mix(v.x.to_bits());
            mix(v.y.to_bits());
            mix(v.z.to_bits());
        }
        mix(self.fov_y.to_bits());
        mix(self.width as u64);
        mix(self.height as u64);
        h
    }

    /// Project a world point to pixel coordinates and view depth.
    /// Returns `None` behind the eye.
    pub fn project(&self, p: Vec3) -> Option<(f64, f64, f64)> {
        let (right, up, forward) = self.basis();
        let rel = p - self.eye;
        let depth = rel.dot(forward);
        if depth <= 1e-9 {
            return None;
        }
        let tan_half = (self.fov_y / 2.0).tan();
        let aspect = self.width as f64 / self.height as f64;
        let x = rel.dot(right) / (depth * tan_half * aspect);
        let y = rel.dot(up) / (depth * tan_half);
        let px = (x + 1.0) / 2.0 * self.width as f64;
        let py = (1.0 - y) / 2.0 * self.height as f64;
        Some((px, py, depth))
    }
}

/// Ray / axis-aligned-box intersection: `Some((t_near, t_far))` with
/// `t_far >= t_near.max(0)` when the ray hits `[lo, hi]`.
pub fn ray_box(origin: Vec3, dir: Vec3, lo: Vec3, hi: Vec3) -> Option<(f64, f64)> {
    let mut t0 = 0.0f64;
    let mut t1 = f64::INFINITY;
    for a in 0..3 {
        let (o, d, l, h) = match a {
            0 => (origin.x, dir.x, lo.x, hi.x),
            1 => (origin.y, dir.y, lo.y, hi.y),
            _ => (origin.z, dir.z, lo.z, hi.z),
        };
        if d.abs() < 1e-12 {
            if o < l || o > h {
                return None;
            }
        } else {
            let ta = (l - o) / d;
            let tb = (h - o) / d;
            let (near, far) = if ta < tb { (ta, tb) } else { (tb, ta) };
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return None;
            }
        }
    }
    Some((t0, t1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_cam() -> Camera {
        Camera::framing(
            Vec3::ZERO,
            Vec3::new(32.0, 16.0, 16.0),
            Vec3::new(0.0, -1.0, 0.0),
            64,
            48,
        )
    }

    #[test]
    fn basis_is_orthonormal() {
        let (r, u, f) = demo_cam().basis();
        for v in [r, u, f] {
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
        assert!(r.dot(u).abs() < 1e-12);
        assert!(r.dot(f).abs() < 1e-12);
        assert!(u.dot(f).abs() < 1e-12);
    }

    #[test]
    fn centre_pixel_ray_points_at_target() {
        let cam = demo_cam();
        let (_, dir) = cam.ray(cam.width / 2, cam.height / 2);
        let to_target = (cam.target - cam.eye).normalised();
        assert!(dir.dot(to_target) > 0.999, "centre ray ≈ view axis");
    }

    #[test]
    fn project_inverts_ray() {
        let cam = demo_cam();
        for (px, py) in [(10u32, 7u32), (40, 30), (0, 0), (63, 47)] {
            let (o, d) = cam.ray(px, py);
            let p = o + d * 25.0;
            let (qx, qy, depth) = cam.project(p).unwrap();
            assert!((qx - (px as f64 + 0.5)).abs() < 1e-6, "{qx} vs {px}");
            assert!((qy - (py as f64 + 0.5)).abs() < 1e-6);
            assert!(depth > 0.0 && depth <= 25.0 + 1e-9);
        }
    }

    #[test]
    fn points_behind_eye_do_not_project() {
        let cam = demo_cam();
        let (_, _, f) = cam.basis();
        assert!(cam.project(cam.eye - f * 5.0).is_none());
    }

    #[test]
    fn content_hash_separates_views_and_is_stable() {
        let cam = demo_cam();
        assert_eq!(cam.content_hash(), demo_cam().content_hash());
        let mut moved = cam;
        moved.eye.x += 1e-12; // even sub-visual nudges are a new view
        assert_ne!(cam.content_hash(), moved.content_hash());
        let mut resized = cam;
        resized.width += 1;
        assert_ne!(cam.content_hash(), resized.content_hash());
    }

    #[test]
    fn ray_box_hits_and_misses() {
        let lo = Vec3::ZERO;
        let hi = Vec3::new(4.0, 4.0, 4.0);
        // Straight through the middle.
        let hit = ray_box(Vec3::new(-1.0, 2.0, 2.0), Vec3::new(1.0, 0.0, 0.0), lo, hi);
        let (t0, t1) = hit.unwrap();
        assert!((t0 - 1.0).abs() < 1e-12);
        assert!((t1 - 5.0).abs() < 1e-12);
        // Parallel miss.
        assert!(ray_box(Vec3::new(-1.0, 5.0, 2.0), Vec3::new(1.0, 0.0, 0.0), lo, hi).is_none());
        // From inside: t0 clamps to 0.
        let (t0, t1) = ray_box(Vec3::new(2.0, 2.0, 2.0), Vec3::new(0.0, 0.0, 1.0), lo, hi).unwrap();
        assert_eq!(t0, 0.0);
        assert!((t1 - 2.0).abs() < 1e-12);
    }
}
