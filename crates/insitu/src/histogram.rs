//! In situ histograms — the paper's "physiologically relevant data
//! sets comprise wall stress distributions": the *distribution* of wall
//! shear stress is the clinical observable (low/oscillatory WSS marks
//! rupture-prone regions), and a histogram is its natural in situ form:
//! fixed-size, mergeable by summation, so the distributed reduction is
//! one small all-reduce regardless of domain size.

use hemelb_parallel::{CommResult, Communicator};
use serde::{Deserialize, Serialize};

/// A fixed-range histogram with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Bin counts.
    pub bins: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
    /// NaN samples. Kept out of every bin: NaN compares false against
    /// both edges, so before this counter existed a NaN sample fell
    /// through `(NaN * bins) as usize == 0` and silently inflated the
    /// lowest bin — exactly the bin clinicians read for low-WSS area.
    pub nan: u64,
}

impl Histogram {
    /// An empty histogram with `bins` bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi && bins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            nan: 0,
        }
    }

    /// Record one sample. NaN goes to the [`Histogram::nan`] counter,
    /// below-range to `underflow`, at-or-above-range to `overflow`;
    /// none of the three touches the bins.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            self.nan += 1;
        } else if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let t = (v - self.lo) / (self.hi - self.lo);
            let bin = ((t * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[bin] += 1;
        }
    }

    /// Record many samples.
    pub fn record_all<'a>(&mut self, values: impl IntoIterator<Item = &'a f64>) {
        for &v in values {
            self.record(v);
        }
    }

    /// Total recorded samples (including under/overflow and NaN).
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow + self.nan
    }

    /// Merge another histogram of identical binning into this one.
    ///
    /// # Panics
    /// Panics on mismatched binning.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo);
        assert_eq!(self.hi, other.hi);
        assert_eq!(self.bins.len(), other.bins.len());
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.nan += other.nan;
    }

    /// The value below which `q` (0..1) of the in-range samples fall
    /// (linear within the bin). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * in_range as f64).ceil().max(1.0) as u64;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut acc = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            if acc + c >= target {
                let into = (target - acc) as f64 / c.max(1) as f64;
                return Some(self.lo + (i as f64 + into) * width);
            }
            acc += c;
        }
        Some(self.hi)
    }

    /// Fraction of in-range samples below `v` — e.g. the clinically
    /// interesting "low-WSS area fraction".
    pub fn fraction_below(&self, v: f64) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut acc = 0.0;
        for (i, &c) in self.bins.iter().enumerate() {
            let edge_lo = self.lo + i as f64 * width;
            let edge_hi = edge_lo + width;
            if v >= edge_hi {
                acc += c as f64;
            } else if v > edge_lo {
                acc += c as f64 * (v - edge_lo) / width;
            }
        }
        acc / in_range as f64
    }

    /// Collective: merge every rank's histogram; all ranks receive the
    /// global result (bin counts fit exactly in f64 up to 2^53).
    pub fn all_reduce(&self, comm: &Communicator) -> CommResult<Histogram> {
        let mut packed: Vec<f64> = Vec::with_capacity(self.bins.len() + 3);
        packed.push(self.underflow as f64);
        packed.push(self.overflow as f64);
        packed.push(self.nan as f64);
        packed.extend(self.bins.iter().map(|&c| c as f64));
        let merged = comm.all_reduce_f64_vec(packed, |a, b| a + b)?;
        Ok(Histogram {
            lo: self.lo,
            hi: self.hi,
            underflow: merged[0] as u64,
            overflow: merged[1] as u64,
            nan: merged[2] as u64,
            bins: merged[3..].iter().map(|&c| c as u64).collect(),
        })
    }

    /// Render as a fixed-width ASCII bar chart (steering-client style).
    pub fn ascii(&self, width: usize) -> String {
        let max = self.bins.iter().cloned().max().unwrap_or(0).max(1);
        let bin_w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar = "#".repeat((c as usize * width / max as usize).min(width));
            out.push_str(&format!(
                "{:>10.3e} | {:<width$} {}\n",
                self.lo + i as f64 * bin_w,
                bar,
                c,
                width = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_parallel::run_spmd;

    #[test]
    fn binning_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-0.1); // underflow
        h.record(0.0); // bin 0
        h.record(9.999); // bin 9
        h.record(10.0); // overflow
        h.record(5.0); // bin 5
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.bins[0], 1);
        assert_eq!(h.bins[9], 1);
        assert_eq!(h.bins[5], 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn nan_samples_never_touch_the_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(f64::NAN);
        h.record(-f64::NAN);
        h.record(0.5);
        assert_eq!(h.nan, 2);
        assert_eq!(h.bins[0], 1, "only the real sample lands in bin 0");
        assert_eq!(h.underflow, 0);
        assert_eq!(h.overflow, 0);
        assert_eq!(h.total(), 3);
        // Quantiles are computed over in-range samples only, so NaNs
        // cannot shift them.
        assert_eq!(h.quantile(0.5), Some(1.0));
    }

    #[test]
    fn infinities_go_to_under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.bins.iter().sum::<u64>(), 0);
    }

    #[test]
    fn nan_counts_merge_and_all_reduce() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let mut b = Histogram::new(0.0, 1.0, 4);
        a.record(f64::NAN);
        b.record(f64::NAN);
        b.record(0.3);
        a.merge(&b);
        assert_eq!(a.nan, 2);

        let results = run_spmd(3, |comm| {
            let mut h = Histogram::new(0.0, 1.0, 4);
            h.record(f64::NAN);
            h.record(2.0); // overflow
            h.record(0.1);
            h.all_reduce(comm).unwrap()
        });
        for r in &results {
            assert_eq!(r.nan, 3);
            assert_eq!(r.overflow, 3);
            assert_eq!(r.bins[0], 3);
        }
    }

    #[test]
    fn quantiles_of_uniform_data() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..10_000 {
            h.record(i as f64 / 10_000.0);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 0.5).abs() < 0.02, "{median}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 0.9).abs() < 0.02, "{p90}");
        assert!((h.fraction_below(0.25) - 0.25).abs() < 0.02);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new(0.0, 1.0, 8);
        let mut b = Histogram::new(0.0, 1.0, 8);
        let mut both = Histogram::new(0.0, 1.0, 8);
        for i in 0..50 {
            let v = (i as f64 * 0.37) % 1.2 - 0.1;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn distributed_reduction_matches_serial() {
        // Each rank records a disjoint slice; the all-reduced histogram
        // equals recording everything on one rank.
        let mut serial = Histogram::new(0.0, 2.0, 16);
        for i in 0..400 {
            serial.record((i as f64 * 0.005) % 2.1);
        }
        let results = run_spmd(4, |comm| {
            let mut h = Histogram::new(0.0, 2.0, 16);
            for i in (comm.rank()..400).step_by(comm.size()) {
                h.record((i as f64 * 0.005) % 2.1);
            }
            h.all_reduce(comm).unwrap()
        });
        for r in &results {
            assert_eq!(r.bins, serial.bins);
            assert_eq!(r.overflow, serial.overflow);
        }
    }

    #[test]
    fn wss_distribution_of_a_real_flow() {
        // The end-to-end observable: the WSS histogram of a developed
        // tube flow is unimodal away from zero (no negative stresses,
        // no huge outliers).
        use hemelb_core::{Solver, SolverConfig};
        use hemelb_geometry::VesselBuilder;
        use std::sync::Arc;
        let geo = Arc::new(VesselBuilder::straight_tube(20.0, 4.0).voxelise(1.0));
        let mut solver = Solver::new(geo.clone(), SolverConfig::pressure_driven(1.01, 0.99));
        solver.step_n(400);
        let snap = solver.snapshot();
        let wss = snap.wall_shear_stress(&geo, solver.config().viscosity());
        let wall_values: Vec<f64> = wss.iter().cloned().filter(|&v| v > 0.0).collect();
        assert!(!wall_values.is_empty());
        let max = wall_values.iter().cloned().fold(0.0, f64::max);
        let mut h = Histogram::new(0.0, max * 1.01, 20);
        h.record_all(&wall_values);
        assert_eq!(h.total() as usize, wall_values.len());
        assert_eq!(h.underflow, 0);
        assert_eq!(h.overflow, 0);
        // The distribution has spread (staircase walls) but a clear bulk.
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 > 0.0 && p50 < max);
        let text = h.ascii(30);
        assert!(text.lines().count() == 20);
    }
}
