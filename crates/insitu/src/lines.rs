//! Line integrals: streamlines, pathlines and streak-lines, serial and
//! distributed.
//!
//! These are the *hard* row of the paper's Table I: "algorithms which
//! need a lot of neighbourhood searching, such as path-lines, are
//! challenging to implement in a distributed memory environment" — a
//! field line wanders across subdomains, so the integrating rank changes
//! mid-line and the particle must be **handed off**, paying a message
//! per crossing; and because seeds cluster where the user looks, the
//! work distribution is inherently unbalanced.

use crate::field::SampledField;
use hemelb_geometry::{SparseGeometry, Vec3};
use hemelb_parallel::{CommResult, Communicator, Wire, WireReader, WireWriter};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Integration parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// RK4 step length (cells).
    pub h: f64,
    /// Maximum integration steps per line.
    pub max_steps: usize,
    /// Terminate when the local speed falls below this.
    pub min_speed: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            h: 0.5,
            max_steps: 2000,
            min_speed: 1e-8,
        }
    }
}

/// One RK4 step through a steady velocity field. `None` when any stage
/// leaves the fluid.
pub fn rk4_step<F>(v: &F, p: Vec3, h: f64) -> Option<Vec3>
where
    F: Fn(Vec3) -> Option<[f64; 3]>,
{
    let k1 = v(p)?;
    let k2 = v(p + Vec3::from(k1) * (h / 2.0))?;
    let k3 = v(p + Vec3::from(k2) * (h / 2.0))?;
    let k4 = v(p + Vec3::from(k3) * h)?;
    let d = Vec3::new(
        (k1[0] + 2.0 * k2[0] + 2.0 * k3[0] + k4[0]) / 6.0,
        (k1[1] + 2.0 * k2[1] + 2.0 * k3[1] + k4[1]) / 6.0,
        (k1[2] + 2.0 * k2[2] + 2.0 * k3[2] + k4[2]) / 6.0,
    );
    Some(p + d * h)
}

/// Trace one steady streamline from `seed` (forward direction).
pub fn trace_streamline(field: &SampledField<'_>, seed: Vec3, cfg: &TraceConfig) -> Vec<Vec3> {
    let v = |p: Vec3| field.velocity_at(p);
    let mut line = vec![seed];
    let mut p = seed;
    for _ in 0..cfg.max_steps {
        let Some(vel) = field.velocity_at(p) else {
            break;
        };
        let speed = (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]).sqrt();
        if speed < cfg.min_speed {
            break;
        }
        let Some(q) = rk4_step(&v, p, cfg.h) else {
            break;
        };
        line.push(q);
        // Stop once the containing cell leaves the fluid (interpolation
        // can still succeed slightly outside; the distributed tracer
        // terminates on cell ownership, so the serial one must too).
        if !field.in_fluid(q) {
            break;
        }
        p = q;
    }
    line
}

/// Unsteady tracers advanced against a sequence of snapshots: call
/// [`UnsteadyTracer::advect`] once per solver step.
///
/// * Pathlines: trajectories of the initial seeds.
/// * Streak-lines: all particles released from each seed point so far,
///   connected in release order.
#[derive(Debug, Clone)]
pub struct UnsteadyTracer {
    /// Seed points (streak sources / pathline origins).
    pub seeds: Vec<Vec3>,
    /// `particles[k] = (seed_index, release_step, position)`; inactive
    /// particles are retained for line assembly but not advanced.
    pub particles: Vec<(u32, u64, Vec3, bool)>,
    /// Recorded pathline vertices per initial seed.
    pub pathlines: Vec<Vec<Vec3>>,
    /// Whether a new particle is released from each seed every step
    /// (streak-line mode).
    pub continuous_release: bool,
    step: u64,
    h: f64,
}

impl UnsteadyTracer {
    /// Seed the tracer. `continuous_release = true` gives streak-lines;
    /// false gives pure pathlines.
    pub fn new(seeds: Vec<Vec3>, h: f64, continuous_release: bool) -> Self {
        let particles = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u32, 0, s, true))
            .collect();
        let pathlines = seeds.iter().map(|&s| vec![s]).collect();
        UnsteadyTracer {
            seeds,
            particles,
            pathlines,
            continuous_release,
            step: 0,
            h,
        }
    }

    /// Advance all live particles one step through the *current* field
    /// and (in streak mode) release a new particle per seed.
    pub fn advect(&mut self, field: &SampledField<'_>) {
        self.step += 1;
        for part in self.particles.iter_mut() {
            if !part.3 {
                continue;
            }
            let v = |p: Vec3| field.velocity_at(p);
            match rk4_step(&v, part.2, self.h) {
                Some(q) => {
                    part.2 = q;
                    if part.1 == 0 {
                        // An original seed: extend its pathline.
                        self.pathlines[part.0 as usize].push(q);
                    }
                }
                None => part.3 = false,
            }
        }
        if self.continuous_release {
            for (i, &s) in self.seeds.iter().enumerate() {
                self.particles.push((i as u32, self.step, s, true));
            }
        }
    }

    /// The streak-line of seed `i`: particle positions ordered outward
    /// from the seed (most recently released first).
    pub fn streakline(&self, seed: u32) -> Vec<Vec3> {
        let mut pts: Vec<(u64, Vec3)> = self
            .particles
            .iter()
            .filter(|p| p.0 == seed)
            .map(|p| (p.1, p.2))
            .collect();
        pts.sort_by_key(|p| std::cmp::Reverse(p.0));
        pts.into_iter().map(|p| p.1).collect()
    }

    /// Live particle count.
    pub fn active(&self) -> usize {
        self.particles.iter().filter(|p| p.3).count()
    }
}

// ---------------------------------------------------------------------------
// Distributed tracing with hand-off
// ---------------------------------------------------------------------------

/// A particle in flight between ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireParticle {
    /// Line id.
    pub id: u32,
    /// Integration steps completed.
    pub steps: u32,
    /// Position.
    pub pos: [f64; 3],
}

impl Wire for WireParticle {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.id);
        w.put_u32(self.steps);
        w.put(&self.pos);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        Ok(WireParticle {
            id: r.get_u32()?,
            steps: r.get_u32()?,
            pos: r.get()?,
        })
    }
}

/// Statistics of one distributed trace (per rank).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Integration steps this rank computed (the work metric whose
    /// max/mean is Table I's "load balance" for line integrals).
    pub steps_computed: u64,
    /// Particles handed off to another rank.
    pub handoffs: u64,
    /// Termination-protocol rounds (synchronisation points).
    pub rounds: u64,
}

/// Which rank owns the point `p` (owner of the nearest fluid site of the
/// containing cell), if any.
pub fn owner_of_point(geo: &SparseGeometry, owner: &[usize], p: Vec3) -> Option<usize> {
    geo.site_at(p.x.round() as i64, p.y.round() as i64, p.z.round() as i64)
        .map(|s| owner[s as usize])
}

/// One recorded line segment: `(line id, step-of-first-vertex, vertices)`.
pub type LineSegment = (u32, u32, Vec<Vec3>);

/// Distributed steady streamline tracing with particle hand-off.
/// Collective; every rank passes the full seed list. Returns this rank's
/// recorded segments `(line id, step-of-first-vertex, vertices)` and its
/// stats. Segments from all ranks stitch into complete lines (see
/// [`stitch_segments`]).
pub fn trace_distributed(
    comm: &Communicator,
    geo: &SparseGeometry,
    field: &SampledField<'_>,
    owner: &[usize],
    seeds: &[Vec3],
    cfg: &TraceConfig,
) -> CommResult<(Vec<LineSegment>, TraceStats)> {
    let me = comm.rank();
    let mut stats = TraceStats::default();
    let mut segments: Vec<LineSegment> = Vec::new();

    // Seeds I own (seeds outside any fluid cell are dropped, like
    // seeds placed in the vessel wall in practice).
    let mut queue: Vec<WireParticle> = seeds
        .iter()
        .enumerate()
        .filter(|(_, &s)| owner_of_point(geo, owner, s) == Some(me))
        .map(|(i, &s)| WireParticle {
            id: i as u32,
            steps: 0,
            pos: s.to_array(),
        })
        .collect();

    loop {
        // Advance every queued particle until it finishes or leaves my
        // subdomain. Particles are independent, so the batch runs in
        // parallel; the collect preserves batch order, and the serial
        // merge below keeps segments and outgoing queues in exactly the
        // order the serial loop produced.
        let mut outgoing: Vec<Vec<WireParticle>> = vec![Vec::new(); comm.size()];
        let batch: Vec<WireParticle> = std::mem::take(&mut queue);
        let advanced: Vec<(WireParticle, u32, Vec<Vec3>, Option<usize>)> = batch
            .into_par_iter()
            .map(|mut part| {
                let mut verts = vec![Vec3::from(part.pos)];
                let start_step = part.steps;
                let mut dest = None;
                loop {
                    if part.steps as usize >= cfg.max_steps {
                        break;
                    }
                    let p = Vec3::from(part.pos);
                    let Some(vel) = field.velocity_at(p) else {
                        break;
                    };
                    let speed = (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]).sqrt();
                    if speed < cfg.min_speed {
                        break;
                    }
                    let v = |q: Vec3| field.velocity_at(q);
                    let Some(next) = rk4_step(&v, p, cfg.h) else {
                        break;
                    };
                    part.pos = next.to_array();
                    part.steps += 1;
                    verts.push(next);
                    match owner_of_point(geo, owner, next) {
                        Some(o) if o == me => {}
                        Some(o) => {
                            // Hand off to the owning rank.
                            dest = Some(o);
                            break;
                        }
                        None => break, // left the fluid
                    }
                }
                (part, start_step, verts, dest)
            })
            .collect();
        for (part, start_step, verts, dest) in advanced {
            stats.steps_computed += (part.steps - start_step) as u64;
            if let Some(o) = dest {
                outgoing[o].push(part);
                stats.handoffs += 1;
            }
            if verts.len() > 1 {
                segments.push((part.id, start_step, verts));
            }
        }

        // Exchange in-flight particles; stop when nothing moves anywhere.
        stats.rounds += 1;
        let in_flight: u64 = outgoing.iter().map(|b| b.len() as u64).sum();
        exchange_particles(comm, &outgoing, &mut queue)?;
        let moving = comm.all_reduce_u64(in_flight, |a, b| a + b)?;
        if moving == 0 {
            break;
        }
    }
    Ok((segments, stats))
}

/// One hand-off round: counts travel in a small all-to-all (the round's
/// control/synchronisation), particle payloads in point-to-point
/// messages under a visualisation tag (so Table I's "communication
/// cost" attribution sees them).
pub(crate) fn exchange_particles<T: Wire + Copy>(
    comm: &Communicator,
    outgoing: &[Vec<T>],
    queue: &mut Vec<T>,
) -> CommResult<()> {
    const T_HANDOFF: hemelb_parallel::Tag = hemelb_parallel::Tag::vis(30);
    let counts: Vec<bytes::Bytes> = outgoing
        .iter()
        .map(|b| (b.len() as u64).to_bytes())
        .collect();
    let incoming_counts = comm.all_to_all(counts)?;
    for (dst, batch) in outgoing.iter().enumerate() {
        if !batch.is_empty() && dst != comm.rank() {
            let mut w = WireWriter::with_capacity(8 + batch.len() * 32);
            w.put_usize(batch.len());
            for p in batch {
                p.encode(&mut w);
            }
            comm.send(dst, T_HANDOFF, w.finish())?;
        }
    }
    // Locally routed particles (possible when a seed rounds to a cell
    // owned by this rank again) skip the network.
    if !outgoing[comm.rank()].is_empty() {
        queue.extend(outgoing[comm.rank()].iter().copied());
    }
    for (src, count_payload) in incoming_counts.into_iter().enumerate() {
        if src == comm.rank() {
            continue;
        }
        let n = u64::from_bytes(count_payload)?;
        if n == 0 {
            continue;
        }
        let payload = comm.recv(src, T_HANDOFF)?;
        let mut r = WireReader::new(payload);
        let m = r.get_usize()?;
        for _ in 0..m {
            queue.push(T::decode(&mut r)?);
        }
    }
    Ok(())
}

/// Stitch gathered segments into complete polylines indexed by line id.
pub fn stitch_segments(mut segments: Vec<(u32, u32, Vec<Vec3>)>, n_lines: usize) -> Vec<Vec<Vec3>> {
    segments.sort_by_key(|(id, start, _)| (*id, *start));
    let mut lines = vec![Vec::new(); n_lines];
    for (id, _, verts) in segments {
        let line = &mut lines[id as usize];
        let skip = usize::from(!line.is_empty()); // duplicate joint vertex
        line.extend(verts.into_iter().skip(skip));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_core::FieldSnapshot;
    use hemelb_geometry::VesselBuilder;
    use hemelb_parallel::run_spmd;

    fn uniform_flow() -> (SparseGeometry, FieldSnapshot) {
        let geo = VesselBuilder::straight_tube(32.0, 5.0).voxelise(1.0);
        let n = geo.fluid_count();
        let snap = FieldSnapshot {
            step: 0,
            rho: vec![1.0; n],
            u: vec![[0.05, 0.0, 0.0]; n],
            shear: vec![0.0; n],
        };
        (geo, snap)
    }

    fn axis_seed(geo: &SparseGeometry) -> Vec3 {
        Vec3::new(
            2.0,
            (geo.shape()[1] as f64 - 1.0) / 2.0,
            (geo.shape()[2] as f64 - 1.0) / 2.0,
        )
    }

    #[test]
    fn rk4_is_exact_for_constant_fields() {
        let v = |_p: Vec3| Some([0.1, 0.0, 0.0]);
        let q = rk4_step(&v, Vec3::ZERO, 1.0).unwrap();
        assert!((q.x - 0.1).abs() < 1e-14);
        assert_eq!(q.y, 0.0);
    }

    #[test]
    fn streamline_follows_uniform_flow_downstream() {
        let (geo, snap) = uniform_flow();
        let field = SampledField::new(&geo, &snap);
        let line = trace_streamline(&field, axis_seed(&geo), &TraceConfig::default());
        assert!(line.len() > 10, "line should develop: {} pts", line.len());
        // Monotone in x, constant in y/z.
        for w in line.windows(2) {
            assert!(w[1].x > w[0].x);
            assert!((w[1].y - w[0].y).abs() < 1e-9);
        }
        // Line exits near the outlet end.
        assert!(line.last().unwrap().x > 25.0);
    }

    #[test]
    fn streamline_stops_in_still_fluid() {
        let (geo, mut snap) = uniform_flow();
        for u in snap.u.iter_mut() {
            *u = [0.0; 3];
        }
        let field = SampledField::new(&geo, &snap);
        let line = trace_streamline(&field, axis_seed(&geo), &TraceConfig::default());
        assert_eq!(line.len(), 1, "no motion in still fluid");
    }

    #[test]
    fn pathlines_grow_one_vertex_per_step() {
        let (geo, snap) = uniform_flow();
        let field = SampledField::new(&geo, &snap);
        let mut tracer = UnsteadyTracer::new(vec![axis_seed(&geo)], 0.5, false);
        for _ in 0..10 {
            tracer.advect(&field);
        }
        assert_eq!(tracer.pathlines[0].len(), 11);
        assert_eq!(tracer.particles.len(), 1, "no release in pathline mode");
    }

    #[test]
    fn streaklines_release_and_order_particles() {
        let (geo, snap) = uniform_flow();
        let field = SampledField::new(&geo, &snap);
        let mut tracer = UnsteadyTracer::new(vec![axis_seed(&geo)], 0.5, true);
        for _ in 0..8 {
            tracer.advect(&field);
        }
        let streak = tracer.streakline(0);
        assert_eq!(streak.len(), 9, "seed + 8 releases");
        // The streak is ordered outward from the seed: newest particle
        // (least advected) first, oldest (farthest downstream) last.
        for w in streak.windows(2) {
            assert!(w[1].x >= w[0].x - 1e-12);
        }
    }

    #[test]
    fn distributed_trace_matches_serial() {
        let (geo, snap) = uniform_flow();
        let seeds = vec![
            axis_seed(&geo),
            axis_seed(&geo) + Vec3::new(0.0, 1.5, 0.0),
            axis_seed(&geo) + Vec3::new(0.0, -1.5, 1.0),
        ];
        let cfg = TraceConfig::default();

        let field = SampledField::new(&geo, &snap);
        let serial: Vec<Vec<Vec3>> = seeds
            .iter()
            .map(|&s| trace_streamline(&field, s, &cfg))
            .collect();

        for p in [1usize, 2, 4] {
            let geo2 = geo.clone();
            let snap2 = snap.clone();
            let seeds2 = seeds.clone();
            let results = run_spmd(p, move |comm| {
                // Slab decomposition along x.
                let owner: Vec<usize> = (0..geo2.fluid_count() as u32)
                    .map(|s| {
                        (geo2.position(s)[0] as usize * comm.size() / geo2.shape()[0])
                            .min(comm.size() - 1)
                    })
                    .collect();
                let field = SampledField::new(&geo2, &snap2);
                let (segs, stats) =
                    trace_distributed(comm, &geo2, &field, &owner, &seeds2, &cfg).unwrap();
                (segs, stats)
            });
            // Stitch across ranks.
            let mut all_segments = Vec::new();
            let mut total_handoffs = 0;
            for (segs, stats) in results {
                all_segments.extend(segs);
                total_handoffs += stats.handoffs;
            }
            let lines = stitch_segments(all_segments, seeds.len());
            for (i, line) in lines.iter().enumerate() {
                assert_eq!(line.len(), serial[i].len(), "p={p} line {i}");
                for (a, b) in line.iter().zip(&serial[i]) {
                    assert!((*a - *b).norm() < 1e-9, "p={p} line {i}");
                }
            }
            if p > 1 {
                assert!(total_handoffs > 0, "lines must cross slab boundaries");
            }
        }
    }

    #[test]
    fn wire_particle_round_trip() {
        let p = WireParticle {
            id: 7,
            steps: 123,
            pos: [1.5, -2.25, 0.0],
        };
        assert_eq!(WireParticle::from_bytes(p.to_bytes()).unwrap(), p);
    }
}
