//! # hemelb-octree
//!
//! The multi-resolution data structure of the paper's §V: an octree over
//! the sparse lattice whose internal nodes carry conservative field
//! aggregates, enabling
//!
//! * **data reduction** — a level-ℓ cut of the tree is a downsampled
//!   field whose size shrinks geometrically with ℓ;
//! * **progressive streaming** — nodes linearised level-by-level in
//!   Morton order (the Pascucci-style hierarchical indexing the paper
//!   cites) so that any prefix of the stream is a complete coarse view;
//! * **context & detail** — region-of-interest cuts that keep a coarse
//!   context everywhere but refine inside a user-selected box.
//!
//! ```
//! use hemelb_geometry::VesselBuilder;
//! use hemelb_octree::FieldOctree;
//!
//! let geo = VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0);
//! let n = geo.fluid_count();
//! // A synthetic speed field (normally a solver snapshot).
//! let speed: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
//! let tree = FieldOctree::build(&geo, &speed);
//! assert!(tree.depth() >= 3);
//! // Coarser cuts are smaller.
//! assert!(tree.cut_at_level(1).len() < tree.cut_at_level(3).len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;
pub mod roi;
pub mod stream;
pub mod tree;

pub use distributed::{distributed_level_cut, CutCell};
pub use roi::RoiCut;
pub use stream::{StreamEntry, StreamOrder};
pub use tree::{Aggregates, FieldOctree, OctreeNode};
