//! Progressive, hierarchically indexed streaming of octree cuts.
//!
//! Pascucci & Frank's observation (paper reference [10]): if the nodes
//! are emitted level by level, Morton-ordered within each level, then
//! *every prefix* of the stream contains a complete (if coarse)
//! representation, and refinement arrives in a cache/IO-friendly order.
//! This is the transport format the in situ layer uses to ship context
//! first and detail later.

use crate::tree::{FieldOctree, OctreeNode, NONE};
use serde::{Deserialize, Serialize};

/// One streamed node record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamEntry {
    /// Index into [`FieldOctree::nodes`].
    pub node: u32,
    /// Depth of the node.
    pub level: u8,
    /// Morton code of the node's origin at its level (the hierarchical
    /// index).
    pub morton: u64,
}

/// The full streaming order of a tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamOrder {
    entries: Vec<StreamEntry>,
    /// First entry index of each level (for prefix arithmetic).
    level_starts: Vec<usize>,
}

/// Interleave bits for the hierarchical index (duplicated from the
/// partitioner to keep the crates independent).
fn morton3(x: u32, y: u32, z: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut x = v as u64 & 0x1f_ffff;
        x = (x | x << 32) & 0x1f00000000ffff;
        x = (x | x << 16) & 0x1f0000ff0000ff;
        x = (x | x << 8) & 0x100f00f00f00f00f;
        x = (x | x << 4) & 0x10c30c30c30c30c3;
        x = (x | x << 2) & 0x1249249249249249;
        x
    }
    spread(x) | spread(y) << 1 | spread(z) << 2
}

impl StreamOrder {
    /// Linearise the tree: breadth-first by level, Morton within level.
    pub fn build(tree: &FieldOctree) -> Self {
        let mut entries: Vec<StreamEntry> = tree
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, n)| StreamEntry {
                node: i as u32,
                level: n.level,
                morton: morton3(
                    n.origin[0] / n.size.max(1),
                    n.origin[1] / n.size.max(1),
                    n.origin[2] / n.size.max(1),
                ),
            })
            .collect();
        entries.sort_unstable_by_key(|e| (e.level, e.morton));
        let max_level = entries.last().map(|e| e.level).unwrap_or(0);
        let mut level_starts = Vec::with_capacity(max_level as usize + 2);
        let mut cur = 0usize;
        for l in 0..=max_level {
            while cur < entries.len() && entries[cur].level < l {
                cur += 1;
            }
            level_starts.push(cur);
        }
        level_starts.push(entries.len());
        StreamOrder {
            entries,
            level_starts,
        }
    }

    /// All entries in stream order.
    pub fn entries(&self) -> &[StreamEntry] {
        &self.entries
    }

    /// The stream prefix that delivers every node of level ≤ `level`.
    pub fn prefix_for_level(&self, level: u8) -> &[StreamEntry] {
        let end = self
            .level_starts
            .get(level as usize + 1)
            .copied()
            .unwrap_or(self.entries.len());
        &self.entries[..end]
    }

    /// Bytes to transmit the prefix for `level` (48 B per node record,
    /// matching [`FieldOctree::bytes_at_level`]'s record size).
    pub fn prefix_bytes(&self, level: u8) -> usize {
        self.prefix_for_level(level).len() * 48
    }

    /// Check the defining prefix property: the nodes in
    /// `prefix_for_level(l)` with `level == l` *plus* shallower leaves
    /// tile all fluid sites. Returns the tiled site count.
    pub fn prefix_site_coverage(&self, tree: &FieldOctree, level: u8) -> u64 {
        self.prefix_for_level(level)
            .iter()
            .map(|e| &tree.nodes()[e.node as usize])
            .filter(|n| n.level == level || (n.level < level && is_leaf(n)))
            .map(|n| n.agg.count as u64)
            .sum()
    }
}

fn is_leaf(n: &OctreeNode) -> bool {
    n.children.iter().all(|&c| c == NONE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::FieldOctree;
    use hemelb_geometry::VesselBuilder;

    fn tree() -> (hemelb_geometry::SparseGeometry, FieldOctree) {
        let geo = VesselBuilder::aneurysm(24.0, 4.0, 6.0).voxelise(1.0);
        let field: Vec<f64> = (0..geo.fluid_count()).map(|i| i as f64).collect();
        let t = FieldOctree::build(&geo, &field);
        (geo, t)
    }

    #[test]
    fn stream_is_sorted_by_level_then_morton() {
        let (_, t) = tree();
        let order = StreamOrder::build(&t);
        for w in order.entries().windows(2) {
            assert!(
                (w[0].level, w[0].morton) <= (w[1].level, w[1].morton),
                "stream must be level-major Morton order"
            );
        }
        assert_eq!(order.entries().len(), t.nodes().len());
    }

    #[test]
    fn every_prefix_is_a_complete_coarse_view() {
        let (geo, t) = tree();
        let order = StreamOrder::build(&t);
        for level in 0..=t.depth() {
            let covered = order.prefix_site_coverage(&t, level);
            assert_eq!(
                covered,
                geo.fluid_count() as u64,
                "level-{level} prefix must tile all sites"
            );
        }
    }

    #[test]
    fn prefixes_nest() {
        let (_, t) = tree();
        let order = StreamOrder::build(&t);
        let mut last = 0usize;
        for level in 0..=t.depth() {
            let len = order.prefix_for_level(level).len();
            assert!(len >= last);
            last = len;
        }
        assert_eq!(last, t.nodes().len(), "deepest prefix is everything");
    }

    #[test]
    fn prefix_bytes_grow_geometrically() {
        let (_, t) = tree();
        let order = StreamOrder::build(&t);
        let coarse = order.prefix_bytes(1);
        let fine = order.prefix_bytes(t.depth());
        assert!(fine > coarse * 4, "coarse={coarse} fine={fine}");
    }
}
