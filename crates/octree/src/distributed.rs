//! Distributed in situ downsampling — §V's actual exascale deployment:
//! "simulation data must be stored or cached in a hierarchical manner"
//! *on the simulation ranks*, so that only the coarse representation
//! ever crosses the network.
//!
//! Each rank bins its **own** sites into the level-ℓ cells of the
//! global octree grid and ships per-cell aggregates to the master,
//! which merges them. The traffic is `O(cells at level ℓ)` instead of
//! `O(sites)` — the measured data-reduction factor of experiment E9,
//! now with real communication.

use crate::tree::Aggregates;
use hemelb_geometry::SparseGeometry;
use hemelb_parallel::{CommResult, Communicator, Tag, WireReader, WireWriter};
use std::collections::HashMap;

const T_CUT: Tag = Tag::vis(40);

/// One level-ℓ cell's aggregate, keyed by its cell coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct CutCell {
    /// Cell coordinates at level ℓ (lattice position / cell size).
    pub cell: [u32; 3],
    /// Merged field aggregates of the sites inside.
    pub agg: Aggregates,
}

/// Bin `field[local i]` (for this rank's sites, in `local_sites` order)
/// into level-ℓ cells of edge `cell_size`, returning the local partial
/// aggregates sorted by cell key.
pub fn local_cut(
    geo: &SparseGeometry,
    local_sites: &[u32],
    field: &[f64],
    cell_size: u32,
) -> Vec<CutCell> {
    assert_eq!(local_sites.len(), field.len());
    assert!(cell_size > 0);
    let mut cells: HashMap<[u32; 3], (u32, f64, f64, f64)> = HashMap::new();
    for (&g, &v) in local_sites.iter().zip(field) {
        let p = geo.position(g);
        let key = [p[0] / cell_size, p[1] / cell_size, p[2] / cell_size];
        let e = cells
            .entry(key)
            .or_insert((0, 0.0, f64::INFINITY, f64::NEG_INFINITY));
        e.0 += 1;
        e.1 += v;
        e.2 = e.2.min(v);
        e.3 = e.3.max(v);
    }
    let mut out: Vec<CutCell> = cells
        .into_iter()
        .map(|(cell, (count, sum, min, max))| CutCell {
            cell,
            agg: Aggregates {
                count,
                mean: sum / count as f64,
                min,
                max,
            },
        })
        .collect();
    out.sort_by_key(|c| c.cell);
    out
}

fn merge(a: &Aggregates, b: &Aggregates) -> Aggregates {
    let count = a.count + b.count;
    Aggregates {
        count,
        mean: (a.mean * a.count as f64 + b.mean * b.count as f64) / count as f64,
        min: a.min.min(b.min),
        max: a.max.max(b.max),
    }
}

/// Statistics of one distributed cut.
#[derive(Debug, Clone, Default)]
pub struct CutStats {
    /// Cells this rank contributed.
    pub local_cells: usize,
    /// Bytes this rank shipped.
    pub bytes_sent: usize,
}

/// Collective: reduce the distributed field to the level-ℓ cut at the
/// master. Every rank passes its own `local_sites`/`field`; rank 0
/// receives the merged global cells (sorted by cell key), others `None`.
pub fn distributed_level_cut(
    comm: &Communicator,
    geo: &SparseGeometry,
    local_sites: &[u32],
    field: &[f64],
    cell_size: u32,
) -> CommResult<(Option<Vec<CutCell>>, CutStats)> {
    let mine = local_cut(geo, local_sites, field, cell_size);
    let mut w = WireWriter::with_capacity(8 + mine.len() * 40);
    w.put_usize(mine.len());
    for c in &mine {
        w.put_u32(c.cell[0]);
        w.put_u32(c.cell[1]);
        w.put_u32(c.cell[2]);
        w.put_u32(c.agg.count);
        w.put_f64(c.agg.mean);
        w.put_f64(c.agg.min);
        w.put_f64(c.agg.max);
    }
    let payload = w.finish();
    let stats = CutStats {
        local_cells: mine.len(),
        bytes_sent: payload.len(),
    };

    if comm.is_master() {
        let mut merged: HashMap<[u32; 3], Aggregates> =
            mine.into_iter().map(|c| (c.cell, c.agg)).collect();
        // Per-source receives keep repeated cuts round-safe and the merge
        // order deterministic (see `Communicator::gather`).
        for src in 1..comm.size() {
            let data = comm.recv(src, T_CUT)?;
            let mut r = WireReader::new(data);
            let n = r.get_usize()?;
            for _ in 0..n {
                let cell = [r.get_u32()?, r.get_u32()?, r.get_u32()?];
                let agg = Aggregates {
                    count: r.get_u32()?,
                    mean: r.get_f64()?,
                    min: r.get_f64()?,
                    max: r.get_f64()?,
                };
                merged
                    .entry(cell)
                    .and_modify(|a| *a = merge(a, &agg))
                    .or_insert(agg);
            }
        }
        let mut out: Vec<CutCell> = merged
            .into_iter()
            .map(|(cell, agg)| CutCell { cell, agg })
            .collect();
        out.sort_by_key(|c| c.cell);
        Ok((Some(out), stats))
    } else {
        comm.send(0, T_CUT, payload)?;
        Ok((None, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_geometry::VesselBuilder;
    use hemelb_parallel::{run_spmd, run_spmd_with_stats, TagClass};
    use std::sync::Arc;

    fn setup() -> (Arc<SparseGeometry>, Vec<f64>) {
        let geo = Arc::new(VesselBuilder::aneurysm(24.0, 4.0, 6.0).voxelise(1.0));
        let field: Vec<f64> = (0..geo.fluid_count())
            .map(|i| {
                let p = geo.position(i as u32);
                (p[0] as f64 * 0.3).sin() + p[2] as f64 * 0.05
            })
            .collect();
        (geo, field)
    }

    fn slab_owner(geo: &SparseGeometry, p: usize) -> Vec<usize> {
        (0..geo.fluid_count() as u32)
            .map(|s| (geo.position(s)[0] as usize * p / geo.shape()[0]).min(p - 1))
            .collect()
    }

    #[test]
    fn distributed_cut_equals_serial_binning() {
        let (geo, field) = setup();
        let all: Vec<u32> = (0..geo.fluid_count() as u32).collect();
        let serial = local_cut(&geo, &all, &field, 4);
        for p in [1usize, 3, 5] {
            let geo2 = geo.clone();
            let field2 = field.clone();
            let results = run_spmd(p, move |comm| {
                let owner = slab_owner(&geo2, comm.size());
                let mine: Vec<u32> = (0..geo2.fluid_count() as u32)
                    .filter(|&s| owner[s as usize] == comm.rank())
                    .collect();
                let local_field: Vec<f64> = mine.iter().map(|&g| field2[g as usize]).collect();
                distributed_level_cut(comm, &geo2, &mine, &local_field, 4)
                    .unwrap()
                    .0
            });
            let merged = results[0].as_ref().unwrap();
            assert_eq!(merged.len(), serial.len(), "p={p}");
            for (a, b) in merged.iter().zip(&serial) {
                assert_eq!(a.cell, b.cell, "p={p}");
                assert_eq!(a.agg.count, b.agg.count);
                assert!((a.agg.mean - b.agg.mean).abs() < 1e-12);
                assert_eq!(a.agg.min, b.agg.min);
                assert_eq!(a.agg.max, b.agg.max);
            }
        }
    }

    #[test]
    fn cut_traffic_is_much_smaller_than_a_field_gather() {
        let (geo, field) = setup();
        let geo2 = geo.clone();
        let out = run_spmd_with_stats(4, move |comm| {
            let owner = slab_owner(&geo2, comm.size());
            let mine: Vec<u32> = (0..geo2.fluid_count() as u32)
                .filter(|&s| owner[s as usize] == comm.rank())
                .collect();
            let local_field: Vec<f64> = mine.iter().map(|&g| field[g as usize]).collect();
            distributed_level_cut(comm, &geo2, &mine, &local_field, 8)
                .unwrap()
                .1
                .bytes_sent
        });
        let cut_bytes = out.summary.total.bytes(TagClass::Visualisation);
        let full_gather = (geo.fluid_count() * 8) as u64;
        assert!(cut_bytes > 0);
        assert!(
            cut_bytes < full_gather / 4,
            "cut {cut_bytes} must be ≪ field {full_gather}"
        );
    }

    #[test]
    fn coarser_cells_mean_fewer_cells_and_bytes() {
        let (geo, field) = setup();
        let all: Vec<u32> = (0..geo.fluid_count() as u32).collect();
        let fine = local_cut(&geo, &all, &field, 2);
        let coarse = local_cut(&geo, &all, &field, 8);
        assert!(coarse.len() < fine.len() / 4);
        // Totals conserved at every granularity.
        let total_fine: u32 = fine.iter().map(|c| c.agg.count).sum();
        let total_coarse: u32 = coarse.iter().map(|c| c.agg.count).sum();
        assert_eq!(total_fine, geo.fluid_count() as u32);
        assert_eq!(total_coarse, geo.fluid_count() as u32);
    }

    #[test]
    fn aggregates_bound_the_field() {
        let (geo, field) = setup();
        let all: Vec<u32> = (0..geo.fluid_count() as u32).collect();
        let lo = field.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = field.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for c in local_cut(&geo, &all, &field, 4) {
            assert!(c.agg.min >= lo && c.agg.max <= hi);
            assert!(c.agg.mean >= c.agg.min - 1e-12 && c.agg.mean <= c.agg.max + 1e-12);
        }
    }
}
