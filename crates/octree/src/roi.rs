//! Region-of-interest (context & detail) cuts.
//!
//! Paper §V: "the user can define a region to be post-processed. Then,
//! analysis and visualisation can be carried out on a refinable area" —
//! coarse *context* everywhere, fine *detail* inside the user's box.

use crate::tree::{FieldOctree, OctreeNode, NONE};
use serde::{Deserialize, Serialize};

/// An axis-aligned region of interest in lattice cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roi {
    /// Minimum corner (inclusive).
    pub lo: [u32; 3],
    /// Maximum corner (exclusive).
    pub hi: [u32; 3],
}

impl Roi {
    /// Whether a node's cube intersects the ROI.
    pub fn intersects(&self, node: &OctreeNode) -> bool {
        (0..3).all(|a| node.origin[a] < self.hi[a] && node.origin[a] + node.size > self.lo[a])
    }
}

/// A mixed-resolution cut: `context_level` outside the ROI,
/// `detail_level` inside.
#[derive(Debug)]
pub struct RoiCut<'a> {
    /// Nodes forming the cut.
    pub nodes: Vec<&'a OctreeNode>,
    /// How many of them came from ROI refinement.
    pub detail_nodes: usize,
}

impl<'a> RoiCut<'a> {
    /// Build the context-and-detail cut.
    ///
    /// # Panics
    /// Panics if `detail_level < context_level`.
    pub fn build(
        tree: &'a FieldOctree,
        roi: Roi,
        context_level: u8,
        detail_level: u8,
    ) -> RoiCut<'a> {
        assert!(
            detail_level >= context_level,
            "detail must be at least as deep as context"
        );
        let mut nodes = Vec::new();
        let mut detail_nodes = 0usize;
        descend(
            tree,
            tree.root(),
            &roi,
            context_level,
            detail_level,
            &mut nodes,
            &mut detail_nodes,
        );
        RoiCut {
            nodes,
            detail_nodes,
        }
    }

    /// Fluid sites covered by the cut (must equal the domain size).
    pub fn site_coverage(&self) -> u64 {
        self.nodes.iter().map(|n| n.agg.count as u64).sum()
    }

    /// Transport size of this cut (48 B per node, as elsewhere).
    pub fn bytes(&self) -> usize {
        self.nodes.len() * 48
    }
}

fn descend<'a>(
    tree: &'a FieldOctree,
    idx: u32,
    roi: &Roi,
    context_level: u8,
    detail_level: u8,
    out: &mut Vec<&'a OctreeNode>,
    detail_nodes: &mut usize,
) {
    let node = &tree.nodes()[idx as usize];
    let in_roi = roi.intersects(node);
    let target = if in_roi { detail_level } else { context_level };
    if node.level >= target || node.children.iter().all(|&c| c == NONE) {
        out.push(node);
        if in_roi && node.level > context_level {
            *detail_nodes += 1;
        }
        return;
    }
    for &c in &node.children {
        if c != NONE {
            descend(tree, c, roi, context_level, detail_level, out, detail_nodes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::FieldOctree;
    use hemelb_geometry::VesselBuilder;

    fn setup() -> (hemelb_geometry::SparseGeometry, FieldOctree) {
        let geo = VesselBuilder::aneurysm(24.0, 4.0, 6.0).voxelise(1.0);
        let field: Vec<f64> = (0..geo.fluid_count()).map(|i| (i % 17) as f64).collect();
        let t = FieldOctree::build(&geo, &field);
        (geo, t)
    }

    #[test]
    fn roi_cut_covers_every_site_exactly_once() {
        let (geo, t) = setup();
        let shape = geo.shape();
        let roi = Roi {
            lo: [shape[0] as u32 / 3, 0, 0],
            hi: [2 * shape[0] as u32 / 3, shape[1] as u32, shape[2] as u32],
        };
        for (ctx, det) in [(1u8, 3u8), (2, 4), (0, 2)] {
            let cut = RoiCut::build(&t, roi, ctx, det.min(t.depth()));
            assert_eq!(cut.site_coverage(), geo.fluid_count() as u64, "ctx={ctx}");
        }
    }

    #[test]
    fn roi_refinement_adds_nodes_only_inside() {
        let (geo, t) = setup();
        let shape = geo.shape();
        let roi = Roi {
            lo: [0, 0, 0],
            hi: [shape[0] as u32 / 4, shape[1] as u32, shape[2] as u32],
        };
        let ctx_only = RoiCut::build(&t, roi, 2, 2);
        let with_detail = RoiCut::build(&t, roi, 2, t.depth());
        assert!(with_detail.nodes.len() > ctx_only.nodes.len());
        assert!(with_detail.detail_nodes > 0);
        // Refinement is localised: any deep node sits inside the ROI or
        // in the fringe of straddling ancestors — within its parent's
        // extent (2 × its own size) of the ROI box.
        for n in &with_detail.nodes {
            if n.level > 2 {
                let fringe = 2 * n.size;
                let expanded = Roi {
                    lo: [
                        roi.lo[0].saturating_sub(fringe),
                        roi.lo[1].saturating_sub(fringe),
                        roi.lo[2].saturating_sub(fringe),
                    ],
                    hi: [roi.hi[0] + fringe, roi.hi[1] + fringe, roi.hi[2] + fringe],
                };
                assert!(
                    expanded.intersects(n),
                    "deep node far outside ROI at {:?} size {}",
                    n.origin,
                    n.size
                );
            }
        }
    }

    #[test]
    fn roi_cut_is_cheaper_than_uniform_fine_cut() {
        let (geo, t) = setup();
        let shape = geo.shape();
        let small_roi = Roi {
            lo: [0, 0, 0],
            hi: [
                8.min(shape[0] as u32),
                8.min(shape[1] as u32),
                8.min(shape[2] as u32),
            ],
        };
        let mixed = RoiCut::build(&t, small_roi, 1, t.depth());
        let uniform = t.cut_at_level(t.depth());
        assert!(
            mixed.bytes() < uniform.len() * 48 / 2,
            "context+detail must be much cheaper: {} vs {}",
            mixed.bytes(),
            uniform.len() * 48
        );
    }

    #[test]
    fn degenerate_roi_gives_pure_context() {
        let (geo, t) = setup();
        let roi = Roi {
            lo: [0, 0, 0],
            hi: [0, 0, 0],
        };
        let cut = RoiCut::build(&t, roi, 2, t.depth());
        let plain = t.cut_at_level(2);
        assert_eq!(cut.nodes.len(), plain.len());
        assert_eq!(cut.detail_nodes, 0);
        assert_eq!(cut.site_coverage(), geo.fluid_count() as u64);
    }

    #[test]
    #[should_panic(expected = "detail")]
    fn inverted_levels_rejected() {
        let (_, t) = setup();
        let roi = Roi {
            lo: [0, 0, 0],
            hi: [4, 4, 4],
        };
        RoiCut::build(&t, roi, 3, 1);
    }
}
