//! The field octree: construction, aggregates and level cuts.

use hemelb_geometry::SparseGeometry;
use serde::{Deserialize, Serialize};

/// Conservative aggregates a node carries about the field beneath it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregates {
    /// Fluid sites beneath this node.
    pub count: u32,
    /// Count-weighted mean of the field.
    pub mean: f64,
    /// Minimum of the field (for transfer-function / ROI culling).
    pub min: f64,
    /// Maximum of the field.
    pub max: f64,
}

impl Aggregates {
    fn from_site(v: f64) -> Self {
        Aggregates {
            count: 1,
            mean: v,
            min: v,
            max: v,
        }
    }

    fn merge(children: impl Iterator<Item = Aggregates>) -> Self {
        let mut count = 0u32;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for a in children {
            count += a.count;
            sum += a.mean * a.count as f64;
            min = min.min(a.min);
            max = max.max(a.max);
        }
        Aggregates {
            count,
            mean: if count > 0 { sum / count as f64 } else { 0.0 },
            min,
            max,
        }
    }
}

/// One octree node over a cubic region `[origin, origin + size)³`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OctreeNode {
    /// Minimum corner in lattice cells.
    pub origin: [u32; 3],
    /// Edge length in cells (power of two).
    pub size: u32,
    /// Depth below the root (root = 0).
    pub level: u8,
    /// Field aggregates beneath this node.
    pub agg: Aggregates,
    /// Child node indices (8 octants; `u32::MAX` = absent/empty).
    pub children: [u32; 8],
    /// For size-1 leaves: the fluid-site id, else `u32::MAX`.
    pub site: u32,
}

/// Sentinel for absent children / sites.
pub const NONE: u32 = u32::MAX;

impl OctreeNode {
    /// Whether this node has no children (either a unit cell or an
    /// unrefined region).
    pub fn is_leaf(&self) -> bool {
        self.children.iter().all(|&c| c == NONE)
    }
}

/// An octree over the fluid sites of a sparse geometry, aggregating one
/// scalar field (callers build one per field, or re-aggregate in place
/// with [`FieldOctree::refresh`] as the simulation advances).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FieldOctree {
    nodes: Vec<OctreeNode>,
    root: u32,
    depth: u8,
    root_size: u32,
}

impl FieldOctree {
    /// Build from a geometry and a per-site scalar field.
    ///
    /// # Panics
    /// Panics if `field.len() != geo.fluid_count()` or the geometry is
    /// empty.
    pub fn build(geo: &SparseGeometry, field: &[f64]) -> Self {
        assert_eq!(field.len(), geo.fluid_count(), "field must cover all sites");
        assert!(geo.fluid_count() > 0, "cannot build over an empty geometry");
        let shape = geo.shape();
        let max_extent = shape.iter().copied().max().expect("3 axes");
        let root_size = max_extent.next_power_of_two() as u32;

        let mut nodes = Vec::new();
        let sites: Vec<u32> = (0..geo.fluid_count() as u32).collect();
        let root = build_node(geo, field, &mut nodes, [0, 0, 0], root_size, 0, &sites);
        let root = root.expect("non-empty geometry has a root");
        let depth = nodes.iter().map(|n| n.level).max().unwrap_or(0);
        FieldOctree {
            nodes,
            root,
            depth,
            root_size,
        }
    }

    /// All nodes (parents appear after children; the root is last of its
    /// subtree but indexable via [`FieldOctree::root`]).
    pub fn nodes(&self) -> &[OctreeNode] {
        &self.nodes
    }

    /// Index of the root node.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Deepest level present (unit cells sit at this level for cubic
    /// power-of-two domains).
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Edge length of the root cube.
    pub fn root_size(&self) -> u32 {
        self.root_size
    }

    /// Recompute all aggregates for a new field without rebuilding the
    /// structure (the per-step in situ path: topology is static, data
    /// is not).
    pub fn refresh(&mut self, geo: &SparseGeometry, field: &[f64]) {
        assert_eq!(field.len(), geo.fluid_count());
        // Children precede parents in `nodes` (post-order construction),
        // so one forward sweep refreshes bottom-up.
        for idx in 0..self.nodes.len() {
            let node = &self.nodes[idx];
            if node.site != NONE {
                self.nodes[idx].agg = Aggregates::from_site(field[node.site as usize]);
            } else {
                let agg = Aggregates::merge(
                    self.nodes[idx]
                        .children
                        .iter()
                        .filter(|&&c| c != NONE)
                        .map(|&c| self.nodes[c as usize].agg),
                );
                self.nodes[idx].agg = agg;
            }
        }
    }

    /// The *cut* at `level`: every node that is either at `level` or a
    /// shallower leaf — together they tile all fluid sites exactly once.
    pub fn cut_at_level(&self, level: u8) -> Vec<&OctreeNode> {
        let mut out = Vec::new();
        self.collect_cut(self.root, level, &mut out);
        out
    }

    fn collect_cut<'a>(&'a self, idx: u32, level: u8, out: &mut Vec<&'a OctreeNode>) {
        let node = &self.nodes[idx as usize];
        if node.level >= level || node.is_leaf() {
            out.push(node);
            return;
        }
        for &c in &node.children {
            if c != NONE {
                self.collect_cut(c, level, out);
            }
        }
    }

    /// Per-site reconstruction of the field from the level-`level` cut:
    /// every site gets its covering node's mean. The L2 distance to the
    /// exact field is the information lost at that resolution
    /// (experiment E9).
    pub fn reconstruct_at_level(&self, geo: &SparseGeometry, level: u8) -> Vec<f64> {
        let mut out = vec![0.0; geo.fluid_count()];
        for node in self.cut_at_level(level) {
            fill_node(self, node, &mut out);
        }
        out
    }

    /// Relative L2 error of the level-`level` reconstruction of `field`.
    pub fn l2_error_at_level(&self, geo: &SparseGeometry, field: &[f64], level: u8) -> f64 {
        let approx = self.reconstruct_at_level(geo, level);
        let num: f64 = approx
            .iter()
            .zip(field)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let den: f64 = field.iter().map(|b| b * b).sum();
        if den == 0.0 {
            0.0
        } else {
            (num / den).sqrt()
        }
    }

    /// Bytes needed to ship the level-`level` cut (origin+size+aggregate
    /// per node) versus the full field — the data-reduction factor of §V.
    pub fn bytes_at_level(&self, level: u8) -> usize {
        // 3×u32 origin + u32 size + 4×f64-ish aggregate ≈ 48 B.
        self.cut_at_level(level).len() * 48
    }
}

/// Write a node's mean into every fluid site beneath it.
fn fill_node(tree: &FieldOctree, node: &OctreeNode, out: &mut [f64]) {
    if node.site != NONE {
        out[node.site as usize] = node.agg.mean;
        return;
    }
    if node.is_leaf() {
        return; // empty region (no fluid)
    }
    // Propagate the *cut node's* mean to descendants' sites.
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        if n.site != NONE {
            out[n.site as usize] = node.agg.mean;
            continue;
        }
        for &c in &n.children {
            if c != NONE {
                stack.push(&tree.nodes[c as usize]);
            }
        }
    }
}

/// Recursive post-order construction. Returns the node index, or `None`
/// if the region holds no fluid.
fn build_node(
    geo: &SparseGeometry,
    field: &[f64],
    nodes: &mut Vec<OctreeNode>,
    origin: [u32; 3],
    size: u32,
    level: u8,
    sites: &[u32],
) -> Option<u32> {
    if sites.is_empty() {
        return None;
    }
    if size == 1 {
        let site = sites[0];
        debug_assert_eq!(sites.len(), 1, "one site per unit cell");
        let idx = nodes.len() as u32;
        nodes.push(OctreeNode {
            origin,
            size,
            level,
            agg: Aggregates::from_site(field[site as usize]),
            children: [NONE; 8],
            site,
        });
        return Some(idx);
    }
    let half = size / 2;
    // Distribute sites into octants.
    let mut buckets: [Vec<u32>; 8] = Default::default();
    for &s in sites {
        let p = geo.position(s);
        let ox = (p[0] >= origin[0] + half) as usize;
        let oy = (p[1] >= origin[1] + half) as usize;
        let oz = (p[2] >= origin[2] + half) as usize;
        buckets[ox << 2 | oy << 1 | oz].push(s);
    }
    let mut children = [NONE; 8];
    for (o, bucket) in buckets.iter().enumerate() {
        let co = [
            origin[0] + if o & 4 != 0 { half } else { 0 },
            origin[1] + if o & 2 != 0 { half } else { 0 },
            origin[2] + if o & 1 != 0 { half } else { 0 },
        ];
        if let Some(c) = build_node(geo, field, nodes, co, half, level + 1, bucket) {
            children[o] = c;
        }
    }
    let agg = Aggregates::merge(
        children
            .iter()
            .filter(|&&c| c != NONE)
            .map(|&c| nodes[c as usize].agg),
    );
    let idx = nodes.len() as u32;
    nodes.push(OctreeNode {
        origin,
        size,
        level,
        agg,
        children,
        site: NONE,
    });
    Some(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_geometry::VesselBuilder;

    fn setup() -> (SparseGeometry, Vec<f64>) {
        let geo = VesselBuilder::aneurysm(24.0, 4.0, 6.0).voxelise(1.0);
        let field: Vec<f64> = (0..geo.fluid_count())
            .map(|i| {
                let p = geo.position(i as u32);
                (p[0] as f64 * 0.1).sin() + p[2] as f64 * 0.01
            })
            .collect();
        (geo, field)
    }

    #[test]
    fn root_aggregates_cover_everything() {
        let (geo, field) = setup();
        let tree = FieldOctree::build(&geo, &field);
        let root = &tree.nodes()[tree.root() as usize];
        assert_eq!(root.agg.count as usize, geo.fluid_count());
        let mean: f64 = field.iter().sum::<f64>() / field.len() as f64;
        assert!((root.agg.mean - mean).abs() < 1e-9);
        let min = field.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = field.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((root.agg.min - min).abs() < 1e-12);
        assert!((root.agg.max - max).abs() < 1e-12);
    }

    #[test]
    fn every_cut_tiles_all_sites() {
        let (geo, field) = setup();
        let tree = FieldOctree::build(&geo, &field);
        for level in 0..=tree.depth() {
            let cut = tree.cut_at_level(level);
            let total: u64 = cut.iter().map(|n| n.agg.count as u64).sum();
            assert_eq!(total, geo.fluid_count() as u64, "level {level}");
        }
    }

    #[test]
    fn cuts_grow_with_level_and_error_shrinks() {
        let (geo, field) = setup();
        let tree = FieldOctree::build(&geo, &field);
        let mut last_size = 0usize;
        let mut last_err = f64::INFINITY;
        for level in 0..=tree.depth() {
            let size = tree.cut_at_level(level).len();
            assert!(size >= last_size, "cut must not shrink with level");
            last_size = size;
            let err = tree.l2_error_at_level(&geo, &field, level);
            assert!(
                err <= last_err + 1e-12,
                "error must not grow with level: {last_err} -> {err}"
            );
            last_err = err;
        }
        // The deepest level reproduces the field exactly.
        assert!(last_err < 1e-12);
    }

    #[test]
    fn deepest_reconstruction_is_exact() {
        let (geo, field) = setup();
        let tree = FieldOctree::build(&geo, &field);
        let rec = tree.reconstruct_at_level(&geo, tree.depth());
        for (a, b) in rec.iter().zip(&field) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn refresh_matches_rebuild() {
        let (geo, field) = setup();
        let mut tree = FieldOctree::build(&geo, &field);
        let field2: Vec<f64> = field.iter().map(|v| v * 2.0 + 1.0).collect();
        tree.refresh(&geo, &field2);
        let rebuilt = FieldOctree::build(&geo, &field2);
        let a = &tree.nodes()[tree.root() as usize].agg;
        let b = &rebuilt.nodes()[rebuilt.root() as usize].agg;
        assert!((a.mean - b.mean).abs() < 1e-12);
        assert!((a.min - b.min).abs() < 1e-12);
        assert!((a.max - b.max).abs() < 1e-12);
    }

    #[test]
    fn data_reduction_is_geometric() {
        let (geo, field) = setup();
        let tree = FieldOctree::build(&geo, &field);
        let full = geo.fluid_count() * 8; // one f64 per site
        let coarse = tree.bytes_at_level(2);
        assert!(
            coarse < full / 4,
            "level-2 cut must be much smaller: {coarse} vs {full}"
        );
    }

    #[test]
    #[should_panic(expected = "field must cover")]
    fn mismatched_field_rejected() {
        let (geo, _) = setup();
        FieldOctree::build(&geo, &[1.0, 2.0]);
    }
}
