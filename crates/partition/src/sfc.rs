//! Space-filling-curve partitioners (Morton/Z-order and Hilbert).
//!
//! Order the sites along the curve, then cut the ordering into k
//! weight-balanced contiguous chunks. Cheap, decent locality, and the
//! same family of orderings the multi-resolution layer uses for
//! streaming (Pascucci-style hierarchical indexing, paper §V).

use crate::graph::SiteGraph;
use crate::Partitioner;

/// Interleave the low 21 bits of x, y, z into a Morton code.
pub fn morton3(x: u32, y: u32, z: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        // Spread the low 21 bits of v to every third bit position.
        let mut x = v as u64 & 0x1f_ffff;
        x = (x | x << 32) & 0x1f00000000ffff;
        x = (x | x << 16) & 0x1f0000ff0000ff;
        x = (x | x << 8) & 0x100f00f00f00f00f;
        x = (x | x << 4) & 0x10c30c30c30c30c3;
        x = (x | x << 2) & 0x1249249249249249;
        x
    }
    spread(x) | spread(y) << 1 | spread(z) << 2
}

/// Hilbert-curve index of a 3-D point with `bits` bits per axis
/// (Skilling's transform).
pub fn hilbert3(p: [u32; 3], bits: u32) -> u128 {
    let n = 3usize;
    let mut x = [p[0], p[1], p[2]];
    let m = 1u32 << (bits - 1);

    // Inverse undo excess work (Skilling's AxestoTranspose).
    let mut q = m;
    while q > 1 {
        let pmask = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= pmask; // invert
            } else {
                let t = (x[0] ^ x[i]) & pmask;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }

    // Interleave the transposed coordinates, most significant bit first.
    let mut h: u128 = 0;
    for b in (0..bits).rev() {
        for xi in x.iter() {
            h = (h << 1) | ((xi >> b) & 1) as u128;
        }
    }
    h
}

/// Cut an ordering of all vertices into `k` contiguous chunks balanced by
/// primary vertex weight; returns the owner map.
pub fn split_ordering_by_weight(order: &[u32], graph: &SiteGraph, k: usize) -> Vec<usize> {
    assert!(k > 0);
    assert_eq!(order.len(), graph.len());
    let total = graph.total_weight();
    let target = total / k as f64;
    let mut owner = vec![0usize; graph.len()];
    let mut current = 0usize;
    let mut acc = 0.0f64;
    for &v in order {
        owner[v as usize] = current;
        acc += graph.vwgt[v as usize];
        if current + 1 < k && acc >= target * (current as f64 + 1.0) {
            current += 1;
        }
    }
    owner
}

/// Morton/Z-order curve partitioner.
#[derive(Debug, Default, Clone, Copy)]
pub struct MortonSfc;

impl Partitioner for MortonSfc {
    fn partition(&self, graph: &SiteGraph, k: usize) -> Vec<usize> {
        let mut order: Vec<u32> = (0..graph.len() as u32).collect();
        order.sort_unstable_by_key(|&v| {
            let c = graph.coords[v as usize];
            morton3(c[0] as u32, c[1] as u32, c[2] as u32)
        });
        split_ordering_by_weight(&order, graph, k)
    }
    fn name(&self) -> &'static str {
        "morton"
    }
}

/// Hilbert curve partitioner (better locality than Morton: consecutive
/// curve positions are always lattice neighbours).
#[derive(Debug, Default, Clone, Copy)]
pub struct HilbertSfc;

impl Partitioner for HilbertSfc {
    fn partition(&self, graph: &SiteGraph, k: usize) -> Vec<usize> {
        // Bits needed to cover the coordinate range.
        let max_c = graph
            .coords
            .iter()
            .flat_map(|c| c.iter())
            .cloned()
            .fold(0.0, f64::max) as u32;
        let bits = (32 - max_c.leading_zeros()).max(1);
        let mut order: Vec<u32> = (0..graph.len() as u32).collect();
        order.sort_unstable_by_key(|&v| {
            let c = graph.coords[v as usize];
            hilbert3([c[0] as u32, c[1] as u32, c[2] as u32], bits)
        });
        split_ordering_by_weight(&order, graph, k)
    }
    fn name(&self) -> &'static str {
        "hilbert"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Connectivity;
    use crate::metrics::quality;
    use hemelb_geometry::VesselBuilder;

    #[test]
    fn morton_codes_are_unique_and_monotone_in_octants() {
        // Points in the lower octant must precede the upper octant.
        assert!(morton3(0, 0, 0) < morton3(1, 1, 1));
        assert!(morton3(3, 3, 3) < morton3(4, 0, 0) | morton3(0, 4, 0));
        let mut codes = std::collections::HashSet::new();
        for x in 0..8 {
            for y in 0..8 {
                for z in 0..8 {
                    assert!(codes.insert(morton3(x, y, z)), "duplicate code");
                }
            }
        }
    }

    #[test]
    fn morton_interleaves_single_axis_bits() {
        assert_eq!(morton3(1, 0, 0), 0b001);
        assert_eq!(morton3(0, 1, 0), 0b010);
        assert_eq!(morton3(0, 0, 1), 0b100);
        assert_eq!(morton3(2, 0, 0), 0b001000);
    }

    #[test]
    fn hilbert_is_a_bijection_on_a_small_cube() {
        let bits = 3;
        let mut seen = std::collections::HashSet::new();
        for x in 0..8u32 {
            for y in 0..8 {
                for z in 0..8 {
                    assert!(seen.insert(hilbert3([x, y, z], bits)));
                }
            }
        }
        assert_eq!(seen.len(), 512);
        // Indices cover exactly 0..512.
        assert_eq!(*seen.iter().max().unwrap(), 511);
        assert_eq!(*seen.iter().min().unwrap(), 0);
    }

    #[test]
    fn hilbert_consecutive_indices_are_lattice_neighbours() {
        // The defining property: the curve moves one step at a time.
        let bits = 3;
        let mut by_index = vec![[0u32; 3]; 512];
        for x in 0..8u32 {
            for y in 0..8 {
                for z in 0..8 {
                    by_index[hilbert3([x, y, z], bits) as usize] = [x, y, z];
                }
            }
        }
        for w in by_index.windows(2) {
            let d: u32 = (0..3).map(|a| w[0][a].abs_diff(w[1][a])).sum();
            assert_eq!(d, 1, "{:?} -> {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn weight_balanced_split_is_balanced() {
        let geo = VesselBuilder::aneurysm(24.0, 4.0, 6.0).voxelise(1.0);
        let g = crate::SiteGraph::from_geometry(&geo, Connectivity::Six);
        for p in [MortonSfc.partition(&g, 6), HilbertSfc.partition(&g, 6)] {
            let q = quality(&g, &p, 6);
            assert!(q.imbalance < 1.05, "imbalance {}", q.imbalance);
        }
    }

    #[test]
    fn hilbert_cut_no_worse_than_morton_on_aneurysm() {
        let geo = VesselBuilder::aneurysm(32.0, 5.0, 7.0).voxelise(1.0);
        let g = crate::SiteGraph::from_geometry(&geo, Connectivity::Six);
        let qm = quality(&g, &MortonSfc.partition(&g, 8), 8);
        let qh = quality(&g, &HilbertSfc.partition(&g, 8), 8);
        // Hilbert's locality advantage is geometry-dependent; allow a
        // modest margin rather than asserting strict superiority.
        assert!(
            (qh.edge_cut as f64) <= qm.edge_cut as f64 * 1.3,
            "hilbert {} vs morton {}",
            qh.edge_cut,
            qm.edge_cut
        );
    }
}
