//! # hemelb-partition
//!
//! Domain decomposition for the sparse lattice: the role ParMETIS plays
//! in HemeLB (§IV-A of the SC'12 co-design paper), built from scratch.
//!
//! Provided partitioners, all implementing [`Partitioner`]:
//!
//! * [`NaiveBlock`] — contiguous site-index chunks (the strawman);
//! * [`MortonSfc`] / [`HilbertSfc`] — space-filling-curve orderings cut
//!   into weight-balanced chunks;
//! * [`Rcb`] — recursive coordinate bisection;
//! * [`MultilevelKWay`] — the ParMETIS-family algorithm: heavy-edge
//!   matching coarsening, greedy graph growing on the coarsest graph,
//!   boundary Kernighan–Lin refinement during uncoarsening.
//!
//! [`quality`](metrics::quality) computes the metrics the paper's
//! load-balance discussion revolves around (imbalance, edge cut,
//! communication volume, neighbour counts), and [`visaware`] implements
//! the paper's proposal that *visualisation* work must enter the balance
//! equation: multi-constraint rebalancing with migration accounting
//! (experiment E10). [`adaptive`] closes the loop: measured per-rank
//! cost → hysteresis-filtered trigger → planned rebalance → cost/benefit
//! gate (experiment E15).
//!
//! ```
//! use hemelb_geometry::VesselBuilder;
//! use hemelb_partition::{graph::SiteGraph, MultilevelKWay, Partitioner};
//!
//! let geo = VesselBuilder::straight_tube(20.0, 4.0).voxelise(1.0);
//! let graph = SiteGraph::from_geometry(&geo, hemelb_partition::graph::Connectivity::D3Q15);
//! let owner = MultilevelKWay::default().partition(&graph, 4);
//! let q = hemelb_partition::metrics::quality(&graph, &owner, 4);
//! assert!(q.imbalance < 1.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod error;
pub mod graph;
pub mod kway;
pub mod metrics;
pub mod rcb;
pub mod sfc;
pub mod visaware;

pub use adaptive::{
    derive_site_weights, payoff_gate, plan_rebalance, AdaptiveLb, AdaptiveLbConfig, GateDecision,
    Observation, WindowCosts,
};
pub use error::{PartitionError, PartitionResult};
pub use graph::SiteGraph;
pub use kway::MultilevelKWay;
pub use metrics::{quality, PartitionQuality};
pub use rcb::Rcb;
pub use sfc::{HilbertSfc, MortonSfc};

/// A k-way partitioner of site graphs.
pub trait Partitioner {
    /// Assign each vertex an owner in `0..k`.
    fn partition(&self, graph: &SiteGraph, k: usize) -> Vec<usize>;
    /// Short display name for report tables.
    fn name(&self) -> &'static str;
}

/// The strawman: contiguous chunks of the site-index order, balanced by
/// vertex weight. (Site index order is lexicographic x-major scan order,
/// so chunks are geometric slabs for simple geometries.)
#[derive(Debug, Default, Clone, Copy)]
pub struct NaiveBlock;

impl Partitioner for NaiveBlock {
    fn partition(&self, graph: &SiteGraph, k: usize) -> Vec<usize> {
        sfc::split_ordering_by_weight(&(0..graph.len() as u32).collect::<Vec<_>>(), graph, k)
    }
    fn name(&self) -> &'static str {
        "naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::Connectivity;
    use hemelb_geometry::VesselBuilder;

    #[test]
    fn all_partitioners_produce_valid_covers() {
        let geo = VesselBuilder::aneurysm(24.0, 4.0, 6.0).voxelise(1.0);
        let graph = SiteGraph::from_geometry(&geo, Connectivity::D3Q15);
        let partitioners: Vec<Box<dyn Partitioner>> = vec![
            Box::new(NaiveBlock),
            Box::new(MortonSfc),
            Box::new(HilbertSfc),
            Box::new(Rcb),
            Box::new(MultilevelKWay::default()),
        ];
        for p in &partitioners {
            for k in [1, 2, 4, 5] {
                let owner = p.partition(&graph, k);
                assert_eq!(owner.len(), graph.len(), "{} k={k}", p.name());
                assert!(owner.iter().all(|&o| o < k), "{} k={k}", p.name());
                // Every part non-empty (graph much larger than k).
                let mut seen = vec![false; k];
                for &o in &owner {
                    seen[o] = true;
                }
                assert!(seen.iter().all(|&s| s), "{} k={k}: empty part", p.name());
            }
        }
    }

    #[test]
    fn kway_not_dramatically_worse_than_naive_on_a_tube() {
        let geo = VesselBuilder::aneurysm(32.0, 5.0, 7.0).voxelise(1.0);
        let graph = SiteGraph::from_geometry(&geo, Connectivity::D3Q15);
        let k = 8;
        let naive = quality(&graph, &NaiveBlock.partition(&graph, k), k);
        let kway = quality(&graph, &MultilevelKWay::default().partition(&graph, k), k);
        // Index slabs are near-optimal cuts for an elongated tube, so the
        // requirement here is sanity, not victory; the decisive
        // comparisons run on complex geometry in the benches.
        assert!(
            kway.edge_cut as f64 <= naive.edge_cut as f64 * 2.0,
            "kway cut {} vs naive {}",
            kway.edge_cut,
            naive.edge_cut
        );
        assert!(kway.imbalance < 1.1);
    }
}
