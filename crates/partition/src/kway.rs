//! Multilevel k-way graph partitioning — the ParMETIS-family algorithm
//! HemeLB delegates its domain decomposition to.
//!
//! Three phases, exactly as in the METIS literature the paper cites:
//!
//! 1. **Coarsening** by heavy-edge matching until the graph is small;
//! 2. **Initial partitioning** of the coarsest graph by BFS-ordered
//!    weight chunking (a greedy graph-growing variant);
//! 3. **Uncoarsening** with greedy boundary Kernighan–Lin refinement at
//!    every level, under a balance constraint.

use crate::graph::SiteGraph;
use crate::Partitioner;

/// Weighted CSR graph used internally across coarsening levels.
#[derive(Debug, Clone)]
struct Level {
    xadj: Vec<usize>,
    adjncy: Vec<u32>,
    adjwgt: Vec<f64>,
    vwgt: Vec<f64>,
    /// Map from this level's vertices to the *next coarser* level.
    coarse_map: Vec<u32>,
}

impl Level {
    fn len(&self) -> usize {
        self.vwgt.len()
    }
    fn neighbours(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let r = self.xadj[v as usize]..self.xadj[v as usize + 1];
        r.map(move |e| (self.adjncy[e], self.adjwgt[e]))
    }
}

/// Deterministic multilevel k-way partitioner.
#[derive(Debug, Clone)]
pub struct MultilevelKWay {
    /// Stop coarsening when at most `coarsen_factor * k` vertices remain.
    pub coarsen_factor: usize,
    /// Maximum refinement passes per level.
    pub refine_passes: usize,
    /// Allowed load imbalance (`max ≤ (1+ε)·mean`).
    pub epsilon: f64,
    /// RNG seed for the matching order.
    pub seed: u64,
}

impl Default for MultilevelKWay {
    fn default() -> Self {
        MultilevelKWay {
            coarsen_factor: 30,
            refine_passes: 8,
            epsilon: 0.05,
            seed: 0x5EED_1234_ABCD,
        }
    }
}

impl Partitioner for MultilevelKWay {
    fn partition(&self, graph: &SiteGraph, k: usize) -> Vec<usize> {
        assert!(k > 0);
        if k == 1 {
            return vec![0; graph.len()];
        }
        let base = Level {
            xadj: graph.xadj.clone(),
            adjncy: graph.adjncy.clone(),
            adjwgt: vec![1.0; graph.adjncy.len()],
            vwgt: graph.vwgt.clone(),
            coarse_map: Vec::new(),
        };

        // Phase 1: coarsen, with an explicit stall guard. Heavy-edge
        // matching makes no real progress on adversarial topologies — a
        // star graph collapses only one pair per round, an edgeless
        // graph not at all — so a level shrinking by less than 5% breaks
        // straight to initial partitioning + refinement on what we have.
        // Without the guard such a level could be re-coarsened forever
        // while never approaching the target size.
        let mut levels = vec![base];
        let target = (self.coarsen_factor * k).max(64);
        let mut rng = self.seed | 1;
        loop {
            let last = levels.last().expect("nonempty");
            if last.len() <= target {
                break;
            }
            let (coarse, map) = coarsen(last, &mut rng);
            let stalled = coarse.len() >= last.len() * 95 / 100;
            let reached_target = coarse.len() <= target;
            levels.last_mut().expect("nonempty").coarse_map = map;
            levels.push(coarse);
            if stalled || reached_target {
                break;
            }
        }

        // Phase 2: initial partition of the coarsest level.
        let coarsest = levels.last().expect("nonempty");
        let mut owner = initial_partition(coarsest, k);
        refine(coarsest, &mut owner, k, self.epsilon, self.refine_passes);

        // Phase 3: project back, refining at each level.
        for li in (0..levels.len() - 1).rev() {
            let fine = &levels[li];
            let mut fine_owner = vec![0usize; fine.len()];
            for v in 0..fine.len() {
                fine_owner[v] = owner[fine.coarse_map[v] as usize];
            }
            owner = fine_owner;
            refine(fine, &mut owner, k, self.epsilon, self.refine_passes);
        }
        owner
    }

    fn name(&self) -> &'static str {
        "kway"
    }
}

/// xorshift64* step for deterministic tie-breaking.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Heavy-edge matching coarsening. Returns the coarse level and the
/// fine→coarse map.
fn coarsen(fine: &Level, rng: &mut u64) -> (Level, Vec<u32>) {
    let n = fine.len();
    // Random visit order (Fisher–Yates with the deterministic RNG).
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = (next_rand(rng) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }

    let unmatched = u32::MAX;
    let mut mate = vec![unmatched; n];
    for &v in &order {
        if mate[v as usize] != unmatched {
            continue;
        }
        // Heaviest unmatched neighbour.
        let mut best: Option<(u32, f64)> = None;
        for (u, w) in fine.neighbours(v) {
            if mate[u as usize] == unmatched && u != v {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        match best {
            Some((u, _)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v, // matched with itself
        }
    }

    // Assign coarse ids (pair gets one id, deterministic by min index).
    let mut coarse_map = vec![u32::MAX; n];
    let mut next_id = 0u32;
    for v in 0..n as u32 {
        if coarse_map[v as usize] != u32::MAX {
            continue;
        }
        let m = mate[v as usize];
        coarse_map[v as usize] = next_id;
        if m != v && m != unmatched {
            coarse_map[m as usize] = next_id;
        }
        next_id += 1;
    }

    // Build the coarse graph: combine vertex weights, collapse edges.
    let nc = next_id as usize;
    let mut vwgt = vec![0.0f64; nc];
    for v in 0..n {
        vwgt[coarse_map[v] as usize] += fine.vwgt[v];
    }
    // Per-coarse-vertex edge accumulation.
    let mut xadj = vec![0usize; nc + 1];
    let mut adjncy: Vec<u32> = Vec::with_capacity(fine.adjncy.len() / 2);
    let mut adjwgt: Vec<f64> = Vec::with_capacity(fine.adjncy.len() / 2);
    // Group fine vertices by coarse id.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); nc];
    for v in 0..n as u32 {
        members[coarse_map[v as usize] as usize].push(v);
    }
    let mut acc: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for cv in 0..nc {
        acc.clear();
        for &v in &members[cv] {
            for (u, w) in fine.neighbours(v) {
                let cu = coarse_map[u as usize];
                if cu as usize != cv {
                    *acc.entry(cu).or_insert(0.0) += w;
                }
            }
        }
        let mut entries: Vec<(u32, f64)> = acc.iter().map(|(&u, &w)| (u, w)).collect();
        entries.sort_unstable_by_key(|e| e.0);
        for (u, w) in entries {
            adjncy.push(u);
            adjwgt.push(w);
        }
        xadj[cv + 1] = adjncy.len();
    }
    (
        Level {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
            coarse_map: Vec::new(),
        },
        coarse_map,
    )
}

/// Initial partition: BFS order from vertex 0 (component by component),
/// chunked by weight.
fn initial_partition(level: &Level, k: usize) -> Vec<usize> {
    let n = level.len();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n as u32 {
        if seen[start as usize] {
            continue;
        }
        let mut queue = std::collections::VecDeque::from([start]);
        seen[start as usize] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for (u, _) in level.neighbours(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    let total: f64 = level.vwgt.iter().sum();
    let target = total / k as f64;
    let mut owner = vec![0usize; n];
    let mut current = 0usize;
    let mut acc = 0.0;
    for &v in &order {
        owner[v as usize] = current;
        acc += level.vwgt[v as usize];
        if current + 1 < k && acc >= target * (current as f64 + 1.0) {
            current += 1;
        }
    }
    owner
}

/// Greedy boundary KL refinement under a balance constraint.
fn refine(level: &Level, owner: &mut [usize], k: usize, epsilon: f64, max_passes: usize) {
    let n = level.len();
    let total: f64 = level.vwgt.iter().sum();
    let mean = total / k as f64;
    let max_load = mean * (1.0 + epsilon);
    let mut loads = vec![0.0f64; k];
    for v in 0..n {
        loads[owner[v]] += level.vwgt[v];
    }

    let mut link = vec![0.0f64; k]; // scratch: edge weight to each part
    let mut touched: Vec<usize> = Vec::with_capacity(8);
    for _pass in 0..max_passes {
        let mut moves = 0usize;
        for v in 0..n as u32 {
            let src = owner[v as usize];
            // Weight of edges into each adjacent part.
            touched.clear();
            let mut internal = 0.0;
            for (u, w) in level.neighbours(v) {
                let ou = owner[u as usize];
                if ou == src {
                    internal += w;
                } else {
                    if link[ou] == 0.0 {
                        touched.push(ou);
                    }
                    link[ou] += w;
                }
            }
            if touched.is_empty() {
                continue; // not a boundary vertex
            }
            // Best destination by gain, then by load (deterministic).
            let w_v = level.vwgt[v as usize];
            let mut best: Option<(usize, f64)> = None;
            for &dst in &touched {
                let gain = link[dst] - internal;
                if loads[dst] + w_v > max_load {
                    continue;
                }
                let better = match best {
                    None => gain > 0.0 || (gain == 0.0 && loads[dst] + w_v < loads[src]),
                    Some((bd, bg)) => gain > bg || (gain == bg && loads[dst] < loads[bd]),
                };
                if better {
                    best = Some((dst, gain));
                }
            }
            for &t in &touched {
                link[t] = 0.0;
            }
            if let Some((dst, gain)) = best {
                // Do not empty the source part.
                if loads[src] - w_v <= 0.0 {
                    continue;
                }
                if gain > 0.0 || (gain == 0.0 && loads[dst] + w_v < loads[src]) {
                    owner[v as usize] = dst;
                    loads[src] -= w_v;
                    loads[dst] += w_v;
                    moves += 1;
                }
            }
        }
        if moves == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Connectivity;
    use crate::metrics::quality;
    use crate::SiteGraph;
    use hemelb_geometry::VesselBuilder;

    fn demo_graph() -> SiteGraph {
        let geo = VesselBuilder::aneurysm(28.0, 4.0, 6.0).voxelise(1.0);
        SiteGraph::from_geometry(&geo, Connectivity::D3Q15)
    }

    #[test]
    fn kway_respects_balance_constraint() {
        let g = demo_graph();
        for k in [2, 4, 8] {
            let owner = MultilevelKWay::default().partition(&g, k);
            let q = quality(&g, &owner, k);
            assert!(
                q.imbalance <= 1.0 + 0.05 + 1e-9,
                "k={k} imbalance {}",
                q.imbalance
            );
        }
    }

    #[test]
    fn kway_is_deterministic() {
        let g = demo_graph();
        let a = MultilevelKWay::default().partition(&g, 4);
        let b = MultilevelKWay::default().partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn kway_beats_random_assignment_on_cut() {
        let g = demo_graph();
        let k = 4;
        let owner = MultilevelKWay::default().partition(&g, k);
        let q = quality(&g, &owner, k);
        // Random assignment cuts ~ (1 - 1/k) of all edges.
        let total_edges = (g.directed_edge_count() / 2) as f64;
        let random_cut = total_edges * (1.0 - 1.0 / k as f64);
        assert!(
            (q.edge_cut as f64) < random_cut / 4.0,
            "cut {} vs random {}",
            q.edge_cut,
            random_cut
        );
    }

    #[test]
    fn refinement_never_worsens_cut() {
        let g = demo_graph();
        let k = 4;
        let level = Level {
            xadj: g.xadj.clone(),
            adjncy: g.adjncy.clone(),
            adjwgt: vec![1.0; g.adjncy.len()],
            vwgt: g.vwgt.clone(),
            coarse_map: Vec::new(),
        };
        let mut owner = initial_partition(&level, k);
        let before = quality(&g, &owner, k).edge_cut;
        refine(&level, &mut owner, k, 0.05, 8);
        let after = quality(&g, &owner, k).edge_cut;
        assert!(after <= before, "refine worsened cut: {before} -> {after}");
    }

    #[test]
    fn coarsening_preserves_total_weight() {
        let g = demo_graph();
        let level = Level {
            xadj: g.xadj.clone(),
            adjncy: g.adjncy.clone(),
            adjwgt: vec![1.0; g.adjncy.len()],
            vwgt: g.vwgt.clone(),
            coarse_map: Vec::new(),
        };
        let mut rng = 42u64;
        let (coarse, map) = coarsen(&level, &mut rng);
        assert!(coarse.len() < level.len());
        assert!(coarse.len() >= level.len() / 2, "matching halves at most");
        let fine_w: f64 = level.vwgt.iter().sum();
        let coarse_w: f64 = coarse.vwgt.iter().sum();
        assert!((fine_w - coarse_w).abs() < 1e-9);
        assert!(map.iter().all(|&c| (c as usize) < coarse.len()));
    }

    /// A star: vertex 0 joined to every other vertex, no other edges.
    /// Heavy-edge matching collapses exactly one pair per round (the hub
    /// and one spoke; every other spoke's only neighbour is then
    /// matched), the worst case for coarsening progress.
    fn star_graph(n: usize) -> SiteGraph {
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for v in 0..n {
            if v == 0 {
                adjncy.extend(1..n as u32);
            } else {
                adjncy.push(0);
            }
            xadj.push(adjncy.len());
        }
        SiteGraph {
            xadj,
            adjncy,
            vwgt: vec![1.0; n],
            vwgt2: None,
            coords: (0..n).map(|v| [v as f64, 0.0, 0.0]).collect(),
        }
    }

    #[test]
    fn coarsening_terminates_on_a_star_graph() {
        // Stall-guard regression: matching shrinks a star by one vertex
        // per level, so coarsening can never reach the target size; the
        // progress guard must break to refinement instead of spinning.
        let g = star_graph(400);
        let owner = MultilevelKWay::default().partition(&g, 4);
        assert_eq!(owner.len(), 400);
        assert!(owner.iter().all(|&o| o < 4));
        let q = quality(&g, &owner, 4);
        assert!(q.imbalance < 1.5, "imbalance {}", q.imbalance);
    }

    #[test]
    fn coarsening_terminates_on_an_edgeless_graph() {
        // Every vertex self-matches, so a level does not shrink at all —
        // the zero-progress extreme of the stall case.
        let n = 300;
        let g = SiteGraph {
            xadj: vec![0; n + 1],
            adjncy: Vec::new(),
            vwgt: vec![1.0; n],
            vwgt2: None,
            coords: (0..n).map(|v| [v as f64, 0.0, 0.0]).collect(),
        };
        let owner = MultilevelKWay::default().partition(&g, 3);
        assert_eq!(owner.len(), n);
        assert!(owner.iter().all(|&o| o < 3));
        let q = quality(&g, &owner, 3);
        assert!(
            (q.imbalance - 1.0).abs() < 0.05,
            "imbalance {}",
            q.imbalance
        );
        assert_eq!(q.edge_cut, 0);
    }

    #[test]
    fn k_equals_one_short_circuits() {
        let g = demo_graph();
        let owner = MultilevelKWay::default().partition(&g, 1);
        assert!(owner.iter().all(|&o| o == 0));
    }
}
