//! Measurement-driven adaptive load balancing — the decision core that
//! closes the paper's co-design loop (§III-B, Fig. 2).
//!
//! The pre-processing story of the paper is a *loop*, not a one-shot:
//! partitioning must account for both simulation and visualisation load
//! and be revisited as the run evolves. Following Groen et al.'s
//! weighted-decomposition study (arXiv:1410.4713), the signal here is
//! *measured per-rank cost* (span totals from the observability layer),
//! not site counts.
//!
//! This module is deliberately pure — no clocks, no communicators — so
//! every rank of an SPMD job can feed it the *same* reduced cost vector
//! and reach the *same* decision deterministically. The pipeline:
//!
//! 1. every `window_steps` steps, the caller measures per-rank sim and
//!    vis seconds ([`WindowCosts`]) and feeds them to
//!    [`AdaptiveLb::observe`];
//! 2. [`AdaptiveLb`] applies a **hysteresis** filter: only when the
//!    max/mean imbalance exceeds `threshold` for `hysteresis_windows`
//!    *consecutive* windows does it trigger (no thrash on oscillating
//!    load);
//! 3. on trigger, [`plan_rebalance`] converts the rank costs into
//!    per-site weights and runs the multi-constraint diffusive
//!    [`rebalance`](crate::visaware::rebalance) (falling back to
//!    single-constraint when there is no visualisation signal);
//! 4. [`payoff_gate`] weighs the projected per-step saving against the
//!    migration cost (projected by the caller's α–β–γ machine model)
//!    over the steps that remain — a migration that cannot amortise
//!    itself is skipped.

use crate::error::{PartitionError, PartitionResult};
use crate::graph::SiteGraph;
use crate::metrics::imbalance_of;
use crate::visaware::{rebalance_or_single, RebalanceOutcome};
use serde::{Deserialize, Serialize};

/// Knobs of the adaptive load balancer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveLbConfig {
    /// Decision window length in simulation steps.
    pub window_steps: u64,
    /// Max/mean imbalance (of either constraint) above which a window
    /// counts as *hot*.
    pub threshold: f64,
    /// Consecutive hot windows required before a rebalance is planned.
    pub hysteresis_windows: u32,
    /// Balance tolerance handed to the diffusive rebalance.
    pub epsilon: f64,
    /// Maximum diffusion passes per rebalance.
    pub max_passes: usize,
    /// The projected saving must exceed `min_payoff ×` the projected
    /// migration cost for the plan to be applied.
    pub min_payoff: f64,
}

impl Default for AdaptiveLbConfig {
    fn default() -> Self {
        AdaptiveLbConfig {
            window_steps: 50,
            threshold: 1.25,
            hysteresis_windows: 2,
            epsilon: 0.10,
            max_passes: 30,
            min_payoff: 1.0,
        }
    }
}

/// Per-rank measured cost over one decision window. Both vectors have
/// one entry per rank; `vis_secs` may be all-zero when nothing rendered.
///
/// The sim signal should contain the *load-proportional* phases only
/// (collide, stream, halo pack, macroscopics) — halo-*wait* time is
/// idleness **caused by** imbalance and would invert the signal if
/// included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowCosts {
    /// Seconds of simulation work per rank.
    pub sim_secs: Vec<f64>,
    /// Seconds of visualisation (render) work per rank.
    pub vis_secs: Vec<f64>,
    /// Steps covered by this window.
    pub steps: u64,
}

impl WindowCosts {
    /// Max/mean imbalance of the simulation cost.
    pub fn sim_imbalance(&self) -> f64 {
        imbalance_of(&self.sim_secs)
    }

    /// Max/mean imbalance of the visualisation cost (1.0 when nothing
    /// rendered anywhere).
    pub fn vis_imbalance(&self) -> f64 {
        imbalance_of(&self.vis_secs)
    }

    /// Whether any rank reported visualisation work this window.
    pub fn has_vis_signal(&self) -> bool {
        self.vis_secs.iter().any(|&v| v > 0.0)
    }
}

/// What [`AdaptiveLb::observe`] concluded about one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Index of the observed window (0-based).
    pub window: u64,
    /// Simulation imbalance this window.
    pub sim_imbalance: f64,
    /// Visualisation imbalance this window.
    pub vis_imbalance: f64,
    /// Whether this window exceeded the threshold.
    pub hot: bool,
    /// Length of the current consecutive-hot streak (this window
    /// included).
    pub hot_streak: u32,
    /// Whether the hysteresis filter fired: plan a rebalance now.
    pub triggered: bool,
}

/// The hysteresis state machine. Feed it one [`WindowCosts`] per
/// decision window; it says when the imbalance has been persistently bad
/// enough to justify planning a rebalance.
#[derive(Debug, Clone)]
pub struct AdaptiveLb {
    cfg: AdaptiveLbConfig,
    hot_streak: u32,
    windows_seen: u64,
}

impl AdaptiveLb {
    /// New state machine with the given knobs.
    pub fn new(cfg: AdaptiveLbConfig) -> Self {
        AdaptiveLb {
            cfg,
            hot_streak: 0,
            windows_seen: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AdaptiveLbConfig {
        &self.cfg
    }

    /// Windows observed so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Digest one window of measurements. A window is *hot* when either
    /// constraint's imbalance exceeds the threshold; `triggered` becomes
    /// true only after `hysteresis_windows` consecutive hot windows, and
    /// stays true each further hot window until [`AdaptiveLb::reset`]
    /// (call it after applying — or deliberately skipping — a plan).
    pub fn observe(&mut self, costs: &WindowCosts) -> Observation {
        let window = self.windows_seen;
        self.windows_seen += 1;
        let sim_imbalance = costs.sim_imbalance();
        let vis_imbalance = costs.vis_imbalance();
        let hot = sim_imbalance > self.cfg.threshold || vis_imbalance > self.cfg.threshold;
        if hot {
            self.hot_streak = self.hot_streak.saturating_add(1);
        } else {
            self.hot_streak = 0;
        }
        Observation {
            window,
            sim_imbalance,
            vis_imbalance,
            hot,
            hot_streak: self.hot_streak,
            triggered: hot && self.hot_streak >= self.cfg.hysteresis_windows,
        }
    }

    /// Clear the hot streak — call after a rebalance was applied (the
    /// old measurements no longer describe the new partition) or after
    /// the payoff gate rejected a plan (start accumulating evidence
    /// afresh rather than re-planning every window).
    pub fn reset(&mut self) {
        self.hot_streak = 0;
    }
}

/// Derived per-site weights: measured rank cost spread evenly over the
/// rank's sites. Secondary is `None` when there was no vis signal.
#[derive(Debug, Clone)]
pub struct SiteWeights {
    /// Primary (simulation) per-site weight.
    pub sim: Vec<f64>,
    /// Secondary (visualisation) per-site weight, if any rank rendered.
    pub vis: Option<Vec<f64>>,
}

/// Convert per-rank measured costs into per-site weights under the
/// current `owner` map: each site inherits `rank cost / rank site
/// count`. Sites of an expensive rank become expensive sites, which is
/// exactly the signal the diffusive rebalance needs to push work off
/// that rank (measured cost, not site count — arXiv:1410.4713).
///
/// # Errors
/// Rejects owner values outside `0..k` and cost vectors whose length is
/// not `k`.
pub fn derive_site_weights(
    owner: &[usize],
    k: usize,
    costs: &WindowCosts,
) -> PartitionResult<SiteWeights> {
    if k == 0 {
        return Err(PartitionError::ZeroParts);
    }
    if costs.sim_secs.len() != k || costs.vis_secs.len() != k {
        return Err(PartitionError::WeightLengthMismatch {
            weights_len: costs.sim_secs.len(),
            graph_len: k,
        });
    }
    let mut count = vec![0usize; k];
    for (vertex, &o) in owner.iter().enumerate() {
        if o >= k {
            return Err(PartitionError::OwnerOutOfRange {
                vertex,
                owner: o,
                k,
            });
        }
        count[o] += 1;
    }
    let per_site = |secs: &[f64]| -> Vec<f64> {
        owner
            .iter()
            .map(|&o| {
                if count[o] == 0 {
                    0.0
                } else {
                    // Guard against a non-finite or negative timer
                    // artefact poisoning the weights.
                    (secs[o].max(0.0) / count[o] as f64).max(0.0)
                }
            })
            .map(|w| if w.is_finite() { w } else { 0.0 })
            .collect()
    };
    let sim = per_site(&costs.sim_secs);
    let vis = costs.has_vis_signal().then(|| per_site(&costs.vis_secs));
    Ok(SiteWeights { sim, vis })
}

/// Plan a rebalance from measured window costs: derive site weights,
/// install them on a copy of the topology, and run the diffusive
/// multi-constraint rebalance (single-constraint when no vis signal).
/// Nothing is applied — the caller still holds the plan against the
/// [`payoff_gate`].
///
/// # Errors
/// Propagates malformed-input errors from weight derivation and the
/// rebalance itself; never panics.
pub fn plan_rebalance(
    graph: &SiteGraph,
    owner: &[usize],
    k: usize,
    cfg: &AdaptiveLbConfig,
    costs: &WindowCosts,
) -> PartitionResult<RebalanceOutcome> {
    let weights = derive_site_weights(owner, k, costs)?;
    let mut weighted = graph.clone();
    weighted.vwgt = weights.sim;
    weighted.vwgt2 = weights.vis;
    rebalance_or_single(&weighted, owner, k, cfg.epsilon, cfg.max_passes)
}

/// The cost/benefit decision on a planned rebalance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateDecision {
    /// Projected seconds saved per step if the plan is applied.
    pub benefit_per_step: f64,
    /// Projected total saving over the remaining steps.
    pub benefit_secs: f64,
    /// Projected one-off migration cost in seconds.
    pub migration_secs: f64,
    /// Apply the plan?
    pub apply: bool,
}

/// Weigh a planned rebalance: apply only when the projected saving over
/// the `remaining_steps` exceeds `min_payoff ×` the one-off migration
/// cost (`migration_secs`, projected by the caller — typically an
/// α–β–γ machine model applied to the plan's migration volume).
///
/// The per-step saving is estimated from this window's measurements:
/// today the step time is set by the slowest rank (`max` of the summed
/// sim+vis cost); after rebalancing, by `mean × imbalance_after` with
/// the plan's projected imbalance.
pub fn payoff_gate(
    plan: &RebalanceOutcome,
    costs: &WindowCosts,
    migration_secs: f64,
    remaining_steps: u64,
    cfg: &AdaptiveLbConfig,
) -> GateDecision {
    // Pad the *shorter* vector with zeros, whichever it is: zipping
    // with only vis padded would silently drop trailing vis ranks when
    // vis_secs is the longer vector, underestimating the bottleneck.
    let k = costs.sim_secs.len().max(costs.vis_secs.len()).max(1);
    let combined: Vec<f64> = (0..k)
        .map(|i| {
            costs.sim_secs.get(i).copied().unwrap_or(0.0)
                + costs.vis_secs.get(i).copied().unwrap_or(0.0)
        })
        .collect();
    let max_now = combined.iter().cloned().fold(0.0, f64::max);
    let mean = combined.iter().sum::<f64>() / k as f64;
    // Projected post-rebalance bottleneck: the mean cannot change (same
    // total work), the spread becomes the plan's projected imbalance —
    // use the worse of the two constraints to stay conservative.
    let projected_imbalance = plan.imbalance_after.max(plan.imbalance2_after);
    let max_after = mean * projected_imbalance.max(1.0);
    let steps = costs.steps.max(1) as f64;
    let benefit_per_step = (max_now - max_after) / steps;
    let benefit_secs = benefit_per_step * remaining_steps as f64;
    let apply = benefit_per_step > 0.0
        && plan.moved_vertices > 0
        && benefit_secs > migration_secs * cfg.min_payoff;
    GateDecision {
        benefit_per_step,
        benefit_secs,
        migration_secs,
        apply,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(sim: &[f64], vis: &[f64], steps: u64) -> WindowCosts {
        WindowCosts {
            sim_secs: sim.to_vec(),
            vis_secs: vis.to_vec(),
            steps,
        }
    }

    #[test]
    fn hysteresis_triggers_after_consecutive_hot_windows() {
        let mut lb = AdaptiveLb::new(AdaptiveLbConfig {
            threshold: 1.25,
            hysteresis_windows: 2,
            ..AdaptiveLbConfig::default()
        });
        let hot = costs(&[3.0, 1.0], &[0.0, 0.0], 50);
        let o1 = lb.observe(&hot);
        assert!(o1.hot && !o1.triggered, "first hot window arms only");
        let o2 = lb.observe(&hot);
        assert!(o2.triggered, "second consecutive hot window fires");
        assert_eq!(o2.hot_streak, 2);
    }

    #[test]
    fn hysteresis_does_not_thrash_on_oscillating_load() {
        // Load alternates hot/cold every window (e.g. a periodic
        // rendering burst): the filter must never fire.
        let mut lb = AdaptiveLb::new(AdaptiveLbConfig {
            threshold: 1.25,
            hysteresis_windows: 2,
            ..AdaptiveLbConfig::default()
        });
        let hot = costs(&[3.0, 1.0], &[0.0, 0.0], 50);
        let cold = costs(&[1.0, 1.0], &[0.0, 0.0], 50);
        for _ in 0..10 {
            assert!(!lb.observe(&hot).triggered);
            let o = lb.observe(&cold);
            assert!(!o.triggered);
            assert_eq!(o.hot_streak, 0, "cold window clears the streak");
        }
    }

    #[test]
    fn vis_imbalance_alone_can_trigger() {
        let mut lb = AdaptiveLb::new(AdaptiveLbConfig {
            hysteresis_windows: 1,
            ..AdaptiveLbConfig::default()
        });
        let o = lb.observe(&costs(&[1.0, 1.0], &[2.0, 0.0], 50));
        assert!(o.triggered, "vis skew alone exceeds the threshold");
        assert!((o.sim_imbalance - 1.0).abs() < 1e-12);
        assert!(o.vis_imbalance > 1.9);
    }

    #[test]
    fn reset_clears_the_streak() {
        let mut lb = AdaptiveLb::new(AdaptiveLbConfig {
            hysteresis_windows: 2,
            ..AdaptiveLbConfig::default()
        });
        let hot = costs(&[3.0, 1.0], &[0.0, 0.0], 50);
        lb.observe(&hot);
        lb.observe(&hot);
        lb.reset();
        let o = lb.observe(&hot);
        assert_eq!(o.hot_streak, 1, "evidence restarts after reset");
        assert!(!o.triggered);
    }

    #[test]
    fn site_weights_follow_measured_cost() {
        // Rank 0: 2 sites, 4 s → 2 s/site. Rank 1: 2 sites, 1 s → 0.5.
        let owner = [0, 0, 1, 1];
        let w = derive_site_weights(&owner, 2, &costs(&[4.0, 1.0], &[0.0, 0.0], 50)).unwrap();
        assert_eq!(w.sim, vec![2.0, 2.0, 0.5, 0.5]);
        assert!(w.vis.is_none(), "no vis signal, no secondary weights");
        let w = derive_site_weights(&owner, 2, &costs(&[4.0, 1.0], &[1.0, 0.0], 50)).unwrap();
        assert_eq!(w.vis, Some(vec![0.5, 0.5, 0.0, 0.0]));
    }

    #[test]
    fn site_weights_reject_malformed_inputs() {
        assert!(matches!(
            derive_site_weights(&[0, 5], 2, &costs(&[1.0, 1.0], &[0.0, 0.0], 1)),
            Err(PartitionError::OwnerOutOfRange { vertex: 1, .. })
        ));
        assert!(matches!(
            derive_site_weights(&[0, 1], 2, &costs(&[1.0], &[0.0], 1)),
            Err(PartitionError::WeightLengthMismatch { .. })
        ));
        assert!(matches!(
            derive_site_weights(&[], 0, &costs(&[], &[], 1)),
            Err(PartitionError::ZeroParts)
        ));
    }

    #[test]
    fn site_weights_sanitise_timer_artefacts() {
        let owner = [0, 1];
        let w = derive_site_weights(&owner, 2, &costs(&[f64::NAN, -1.0], &[0.0, 0.0], 1)).unwrap();
        assert_eq!(w.sim, vec![0.0, 0.0], "NaN/negative timers zeroed");
    }

    #[test]
    fn gate_applies_profitable_plans_only() {
        let plan = RebalanceOutcome {
            owner: vec![],
            moved_vertices: 100,
            migration_volume: 100.0,
            imbalance_before: 2.0,
            imbalance_after: 1.05,
            imbalance2_before: 1.0,
            imbalance2_after: 1.0,
            cut_before: 10,
            cut_after: 10,
        };
        let c = costs(&[2.0, 1.0, 1.0, 1.0], &[0.0; 4], 50);
        let cfg = AdaptiveLbConfig::default();
        // max_now 2.0, mean 1.25 → max_after ≈ 1.3125: saves ~0.0137 s
        // per step. Cheap migration, long horizon → apply.
        let d = payoff_gate(&plan, &c, 0.01, 5000, &cfg);
        assert!(d.apply, "{d:?}");
        assert!(d.benefit_per_step > 0.0);
        // Same plan, but the run is nearly over → benefit cannot
        // amortise the migration.
        let d = payoff_gate(&plan, &c, 0.5, 10, &cfg);
        assert!(!d.apply, "{d:?}");
        // Exorbitant migration cost → rejected outright.
        let d = payoff_gate(&plan, &c, 1e9, 5000, &cfg);
        assert!(!d.apply);
    }

    #[test]
    fn gate_pads_asymmetric_cost_vectors_both_ways() {
        let plan = RebalanceOutcome {
            owner: vec![],
            moved_vertices: 100,
            migration_volume: 100.0,
            imbalance_before: 2.0,
            imbalance_after: 1.0,
            imbalance2_before: 1.0,
            imbalance2_after: 1.0,
            cut_before: 10,
            cut_after: 10,
        };
        let cfg = AdaptiveLbConfig::default();
        // vis_secs longer than sim_secs: the trailing vis rank (5.0 s)
        // is the true bottleneck and must not be dropped.
        let long_vis = costs(&[1.0, 1.0], &[0.0, 0.0, 5.0], 1);
        let d = payoff_gate(&plan, &long_vis, 0.0, 1, &cfg);
        // max_now = 5.0, mean = 7/3 → positive saving; a truncating zip
        // would have seen max_now = 1.0 and no benefit at all.
        assert!(d.benefit_per_step > 2.0, "{d:?}");
        // Mirror case: sim_secs longer than vis_secs behaves the same.
        let long_sim = costs(&[0.0, 0.0, 5.0], &[1.0, 1.0], 1);
        let m = payoff_gate(&plan, &long_sim, 0.0, 1, &cfg);
        assert!((d.benefit_per_step - m.benefit_per_step).abs() < 1e-12);
        // Equal-length vectors keep their existing arithmetic.
        let even = costs(&[2.0, 1.0], &[1.0, 0.0], 1);
        let e = payoff_gate(&plan, &even, 0.0, 1, &cfg);
        assert!((e.benefit_per_step - 1.0).abs() < 1e-12, "{e:?}");
    }

    #[test]
    fn gate_rejects_plans_that_move_nothing_or_help_nothing() {
        let mut plan = RebalanceOutcome {
            owner: vec![],
            moved_vertices: 0,
            migration_volume: 0.0,
            imbalance_before: 1.3,
            imbalance_after: 1.3,
            imbalance2_before: 1.0,
            imbalance2_after: 1.0,
            cut_before: 10,
            cut_after: 10,
        };
        let c = costs(&[1.3, 1.0], &[0.0, 0.0], 50);
        let cfg = AdaptiveLbConfig::default();
        assert!(!payoff_gate(&plan, &c, 0.0, 10_000, &cfg).apply);
        // Even with vertices moved, an unimproved imbalance projects no
        // per-step benefit.
        plan.moved_vertices = 5;
        let d = payoff_gate(&plan, &c, 0.0, 10_000, &cfg);
        assert!(!d.apply, "{d:?}");
    }
}
