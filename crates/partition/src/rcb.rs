//! Recursive coordinate bisection (RCB).
//!
//! Split the site cloud along its longest axis at the weighted median,
//! recursing until `k` parts exist. Handles non-power-of-two `k` by
//! splitting weight proportionally to the child part counts.

use crate::graph::SiteGraph;
use crate::Partitioner;

/// Recursive coordinate bisection partitioner.
#[derive(Debug, Default, Clone, Copy)]
pub struct Rcb;

impl Partitioner for Rcb {
    fn partition(&self, graph: &SiteGraph, k: usize) -> Vec<usize> {
        assert!(k > 0);
        let mut owner = vec![0usize; graph.len()];
        let mut ids: Vec<u32> = (0..graph.len() as u32).collect();
        bisect(graph, &mut ids, 0, k, &mut owner);
        owner
    }
    fn name(&self) -> &'static str {
        "rcb"
    }
}

fn bisect(
    graph: &SiteGraph,
    ids: &mut [u32],
    first_part: usize,
    parts: usize,
    owner: &mut [usize],
) {
    if parts == 1 {
        for &v in ids.iter() {
            owner[v as usize] = first_part;
        }
        return;
    }
    // Longest axis of this subset's bounding box.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &v in ids.iter() {
        let c = graph.coords[v as usize];
        for a in 0..3 {
            lo[a] = lo[a].min(c[a]);
            hi[a] = hi[a].max(c[a]);
        }
    }
    // total_cmp throughout: a single NaN coordinate (e.g. from a
    // degenerate SDF voxelisation) used to abort the whole partitioning
    // via partial_cmp().unwrap(). total_cmp gives NaN a fixed place in
    // the order, so such sites land deterministically at one end of the
    // split instead of panicking. (hi - lo can itself be NaN when a
    // subset is all-NaN on an axis; total_cmp handles that too.)
    let axis = (0..3)
        .max_by(|&a, &b| (hi[a] - lo[a]).total_cmp(&(hi[b] - lo[b])))
        .expect("three axes");

    // Sort along that axis (tie-break on the others for determinism).
    ids.sort_unstable_by(|&a, &b| {
        let ca = graph.coords[a as usize];
        let cb = graph.coords[b as usize];
        ca[axis]
            .total_cmp(&cb[axis])
            .then(ca[(axis + 1) % 3].total_cmp(&cb[(axis + 1) % 3]))
            .then(ca[(axis + 2) % 3].total_cmp(&cb[(axis + 2) % 3]))
            .then(a.cmp(&b))
    });

    // Weighted split proportional to child part counts.
    let left_parts = parts / 2;
    let right_parts = parts - left_parts;
    let total: f64 = ids.iter().map(|&v| graph.vwgt[v as usize]).sum();
    let target = total * left_parts as f64 / parts as f64;
    let mut acc = 0.0;
    let mut split = ids.len();
    for (i, &v) in ids.iter().enumerate() {
        acc += graph.vwgt[v as usize];
        if acc >= target {
            split = i + 1;
            break;
        }
    }
    // Keep both halves non-empty when possible.
    split = split.clamp(1, ids.len().saturating_sub(1).max(1));
    let (left, right) = ids.split_at_mut(split);
    bisect(graph, left, first_part, left_parts, owner);
    bisect(graph, right, first_part + left_parts, right_parts, owner);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Connectivity;
    use crate::metrics::quality;
    use crate::SiteGraph;
    use hemelb_geometry::VesselBuilder;

    #[test]
    fn rcb_splits_a_tube_into_slabs() {
        let geo = VesselBuilder::straight_tube(32.0, 4.0).voxelise(1.0);
        let g = SiteGraph::from_geometry(&geo, Connectivity::Six);
        let owner = Rcb.partition(&g, 4);
        let q = quality(&g, &owner, 4);
        assert!(q.imbalance < 1.1, "imbalance {}", q.imbalance);
        // For an x-elongated tube the splits must be along x: each part's
        // x-range must be (nearly) disjoint.
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); 4];
        for (v, &o) in owner.iter().enumerate() {
            let x = g.coords[v][0];
            ranges[o].0 = ranges[o].0.min(x);
            ranges[o].1 = ranges[o].1.max(x);
        }
        let mut sorted = ranges.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in sorted.windows(2) {
            assert!(w[1].0 >= w[0].1 - 1.0, "slabs should barely overlap: {w:?}");
        }
    }

    #[test]
    fn rcb_handles_non_power_of_two() {
        let geo = VesselBuilder::aneurysm(24.0, 4.0, 6.0).voxelise(1.0);
        let g = SiteGraph::from_geometry(&geo, Connectivity::Six);
        for k in [3, 5, 7] {
            let owner = Rcb.partition(&g, k);
            let q = quality(&g, &owner, k);
            assert!(q.imbalance < 1.25, "k={k} imbalance {}", q.imbalance);
            let mut seen = vec![false; k];
            for &o in &owner {
                seen[o] = true;
            }
            assert!(seen.iter().all(|&s| s), "k={k}: empty part");
        }
    }

    #[test]
    fn rcb_survives_nan_coordinates() {
        // Regression: partial_cmp().unwrap() panicked the moment any
        // site coordinate was NaN. With total_cmp the partition must
        // complete, stay deterministic, and still produce a valid cover.
        let geo = VesselBuilder::aneurysm(24.0, 4.0, 6.0).voxelise(1.0);
        let mut g = SiteGraph::from_geometry(&geo, Connectivity::Six);
        g.coords[3] = [f64::NAN, 1.0, 2.0];
        g.coords[17] = [f64::NAN, f64::NAN, f64::NAN];
        let owner = Rcb.partition(&g, 4);
        assert_eq!(owner.len(), g.len());
        assert!(owner.iter().all(|&o| o < 4));
        let mut seen = [false; 4];
        for &o in &owner {
            seen[o] = true;
        }
        assert!(seen.iter().all(|&s| s), "every part non-empty");
        assert_eq!(owner, Rcb.partition(&g, 4), "deterministic under NaN");
    }

    #[test]
    fn rcb_k1_is_identity() {
        let geo = VesselBuilder::straight_tube(10.0, 2.0).voxelise(1.0);
        let g = SiteGraph::from_geometry(&geo, Connectivity::Six);
        let owner = Rcb.partition(&g, 1);
        assert!(owner.iter().all(|&o| o == 0));
    }
}
