//! Typed errors for fallible partitioning entry points.
//!
//! The adaptive load-balance loop (see [`crate::adaptive`]) calls into
//! the partitioner from inside a running simulation; a malformed input
//! there must surface as a recoverable error, not a panic that takes
//! down the whole SPMD job.

use std::fmt;

/// Errors returned by fallible partitioning operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// A multi-constraint operation needs `SiteGraph::vwgt2` but the
    /// graph carries only primary weights.
    MissingSecondaryWeights,
    /// The owner map's length does not match the graph's vertex count.
    OwnerLengthMismatch {
        /// Length of the supplied owner map.
        owner_len: usize,
        /// Number of vertices in the graph.
        graph_len: usize,
    },
    /// An owner value is out of the `0..k` range.
    OwnerOutOfRange {
        /// The offending vertex.
        vertex: usize,
        /// Its owner value.
        owner: usize,
        /// The number of parts.
        k: usize,
    },
    /// A weight vector's length does not match the graph.
    WeightLengthMismatch {
        /// Length of the supplied weight vector.
        weights_len: usize,
        /// Number of vertices in the graph.
        graph_len: usize,
    },
    /// `k` was zero.
    ZeroParts,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::MissingSecondaryWeights => {
                write!(f, "graph has no secondary (visualisation) weights")
            }
            PartitionError::OwnerLengthMismatch {
                owner_len,
                graph_len,
            } => write!(
                f,
                "owner map has {owner_len} entries but the graph has {graph_len} vertices"
            ),
            PartitionError::OwnerOutOfRange { vertex, owner, k } => write!(
                f,
                "vertex {vertex} is owned by part {owner}, outside 0..{k}"
            ),
            PartitionError::WeightLengthMismatch {
                weights_len,
                graph_len,
            } => write!(
                f,
                "weight vector has {weights_len} entries but the graph has {graph_len} vertices"
            ),
            PartitionError::ZeroParts => write!(f, "number of parts must be at least 1"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Convenience alias for fallible partition operations.
pub type PartitionResult<T> = Result<T, PartitionError>;
