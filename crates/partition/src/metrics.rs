//! Partition quality metrics.
//!
//! These are the quantities the paper's pre-processing discussion is
//! about: load balance ("hundreds of thousands of cores possibly wait
//! for only a couple of cores"), edge cut (halo volume) and neighbour
//! counts (message counts).

use crate::graph::SiteGraph;
use serde::{Deserialize, Serialize};

/// Quality summary of a k-way partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionQuality {
    /// Parts.
    pub k: usize,
    /// `max part weight / mean part weight` (1.0 = perfect).
    pub imbalance: f64,
    /// Imbalance of the secondary weight, if the graph has one.
    pub imbalance2: Option<f64>,
    /// Undirected edges crossing part boundaries.
    pub edge_cut: u64,
    /// Total communication volume: Σ_v (#distinct foreign parts adjacent
    /// to v) — the METIS "totalv" metric; proportional to halo bytes.
    pub comm_volume: u64,
    /// Maximum over parts of the per-part communication volume.
    pub max_comm_volume: u64,
    /// Maximum over parts of the number of neighbouring parts.
    pub max_neighbours: usize,
}

impl PartitionQuality {
    /// The secondary (visualisation) imbalance, or the neutral `1.0`
    /// when the graph carries no secondary weights.
    ///
    /// Callers used to `unwrap()` [`PartitionQuality::imbalance2`]
    /// directly, which panicked the moment a single-weight graph passed
    /// through a multi-constraint code path; this accessor makes the
    /// "no vis weights = perfectly balanced vis load of zero" convention
    /// explicit.
    pub fn vis_imbalance(&self) -> f64 {
        self.imbalance2.unwrap_or(1.0)
    }
}

/// Compute the quality of `owner` (values in `0..k`) on `graph`.
pub fn quality(graph: &SiteGraph, owner: &[usize], k: usize) -> PartitionQuality {
    assert_eq!(owner.len(), graph.len());
    let mut loads = vec![0.0f64; k];
    let mut loads2 = vec![0.0f64; k];
    for (v, &o) in owner.iter().enumerate() {
        loads[o] += graph.vwgt[v];
        if let Some(w2) = &graph.vwgt2 {
            loads2[o] += w2[v];
        }
    }
    let imbalance = imbalance_of(&loads);
    let imbalance2 = graph.vwgt2.as_ref().map(|_| imbalance_of(&loads2));

    let mut edge_cut = 0u64;
    let mut comm_volume = 0u64;
    let mut part_volume = vec![0u64; k];
    let mut part_neighbours: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); k];
    let mut foreign: Vec<usize> = Vec::with_capacity(8);
    for v in 0..graph.len() as u32 {
        let ov = owner[v as usize];
        foreign.clear();
        for &u in graph.neighbours(v) {
            let ou = owner[u as usize];
            if ou != ov {
                edge_cut += 1; // counts each undirected edge twice; halved below
                if !foreign.contains(&ou) {
                    foreign.push(ou);
                }
            }
        }
        comm_volume += foreign.len() as u64;
        part_volume[ov] += foreign.len() as u64;
        for &f in &foreign {
            part_neighbours[ov].insert(f);
        }
    }
    PartitionQuality {
        k,
        imbalance,
        imbalance2,
        edge_cut: edge_cut / 2,
        comm_volume,
        max_comm_volume: part_volume.into_iter().max().unwrap_or(0),
        max_neighbours: part_neighbours
            .into_iter()
            .map(|s| s.len())
            .max()
            .unwrap_or(0),
    }
}

/// `max/mean` of a load vector (1.0 = perfect, and also 1.0 for an
/// all-zero or empty load vector, where imbalance is meaningless).
pub fn imbalance_of(loads: &[f64]) -> f64 {
    let total: f64 = loads.iter().sum();
    let mean = total / loads.len() as f64;
    if mean <= 0.0 {
        1.0
    } else {
        loads.iter().cloned().fold(0.0, f64::max) / mean
    }
}

/// Per-part primary loads under an owner map.
pub fn part_loads(graph: &SiteGraph, owner: &[usize], k: usize) -> Vec<f64> {
    let mut loads = vec![0.0; k];
    for (v, &o) in owner.iter().enumerate() {
        loads[o] += graph.vwgt[v];
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Connectivity;
    use hemelb_geometry::VesselBuilder;

    fn line_graph(n: usize) -> SiteGraph {
        // Path graph 0-1-2-…-(n-1).
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for v in 0..n {
            if v > 0 {
                adjncy.push((v - 1) as u32);
            }
            if v + 1 < n {
                adjncy.push((v + 1) as u32);
            }
            xadj.push(adjncy.len());
        }
        SiteGraph {
            xadj,
            adjncy,
            vwgt: vec![1.0; n],
            vwgt2: None,
            coords: (0..n).map(|v| [v as f64, 0.0, 0.0]).collect(),
        }
    }

    #[test]
    fn perfect_split_of_a_path() {
        let g = line_graph(10);
        let owner: Vec<usize> = (0..10).map(|v| v / 5).collect();
        let q = quality(&g, &owner, 2);
        assert!((q.imbalance - 1.0).abs() < 1e-12);
        assert_eq!(q.edge_cut, 1);
        assert_eq!(q.comm_volume, 2, "one boundary vertex on each side");
        assert_eq!(q.max_neighbours, 1);
    }

    #[test]
    fn alternating_split_maximises_cut() {
        let g = line_graph(10);
        let owner: Vec<usize> = (0..10).map(|v| v % 2).collect();
        let q = quality(&g, &owner, 2);
        assert_eq!(q.edge_cut, 9, "every path edge is cut");
        assert_eq!(q.comm_volume, 10);
    }

    #[test]
    fn single_part_has_no_cut() {
        let geo = VesselBuilder::straight_tube(10.0, 2.0).voxelise(1.0);
        let g = SiteGraph::from_geometry(&geo, Connectivity::Six);
        let owner = vec![0usize; g.len()];
        let q = quality(&g, &owner, 1);
        assert_eq!(q.edge_cut, 0);
        assert_eq!(q.comm_volume, 0);
        assert_eq!(q.max_neighbours, 0);
        assert!((q.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn secondary_imbalance_tracked_when_present() {
        let g = line_graph(4).with_secondary_weights(vec![1.0, 1.0, 1.0, 5.0]);
        let owner = vec![0, 0, 1, 1];
        let q = quality(&g, &owner, 2);
        assert!((q.imbalance - 1.0).abs() < 1e-12, "primary balanced");
        let im2 = q.vis_imbalance();
        assert!(im2 > 1.4, "secondary skewed: {im2}");
    }

    #[test]
    fn vis_imbalance_is_neutral_without_secondary_weights() {
        let g = line_graph(4);
        let q = quality(&g, &[0, 0, 1, 1], 2);
        assert_eq!(q.imbalance2, None);
        assert_eq!(q.vis_imbalance(), 1.0, "no weights reads as balanced");
    }

    #[test]
    fn imbalance_of_zero_loads_is_neutral() {
        assert_eq!(imbalance_of(&[0.0, 0.0]), 1.0);
        assert_eq!(imbalance_of(&[2.0, 1.0, 1.0]), 1.5);
    }
}
