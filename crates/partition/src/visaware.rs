//! Visualisation-aware repartitioning (paper §IV-B, experiment E10).
//!
//! "If, however, visualisation comes into play the situation changes.
//! […] visualisation costs have to be considered now. A repartitioning
//! may be necessary."
//!
//! Given a partition balanced for *compute* weight only and a secondary
//! per-site *visualisation* weight (e.g. ray-sample counts from the
//! current camera), [`rebalance`] migrates boundary sites until **both**
//! weights satisfy the balance constraint, minimising cut damage, and
//! reports how much data had to move — the migration cost the paper says
//! repartitioning must be weighed against.

use crate::error::{PartitionError, PartitionResult};
use crate::graph::SiteGraph;
use crate::metrics::quality;
use serde::{Deserialize, Serialize};

/// Result of a multi-constraint rebalance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RebalanceOutcome {
    /// The new owner map.
    pub owner: Vec<usize>,
    /// Vertices that changed owner.
    pub moved_vertices: usize,
    /// Primary weight moved (proportional to migrated site data).
    pub migration_volume: f64,
    /// Primary-weight imbalance before → after.
    pub imbalance_before: f64,
    /// Primary-weight imbalance after.
    pub imbalance_after: f64,
    /// Secondary-weight imbalance before.
    pub imbalance2_before: f64,
    /// Secondary-weight imbalance after.
    pub imbalance2_after: f64,
    /// Edge cut before.
    pub cut_before: u64,
    /// Edge cut after.
    pub cut_after: u64,
}

/// Migrate sites so that both the compute weight (`graph.vwgt`) and the
/// visualisation weight (`graph.vwgt2`, required) are balanced to within
/// `1 + epsilon`, starting from `owner`.
///
/// # Errors
/// Returns [`PartitionError::MissingSecondaryWeights`] when the graph
/// carries no secondary weights (use [`rebalance_or_single`] to fall
/// back to single-constraint behaviour instead), and
/// [`PartitionError::OwnerLengthMismatch`] /
/// [`PartitionError::OwnerOutOfRange`] / [`PartitionError::ZeroParts`]
/// for malformed inputs. Historically these were panics, which meant a
/// mid-run rebalance could abort the whole SPMD job.
pub fn rebalance(
    graph: &SiteGraph,
    owner: &[usize],
    k: usize,
    epsilon: f64,
    max_passes: usize,
) -> PartitionResult<RebalanceOutcome> {
    validate_owner(graph, owner, k)?;
    let w2 = graph
        .vwgt2
        .as_ref()
        .ok_or(PartitionError::MissingSecondaryWeights)?;
    Ok(rebalance_impl(graph, w2, owner, k, epsilon, max_passes))
}

/// Like [`rebalance`], but a graph without secondary weights degrades to
/// a *single-constraint* rebalance (all secondary weights zero) instead
/// of erroring: overloaded parts shed boundary vertices under the
/// compute cap only. This is the entry point the adaptive load balancer
/// uses — a missing visualisation signal must never stop a rebalance
/// that the compute imbalance alone justifies.
///
/// # Errors
/// Returns an error only for malformed `owner` maps or `k == 0`.
pub fn rebalance_or_single(
    graph: &SiteGraph,
    owner: &[usize],
    k: usize,
    epsilon: f64,
    max_passes: usize,
) -> PartitionResult<RebalanceOutcome> {
    validate_owner(graph, owner, k)?;
    match graph.vwgt2.as_ref() {
        Some(w2) => Ok(rebalance_impl(graph, w2, owner, k, epsilon, max_passes)),
        None => {
            let zeros = vec![0.0f64; graph.len()];
            Ok(rebalance_impl(graph, &zeros, owner, k, epsilon, max_passes))
        }
    }
}

fn validate_owner(graph: &SiteGraph, owner: &[usize], k: usize) -> PartitionResult<()> {
    if k == 0 {
        return Err(PartitionError::ZeroParts);
    }
    if owner.len() != graph.len() {
        return Err(PartitionError::OwnerLengthMismatch {
            owner_len: owner.len(),
            graph_len: graph.len(),
        });
    }
    if let Some((vertex, &o)) = owner.iter().enumerate().find(|&(_, &o)| o >= k) {
        return Err(PartitionError::OwnerOutOfRange {
            vertex,
            owner: o,
            k,
        });
    }
    Ok(())
}

fn rebalance_impl(
    graph: &SiteGraph,
    w2: &[f64],
    owner: &[usize],
    k: usize,
    epsilon: f64,
    max_passes: usize,
) -> RebalanceOutcome {
    let n = graph.len();

    let q_before = quality(graph, owner, k);
    let mut owner = owner.to_vec();

    let total1: f64 = graph.vwgt.iter().sum();
    let total2: f64 = w2.iter().sum();
    let max1 = total1 / k as f64 * (1.0 + epsilon);
    let max2 = total2 / k as f64 * (1.0 + epsilon);

    let mut loads1 = vec![0.0f64; k];
    let mut loads2 = vec![0.0f64; k];
    for v in 0..n {
        loads1[owner[v]] += graph.vwgt[v];
        loads2[owner[v]] += w2[v];
    }

    let mut moved = vec![false; n];
    let mut link = vec![0.0f64; k];
    let mut touched: Vec<usize> = Vec::with_capacity(8);

    for _pass in 0..max_passes {
        let mut moves = 0usize;
        for v in 0..n as u32 {
            let vi = v as usize;
            let src = owner[vi];
            touched.clear();
            let mut internal = 0.0;
            for &u in graph.neighbours(v) {
                let ou = owner[u as usize];
                if ou == src {
                    internal += 1.0;
                } else {
                    if link[ou] == 0.0 {
                        touched.push(ou);
                    }
                    link[ou] += 1.0;
                }
            }
            if touched.is_empty() {
                continue;
            }
            let w1v = graph.vwgt[vi];
            let w2v = w2[vi];
            let src_overloaded = loads2[src] > max2 || loads1[src] > max1;
            // "Make room": a part that is compute-heavy but vis-light
            // sheds *invisible* vertices downhill so that neighbouring
            // vis-overloaded parts can later push visible work into the
            // freed capacity. Without this, the compute cap freezes the
            // diffusion after one boundary layer.
            let mean1 = total1 / k as f64;
            let making_room = w2v == 0.0 && loads2[src] < total2 / k as f64 && loads1[src] > mean1;
            let mut best: Option<(usize, f64)> = None;
            for &dst in &touched {
                if loads1[dst] + w1v > max1 || loads2[dst] + w2v > max2 {
                    continue;
                }
                let gain = link[dst] - internal;
                // When the source violates a constraint, accept the least
                // damaging move; otherwise require non-worsening cut and
                // strictly less loaded destination — or a make-room move
                // to a compute-lighter part.
                let acceptable = src_overloaded
                    || (making_room && loads1[dst] + w1v < loads1[src])
                    || gain > 0.0
                    || (gain == 0.0 && loads2[dst] + w2v < loads2[src]);
                if !acceptable {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bd, bg)) => gain > bg || (gain == bg && loads2[dst] < loads2[bd]),
                };
                if better {
                    best = Some((dst, gain));
                }
            }
            for &t in &touched {
                link[t] = 0.0;
            }
            if let Some((dst, _)) = best {
                if loads1[src] - w1v <= 0.0 {
                    continue;
                }
                owner[vi] = dst;
                loads1[src] -= w1v;
                loads1[dst] += w1v;
                loads2[src] -= w2v;
                loads2[dst] += w2v;
                moved[vi] = true;
                moves += 1;
            }
        }
        let balanced = loads1.iter().all(|&l| l <= max1) && loads2.iter().all(|&l| l <= max2);
        if moves == 0 || balanced {
            if balanced {
                break;
            }
            if moves == 0 {
                break;
            }
        }
    }

    let q_after = quality(graph, &owner, k);
    let moved_vertices = moved.iter().filter(|&&m| m).count();
    let migration_volume = moved
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .map(|(v, _)| graph.vwgt[v])
        .sum();

    RebalanceOutcome {
        owner,
        moved_vertices,
        migration_volume,
        imbalance_before: q_before.imbalance,
        imbalance_after: q_after.imbalance,
        imbalance2_before: q_before.vis_imbalance(),
        imbalance2_after: q_after.vis_imbalance(),
        cut_before: q_before.edge_cut,
        cut_after: q_after.edge_cut,
    }
}

/// Full multi-constraint repartition by **striping**: sites are ordered
/// along the Hilbert curve and dealt to parts in round-robin blocks of
/// `block` sites. Every part then holds ≈1/k of *every* region of the
/// domain, so **any** additional per-site weight — today's camera,
/// tomorrow's — is balanced to within the block granularity. The price
/// is edge cut (each part's territory is k interleaved stripes), which
/// is the classic multi-constraint trade-off; the E10 experiment
/// measures both sides.
pub fn striped_multiconstraint(graph: &SiteGraph, k: usize, block: usize) -> Vec<usize> {
    assert!(k > 0 && block > 0);
    let mut order: Vec<u32> = (0..graph.len() as u32).collect();
    let max_c = graph
        .coords
        .iter()
        .flat_map(|c| c.iter())
        .cloned()
        .fold(0.0, f64::max) as u32;
    let bits = (32 - max_c.leading_zeros()).max(1);
    order.sort_unstable_by_key(|&v| {
        let c = graph.coords[v as usize];
        crate::sfc::hilbert3([c[0] as u32, c[1] as u32, c[2] as u32], bits)
    });
    let mut owner = vec![0usize; graph.len()];
    for (i, &v) in order.iter().enumerate() {
        owner[v as usize] = (i / block) % k;
    }
    owner
}

/// A synthetic visualisation weight: sites in front of the camera plane
/// get weight proportional to how many rays sample them — approximated
/// by their projected footprint (uniform here) times a view-dependent
/// mask. Real weights come from the renderer; this one exists so the
/// partition crate can be exercised standalone.
pub fn synthetic_view_weights(
    graph: &SiteGraph,
    view_dir: [f64; 3],
    visible_fraction: f64,
) -> Vec<f64> {
    // Project each site onto the view direction; the nearest
    // `visible_fraction` of sites get weight 1, the rest 0 (occluded /
    // out of frustum).
    let mut depth: Vec<(f64, usize)> = graph
        .coords
        .iter()
        .enumerate()
        .map(|(v, c)| {
            (
                c[0] * view_dir[0] + c[1] * view_dir[1] + c[2] * view_dir[2],
                v,
            )
        })
        .collect();
    // total_cmp, not partial_cmp().unwrap(): a NaN coordinate (degenerate
    // SDF voxelisation) must not abort weight synthesis mid-run.
    depth.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let visible = ((graph.len() as f64 * visible_fraction) as usize).min(graph.len());
    let mut w = vec![0.0; graph.len()];
    for &(_, v) in depth.iter().take(visible) {
        w[v] = 1.0;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Connectivity;
    use crate::{MultilevelKWay, Partitioner, SiteGraph};
    use hemelb_geometry::VesselBuilder;

    fn setup() -> (SiteGraph, Vec<usize>) {
        let geo = VesselBuilder::aneurysm(28.0, 4.0, 6.0).voxelise(1.0);
        let g = SiteGraph::from_geometry(&geo, Connectivity::Six);
        let owner = MultilevelKWay::default().partition(&g, 4);
        (g, owner)
    }

    #[test]
    fn skewed_vis_load_gets_balanced() {
        let (g, owner) = setup();
        // Camera looking along +x: only the front third is visible.
        let w2 = synthetic_view_weights(&g, [1.0, 0.0, 0.0], 0.34);
        let g = g.with_secondary_weights(w2);
        let out = rebalance(&g, &owner, 4, 0.10, 30).unwrap();
        assert!(
            out.imbalance2_before > 1.5,
            "compute-only partition should be vis-skewed, got {}",
            out.imbalance2_before
        );
        assert!(
            out.imbalance2_after < out.imbalance2_before,
            "{} -> {}",
            out.imbalance2_before,
            out.imbalance2_after
        );
        assert!(out.moved_vertices > 0);
        // Migration is bounded: far less than the whole domain moves.
        assert!(out.migration_volume < g.total_weight() * 0.6);
    }

    #[test]
    fn already_balanced_input_moves_nothing_much() {
        let (g, owner) = setup();
        // Uniform vis weight: the compute-balanced partition is already
        // vis-balanced.
        let g = g.with_secondary_weights(vec![1.0; owner.len()]);
        let out = rebalance(&g, &owner, 4, 0.10, 30).unwrap();
        assert!(out.imbalance2_before <= 1.06);
        assert!(
            out.cut_after <= out.cut_before,
            "pure refinement must not worsen the cut"
        );
    }

    #[test]
    fn primary_balance_is_not_sacrificed() {
        let (g, owner) = setup();
        let w2 = synthetic_view_weights(&g, [0.0, 0.0, 1.0], 0.25);
        let g = g.with_secondary_weights(w2);
        let out = rebalance(&g, &owner, 4, 0.10, 30).unwrap();
        assert!(
            out.imbalance_after <= 1.15,
            "compute imbalance after: {}",
            out.imbalance_after
        );
    }

    #[test]
    fn rebalance_without_secondary_weights_is_a_typed_error() {
        let (g, owner) = setup();
        // Regression: this was an `.expect` panic, which could take down
        // a whole SPMD run when the adaptive loop fired before the first
        // render produced visualisation weights.
        let err = rebalance(&g, &owner, 4, 0.1, 5).unwrap_err();
        assert_eq!(err, crate::PartitionError::MissingSecondaryWeights);
        assert!(err.to_string().contains("secondary"));
    }

    #[test]
    fn rebalance_rejects_malformed_owner_maps() {
        let (g, owner) = setup();
        let g2 = g.clone().with_secondary_weights(vec![1.0; g.len()]);
        let short = &owner[..owner.len() - 1];
        assert!(matches!(
            rebalance(&g2, short, 4, 0.1, 5),
            Err(crate::PartitionError::OwnerLengthMismatch { .. })
        ));
        let mut bad = owner.clone();
        bad[0] = 99;
        assert!(matches!(
            rebalance(&g2, &bad, 4, 0.1, 5),
            Err(crate::PartitionError::OwnerOutOfRange { vertex: 0, .. })
        ));
        assert!(matches!(
            rebalance(&g2, &owner, 0, 0.1, 5),
            Err(crate::PartitionError::ZeroParts)
        ));
    }

    #[test]
    fn single_constraint_fallback_fixes_compute_skew() {
        let (g, _) = setup();
        // Deliberately skewed: rank 0 owns ~70% of the sites.
        let n = g.len();
        let heavy = n * 7 / 10;
        let owner: Vec<usize> = (0..n)
            .map(|v| {
                if v < heavy {
                    0
                } else {
                    1 + (v - heavy) * 3 / (n - heavy)
                }
            })
            .collect();
        let out = rebalance_or_single(&g, &owner, 4, 0.10, 40).unwrap();
        assert!(
            out.imbalance_after < out.imbalance_before,
            "fallback should reduce compute imbalance: {} -> {}",
            out.imbalance_before,
            out.imbalance_after
        );
        assert!(out.moved_vertices > 0);
        // No secondary weights: the vis imbalance reports the neutral 1.0.
        assert_eq!(out.imbalance2_before, 1.0);
        assert_eq!(out.imbalance2_after, 1.0);
    }

    #[test]
    fn synthetic_weights_survive_nan_coordinates() {
        let (g, _) = setup();
        let mut g = g;
        g.coords[0] = [f64::NAN, f64::NAN, f64::NAN];
        let w = synthetic_view_weights(&g, [1.0, 0.0, 0.0], 0.5);
        assert_eq!(w.len(), g.len());
        assert!(w.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn striped_partition_balances_both_weights() {
        let (g, _) = setup();
        let w2 = synthetic_view_weights(&g, [1.0, 0.0, 0.0], 0.3);
        let g = g.with_secondary_weights(w2);
        let owner = striped_multiconstraint(&g, 4, 32);
        let q = crate::metrics::quality(&g, &owner, 4);
        assert!(q.imbalance < 1.1, "compute imbalance {}", q.imbalance);
        let im2 = q.imbalance2.unwrap();
        assert!(im2 < 1.5, "vis imbalance {im2} should be near-balanced");
        // The price: a worse cut than a locality-preserving partition.
        let kway = crate::MultilevelKWay::default().partition(&g, 4);
        let q_kway = crate::metrics::quality(&g, &kway, 4);
        assert!(
            q.edge_cut > q_kway.edge_cut,
            "striping trades cut for multi-weight balance"
        );
    }

    #[test]
    fn striped_partition_block_granularity_controls_balance() {
        let (g, _) = setup();
        let w2 = synthetic_view_weights(&g, [0.0, 0.0, 1.0], 0.25);
        let g = g.with_secondary_weights(w2);
        let fine = crate::metrics::quality(&g, &striped_multiconstraint(&g, 4, 16), 4);
        let coarse = crate::metrics::quality(&g, &striped_multiconstraint(&g, 4, 512), 4);
        assert!(
            fine.imbalance2.unwrap() <= coarse.imbalance2.unwrap() + 0.05,
            "finer stripes balance no worse: {} vs {}",
            fine.imbalance2.unwrap(),
            coarse.imbalance2.unwrap()
        );
    }

    #[test]
    fn synthetic_weights_select_requested_fraction() {
        let (g, _) = setup();
        let w = synthetic_view_weights(&g, [1.0, 0.0, 0.0], 0.5);
        let visible = w.iter().filter(|&&x| x > 0.0).count();
        let frac = visible as f64 / g.len() as f64;
        assert!((frac - 0.5).abs() < 0.01, "{frac}");
    }
}
