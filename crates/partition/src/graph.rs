//! The site graph: vertices are fluid sites, edges are lattice links.
//!
//! Stored in the CSR (`xadj`/`adjncy`) layout METIS uses. Vertex weights
//! default to the per-site LB work (uniform) and can carry a secondary
//! *visualisation* weight for the multi-constraint experiments.

use hemelb_geometry::SparseGeometry;

/// Which lattice links define graph edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connectivity {
    /// 6 axis neighbours.
    Six,
    /// 14 = 6 axis + 8 cube corners (the D3Q15 stencil).
    D3Q15,
    /// 18 = 6 axis + 12 face diagonals (the D3Q19 stencil).
    D3Q19,
    /// Full 26-neighbourhood.
    TwentySix,
}

impl Connectivity {
    /// The neighbour offsets of this stencil (excluding the rest vector).
    pub fn offsets(self) -> Vec<[i32; 3]> {
        let mut out = Vec::new();
        for dx in -1..=1i32 {
            for dy in -1..=1i32 {
                for dz in -1..=1i32 {
                    let nz = [dx, dy, dz].iter().filter(|&&v| v != 0).count();
                    let keep = match self {
                        Connectivity::Six => nz == 1,
                        Connectivity::D3Q15 => nz == 1 || nz == 3,
                        Connectivity::D3Q19 => nz == 1 || nz == 2,
                        Connectivity::TwentySix => nz >= 1,
                    };
                    if keep {
                        out.push([dx, dy, dz]);
                    }
                }
            }
        }
        out
    }
}

/// CSR graph over fluid sites with coordinates and one or two vertex
/// weights.
#[derive(Debug, Clone)]
pub struct SiteGraph {
    /// CSR row pointers, length `n + 1`.
    pub xadj: Vec<usize>,
    /// CSR adjacency (vertex ids), length `xadj[n]`.
    pub adjncy: Vec<u32>,
    /// Primary (compute) vertex weights.
    pub vwgt: Vec<f64>,
    /// Optional secondary (visualisation) vertex weights.
    pub vwgt2: Option<Vec<f64>>,
    /// Vertex coordinates (lattice positions), for geometric methods.
    pub coords: Vec<[f64; 3]>,
}

impl SiteGraph {
    /// Build the site graph of a sparse geometry under a stencil.
    pub fn from_geometry(geo: &SparseGeometry, conn: Connectivity) -> Self {
        let offsets = conn.offsets();
        let n = geo.fluid_count();
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::new();
        xadj.push(0);
        for s in 0..n as u32 {
            let [x, y, z] = geo.position(s);
            for off in &offsets {
                if let Some(t) = geo.site_at(
                    x as i64 + off[0] as i64,
                    y as i64 + off[1] as i64,
                    z as i64 + off[2] as i64,
                ) {
                    adjncy.push(t);
                }
            }
            xadj.push(adjncy.len());
        }
        let coords = (0..n as u32)
            .map(|s| {
                let [x, y, z] = geo.position(s);
                [x as f64, y as f64, z as f64]
            })
            .collect();
        SiteGraph {
            xadj,
            adjncy,
            vwgt: vec![1.0; n],
            vwgt2: None,
            coords,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of (directed) adjacency entries; each undirected edge
    /// appears twice.
    pub fn directed_edge_count(&self) -> usize {
        self.adjncy.len()
    }

    /// Neighbours of vertex `v`.
    #[inline]
    pub fn neighbours(&self, v: u32) -> &[u32] {
        &self.adjncy[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Total primary weight.
    pub fn total_weight(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Attach a secondary (visualisation) weight vector.
    ///
    /// # Panics
    /// Panics if the length differs from the vertex count.
    pub fn with_secondary_weights(mut self, w2: Vec<f64>) -> Self {
        assert_eq!(w2.len(), self.len());
        self.vwgt2 = Some(w2);
        self
    }

    /// Structural sanity checks (symmetry, no self-loops, ids in range).
    /// O(E log E); used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len() as u32;
        let mut directed: Vec<(u32, u32)> = Vec::with_capacity(self.adjncy.len());
        for v in 0..n {
            for &u in self.neighbours(v) {
                if u >= n {
                    return Err(format!("edge target {u} out of range"));
                }
                if u == v {
                    return Err(format!("self-loop at {v}"));
                }
                directed.push((v, u));
            }
        }
        let mut reversed: Vec<(u32, u32)> = directed.iter().map(|&(a, b)| (b, a)).collect();
        directed.sort_unstable();
        reversed.sort_unstable();
        if directed != reversed {
            return Err("graph is not symmetric".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_geometry::VesselBuilder;

    #[test]
    fn stencils_have_expected_sizes() {
        assert_eq!(Connectivity::Six.offsets().len(), 6);
        assert_eq!(Connectivity::D3Q15.offsets().len(), 14);
        assert_eq!(Connectivity::D3Q19.offsets().len(), 18);
        assert_eq!(Connectivity::TwentySix.offsets().len(), 26);
    }

    #[test]
    fn graph_is_symmetric_and_loop_free() {
        let geo = VesselBuilder::straight_tube(14.0, 3.0).voxelise(1.0);
        for conn in [
            Connectivity::Six,
            Connectivity::D3Q15,
            Connectivity::D3Q19,
            Connectivity::TwentySix,
        ] {
            let g = SiteGraph::from_geometry(&geo, conn);
            assert_eq!(g.len(), geo.fluid_count());
            g.validate().unwrap();
        }
    }

    #[test]
    fn interior_vertices_have_full_degree() {
        let geo = VesselBuilder::straight_tube(20.0, 5.0).voxelise(1.0);
        let g = SiteGraph::from_geometry(&geo, Connectivity::Six);
        let max_deg = (0..g.len() as u32)
            .map(|v| g.neighbours(v).len())
            .max()
            .unwrap();
        assert_eq!(max_deg, 6, "interior of a radius-5 tube has full stencils");
    }

    #[test]
    fn weights_default_uniform() {
        let geo = VesselBuilder::straight_tube(10.0, 2.0).voxelise(1.0);
        let g = SiteGraph::from_geometry(&geo, Connectivity::Six);
        assert_eq!(g.total_weight(), g.len() as f64);
        let g2 = g.with_secondary_weights(vec![2.0; geo.fluid_count()]);
        assert!(g2.vwgt2.is_some());
    }
}
