//! Experiment E11 (extension) — in situ *feature extraction*: the
//! paper's §I names "in situ visualisation and feature extraction" as
//! the two data-reduction strategies; §IV-C-2 says line visualisation
//! reveals "features such as vortices". This experiment extracts both
//! kinds of derived geometry from a live aneurysm flow:
//!
//! * an **isosurface** of the speed field (marching tetrahedra) →
//!   `out/speed_isosurface.ppm`;
//! * **vortex regions** (connected high-vorticity components) → a
//!   compact [`FeatureReport`].
//!
//! Both outputs are orders of magnitude smaller than the field they
//! summarise — measured below.

use crate::workloads::{self, Size};
use hemelb_geometry::Vec3;
use hemelb_insitu::camera::Camera;
use hemelb_insitu::features::{swirling_regions, vorticity, vorticity_magnitude, FeatureReport};
use hemelb_insitu::isosurface::{marching_tetrahedra, render_mesh, TriangleMesh};
use std::fmt;
use std::path::PathBuf;

/// The extraction results.
pub struct ExtractResult {
    /// Sites in the field.
    pub sites: usize,
    /// Raw field bytes (speed, f64).
    pub field_bytes: usize,
    /// The extracted isosurface.
    pub mesh_triangles: usize,
    /// Mesh transport bytes.
    pub mesh_bytes: usize,
    /// Where the render went.
    pub image_path: PathBuf,
    /// Image coverage.
    pub coverage: f64,
    /// The vortex report.
    pub features: FeatureReport,
}

/// Run E11 on the developed aneurysm flow.
pub fn run(size: Size) -> ExtractResult {
    let geo = workloads::aneurysm(size);
    let snap = workloads::developed_flow(&geo, 400);

    // Isosurface of speed at 40% of the peak.
    let peak = snap.max_speed();
    let iso = peak * 0.4;
    let shape = geo.shape();
    let geo2 = geo.clone();
    let snap2 = snap.clone();
    let mesh: TriangleMesh = marching_tetrahedra(
        [shape[0], shape[1], shape[2]],
        move |x, y, z| geo2.site_at(x, y, z).map(|s| snap2.speed(s as usize)),
        iso,
    );

    let cam = Camera::framing(
        Vec3::ZERO,
        Vec3::new(shape[0] as f64, shape[1] as f64, shape[2] as f64),
        Vec3::new(0.15, -1.0, 0.25),
        512,
        384,
    );
    let image = render_mesh(&mesh, &cam, [0.75, 0.15, 0.15]);
    let image_path = workloads::out_dir().join("speed_isosurface.ppm");
    image.write_ppm(&image_path).expect("PPM written");

    // Vortex regions: threshold at twice the median vorticity.
    let w = vorticity(&geo, &snap);
    let mut mags: Vec<f64> = w.iter().map(|&v| vorticity_magnitude(v)).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let threshold = mags[mags.len() / 2] * 2.0;
    let features = swirling_regions(&geo, &snap, threshold.max(1e-9), 8);

    ExtractResult {
        sites: geo.fluid_count(),
        field_bytes: geo.fluid_count() * 8,
        mesh_triangles: mesh.triangle_count(),
        mesh_bytes: mesh.approx_bytes(),
        image_path,
        coverage: image.coverage(),
        features,
    }
}

impl fmt::Display for ExtractResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "In situ extraction over {} sites ({} raw field):",
            self.sites,
            workloads::fmt_bytes(self.field_bytes as u64)
        )?;
        writeln!(
            f,
            "isosurface: {} triangles, {} shipped (vs {} field; surface scales as N^2/3) → {} ({:.1}% coverage)",
            self.mesh_triangles,
            workloads::fmt_bytes(self.mesh_bytes as u64),
            workloads::fmt_bytes(self.field_bytes as u64),
            self.image_path.display(),
            self.coverage * 100.0,
        )?;
        writeln!(
            f,
            "vortex regions (|ω| > {:.2e}, ≥8 sites): {} features, report {} ({:.0}x reduction)",
            self.features.threshold,
            self.features.features.len(),
            workloads::fmt_bytes(self.features.approx_bytes() as u64),
            self.field_bytes as f64 / self.features.approx_bytes().max(1) as f64,
        )?;
        for (i, feat) in self.features.features.iter().take(5).enumerate() {
            writeln!(
                f,
                "  #{i}: {} sites at ({:.1}, {:.1}, {:.1}), peak |ω| {:.3e}",
                feat.sites,
                feat.centroid[0],
                feat.centroid[1],
                feat.centroid[2],
                feat.peak_vorticity,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_reduces_and_finds_structure() {
        let r = run(Size::Tiny);
        assert!(
            r.mesh_triangles > 50,
            "a surface exists: {}",
            r.mesh_triangles
        );
        assert!(r.coverage > 0.01, "visible render: {}", r.coverage);
        assert!(
            !r.features.features.is_empty(),
            "the aneurysm flow has vortical structure"
        );
        // The whole point: extracted representations are small.
        assert!(r.features.approx_bytes() < r.field_bytes / 4);
        std::fs::remove_file(&r.image_path).ok();
    }
}
