//! Experiment E17 — the multi-tenant steering gateway under load.
//!
//! The original HemeLB steering server owned exactly one socket; the
//! gateway (DESIGN.md §2.13) multiplexes one driver plus any number of
//! observers over the same closed loop. E17 measures what that costs
//! and what the rendered-frame cache buys:
//!
//! * **Driver round trip under fan-out.** One driver requests frames
//!   while `observers` synthetic clients drain the broadcast stream.
//!   The p50/p99 `RequestFrame → ImageFrame` round trip shows whether
//!   hundreds of passive watchers perturb the steering loop.
//! * **Fan-out traffic.** Total bytes the master shipped across all
//!   sessions, and the per-frame broadcast cost.
//! * **Cache pay-off.** The driver then pauses the simulation and
//!   re-requests the same view: every repeat is served from the
//!   rendered-frame cache (one render, one encode, N sends), and the
//!   hit/miss counters come back through the closed-loop outcome.
//!
//! The report is also written as `out/BENCH_gateway.json` via the obs
//! JSON codec.

use crate::workloads::{self, fmt_bytes, Size};
use hemelb_core::SolverConfig;
use hemelb_obs::{fmt_secs, Histogram, ObsReport, Recorder};
use hemelb_parallel::run_spmd;
use hemelb_steering::{
    duplex_listener, run_closed_loop_opts, Acceptor, ClosedLoopConfig, GatewayConfig,
    SteeringClient, SteeringCommand,
};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Everything E17 measures.
pub struct GatewayResult {
    /// Ranks in the run.
    pub ranks: usize,
    /// Synthetic observer clients attached alongside the driver.
    pub observers: usize,
    /// Driver `RequestFrame → ImageFrame` round trips (seconds), taken
    /// while the simulation advances (cache misses).
    pub rtts: Vec<f64>,
    /// Repeat requests of the identical paused view (cache hits).
    pub cached_rtts: Vec<f64>,
    /// Total bytes the master shipped across every session.
    pub fanout_bytes: u64,
    /// Frames rendered (cache misses that produced pixels).
    pub frames_rendered: u64,
    /// Frames replayed from the rendered-frame cache.
    pub frames_from_cache: u64,
    /// Frame-cache hits across the run.
    pub cache_hits: u64,
    /// Frame-cache misses across the run.
    pub cache_misses: u64,
    /// Peak concurrent sessions the gateway saw (driver + observers).
    pub sessions_peak: u64,
    /// Broadcast images received per observer: (min, max).
    pub observer_frames: (u64, u64),
    /// The exported report, also written to `out/BENCH_gateway.json`.
    pub report: ObsReport,
}

impl GatewayResult {
    fn hist(samples: &[f64]) -> Histogram {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    /// Cache hits as a fraction of all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Run E17: one driver plus `observers` synthetic clients against a
/// gateway-mode closed loop, `frames` live round trips then `frames`
/// cached repeats of the paused view.
pub fn run(size: Size, ranks: usize, observers: usize, frames: usize) -> GatewayResult {
    let geo = workloads::aneurysm(size);
    let ranks = ranks.max(2);
    let (connector, acceptor) = duplex_listener();
    let acceptor_slot = Arc::new(Mutex::new(Some(Box::new(acceptor) as Box<dyn Acceptor>)));

    let client_thread = std::thread::spawn(move || {
        // First to dial becomes the driver.
        let driver = SteeringClient::new(Box::new(connector.connect().unwrap()));
        let (first, _) = driver.request_frame().expect("driver's first frame");

        // The observer fleet: each drains the broadcast stream until the
        // server goes away, counting the images it saw.
        let observer_threads: Vec<_> = (0..observers)
            .map(|_| {
                let conn = connector.clone();
                std::thread::spawn(move || {
                    let client = SteeringClient::new(Box::new(conn.connect().unwrap()));
                    let mut images = 0u64;
                    while let Ok(msg) = client.recv() {
                        if matches!(msg, hemelb_steering::protocol::ServerMessage::Image(_)) {
                            images += 1;
                        }
                    }
                    images
                })
            })
            .collect();

        // Live round trips: the simulation advances between frames, so
        // every request is a cache miss rendered under full fan-out.
        let mut rtts = Vec::with_capacity(frames);
        for _ in 0..frames {
            let (_, rtt) = driver.request_frame().expect("live frame");
            rtts.push(rtt.as_secs_f64());
        }

        // Freeze the flow, wait for the pause to land (two consecutive
        // frames at the same step), then measure pure cache replays.
        driver.send(&SteeringCommand::Pause).unwrap();
        let mut prev = first.step;
        loop {
            let (img, _) = driver.request_frame().expect("pause settles");
            if img.step == prev {
                break;
            }
            prev = img.step;
        }
        let mut cached_rtts = Vec::with_capacity(frames);
        for _ in 0..frames {
            let (img, rtt) = driver.request_frame().expect("cached frame");
            assert_eq!(img.step, prev, "paused view repeats");
            cached_rtts.push(rtt.as_secs_f64());
        }

        driver.send(&SteeringCommand::Terminate).unwrap();
        while driver.recv().is_ok() {}
        let counts: Vec<u64> = observer_threads
            .into_iter()
            .map(|t| t.join().expect("observer thread"))
            .collect();
        (rtts, cached_rtts, counts)
    });

    let geo2 = geo.clone();
    let out = run_spmd(ranks, move |comm| {
        let acceptor = if comm.is_master() {
            acceptor_slot.lock().take()
        } else {
            None
        };
        run_closed_loop_opts(
            geo2.clone(),
            workloads::slab_owner(&geo2, comm.size()),
            SolverConfig::pressure_driven(1.005, 0.995),
            comm,
            None,
            acceptor,
            &ClosedLoopConfig {
                max_steps: u64::MAX / 2,
                image: (64, 48),
                initial_vis_rate: u32::MAX, // frames only on request
                steps_per_cycle: 5,
                gateway: Some(GatewayConfig::default()),
                ..Default::default()
            },
        )
        .unwrap()
    });
    let (rtts, cached_rtts, observer_counts) = client_thread.join().expect("client thread");
    let master = &out[0];

    let observer_frames = (
        observer_counts.iter().copied().min().unwrap_or(0),
        observer_counts.iter().copied().max().unwrap_or(0),
    );

    // Export through the obs codec.
    let live = GatewayResult::hist(&rtts);
    let cached = GatewayResult::hist(&cached_rtts);
    let mut rec = Recorder::new();
    rec.record_secs("gateway.rtt_p50.live", live.p50());
    rec.record_secs("gateway.rtt_p99.live", live.p99());
    rec.record_secs("gateway.rtt_p50.cached", cached.p50());
    rec.record_secs("gateway.rtt_p99.cached", cached.p99());
    rec.count("gateway.observers", observers as u64);
    rec.count("gateway.sessions_peak", master.sessions_peak);
    rec.count("gateway.fanout_bytes", master.steering_bytes);
    rec.count("gateway.frames_rendered", master.frames_rendered);
    rec.count("gateway.frames_from_cache", master.frames_from_cache);
    rec.count("gateway.cache.hits", master.cache_hits);
    rec.count("gateway.cache.misses", master.cache_misses);
    rec.count(
        "gateway.cache.hit_rate_permille",
        ((master.cache_hits as f64 / (master.cache_hits + master.cache_misses).max(1) as f64)
            * 1000.0)
            .round() as u64,
    );
    let report = rec.report();
    let path = workloads::out_dir().join("BENCH_gateway.json");
    std::fs::write(&path, report.to_json()).expect("BENCH_gateway.json written");

    GatewayResult {
        ranks,
        observers,
        rtts,
        cached_rtts,
        fanout_bytes: master.steering_bytes,
        frames_rendered: master.frames_rendered,
        frames_from_cache: master.frames_from_cache,
        cache_hits: master.cache_hits,
        cache_misses: master.cache_misses,
        sessions_peak: master.sessions_peak,
        observer_frames,
        report,
    }
}

impl fmt::Display for GatewayResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let live = Self::hist(&self.rtts);
        let cached = Self::hist(&self.cached_rtts);
        writeln!(
            f,
            "Steering gateway under load ({} ranks, 1 driver + {} observers, peak {} sessions):",
            self.ranks, self.observers, self.sessions_peak
        )?;
        writeln!(
            f,
            "{:>14} {:>10} {:>10} {:>8}",
            "frames", "p50", "p99", "count"
        )?;
        writeln!(
            f,
            "{:>14} {:>10} {:>10} {:>8}",
            "live (render)",
            fmt_secs(live.p50()),
            fmt_secs(live.p99()),
            self.rtts.len()
        )?;
        writeln!(
            f,
            "{:>14} {:>10} {:>10} {:>8}",
            "cached replay",
            fmt_secs(cached.p50()),
            fmt_secs(cached.p99()),
            self.cached_rtts.len()
        )?;
        writeln!(
            f,
            "fan-out: {} shipped; {} rendered + {} cached frames; cache {}/{} hits ({:.0}%)",
            fmt_bytes(self.fanout_bytes),
            self.frames_rendered,
            self.frames_from_cache,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            100.0 * self.hit_rate(),
        )?;
        writeln!(
            f,
            "observer broadcast frames: min {} / max {} across {} observers",
            self.observer_frames.0, self.observer_frames.1, self.observers
        )?;
        writeln!(f, "JSON: out/BENCH_gateway.json")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_load_test_reports_cache_hits_and_fanout() {
        let r = run(Size::Tiny, 2, 8, 3);
        assert_eq!(r.rtts.len(), 3);
        assert_eq!(r.cached_rtts.len(), 3);
        assert!(r.cache_hits >= 3, "every paused repeat hits the cache");
        assert!(r.hit_rate() > 0.0);
        assert_eq!(r.sessions_peak, 9, "driver + 8 observers");
        assert!(r.fanout_bytes > 0);
        assert!(
            r.observer_frames.1 >= 1,
            "observers saw broadcast frames: {:?}",
            r.observer_frames
        );
        let back = ObsReport::from_json(&r.report.to_json()).expect("valid JSON");
        assert!(back.counters["gateway.cache.hits"] >= 3);
        assert_eq!(back.counters["gateway.observers"], 8);
    }
}
