//! Experiment E18 — communication/computation overlap: the synchronous
//! halo exchange against the frontier-first overlapped schedule, on the
//! standard aneurysm workload, with and without an injected per-peer
//! delay.
//!
//! The co-design claim being measured: a sparse-geometry LB rank spends
//! its halo time *waiting*, not transferring — so colliding the
//! frontier first, posting the sends, and computing the interior while
//! the messages are in flight hides the exchange behind work that had
//! to happen anyway. Under a sender-side delay `D` on one rank, the
//! victim ranks' synchronous halo wait is ≈ `D` per step while the
//! overlapped residual wait shrinks toward `max(0, D − interior
//! compute)`. Both schedules are bit-identical, which the run
//! re-verifies inline.
//!
//! Methodology: per (rank count, delay) cell, one SPMD world hosts a
//! synchronous and an overlapped solver over the *same* decomposition,
//! stepped in interleaved rounds (sync steps, then overlapped, repeat)
//! with best-of-`reps` per-step wall time kept per schedule, so cache
//! warm-up and machine noise hit both alike. Halo-wait seconds come
//! from the `CommStats` deltas around each round, averaged over the
//! non-delayed ranks. Results export to `out/BENCH_overlap.json`.

use crate::workloads::{self, Size};
use hemelb_core::{DistSolver, SolverConfig};
use hemelb_obs::Recorder;
use hemelb_parallel::{run_spmd_opts, FaultEvent, FaultKind, FaultPlan, SpmdOptions, TagClass};
use std::fmt;
use std::time::Instant;

/// The rank that gets the sender-side delay in the delayed cells.
const DELAY_RANK: usize = 1;
/// Injected sender-side delay per matching halo send, milliseconds.
const DELAY_MS: u64 = 15;
/// Timed rounds per schedule (best kept).
const REPS: usize = 3;

/// One (rank count, delay) measurement.
#[derive(Debug, Clone)]
pub struct OverlapRow {
    /// SPMD world size.
    pub ranks: usize,
    /// Whether the sender-side delay was injected on rank 1.
    pub delayed: bool,
    /// Best-of-`REPS` wall seconds per step, synchronous schedule
    /// (slowest rank).
    pub sync_secs_per_step: f64,
    /// Best-of-`REPS` wall seconds per step, overlapped schedule
    /// (slowest rank).
    pub overlapped_secs_per_step: f64,
    /// `sync / overlapped` step time.
    pub speedup: f64,
    /// Synchronous halo wait per step, mean over non-delayed ranks.
    pub sync_halo_wait_secs: f64,
    /// Overlapped *residual* halo wait per step, same ranks.
    pub overlap_residual_secs: f64,
    /// compute / (compute + residual) over the overlapped rounds.
    pub overlap_efficiency: f64,
    /// Whether the two schedules' final distributions matched
    /// bit-for-bit on every rank.
    pub bit_identical: bool,
}

/// The E18 result.
pub struct OverlapResult {
    /// Fluid sites in the workload.
    pub sites: usize,
    /// Steps per timed round.
    pub steps: u64,
    /// Timed rounds per schedule (best kept).
    pub reps: usize,
    /// Injected delay in the delayed cells, milliseconds.
    pub delay_ms: u64,
    /// One row per (rank count, delay) cell.
    pub rows: Vec<OverlapRow>,
}

/// What one rank reports from a measurement world.
struct RankReport {
    sync_best: f64,
    over_best: f64,
    sync_wait: f64,
    over_residual: f64,
    over_compute: f64,
    bit_identical: bool,
}

fn measure_cell(size: Size, steps: u64, ranks: usize, delayed: bool) -> OverlapRow {
    let geo = workloads::aneurysm(size);
    let warm = steps.min(3);
    // A `Delay` event is persistent from its step onward (the matcher
    // fires on every send with `step >= ev.step`), so one event at
    // step 0 delays every halo send of the run — warm-up included.
    let opts = if delayed {
        SpmdOptions::with_faults(FaultPlan::new(vec![FaultEvent {
            rank: DELAY_RANK,
            class: TagClass::Halo,
            step: 0,
            kind: FaultKind::Delay { millis: DELAY_MS },
        }]))
    } else {
        SpmdOptions::default()
    };

    let geo2 = geo.clone();
    let out = run_spmd_opts(ranks, opts, move |comm| {
        let n = geo2.fluid_count();
        let owner: Vec<usize> = (0..n)
            .map(|s| (s * comm.size() / n).min(comm.size() - 1))
            .collect();
        let cfg = SolverConfig::pressure_driven(1.005, 0.995);
        let mut sync = DistSolver::new(
            geo2.clone(),
            owner.clone(),
            cfg.clone().with_overlap(false),
            comm,
        )
        .unwrap();
        let mut over = DistSolver::new(geo2.clone(), owner, cfg.with_overlap(true), comm).unwrap();

        // Warm-up round (untimed): touches every lane and settles the
        // flow off the uniform initial state.
        sync.step_n(warm).unwrap();
        over.step_n(warm).unwrap();

        // Interleaved best-of-`REPS`: every round steps each schedule
        // once, so drift cannot favour whichever ran last.
        let mut sync_best = f64::INFINITY;
        let mut over_best = f64::INFINITY;
        let mut sync_wait = 0.0;
        let mut over_residual = 0.0;
        let mut over_compute = 0.0;
        for _ in 0..REPS {
            let before = comm.stats();
            let t0 = Instant::now();
            sync.step_n(steps).unwrap();
            sync_best = sync_best.min(t0.elapsed().as_secs_f64() / steps as f64);
            let delta = comm.stats().delta_since(&before);
            sync_wait += delta.recv_wait_secs(TagClass::Halo);

            let before = comm.stats();
            let t0 = Instant::now();
            over.step_n(steps).unwrap();
            over_best = over_best.min(t0.elapsed().as_secs_f64() / steps as f64);
            let delta = comm.stats().delta_since(&before);
            over_residual += delta.overlap_residual_secs();
            over_compute += delta.overlap_compute_secs();
        }

        // Inline bit-identity: both schedules took the same steps over
        // the same decomposition, so each rank's state must agree
        // exactly.
        let bit_identical = sync
            .raw_distributions()
            .iter()
            .zip(over.raw_distributions().iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        RankReport {
            sync_best,
            over_best,
            sync_wait,
            over_residual,
            over_compute,
            bit_identical,
        }
    });

    // Step time is set by the slowest rank; waits are averaged over the
    // ranks actually waiting on the delayed sender.
    let timed_steps = (REPS as u64 * steps) as f64;
    let victims: Vec<&RankReport> = out
        .results
        .iter()
        .enumerate()
        .filter(|&(r, _)| !delayed || r != DELAY_RANK)
        .map(|(_, rep)| rep)
        .collect();
    let mean = |f: &dyn Fn(&RankReport) -> f64| {
        victims.iter().map(|r| f(r)).sum::<f64>() / victims.len() as f64
    };
    let compute = victims.iter().map(|r| r.over_compute).sum::<f64>();
    let residual = victims.iter().map(|r| r.over_residual).sum::<f64>();
    let sync_secs = out.results.iter().map(|r| r.sync_best).fold(0.0, f64::max);
    let over_secs = out.results.iter().map(|r| r.over_best).fold(0.0, f64::max);
    OverlapRow {
        ranks,
        delayed,
        sync_secs_per_step: sync_secs,
        overlapped_secs_per_step: over_secs,
        speedup: sync_secs / over_secs,
        sync_halo_wait_secs: mean(&|r: &RankReport| r.sync_wait) / timed_steps,
        overlap_residual_secs: mean(&|r: &RankReport| r.over_residual) / timed_steps,
        overlap_efficiency: if compute + residual > 0.0 {
            compute / (compute + residual)
        } else {
            1.0
        },
        bit_identical: out.results.iter().all(|r| r.bit_identical),
    }
}

/// Run E18: sync vs overlapped step time and residual halo wait at
/// {2, 4, 8} ranks (clipped to `max_ranks`), with and without the
/// injected sender-side delay.
pub fn run(size: Size, steps: u64, max_ranks: usize) -> OverlapResult {
    let geo = workloads::aneurysm(size);
    let sites = geo.fluid_count();
    let mut rows = Vec::new();
    for &ranks in &[2usize, 4, 8] {
        if ranks > max_ranks.max(2) {
            continue;
        }
        for delayed in [false, true] {
            rows.push(measure_cell(size, steps, ranks, delayed));
        }
    }

    // Export through the obs codec.
    let mut rec = Recorder::new();
    for row in &rows {
        let cell = format!(
            "overlap.r{}.{}",
            row.ranks,
            if row.delayed { "delayed" } else { "clean" }
        );
        rec.record_secs(&format!("{cell}.sync_step"), row.sync_secs_per_step);
        rec.record_secs(
            &format!("{cell}.overlapped_step"),
            row.overlapped_secs_per_step,
        );
        rec.record_secs(&format!("{cell}.sync_halo_wait"), row.sync_halo_wait_secs);
        rec.record_secs(
            &format!("{cell}.overlap_residual"),
            row.overlap_residual_secs,
        );
        rec.count(
            &format!("{cell}.efficiency_permille"),
            (row.overlap_efficiency * 1000.0) as u64,
        );
        rec.count(
            &format!("{cell}.bit_identical"),
            u64::from(row.bit_identical),
        );
    }
    rec.count("overlap.sites", sites as u64);
    rec.count("overlap.delay_ms", DELAY_MS);
    let path = workloads::out_dir().join("BENCH_overlap.json");
    std::fs::write(&path, rec.report().to_json()).expect("BENCH_overlap.json written");

    OverlapResult {
        sites,
        steps,
        reps: REPS,
        delay_ms: DELAY_MS,
        rows,
    }
}

impl fmt::Display for OverlapResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Communication/computation overlap — {} sites, {} steps/round, best of {} \
             interleaved rounds, injected delay {} ms",
            self.sites, self.steps, self.reps, self.delay_ms
        )?;
        writeln!(
            f,
            "{:<6} {:>8} {:>12} {:>12} {:>8} {:>12} {:>12} {:>6} {:>10}",
            "ranks",
            "delayed",
            "sync ms",
            "overlap ms",
            "speedup",
            "sync wait",
            "residual",
            "eff",
            "bit-exact"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:>8} {:>12.3} {:>12.3} {:>7.2}x {:>12.3} {:>12.3} {:>5.0}% {:>10}",
                r.ranks,
                r.delayed,
                r.sync_secs_per_step * 1e3,
                r.overlapped_secs_per_step * 1e3,
                r.speedup,
                r.sync_halo_wait_secs * 1e3,
                r.overlap_residual_secs * 1e3,
                r.overlap_efficiency * 100.0,
                r.bit_identical,
            )?;
        }
        writeln!(f, "JSON: out/BENCH_overlap.json")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_bench_measures_and_stays_bit_exact() {
        let result = run(Size::Tiny, 3, 2);
        assert_eq!(result.rows.len(), 2, "clean + delayed at 2 ranks");
        for row in &result.rows {
            assert!(
                row.bit_identical,
                "schedules diverged at {} ranks",
                row.ranks
            );
            assert!(row.sync_secs_per_step > 0.0 && row.overlapped_secs_per_step > 0.0);
            assert!((0.0..=1.0).contains(&row.overlap_efficiency));
        }
        let delayed = result.rows.iter().find(|r| r.delayed).unwrap();
        assert!(
            delayed.sync_halo_wait_secs * 1e3 > DELAY_MS as f64 * 0.5,
            "victim ranks must feel the injected delay in the sync schedule"
        );
        // Residual wait under overlap cannot exceed the sync wait by
        // more than noise: the interior compute only ever subtracts.
        assert!(
            delayed.overlap_residual_secs <= delayed.sync_halo_wait_secs * 1.5 + 0.005,
            "residual {} vs sync wait {}",
            delayed.overlap_residual_secs,
            delayed.sync_halo_wait_secs
        );
        assert!(workloads::out_dir().join("BENCH_overlap.json").exists());
    }
}
