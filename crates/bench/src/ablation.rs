//! Ablation A1 — mesh refinement / resolution convergence.
//!
//! The paper's §IV-B motivates pre-processing that "globally generates
//! intermediate grid points thus enhancing result precision". This
//! ablation quantifies that precision gain: pressure-driven Poiseuille
//! flow in a circular tube solved at successive lattice resolutions,
//! compared against the analytic parabola `u(r) = u_max (1 − r²/R²)`.
//! Halfway bounce-back on a staircase wall is formally between first
//! and second order in `dx`; the measured error must *decrease* under
//! refinement, and the cost rows show what each factor-2 refinement
//! costs in sites and steps — the co-design trade pre-processing
//! decides.

use hemelb_core::{Solver, SolverConfig};
use hemelb_geometry::VesselBuilder;
use std::fmt;
use std::sync::Arc;

/// One resolution's row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Lattice spacing (world units per cell).
    pub dx: f64,
    /// Fluid sites.
    pub sites: usize,
    /// Steps to convergence.
    pub steps: u64,
    /// Relative L2 error of the mid-tube axial profile against the
    /// fitted parabola.
    pub profile_error: f64,
}

/// The convergence study.
pub struct AblationResult {
    /// Rows, coarse to fine.
    pub rows: Vec<AblationRow>,
}

/// Solve the tube at spacing `dx` and measure the profile error.
fn measure(dx: f64) -> AblationRow {
    let radius = 4.0;
    let length = 20.0;
    let geo = Arc::new(VesselBuilder::straight_tube(length, radius).voxelise(dx));
    let mut solver = Solver::new(
        geo.clone(),
        SolverConfig::pressure_driven(1.004, 0.996).with_tau(0.9),
    );
    let (_, steps, _) = solver.run_to_steady_state(1e-9, 100, 40_000);
    let snap = solver.snapshot();

    // Mid-tube cross-section: (r², ux) samples.
    let shape = geo.shape();
    let cy = (shape[1] as f64 - 1.0) / 2.0;
    let cz = (shape[2] as f64 - 1.0) / 2.0;
    let x_mid = (shape[0] / 2) as u32;
    let mut pts: Vec<(f64, f64)> = Vec::new();
    for i in 0..geo.fluid_count() as u32 {
        let [x, y, z] = geo.position(i);
        if x == x_mid {
            let r2 = ((y as f64 - cy).powi(2) + (z as f64 - cz).powi(2)) * dx * dx;
            pts.push((r2, snap.u[i as usize][0]));
        }
    }

    // Least-squares fit u = a + b·r², then the relative residual is the
    // deviation from the ideal parabola.
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let sxx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let b = sxy / sxx;
    let a = my - b * mx;
    let ss_res: f64 = pts.iter().map(|p| (p.1 - (a + b * p.0)).powi(2)).sum();
    let ss_tot: f64 = pts.iter().map(|p| (p.1 - my).powi(2)).sum();
    let profile_error = (ss_res / ss_tot.max(1e-300)).sqrt();

    AblationRow {
        dx,
        sites: geo.fluid_count(),
        steps,
        profile_error,
    }
}

/// Run the study over the given spacings (descending = refining).
pub fn run(spacings: &[f64]) -> AblationResult {
    AblationResult {
        rows: spacings.iter().map(|&dx| measure(dx)).collect(),
    }
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Resolution convergence (Poiseuille tube, analytic parabola reference):"
        )?;
        writeln!(
            f,
            "{:>6} {:>10} {:>10} {:>16}",
            "dx", "sites", "steps", "profile error"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6.2} {:>10} {:>10} {:>15.4}%",
                r.dx,
                r.sites,
                r.steps,
                r.profile_error * 100.0,
            )?;
        }
        writeln!(
            f,
            "(error falls under refinement — the precision gain §IV-B's mesh refinement buys)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_reduces_profile_error() {
        let result = run(&[1.0, 0.5]);
        let coarse = &result.rows[0];
        let fine = &result.rows[1];
        assert!(fine.sites > 5 * coarse.sites, "8x sites per halving");
        assert!(
            fine.profile_error < coarse.profile_error,
            "refinement must help: {} -> {}",
            coarse.profile_error,
            fine.profile_error
        );
        assert!(
            coarse.profile_error < 0.35,
            "coarse staircase error stays bounded: {}",
            coarse.profile_error
        );
        assert!(
            fine.profile_error < coarse.profile_error * 0.6,
            "better than first-order convergence: {} -> {}",
            coarse.profile_error,
            fine.profile_error
        );
    }
}
