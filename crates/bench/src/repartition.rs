//! Experiment E10 — §IV-B's visualisation-aware repartitioning: "these
//! costs of other simulation parts, like visualisation, must be
//! involved in the balance equation … repartitioning helps to improve
//! load balance greatly."
//!
//! Three strategies are compared on a camera-dependent visualisation
//! load, for a sweep of view directions:
//!
//! 1. **compute-only** — the k-way partition as-is (the baseline whose
//!    vis imbalance motivates the paper's argument);
//! 2. **diffusive rebalance** — boundary migration under both
//!    constraints: cheap, but bounded by part adjacency, so strongly
//!    clustered vis load improves only modestly;
//! 3. **full multi-constraint repartition** (Hilbert striping) — every
//!    part holds a share of every region: vis balance near 1 for *any*
//!    camera, paid for in edge cut and a large one-time migration.

use crate::workloads::{self, Size};
use hemelb_partition::graph::{Connectivity, SiteGraph};
use hemelb_partition::metrics::quality;
use hemelb_partition::visaware::{rebalance, striped_multiconstraint, synthetic_view_weights};
use hemelb_partition::{MultilevelKWay, Partitioner};
use std::fmt;

/// One strategy's numbers under one view.
#[derive(Debug, Clone)]
pub struct StrategyRow {
    /// Strategy name.
    pub strategy: &'static str,
    /// Compute imbalance.
    pub imbalance: f64,
    /// Visualisation imbalance.
    pub imbalance2: f64,
    /// Edge cut.
    pub edge_cut: u64,
    /// Fraction of sites that changed owner vs the baseline.
    pub migration_fraction: f64,
}

/// One view's comparison.
#[derive(Debug, Clone)]
pub struct ViewComparison {
    /// View label.
    pub view: &'static str,
    /// Rows: baseline, rebalance, striped.
    pub rows: Vec<StrategyRow>,
}

/// The sweep.
pub struct RepartitionResult {
    /// Ranks.
    pub ranks: usize,
    /// Sites.
    pub sites: usize,
    /// Per-view comparisons.
    pub views: Vec<ViewComparison>,
}

fn migration(owner_a: &[usize], owner_b: &[usize]) -> f64 {
    let moved = owner_a.iter().zip(owner_b).filter(|(a, b)| a != b).count();
    moved as f64 / owner_a.len() as f64
}

/// Run E10.
pub fn run(size: Size, ranks: usize) -> RepartitionResult {
    let geo = workloads::aneurysm(size);
    let graph = SiteGraph::from_geometry(&geo, Connectivity::Six);
    let baseline = MultilevelKWay::default().partition(&graph, ranks);

    let views: [(&'static str, [f64; 3]); 3] = [
        ("front (+x)", [1.0, 0.0, 0.0]),
        ("top (+z)", [0.0, 0.0, 1.0]),
        ("oblique", [0.6, 0.6, 0.5]),
    ];
    let views = views
        .iter()
        .map(|(label, dir)| {
            let w2 = synthetic_view_weights(&graph, *dir, 0.3);
            let g = graph.clone().with_secondary_weights(w2);

            let q_base = quality(&g, &baseline, ranks);
            let reb = rebalance(&g, &baseline, ranks, 0.10, 40)
                .expect("E10 always installs secondary weights on a well-formed graph");
            let q_reb = quality(&g, &reb.owner, ranks);
            let striped = striped_multiconstraint(&g, ranks, 64);
            let q_str = quality(&g, &striped, ranks);

            ViewComparison {
                view: label,
                rows: vec![
                    StrategyRow {
                        strategy: "compute-only",
                        imbalance: q_base.imbalance,
                        imbalance2: q_base.imbalance2.unwrap_or(1.0),
                        edge_cut: q_base.edge_cut,
                        migration_fraction: 0.0,
                    },
                    StrategyRow {
                        strategy: "rebalance",
                        imbalance: q_reb.imbalance,
                        imbalance2: q_reb.imbalance2.unwrap_or(1.0),
                        edge_cut: q_reb.edge_cut,
                        migration_fraction: migration(&baseline, &reb.owner),
                    },
                    StrategyRow {
                        strategy: "striped",
                        imbalance: q_str.imbalance,
                        imbalance2: q_str.imbalance2.unwrap_or(1.0),
                        edge_cut: q_str.edge_cut,
                        migration_fraction: migration(&baseline, &striped),
                    },
                ],
            }
        })
        .collect();

    RepartitionResult {
        ranks,
        sites: geo.fluid_count(),
        views,
    }
}

impl fmt::Display for RepartitionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Vis-aware repartitioning ({} sites, {} ranks, 30% of sites visible):",
            self.sites, self.ranks
        )?;
        writeln!(
            f,
            "{:<12} {:<14} {:>10} {:>10} {:>10} {:>10}",
            "view", "strategy", "comp imb.", "vis imb.", "edge cut", "migrated"
        )?;
        for v in &self.views {
            for r in &v.rows {
                writeln!(
                    f,
                    "{:<12} {:<14} {:>10.3} {:>10.3} {:>10} {:>9.1}%",
                    v.view,
                    r.strategy,
                    r.imbalance,
                    r.imbalance2,
                    r.edge_cut,
                    r.migration_fraction * 100.0,
                )?;
            }
        }
        writeln!(
            f,
            "(full multi-constraint repartitioning balances the vis load for any camera — the\n paper's 'repartitioning helps greatly' — at the cost of edge cut and a one-time migration)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_repartition_balances_vis_load_everywhere() {
        let result = run(Size::Tiny, 4);
        for v in &result.views {
            let base = &v.rows[0];
            let reb = &v.rows[1];
            let striped = &v.rows[2];
            // The baseline motivates the exercise.
            assert!(base.imbalance2 > 1.3, "{}: {}", v.view, base.imbalance2);
            // Rebalance never hurts vis balance.
            assert!(reb.imbalance2 <= base.imbalance2 + 1e-9);
            // The full repartition achieves near-balance for every view.
            assert!(
                striped.imbalance2 < 1.5,
                "{}: striped vis imbalance {}",
                v.view,
                striped.imbalance2
            );
            assert!(striped.imbalance < 1.1);
            // And pays in cut.
            assert!(striped.edge_cut > base.edge_cut);
        }
    }
}
