//! Experiment E3 — the paper's **Fig. 2**: the closed-loop system
//! architecture with computational steering.
//!
//! The figure is an architecture diagram; its measurable content is the
//! *round-trip* of the six-step in situ loop (client → master → vis
//! component → image → master → client) — the latency that decides
//! whether the loop is interactive. We run the real closed loop and
//! time `RequestFrame → ImageFrame` round trips for a sweep of image
//! sizes and rank counts.

use crate::workloads::{self, Size};
use hemelb_core::SolverConfig;
use hemelb_parallel::{run_spmd_opts, SpmdOptions};
use hemelb_steering::{
    duplex_pair, run_closed_loop, ClosedLoopConfig, SteeringClient, SteeringCommand, Transport,
};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// One configuration's measurements.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Ranks.
    pub ranks: usize,
    /// Image size.
    pub image: (u32, u32),
    /// Round-trip latencies of successive frame requests (seconds).
    pub rtts: Vec<f64>,
    /// Steering bytes shipped to the client.
    pub steering_bytes: u64,
    /// Frames rendered.
    pub frames: u64,
    /// Render samples shaded, all ranks (macrocell skipping on).
    pub samples_shaded: u64,
    /// Render samples skipped by macrocell jumps, all ranks.
    pub samples_skipped: u64,
    /// Compositing bytes actually sent (run-length sparse), all ranks.
    pub composite_wire: u64,
    /// Compositing bytes the dense 20 B/px format would have sent.
    pub composite_dense: u64,
}

impl Fig2Row {
    /// Median round-trip time.
    pub fn median_rtt(&self) -> f64 {
        let mut v = self.rtts.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }

    /// The round-trip latency distribution as an observability
    /// histogram (for p50/p95/p99 quantiles).
    pub fn rtt_histogram(&self) -> hemelb_obs::Histogram {
        let mut h = hemelb_obs::Histogram::new();
        for &s in &self.rtts {
            h.record(s);
        }
        h
    }
}

/// The sweep result.
pub struct Fig2Result {
    /// Rows.
    pub rows: Vec<Fig2Row>,
}

/// Run E3: for each `(ranks, image)` configuration, run the closed loop
/// and have a client issue `frames` frame requests.
pub fn run(size: Size, configs: &[(usize, (u32, u32))], frames: usize) -> Fig2Result {
    let geo = workloads::aneurysm(size);
    let mut rows = Vec::new();
    for &(ranks, image) in configs {
        let (client_end, server_end) = duplex_pair();
        let server_slot = Arc::new(Mutex::new(Some(Box::new(server_end) as Box<dyn Transport>)));
        let geo2 = geo.clone();

        let client_thread = std::thread::spawn(move || {
            let client = SteeringClient::new(Box::new(client_end));
            let mut rtts = Vec::with_capacity(frames);
            for _ in 0..frames {
                let (_, rtt) = client.request_frame().expect("frame round trip");
                rtts.push(rtt.as_secs_f64());
            }
            client.send(&SteeringCommand::Terminate).ok();
            // Drain trailing messages until the server closes.
            while client.recv().is_ok() {}
            rtts
        });

        let output = run_spmd_opts(ranks, SpmdOptions::default(), move |comm| {
            let transport = if comm.is_master() {
                server_slot.lock().take()
            } else {
                None
            };
            run_closed_loop(
                geo2.clone(),
                workloads::slab_owner(&geo2, comm.size()),
                SolverConfig::pressure_driven(1.01, 0.99),
                comm,
                transport,
                &ClosedLoopConfig {
                    max_steps: u64::MAX / 2,
                    image,
                    initial_vis_rate: u32::MAX, // frames only on request
                    steps_per_cycle: 5,
                    vis_aware_repartition: false,
                    ..Default::default()
                },
            )
            .unwrap()
        });
        let rtts = client_thread.join().expect("client thread");
        let merged = output.merged_obs();
        let counter = |name: &str| merged.counters.get(name).copied().unwrap_or(0);
        rows.push(Fig2Row {
            ranks,
            image,
            rtts,
            steering_bytes: output.results[0].steering_bytes,
            frames: output.results[0].frames_rendered,
            samples_shaded: counter("vis.render.samples_shaded"),
            samples_skipped: counter("vis.render.samples_skipped"),
            composite_wire: counter("vis.composite.bytes_wire"),
            composite_dense: counter("vis.composite.bytes_dense"),
        });
    }
    Fig2Result { rows }
}

impl fmt::Display for Fig2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 2 (measured): closed-loop steering round trip (client→master→vis→image→client)"
        )?;
        writeln!(
            f,
            "{:>6} {:>10} {:>12} {:>10} {:>10} {:>14} {:>12} {:>9} {:>16}",
            "ranks",
            "image",
            "median RTT",
            "p50",
            "p95",
            "steering sent",
            "frames",
            "skip%",
            "composite"
        )?;
        for r in &self.rows {
            let h = r.rtt_histogram();
            let samples = r.samples_shaded + r.samples_skipped;
            let skip_pct = if samples == 0 {
                0.0
            } else {
                100.0 * r.samples_skipped as f64 / samples as f64
            };
            writeln!(
                f,
                "{:>6} {:>4}x{:<5} {:>10.2} ms {:>10} {:>10} {:>14} {:>12} {:>8.1}% {:>7}/{:<8}",
                r.ranks,
                r.image.0,
                r.image.1,
                r.median_rtt() * 1e3,
                hemelb_obs::fmt_secs(h.p50()),
                hemelb_obs::fmt_secs(h.p95()),
                workloads::fmt_bytes(r.steering_bytes),
                r.frames,
                skip_pct,
                workloads::fmt_bytes(r.composite_wire),
                workloads::fmt_bytes(r.composite_dense),
            )?;
        }
        writeln!(
            f,
            "(skip% = render samples skipped by macrocells; composite = \
             bytes on wire / dense 20 B-per-px equivalent)"
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_round_trips_complete() {
        let result = run(Size::Tiny, &[(2, (32, 24))], 3);
        let row = &result.rows[0];
        assert_eq!(row.rtts.len(), 3);
        assert!(row.frames >= 3);
        assert!(
            row.steering_bytes > 3 * 32 * 24 * 3,
            "three RGB frames shipped"
        );
        assert!(row.median_rtt() < 60.0, "interactive on any machine");
        assert!(row.samples_shaded > 0, "render counters recorded");
        assert!(
            row.composite_wire > 0 && row.composite_wire < row.composite_dense,
            "sparse compositing beats dense: {} vs {}",
            row.composite_wire,
            row.composite_dense
        );
    }
}
