//! Experiment E9 — §V's multi-resolution data structure: data
//! reduction, reconstruction error, progressive streaming and
//! region-of-interest refinement.
//!
//! For each octree level ℓ the experiment reports the cut size, the
//! transport bytes, the relative L2 error of the downsampled speed
//! field, and the time to build the level's view ("time to first
//! image" proxy); plus a context+detail ROI cut around the aneurysm sac
//! compared with a uniform fine cut.

use crate::workloads::{self, Size};
use hemelb_octree::roi::{Roi, RoiCut};
use hemelb_octree::{FieldOctree, StreamOrder};
use std::fmt;
use std::time::Instant;

/// One level's row.
#[derive(Debug, Clone)]
pub struct MultiresRow {
    /// Octree level.
    pub level: u8,
    /// Nodes in the cut.
    pub nodes: usize,
    /// Transport bytes of the streamed prefix.
    pub prefix_bytes: usize,
    /// Relative L2 error of the reconstruction.
    pub l2_error: f64,
    /// Seconds to extract the level view.
    pub seconds: f64,
}

/// The experiment result.
pub struct MultiresResult {
    /// Sites in the field.
    pub sites: usize,
    /// Full-field bytes (one f64 per site).
    pub full_bytes: usize,
    /// Per-level rows.
    pub rows: Vec<MultiresRow>,
    /// ROI cut size (nodes) vs uniform fine cut.
    pub roi_nodes: usize,
    /// Uniform fine-cut node count.
    pub fine_nodes: usize,
    /// ROI cut error *inside* the ROI (must be ~0: full detail there).
    pub roi_interior_exact: bool,
}

/// Run E9.
pub fn run(size: Size) -> MultiresResult {
    let geo = workloads::aneurysm(size);
    let snap = workloads::developed_flow(&geo, 200);
    let speed: Vec<f64> = (0..snap.len()).map(|i| snap.speed(i)).collect();
    let tree = FieldOctree::build(&geo, &speed);
    let order = StreamOrder::build(&tree);

    let mut rows = Vec::new();
    for level in 0..=tree.depth() {
        let t0 = Instant::now();
        let cut = tree.cut_at_level(level);
        let err = tree.l2_error_at_level(&geo, &speed, level);
        let seconds = t0.elapsed().as_secs_f64();
        rows.push(MultiresRow {
            level,
            nodes: cut.len(),
            prefix_bytes: order.prefix_bytes(level),
            l2_error: err,
            seconds,
        });
    }

    // ROI around the aneurysm sac (upper part of the domain).
    let shape = geo.shape();
    let roi = Roi {
        lo: [shape[0] as u32 / 3, 0, shape[2] as u32 / 2],
        hi: [2 * shape[0] as u32 / 3, shape[1] as u32, shape[2] as u32],
    };
    let mixed = RoiCut::build(&tree, roi, 2.min(tree.depth()), tree.depth());
    let fine = tree.cut_at_level(tree.depth());

    // Inside the ROI the mixed cut uses unit-cell leaves: verify by
    // checking all mixed nodes strictly inside the ROI are sites.
    let roi_interior_exact = mixed
        .nodes
        .iter()
        .filter(|n| (0..3).all(|a| n.origin[a] >= roi.lo[a] && n.origin[a] + n.size <= roi.hi[a]))
        .all(|n| n.size == 1);

    MultiresResult {
        sites: geo.fluid_count(),
        full_bytes: geo.fluid_count() * 8,
        rows,
        roi_nodes: mixed.nodes.len(),
        fine_nodes: fine.len(),
        roi_interior_exact,
    }
}

impl fmt::Display for MultiresResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Multi-resolution octree over the aneurysm speed field ({} sites, full field {})",
            self.sites,
            workloads::fmt_bytes(self.full_bytes as u64)
        )?;
        writeln!(
            f,
            "{:>6} {:>10} {:>14} {:>12} {:>12} {:>10}",
            "level", "nodes", "stream bytes", "reduction", "L2 error", "ms"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>10} {:>14} {:>11.1}x {:>12.4} {:>10.3}",
                r.level,
                r.nodes,
                workloads::fmt_bytes(r.prefix_bytes as u64),
                self.full_bytes as f64 / r.prefix_bytes.max(1) as f64,
                r.l2_error,
                r.seconds * 1e3,
            )?;
        }
        writeln!(
            f,
            "context+detail ROI cut: {} nodes vs {} uniform fine nodes ({:.1}x cheaper), interior exact: {}",
            self.roi_nodes,
            self.fine_nodes,
            self.fine_nodes as f64 / self.roi_nodes as f64,
            self.roi_interior_exact,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multires_reduction_and_error_tradeoff() {
        let result = run(Size::Tiny);
        // Error decreases with level; bytes increase.
        for w in result.rows.windows(2) {
            assert!(w[1].l2_error <= w[0].l2_error + 1e-12);
            assert!(w[1].prefix_bytes >= w[0].prefix_bytes);
        }
        // Deepest level is exact.
        assert!(result.rows.last().unwrap().l2_error < 1e-12);
        // Coarse levels really reduce data.
        let level2 = &result.rows[2.min(result.rows.len() - 1)];
        assert!(level2.prefix_bytes < result.full_bytes);
        // ROI cut is cheaper than the uniform fine cut and exact inside.
        assert!(result.roi_nodes < result.fine_nodes);
        assert!(result.roi_interior_exact);
    }
}
