//! # hemelb-bench
//!
//! The experiment harness: one module per table/figure of the paper
//! (see `DESIGN.md` §3 for the experiment index), shared workload
//! builders, and the `reproduce` binary that runs everything and prints
//! paper-style tables. Criterion micro-benchmarks live in the umbrella
//! crate's `benches/` and reuse [`workloads`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod adaptive;
pub mod extract;
pub mod farm;
pub mod faults;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod gate;
pub mod gateway;
pub mod kernel;
pub mod multires;
pub mod obs;
pub mod overlap;
pub mod preprocess;
pub mod projection;
pub mod render;
pub mod repartition;
pub mod scaling;
pub mod table1;
pub mod workloads;
