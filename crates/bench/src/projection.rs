//! Experiment E20 — calibrated cost model plus the trace-driven
//! exascale projection engine.
//!
//! The paper's exascale argument projects measured small-run behaviour
//! to machines nobody can book; [`hemelb_parallel::cost`] supplies the
//! α–β–γ linear model, but its preset constants were folklore. E20
//! closes the loop in three stages:
//!
//! 1. **Calibrate.** Run the distributed LB step at several small rank
//!    counts, collecting one [`CalSample`] per timed round: the
//!    critical-path message/byte counts from `CommStats` deltas, the
//!    site-update work, and the measured wall seconds. A non-negative
//!    least-squares fit ([`hemelb_parallel::calibrate_fit`]) turns them
//!    into a [`CalibratedModel`] that carries its own residuals and R².
//! 2. **Validate.** At every multi-rank world the calibrated model's
//!    predicted step time is compared against the measured one; the
//!    worst relative error must stay inside [`VALIDATION_BAND`]
//!    (asserted in-bench, and exported as the Exact-gated
//!    `projection.validation.within_band` pin).
//! 3. **Project.** The largest run's partition becomes a replayable
//!    [`RunTrace`]: per-rank site counts, halo bytes, message counts,
//!    frontier fractions. The projector scales that trace to the
//!    paper's 81 M-site workload at 1k–32k ranks — surface-to-volume
//!    scaling for halos, the trace's own imbalance carried along — and
//!    prices each technique pairing: synchronous vs overlapped halo
//!    exchange, direct-send vs binary-swap compositing. The output is
//!    the paper's Table I orderings as scale-out curves.
//!
//! Results export to `out/BENCH_projection.json`. The calibrated
//! coefficients ride along losslessly (bit-split counters, see
//! [`CalibratedModel::record_to`]), so a stored report fully determines
//! the model that produced its curves.

use crate::workloads::{self, Size};
use hemelb_core::{DistSolver, SolverConfig};
use hemelb_obs::Recorder;
use hemelb_parallel::{calibrate_fit, run_spmd_with_stats, CalSample, CalibratedModel, CostModel};
use std::fmt;
use std::time::Instant;

/// Largest relative error the calibrated model may show against any
/// measured multi-rank step time (|predicted − measured| / measured).
/// Generous by design: in-process rank-threads on a shared CI box jitter
/// far more than a dedicated interconnect, and the gate exists to catch
/// a model that stopped describing the machine, not 10 % noise. The
/// reference run (EXPERIMENTS.md E20) typically lands under 0.30.
pub const VALIDATION_BAND: f64 = 0.5;

/// Projected rank counts: 1k to the paper's 32k in powers of two.
pub const PROJECTED_RANKS: [u64; 6] = [1024, 2048, 4096, 8192, 16_384, 32_768];

/// The paper's headline workload: 81 M lattice sites.
pub const TARGET_SITES: u64 = 81_000_000;

/// Composited image payload per frame (1024² RGBA), the volume the
/// direct-send vs binary-swap comparison moves.
pub const COMPOSITE_IMAGE_BYTES: u64 = 1024 * 1024 * 4;

/// Timed rounds per world. Only the [`KEEP`] fastest feed the fit and
/// the validation measurement: interference on a shared box is strictly
/// additive, so slow outlier rounds carry scheduler noise, not machine
/// coefficients, and one bad round in *any* world would otherwise drag
/// the global fit outside the validation band of the quiet worlds.
const ROUNDS: usize = 5;

/// Fastest rounds kept per world (see [`ROUNDS`]).
const KEEP: usize = 3;

/// What one rank measures in a calibration world.
struct RankMeasure {
    sites: usize,
    halo_bytes_per_step: u64,
    frontier_sites: usize,
    /// Per timed round: (msgs, bytes, wall secs) from `CommStats`
    /// deltas around `step_n`.
    rounds: Vec<(u64, u64, f64)>,
}

/// One measured world, reduced to what calibration and tracing need.
struct WorldMeasure {
    ranks: usize,
    steps: u64,
    per_rank: Vec<RankMeasure>,
}

impl WorldMeasure {
    /// Per-round wall seconds of the slowest rank (a bulk-synchronous
    /// step is gated by its slowest rank).
    fn round_walls(&self) -> Vec<f64> {
        (0..ROUNDS)
            .map(|i| {
                self.per_rank
                    .iter()
                    .map(|r| r.rounds[i].2)
                    .fold(0.0, f64::max)
            })
            .collect()
    }

    /// Indices of the [`KEEP`] fastest rounds, ascending by wall time.
    fn kept_rounds(&self) -> Vec<usize> {
        let walls = self.round_walls();
        let mut idx: Vec<usize> = (0..ROUNDS).collect();
        idx.sort_by(|&a, &b| walls[a].total_cmp(&walls[b]));
        idx.truncate(KEEP);
        idx
    }

    /// Critical-path calibration samples: one per kept round, built from
    /// the per-rank maxima (the wall time pairs with the heaviest rank's
    /// counts).
    fn samples(&self) -> Vec<CalSample> {
        let max_sites = self.per_rank.iter().map(|r| r.sites).max().unwrap_or(0) as u64;
        self.kept_rounds()
            .into_iter()
            .map(|i| {
                let msgs = self
                    .per_rank
                    .iter()
                    .map(|r| r.rounds[i].0)
                    .max()
                    .unwrap_or(0);
                let bytes = self
                    .per_rank
                    .iter()
                    .map(|r| r.rounds[i].1)
                    .max()
                    .unwrap_or(0);
                let secs = self
                    .per_rank
                    .iter()
                    .map(|r| r.rounds[i].2)
                    .fold(0.0, f64::max);
                CalSample {
                    msgs,
                    bytes,
                    work: max_sites * self.steps,
                    secs,
                }
            })
            .collect()
    }

    /// Median over the kept rounds of the slowest rank's wall seconds
    /// per step — the same trimmed population the fit consumed, so
    /// validation compares like with like.
    fn measured_secs_per_step(&self) -> f64 {
        let walls = self.round_walls();
        let kept = self.kept_rounds();
        walls[kept[kept.len() / 2]] / self.steps as f64
    }
}

/// Measure one SPMD world: k-way decomposition, warm-up, then `ROUNDS`
/// timed rounds of `steps` LB steps each with `CommStats` deltas.
fn measure_world(size: Size, steps: u64, ranks: usize) -> WorldMeasure {
    let geo = workloads::aneurysm(size);
    let out = run_spmd_with_stats(ranks, move |comm| {
        let owner = if comm.size() == 1 {
            vec![0usize; geo.fluid_count()]
        } else {
            workloads::kway_owner(&geo, comm.size())
        };
        let mut solver = DistSolver::new(
            geo.clone(),
            owner,
            SolverConfig::pressure_driven(1.005, 0.995),
            comm,
        )
        .unwrap();
        solver.step_n(steps.min(2)).unwrap();
        let mut rounds = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            let before = comm.stats();
            let t0 = Instant::now();
            solver.step_n(steps).unwrap();
            let secs = t0.elapsed().as_secs_f64();
            let delta = comm.stats().delta_since(&before);
            rounds.push((delta.total_msgs(), delta.total_bytes(), secs));
        }
        RankMeasure {
            sites: solver.local_sites().len(),
            halo_bytes_per_step: solver.halo_send_volume() as u64 * 8,
            frontier_sites: solver.partition().frontier_count(),
            rounds,
        }
    });
    WorldMeasure {
        ranks,
        steps,
        per_rank: out.results,
    }
}

/// A replayable capture of one run's partition and per-step
/// communication pattern — the seed the projector scales out.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// Ranks in the traced world.
    pub ranks: usize,
    /// Per-rank fluid sites.
    pub sites: Vec<usize>,
    /// Per-rank halo bytes sent per step.
    pub halo_bytes_per_step: Vec<u64>,
    /// Per-rank halo messages per step (≈ 2 × neighbour count).
    pub halo_msgs_per_step: Vec<f64>,
    /// Per-rank frontier sites (collided before the sends post).
    pub frontier_sites: Vec<usize>,
}

impl RunTrace {
    fn from_world(w: &WorldMeasure) -> RunTrace {
        RunTrace {
            ranks: w.ranks,
            sites: w.per_rank.iter().map(|r| r.sites).collect(),
            halo_bytes_per_step: w.per_rank.iter().map(|r| r.halo_bytes_per_step).collect(),
            halo_msgs_per_step: w
                .per_rank
                .iter()
                .map(|r| r.rounds[0].0 as f64 / w.steps as f64)
                .collect(),
            frontier_sites: w.per_rank.iter().map(|r| r.frontier_sites).collect(),
        }
    }

    /// Site imbalance λ = max / mean, carried unchanged to scale (the
    /// partitioner quality, not the machine, sets it).
    pub fn imbalance(&self) -> f64 {
        let mean = self.sites.iter().sum::<usize>() as f64 / self.ranks.max(1) as f64;
        let max = self.sites.iter().copied().max().unwrap_or(0) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Surface-to-volume halo coefficient: mean over ranks of
    /// `halo_bytes / sites^(2/3)`. A subdomain's halo is its surface,
    /// so bytes scale as the 2/3 power of its volume; the coefficient
    /// folds in the sparse geometry's real (non-cubic) surface shape
    /// and the lattice's population mix — measured, not the retired
    /// `5 populations × 8 B` hand estimate.
    pub fn halo_coefficient(&self) -> f64 {
        let terms: Vec<f64> = self
            .sites
            .iter()
            .zip(&self.halo_bytes_per_step)
            .filter(|&(&s, _)| s > 0)
            .map(|(&s, &b)| b as f64 / (s as f64).powf(2.0 / 3.0))
            .collect();
        if terms.is_empty() {
            0.0
        } else {
            terms.iter().sum::<f64>() / terms.len() as f64
        }
    }

    /// Mean halo messages per rank per step. Neighbour counts in a
    /// 3-D decomposition are bounded by the geometry, not the machine
    /// size, so the projector holds this constant with P.
    pub fn mean_halo_msgs(&self) -> f64 {
        if self.ranks == 0 {
            0.0
        } else {
            self.halo_msgs_per_step.iter().sum::<f64>() / self.ranks as f64
        }
    }

    /// Mean frontier fraction of a rank's sites — the share of compute
    /// *not* available to hide the halo exchange behind.
    pub fn frontier_fraction(&self) -> f64 {
        let terms: Vec<f64> = self
            .sites
            .iter()
            .zip(&self.frontier_sites)
            .filter(|&(&s, _)| s > 0)
            .map(|(&s, &f)| f as f64 / s as f64)
            .collect();
        if terms.is_empty() {
            0.0
        } else {
            terms.iter().sum::<f64>() / terms.len() as f64
        }
    }
}

/// Calibrated model vs measurement at one world size.
#[derive(Debug, Clone, Copy)]
pub struct ValidationRow {
    /// Ranks in the measured world.
    pub ranks: usize,
    /// Median measured wall seconds per step (slowest rank).
    pub measured_secs: f64,
    /// Calibrated model's prediction for the same critical path.
    pub predicted_secs: f64,
    /// Signed relative error `(predicted − measured) / measured`.
    pub rel_error: f64,
}

/// One point on the scale-out curves.
#[derive(Debug, Clone, Copy)]
pub struct ProjectionRow {
    /// Projected ranks.
    pub ranks: u64,
    /// Mean sites per rank at this scale.
    pub sites_per_rank: f64,
    /// Compute seconds per step on the slowest rank (trace imbalance
    /// applied).
    pub compute_secs: f64,
    /// Synchronous halo-exchange seconds per step.
    pub halo_sync_secs: f64,
    /// Residual halo seconds per step under the overlapped schedule
    /// (`max(0, halo − interior compute)`).
    pub halo_overlap_secs: f64,
    /// Direct-send compositing seconds per frame: every rank sends to
    /// one compositor, `(P−1)·α + image/β` at the root.
    pub composite_direct_secs: f64,
    /// Binary-swap compositing seconds per frame:
    /// `⌈log₂P⌉·α + 2·(image/β)·(P−1)/P`.
    pub composite_swap_secs: f64,
}

impl ProjectionRow {
    /// Step+frame seconds for a technique pairing.
    pub fn step_secs(&self, overlapped: bool, binary_swap: bool) -> f64 {
        let halo = if overlapped {
            self.halo_overlap_secs
        } else {
            self.halo_sync_secs
        };
        let comp = if binary_swap {
            self.composite_swap_secs
        } else {
            self.composite_direct_secs
        };
        self.compute_secs + halo + comp
    }
}

/// The E20 result.
pub struct ProjectionResult {
    /// Fluid sites in the measured workload.
    pub sites: usize,
    /// Steps per timed round.
    pub steps: u64,
    /// The fitted model with its fit quality.
    pub calibration: CalibratedModel,
    /// The model actually used for projection: calibrated coefficients
    /// with any unexercised (infinite) term replaced by the CrayXe6
    /// preset so the curves stay finite.
    pub model: CostModel,
    /// Model-vs-measurement at every multi-rank world.
    pub validation: Vec<ValidationRow>,
    /// Whether every validation row stayed inside [`VALIDATION_BAND`].
    pub within_band: bool,
    /// The captured trace the projector scaled.
    pub trace: RunTrace,
    /// Scale-out curves at [`PROJECTED_RANKS`].
    pub curves: Vec<ProjectionRow>,
}

/// Calibrate a cost model from scratch with a quick measurement sweep:
/// worlds at 1, 2, 4, … ranks (clipped to `max_ranks`), `steps` LB
/// steps per timed round. This is the probe other benches use when
/// they need calibrated coefficients without E20's validation and
/// trace stages (e.g. `table1`'s data-movement shares).
pub fn calibrate(size: Size, steps: u64, max_ranks: usize) -> CalibratedModel {
    let samples: Vec<CalSample> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&p| p <= max_ranks.max(2))
        .flat_map(|p| measure_world(size, steps, p).samples())
        .collect();
    calibrate_fit(&samples).expect("calibration fit from measured worlds")
}

/// Fill any term the fit could not exercise (infinite β/γ from
/// all-zero columns) from the CrayXe6 preset: a projection must price
/// every term, even when the measurement had no signal for one.
pub fn effective_model(cal: &CalibratedModel) -> CostModel {
    let preset = CostModel::for_machine(hemelb_parallel::MachineModel::CrayXe6);
    CostModel {
        alpha: if cal.model.alpha.is_finite() {
            cal.model.alpha
        } else {
            preset.alpha
        },
        beta: if cal.model.beta.is_finite() {
            cal.model.beta
        } else {
            preset.beta
        },
        gamma: if cal.model.gamma.is_finite() {
            cal.model.gamma
        } else {
            preset.gamma
        },
    }
}

/// Scale the trace to `ranks` under `model`.
fn project(model: &CostModel, trace: &RunTrace, ranks: u64) -> ProjectionRow {
    let sites_per_rank = TARGET_SITES as f64 / ranks as f64;
    let max_sites = sites_per_rank * trace.imbalance();
    let compute_secs = model.time(0, 0, max_sites.round() as u64);
    let halo_bytes = trace.halo_coefficient() * max_sites.powf(2.0 / 3.0);
    let halo_msgs = trace.mean_halo_msgs().max(1.0);
    let halo_sync_secs = model.alpha * halo_msgs + halo_bytes / model.beta;
    let interior_compute = compute_secs * (1.0 - trace.frontier_fraction());
    let halo_overlap_secs = (halo_sync_secs - interior_compute).max(0.0);
    let image = COMPOSITE_IMAGE_BYTES as f64;
    let composite_direct_secs = model.alpha * (ranks - 1) as f64 + image / model.beta;
    let composite_swap_secs = model.alpha * (ranks as f64).log2().ceil()
        + 2.0 * (image / model.beta) * (ranks - 1) as f64 / ranks as f64;
    ProjectionRow {
        ranks,
        sites_per_rank,
        compute_secs,
        halo_sync_secs,
        halo_overlap_secs,
        composite_direct_secs,
        composite_swap_secs,
    }
}

/// Run E20: calibrate at 1..=`max_ranks` rank worlds (powers of two),
/// validate the fit against every multi-rank measurement, capture the
/// largest world's trace and project it to [`PROJECTED_RANKS`].
/// Exports `out/BENCH_projection.json`.
///
/// Panics when the fit's validation error leaves [`VALIDATION_BAND`] —
/// the in-bench assertion the acceptance gate requires: curves from a
/// model that cannot reproduce the measurements it was fitted to are
/// not worth exporting.
pub fn run(size: Size, steps: u64, max_ranks: usize) -> ProjectionResult {
    let geo = workloads::aneurysm(size);
    let sites = geo.fluid_count();
    drop(geo);

    let rank_counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&p| p <= max_ranks.max(2))
        .collect();
    let worlds: Vec<WorldMeasure> = rank_counts
        .iter()
        .map(|&p| measure_world(size, steps, p))
        .collect();

    let samples: Vec<CalSample> = worlds.iter().flat_map(|w| w.samples()).collect();
    let calibration = calibrate_fit(&samples).expect("calibration fit from measured worlds");
    let model = effective_model(&calibration);

    let validation: Vec<ValidationRow> = worlds
        .iter()
        .filter(|w| w.ranks >= 2)
        .map(|w| {
            let measured = w.measured_secs_per_step();
            // Predict the same critical path the measurement saw: the
            // per-rank maxima of one round's counts, over one step.
            let s = &w.samples()[0];
            let predicted = model.time(s.msgs, s.bytes, s.work) / w.steps as f64;
            ValidationRow {
                ranks: w.ranks,
                measured_secs: measured,
                predicted_secs: predicted,
                rel_error: if measured > 0.0 {
                    (predicted - measured) / measured
                } else {
                    0.0
                },
            }
        })
        .collect();
    let within_band = validation
        .iter()
        .all(|v| v.rel_error.abs() <= VALIDATION_BAND);

    let trace = RunTrace::from_world(worlds.last().expect("at least one world measured"));
    let curves: Vec<ProjectionRow> = PROJECTED_RANKS
        .iter()
        .map(|&p| project(&model, &trace, p))
        .collect();

    // The in-bench validation assert comes *before* the export: curves
    // from a model that cannot reproduce the measurements it was fitted
    // to must never land in out/ where a bless could enshrine them.
    assert!(
        within_band,
        "calibrated model left the validation band (|err| > {VALIDATION_BAND}): {:?}",
        validation
            .iter()
            .map(|v| (v.ranks, v.rel_error))
            .collect::<Vec<_>>()
    );

    // Export. Metric-class notes: `sites`/`ranks`/`steps` and
    // `within_band` gate Exact (deterministic workload identity and the
    // validation pin); the calibrated coefficients, residuals and curve
    // values are machine-dependent and export as ungated Info counters
    // (`*_hi`/`*_lo` bit splits, `*_ns` nanoseconds, `*_x1000`
    // ratios).
    let mut rec = Recorder::new();
    rec.count("projection.sites", sites as u64);
    rec.count("projection.ranks", *rank_counts.last().unwrap() as u64);
    rec.count("projection.steps", steps);
    rec.count("projection.validation.within_band", u64::from(within_band));
    calibration.record_to(&mut rec, "projection.model");
    let ns = |s: f64| (s * 1e9).round().max(0.0) as u64;
    for v in &validation {
        let cell = format!("projection.val.r{}", v.ranks);
        rec.count(&format!("{cell}.measured_ns"), ns(v.measured_secs));
        rec.count(&format!("{cell}.predicted_ns"), ns(v.predicted_secs));
        rec.count(
            &format!("{cell}.err_abs_x1000"),
            (v.rel_error.abs() * 1000.0).round() as u64,
        );
    }
    for c in &curves {
        let cell = format!("projection.p{:05}", c.ranks);
        rec.count(&format!("{cell}.compute_ns"), ns(c.compute_secs));
        rec.count(&format!("{cell}.halo_sync_ns"), ns(c.halo_sync_secs));
        rec.count(&format!("{cell}.halo_overlap_ns"), ns(c.halo_overlap_secs));
        rec.count(
            &format!("{cell}.comp_direct_ns"),
            ns(c.composite_direct_secs),
        );
        rec.count(&format!("{cell}.comp_swap_ns"), ns(c.composite_swap_secs));
        rec.count(
            &format!("{cell}.step_sync_direct_ns"),
            ns(c.step_secs(false, false)),
        );
        rec.count(
            &format!("{cell}.step_overlap_swap_ns"),
            ns(c.step_secs(true, true)),
        );
    }
    let path = workloads::out_dir().join("BENCH_projection.json");
    std::fs::write(&path, rec.report().to_json()).expect("BENCH_projection.json written");

    ProjectionResult {
        sites,
        steps,
        calibration,
        model,
        validation,
        within_band,
        trace,
        curves,
    }
}

impl fmt::Display for ProjectionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Calibrated α–β–γ model — {} sites, {} samples, R² {:.4}",
            self.sites, self.calibration.samples, self.calibration.r2
        )?;
        writeln!(
            f,
            "  α = {:.3e} s/msg, β = {:.3e} B/s, γ = {:.3e} site-updates/s",
            self.model.alpha, self.model.beta, self.model.gamma
        )?;
        writeln!(
            f,
            "validation (band ±{:.0}%): {}",
            VALIDATION_BAND * 100.0,
            if self.within_band { "PASS" } else { "FAIL" }
        )?;
        writeln!(
            f,
            "{:<6} {:>14} {:>14} {:>8}",
            "ranks", "measured/step", "predicted", "error"
        )?;
        for v in &self.validation {
            writeln!(
                f,
                "{:<6} {:>12.3}ms {:>12.3}ms {:>+7.1}%",
                v.ranks,
                v.measured_secs * 1e3,
                v.predicted_secs * 1e3,
                v.rel_error * 100.0
            )?;
        }
        writeln!(
            f,
            "trace: {} ranks, λ = {:.3}, halo k = {:.1} B/site^⅔, {:.1} msgs/rank/step, \
             frontier {:.1}%",
            self.trace.ranks,
            self.trace.imbalance(),
            self.trace.halo_coefficient(),
            self.trace.mean_halo_msgs(),
            self.trace.frontier_fraction() * 100.0
        )?;
        writeln!(
            f,
            "projection to {} sites (µs/step+frame per technique):",
            TARGET_SITES
        )?;
        writeln!(
            f,
            "{:<7} {:>10} {:>10} {:>10} {:>11} {:>11} {:>12} {:>12}",
            "ranks",
            "compute",
            "halo sync",
            "halo ovl",
            "comp direct",
            "comp swap",
            "sync+direct",
            "ovl+swap"
        )?;
        for c in &self.curves {
            writeln!(
                f,
                "{:<7} {:>10.1} {:>10.1} {:>10.1} {:>11.1} {:>11.1} {:>12.1} {:>12.1}",
                c.ranks,
                c.compute_secs * 1e6,
                c.halo_sync_secs * 1e6,
                c.halo_overlap_secs * 1e6,
                c.composite_direct_secs * 1e6,
                c.composite_swap_secs * 1e6,
                c.step_secs(false, false) * 1e6,
                c.step_secs(true, true) * 1e6
            )?;
        }
        writeln!(f, "JSON: out/BENCH_projection.json")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_calibrates_validates_and_scales_out() {
        let result = run(Size::Tiny, 3, 4);
        // The fit consumed every world's rounds.
        assert!(result.calibration.samples >= 3 * KEEP);
        assert!(result.model.gamma.is_finite() && result.model.gamma > 0.0);
        // Validation covered the multi-rank worlds and passed (run()
        // itself asserts the band; this pins the export flag).
        assert_eq!(result.validation.len(), 2, "worlds at 2 and 4 ranks");
        assert!(result.within_band);
        // Scale-out curves: one row per projected rank count, with
        // compute falling and direct-send compositing rising in P.
        assert_eq!(result.curves.len(), PROJECTED_RANKS.len());
        for pair in result.curves.windows(2) {
            assert!(pair[1].compute_secs < pair[0].compute_secs);
            // α ≥ 0, so direct-send can only grow with P (flat when the
            // calibrated latency came out zero).
            assert!(pair[1].composite_direct_secs >= pair[0].composite_direct_secs);
        }
        for c in &result.curves {
            // Overlap can only hide cost, never add it.
            assert!(c.halo_overlap_secs <= c.halo_sync_secs + 1e-15);
            assert!(
                c.step_secs(true, false) <= c.step_secs(false, false) + 1e-15,
                "overlapped schedule cannot cost more than synchronous"
            );
            assert!(c.composite_direct_secs > 0.0 && c.composite_swap_secs > 0.0);
        }
        assert!(workloads::out_dir().join("BENCH_projection.json").exists());
    }

    #[test]
    fn binary_swap_wins_when_latency_dominates() {
        // The paper's Table I ordering: on a real interconnect (CrayXe6
        // α = 1.5 µs) direct-send pays (P−1)·α while binary-swap pays
        // ⌈log₂P⌉·α — at 32k ranks the α term decides it, despite swap
        // moving the image nearly twice. A calibrated shared-memory α
        // near zero legitimately flips this, which is exactly what the
        // curves exist to show.
        let model = CostModel::for_machine(hemelb_parallel::MachineModel::CrayXe6);
        let trace = RunTrace {
            ranks: 4,
            sites: vec![800; 4],
            halo_bytes_per_step: vec![4000; 4],
            halo_msgs_per_step: vec![6.0; 4],
            frontier_sites: vec![200; 4],
        };
        for &p in &PROJECTED_RANKS {
            let row = project(&model, &trace, p);
            assert!(
                row.composite_swap_secs < row.composite_direct_secs,
                "at {p} ranks under CrayXe6, swap must beat direct"
            );
        }
        // And a zero-latency machine flips the ordering.
        let free_latency = CostModel {
            alpha: 0.0,
            ..model
        };
        let row = project(&free_latency, &trace, 32_768);
        assert!(row.composite_direct_secs < row.composite_swap_secs);
    }

    #[test]
    fn trace_statistics_are_sane() {
        let w = measure_world(Size::Tiny, 2, 2);
        let trace = RunTrace::from_world(&w);
        assert_eq!(trace.ranks, 2);
        assert!(trace.imbalance() >= 1.0);
        assert!(trace.halo_coefficient() > 0.0, "2 ranks exchange halos");
        assert!(trace.mean_halo_msgs() > 0.0);
        assert!((0.0..=1.0).contains(&trace.frontier_fraction()));
    }
}
