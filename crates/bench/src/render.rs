//! Experiment E13 — in situ rendering performance: macrocell
//! empty-space skipping and run-length sparse compositing.
//!
//! The render→composite path is where the paper's opening concern —
//! data movement — bites the visualisation half of the pipeline: a
//! sparse vessel fills a small fraction of its brick's bounding box,
//! and lights a small fraction of the image it composites. E13
//! quantifies both fixes on the standard aneurysm:
//!
//! * px/sec of the naive marcher vs the macrocell-skipping marcher vs
//!   the LUT-shaded marcher, on the same brick, camera and transfer
//!   function (naive and macrocell outputs are asserted bit-identical);
//! * macrocell skip rate and skippable-cell fraction;
//! * compositing bytes on the wire (run-length sparse) vs what the
//!   dense 20 B/px format would have shipped, from a real distributed
//!   binary-swap over `ranks` ranks.
//!
//! The fleet report is also written as `out/BENCH_render.json` via the
//! obs JSON codec.

use crate::workloads::{self, Size};
use hemelb_geometry::Vec3;
use hemelb_insitu::camera::Camera;
use hemelb_insitu::compositing::binary_swap;
use hemelb_insitu::field::Scalar;
use hemelb_insitu::volume::{render_brick_opts, Brick, RenderOptions, RenderStats};
use hemelb_insitu::TransferFunction;
use hemelb_obs::{fmt_secs, ObsReport, Recorder};
use hemelb_parallel::{run_spmd_with_stats, TagClass};
use std::fmt;
use std::time::Instant;

/// Everything E13 measures.
pub struct RenderResult {
    /// Image width.
    pub width: u32,
    /// Image height.
    pub height: u32,
    /// Ranks in the compositing run.
    pub ranks: usize,
    /// Best-of-3 seconds for the naive full-step marcher.
    pub naive_secs: f64,
    /// Best-of-3 seconds with macrocell skipping.
    pub accel_secs: f64,
    /// Best-of-3 seconds with macrocell skipping + transfer LUT.
    pub lut_secs: f64,
    /// Work counters of the accelerated render.
    pub stats: RenderStats,
    /// Macrocells in the full-domain brick.
    pub macrocells: usize,
    /// Fraction of macrocells skippable under the transfer function.
    pub skippable_frac: f64,
    /// Whether naive and macrocell renders agreed bit for bit.
    pub bit_identical: bool,
    /// Compositing bytes actually sent (run-length sparse), all ranks.
    pub composite_wire: u64,
    /// Bytes the dense 20 B/px format would have sent.
    pub composite_dense: u64,
    /// The exported report (timings + counters), also written to
    /// `out/BENCH_render.json`.
    pub report: ObsReport,
}

/// An end-on view down the vessel axis (+x). Rays outside the tube's
/// cross-section traverse the brick's whole length through non-fluid
/// macrocells — the workload where empty-space skipping matters most,
/// and a common steering viewpoint (looking upstream into an inlet).
fn camera_for(geo: &hemelb_geometry::SparseGeometry, width: u32, height: u32) -> Camera {
    let s = geo.shape();
    Camera::framing(
        Vec3::ZERO,
        Vec3::new(s[0] as f64, s[1] as f64, s[2] as f64),
        Vec3::new(1.0, 0.12, 0.2),
        width,
        height,
    )
}

fn timed<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed().as_secs_f64(), r)
}

fn partials_bit_eq(
    a: &hemelb_insitu::image::PartialImage,
    b: &hemelb_insitu::image::PartialImage,
) -> bool {
    a.image
        .pixels
        .iter()
        .zip(&b.image.pixels)
        .all(|(pa, pb)| (0..4).all(|c| pa[c].to_bits() == pb[c].to_bits()))
        && a.depth
            .iter()
            .zip(&b.depth)
            .all(|(da, db)| da.to_bits() == db.to_bits())
}

/// Run E13 on the standard aneurysm with a developed flow field.
pub fn run(size: Size, ranks: usize, width: u32, height: u32) -> RenderResult {
    let geo = workloads::aneurysm(size);
    let snap = workloads::developed_flow(&geo, 50);
    let cam = camera_for(&geo, width, height);

    // Heat transfer function over the global speed range, as the closed
    // loop uses.
    let max_speed = (0..snap.len())
        .map(|i| snap.speed(i))
        .fold(0.0f64, f64::max);
    let tf = TransferFunction::heat(0.0, max_speed.max(1e-9));

    let all: Vec<u32> = (0..geo.fluid_count() as u32).collect();
    let brick = Brick::from_sites(&geo, &snap, Scalar::Speed, &all).expect("non-empty geometry");
    let macrocells = brick.macrocell_count();
    let skippable_frac = brick.skippable_fraction(&tf);

    let naive_opts = RenderOptions {
        macrocells: false,
        lut_size: None,
    };
    let lut_opts = RenderOptions {
        macrocells: true,
        lut_size: Some(1024),
    };
    // Interleave the three modes round-robin (after a warmup of each)
    // and keep the best time per mode, so transient load — e.g. other
    // tests' thread pools — penalises every mode equally instead of
    // whichever happened to run in a back-to-back block.
    let accel_opts = RenderOptions::default();
    for opts in [&naive_opts, &accel_opts, &lut_opts] {
        render_brick_opts(&brick, &cam, &tf, 0.5, opts);
    }
    let mut naive_secs = f64::INFINITY;
    let mut accel_secs = f64::INFINITY;
    let mut lut_secs = f64::INFINITY;
    let mut naive_img = None;
    let mut accel = None;
    for _ in 0..3 {
        let (t, (img, _)) = timed(|| render_brick_opts(&brick, &cam, &tf, 0.5, &naive_opts));
        naive_secs = naive_secs.min(t);
        naive_img = Some(img);
        let (t, r) = timed(|| render_brick_opts(&brick, &cam, &tf, 0.5, &accel_opts));
        accel_secs = accel_secs.min(t);
        accel = Some(r);
        let (t, _) = timed(|| render_brick_opts(&brick, &cam, &tf, 0.5, &lut_opts));
        lut_secs = lut_secs.min(t);
    }
    let (accel_img, stats) = accel.expect("three runs");
    let bit_identical = partials_bit_eq(&naive_img.expect("three runs"), &accel_img);

    // Distributed compositing traffic: every rank renders its slab's
    // brick and binary-swap composites, with the sparse encoding
    // recording wire-vs-dense counters.
    let owner = workloads::slab_owner(&geo, ranks);
    let geo2 = geo.clone();
    let snap2 = snap.clone();
    let cam2 = cam;
    let tf2 = tf.clone();
    let out = run_spmd_with_stats(ranks, move |comm| {
        let mine: Vec<u32> = (0..geo2.fluid_count() as u32)
            .filter(|&s| owner[s as usize] == comm.rank())
            .collect();
        let partial = match Brick::from_sites(&geo2, &snap2, Scalar::Speed, &mine) {
            Some(b) => render_brick_opts(&b, &cam2, &tf2, 0.5, &RenderOptions::default()).0,
            None => hemelb_insitu::image::PartialImage::new(cam2.width, cam2.height),
        };
        binary_swap(comm, partial).expect("composite");
    });
    let merged = out.merged_obs();
    let counter = |name: &str| merged.counters.get(name).copied().unwrap_or(0);
    let composite_wire = counter("vis.composite.bytes_wire");
    let composite_dense = counter("vis.composite.bytes_dense");
    debug_assert_eq!(
        composite_wire,
        out.summary.total.bytes(TagClass::Compositing)
    );

    // Export through the obs codec.
    let mut rec = Recorder::new();
    rec.record_secs("render.naive", naive_secs);
    rec.record_secs("render.macrocell", accel_secs);
    rec.record_secs("render.macrocell_lut", lut_secs);
    rec.count("render.samples_shaded", stats.samples_shaded);
    rec.count("render.samples_skipped", stats.samples_skipped);
    rec.count("render.jumps", stats.jumps);
    rec.count("render.macrocells", macrocells as u64);
    rec.count("render.bit_identical", u64::from(bit_identical));
    rec.count("composite.bytes_wire", composite_wire);
    rec.count("composite.bytes_dense", composite_dense);
    let report = rec.report();
    let path = workloads::out_dir().join("BENCH_render.json");
    std::fs::write(&path, report.to_json()).expect("BENCH_render.json written");

    RenderResult {
        width,
        height,
        ranks,
        naive_secs,
        accel_secs,
        lut_secs,
        stats,
        macrocells,
        skippable_frac,
        bit_identical,
        composite_wire,
        composite_dense,
        report,
    }
}

impl RenderResult {
    /// Pixels per second at a given wall time.
    fn px_per_sec(&self, secs: f64) -> f64 {
        (self.width as u64 * self.height as u64) as f64 / secs.max(1e-12)
    }
}

impl fmt::Display for RenderResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "In situ rendering performance ({}x{} image, best of 3):",
            self.width, self.height
        )?;
        writeln!(
            f,
            "{:>22} {:>10} {:>14} {:>9}",
            "mode", "time", "px/sec", "speedup"
        )?;
        for (label, secs) in [
            ("naive march", self.naive_secs),
            ("macrocell skip", self.accel_secs),
            ("macrocell + LUT", self.lut_secs),
        ] {
            writeln!(
                f,
                "{:>22} {:>10} {:>14.0} {:>8.2}x",
                label,
                fmt_secs(secs),
                self.px_per_sec(secs),
                self.naive_secs / secs.max(1e-12),
            )?;
        }
        writeln!(
            f,
            "macrocells: {} ({:.1}% skippable under the heat TF); \
             samples: {} shaded + {} skipped ({:.1}% skip rate, {} jumps)",
            self.macrocells,
            100.0 * self.skippable_frac,
            self.stats.samples_shaded,
            self.stats.samples_skipped,
            100.0 * self.stats.skip_fraction(),
            self.stats.jumps,
        )?;
        writeln!(
            f,
            "bit-identical to naive march: {}",
            if self.bit_identical { "yes" } else { "NO" }
        )?;
        let ratio = if self.composite_wire == 0 {
            0.0
        } else {
            self.composite_dense as f64 / self.composite_wire as f64
        };
        writeln!(
            f,
            "compositing over {} ranks (binary swap): {} on wire vs {} dense ({:.2}x smaller)",
            self.ranks,
            workloads::fmt_bytes(self.composite_wire),
            workloads::fmt_bytes(self.composite_dense),
            ratio,
        )?;
        writeln!(f, "JSON: out/BENCH_render.json")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerated_render_is_faster_and_exact() {
        // Small, not Tiny: at Tiny scale the brick is only ~24
        // macrocells and the 8^3 grid is too coarse to expose the
        // empty cross-section corridors the skip optimisation targets.
        let r = run(Size::Small, 2, 160, 120);
        assert!(r.bit_identical, "macrocell render must match naive");
        assert!(r.stats.samples_skipped > 0, "aneurysm box must skip");
        assert!(r.skippable_frac > 0.0);
        assert!(
            r.accel_secs < r.naive_secs,
            "macrocell skipping must win on the aneurysm: {} vs {}",
            r.accel_secs,
            r.naive_secs
        );
        assert!(
            r.composite_wire > 0 && r.composite_wire < r.composite_dense,
            "sparse compositing must beat dense: {} vs {}",
            r.composite_wire,
            r.composite_dense
        );
        // The JSON export round-trips through the obs codec.
        let back = ObsReport::from_json(&r.report.to_json()).expect("valid JSON");
        assert_eq!(back.counters["render.bit_identical"], 1);
    }
}
