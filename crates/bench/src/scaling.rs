//! Experiment E7 — the scaling claim behind the paper (§II cites Groen
//! et al.: HemeLB "can scale well to at least 32 thousand cores with
//! more than 81 million lattice sites").
//!
//! Two parts:
//!
//! 1. **Measured strong scaling** of the distributed LB step on
//!    rank-threads, comparing partitioners (naive slabs vs SFC vs
//!    multilevel k-way) — who has the smaller halos and the better
//!    balance.
//! 2. **Projection**: fit an α–β–γ model to the measurements themselves
//!    (every row is a calibration sample — see
//!    [`hemelb_parallel::calibrate_fit`]) and scale the measured k-way
//!    halo pattern to the paper's target (32 768 ranks, 81 M sites) by
//!    surface-to-volume, estimating the communication fraction at that
//!    scale — the quantity that decides whether "scales well" holds.
//!    `reproduce projection` (E20) runs the full validated version with
//!    per-technique curves.

use crate::projection::effective_model;
use crate::workloads::{self, Size};
use hemelb_core::{DistSolver, KernelLayout, ParallelSolver, Solver, SolverConfig};
use hemelb_parallel::{calibrate_fit, run_spmd_with_stats, CalSample, CostModel};
use hemelb_partition::graph::{Connectivity, SiteGraph};
use hemelb_partition::{quality, HilbertSfc, MultilevelKWay, NaiveBlock, Partitioner};
use std::fmt;
use std::time::Instant;

/// One `(partitioner, ranks)` measurement.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Partitioner name.
    pub partitioner: &'static str,
    /// Ranks.
    pub ranks: usize,
    /// Measured wall seconds per LB step (mean over the run).
    pub seconds_per_step: f64,
    /// Halo bytes per step (total across ranks).
    pub halo_bytes_per_step: u64,
    /// Partition edge cut.
    pub edge_cut: u64,
    /// Compute imbalance (max/mean sites).
    pub imbalance: f64,
    /// Sites per rank (mean).
    pub sites_per_rank: f64,
}

/// One `(kernel, threads)` measurement of the on-rank collide–stream
/// kernel: the serial reference against the chunk-parallel kernel at a
/// few thread counts. `site_updates_per_sec` is the headline number;
/// `bit_identical` records that the parallel state matched the serial
/// one exactly (`f64::to_bits`) after the measured steps.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// "legacy", "soa-scalar", "soa-simd" or "threaded".
    pub kernel: &'static str,
    /// Rayon worker threads (1 for the serial rows).
    pub threads: usize,
    /// Measured wall seconds per LB step.
    pub seconds_per_step: f64,
    /// Site updates per second (sites / seconds_per_step).
    pub site_updates_per_sec: f64,
    /// Whether the final state matched the serial reference bitwise.
    pub bit_identical: bool,
}

/// The sweep result.
pub struct ScalingResult {
    /// Total fluid sites in the workload.
    pub sites: usize,
    /// Measured rows.
    pub rows: Vec<ScalingRow>,
    /// Serial-vs-threaded kernel comparison on one rank.
    pub kernel_rows: Vec<KernelRow>,
    /// Projection to the paper's 32k-core scale.
    pub projection: Projection,
}

/// The 32k-rank projection, priced with a model *fitted to this run's
/// own measurements* (every row doubles as a calibration sample), not
/// preset constants.
#[derive(Debug, Clone)]
pub struct Projection {
    /// Target ranks (32 768, the paper's figure).
    pub ranks: u64,
    /// Target sites (81 M).
    pub sites: u64,
    /// The calibrated model the projection used (γ in site-updates/s —
    /// the "~250 flops/site" guess is gone, work is priced in the unit
    /// actually measured).
    pub model: CostModel,
    /// Fit quality of the calibration (R²).
    pub r2: f64,
    /// Measured halo coefficient, bytes per `sites^(2/3)` (replaces
    /// the `5 populations × 8 B` hand estimate).
    pub halo_coefficient: f64,
    /// Projected compute seconds per step per rank.
    pub compute_s: f64,
    /// Projected halo-communication seconds per step per rank.
    pub comm_s: f64,
    /// Communication fraction of a step.
    pub comm_fraction: f64,
}

/// Run E7: measure steps at each rank count under each partitioner and
/// project to 32k ranks.
pub fn run(size: Size, rank_counts: &[usize], steps: u64) -> ScalingResult {
    let geo = workloads::aneurysm(size);
    let graph = SiteGraph::from_geometry(&geo, Connectivity::D3Q15);
    let partitioners: Vec<(&'static str, Box<dyn Partitioner>)> = vec![
        ("naive", Box::new(NaiveBlock)),
        ("hilbert", Box::new(HilbertSfc)),
        ("kway", Box::new(MultilevelKWay::default())),
    ];

    // Each rank reports (sites, halo populations, msgs, bytes, wall
    // secs) for the timed stepping — every row below is also a
    // calibration sample for the α–β–γ fit that prices the projection.
    struct RankMeasure {
        sites: usize,
        halo_volume: usize,
        msgs: u64,
        bytes: u64,
        secs: f64,
    }

    let mut rows = Vec::new();
    let mut samples: Vec<CalSample> = Vec::new();
    // Per-rank (sites, halo bytes/step) of the largest k-way run: the
    // surface-to-volume seed of the projection.
    let mut halo_seed: Vec<(usize, u64, f64)> = Vec::new();
    for (name, partitioner) in &partitioners {
        for &p in rank_counts {
            let owner = partitioner.partition(&graph, p);
            let q = quality(&graph, &owner, p);
            let geo2 = geo.clone();
            let owner2 = owner.clone();
            let out = run_spmd_with_stats(p, move |comm| {
                let mut solver = DistSolver::new(
                    geo2.clone(),
                    owner2.clone(),
                    SolverConfig::pressure_driven(1.01, 0.99),
                    comm,
                )
                .unwrap();
                let before = comm.stats();
                let t0 = Instant::now();
                solver.step_n(steps).unwrap();
                let secs = t0.elapsed().as_secs_f64();
                let delta = comm.stats().delta_since(&before);
                RankMeasure {
                    sites: solver.local_sites().len(),
                    halo_volume: solver.halo_send_volume(),
                    msgs: delta.total_msgs(),
                    bytes: delta.total_bytes(),
                    secs,
                }
            });
            // Critical-path calibration sample: a bulk-synchronous step
            // is gated by its slowest rank, so pair the per-rank maxima.
            samples.push(CalSample {
                msgs: out.results.iter().map(|r| r.msgs).max().unwrap_or(0),
                bytes: out.results.iter().map(|r| r.bytes).max().unwrap_or(0),
                work: out.results.iter().map(|r| r.sites).max().unwrap_or(0) as u64 * steps,
                secs: out.results.iter().map(|r| r.secs).fold(0.0, f64::max),
            });
            if *name == "kway" {
                halo_seed = out
                    .results
                    .iter()
                    .map(|r| {
                        (
                            r.sites,
                            r.halo_volume as u64 * 8,
                            r.msgs as f64 / steps as f64,
                        )
                    })
                    .collect();
            }
            rows.push(ScalingRow {
                partitioner: name,
                ranks: p,
                seconds_per_step: out.results.iter().map(|r| r.secs).fold(0.0, f64::max)
                    / steps as f64,
                halo_bytes_per_step: out.results.iter().map(|r| r.halo_volume as u64 * 8).sum(),
                edge_cut: q.edge_cut,
                imbalance: q.imbalance,
                sites_per_rank: geo.fluid_count() as f64 / p as f64,
            });
        }
    }

    // Serial vs thread-parallel kernel on one rank. On a single
    // hardware core the threaded rows can only show overhead — the
    // honest number either way is site-updates/sec; what must hold
    // everywhere is bit-identical output.
    let cfg = SolverConfig::pressure_driven(1.01, 0.99);
    let mut kernel_rows = Vec::new();
    let mut serial = Solver::new(geo.clone(), cfg.clone().with_layout(KernelLayout::Legacy));
    let t0 = Instant::now();
    serial.step_n(steps);
    let s_per_step = t0.elapsed().as_secs_f64() / steps as f64;
    kernel_rows.push(KernelRow {
        kernel: "legacy",
        threads: 1,
        seconds_per_step: s_per_step,
        site_updates_per_sec: geo.fluid_count() as f64 / s_per_step,
        bit_identical: true,
    });
    // The SoA layouts, serially: same arithmetic, different memory walk.
    for (name, layout) in [
        ("soa-scalar", KernelLayout::SoaScalar),
        ("soa-simd", KernelLayout::SoaSimd),
    ] {
        let mut soa = Solver::new(geo.clone(), cfg.clone().with_layout(layout));
        let t0 = Instant::now();
        soa.step_n(steps);
        let s_per_step = t0.elapsed().as_secs_f64() / steps as f64;
        let bit_identical = soa
            .raw_distributions()
            .iter()
            .zip(serial.raw_distributions().iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        kernel_rows.push(KernelRow {
            kernel: name,
            threads: 1,
            seconds_per_step: s_per_step,
            site_updates_per_sec: geo.fluid_count() as f64 / s_per_step,
            bit_identical,
        });
    }
    for t in [1usize, 2, 4] {
        let mut par = ParallelSolver::new(geo.clone(), cfg.clone(), t);
        let t0 = Instant::now();
        par.step_n(steps);
        let s_per_step = t0.elapsed().as_secs_f64() / steps as f64;
        let bit_identical = par
            .raw_distributions()
            .iter()
            .zip(serial.raw_distributions().iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        kernel_rows.push(KernelRow {
            kernel: "threaded",
            threads: t,
            seconds_per_step: s_per_step,
            site_updates_per_sec: geo.fluid_count() as f64 / s_per_step,
            bit_identical,
        });
    }

    // Projection: calibrate the α–β–γ model from the rows just
    // measured, then scale the measured k-way halo pattern to the
    // paper's 32k-rank, 81 M-site workload by surface-to-volume. Both
    // hand constants of the original projection are gone: γ is fitted
    // in site-updates/s (not "~250 flops/site" against a preset), and
    // the halo coefficient comes from the measured bytes per
    // `sites^(2/3)` (not "5 populations × 8 B per boundary site").
    let cal = calibrate_fit(&samples).expect("scaling rows form a fittable sample set");
    let model = effective_model(&cal);
    let target_ranks = 32_768u64;
    let target_sites = 81_000_000u64;
    let sites_per_rank = target_sites as f64 / target_ranks as f64;
    let halo_terms: Vec<f64> = halo_seed
        .iter()
        .filter(|&&(s, _, _)| s > 0)
        .map(|&(s, b, _)| b as f64 / (s as f64).powf(2.0 / 3.0))
        .collect();
    let halo_coefficient = if halo_terms.is_empty() {
        0.0
    } else {
        halo_terms.iter().sum::<f64>() / halo_terms.len() as f64
    };
    let mean_msgs = if halo_seed.is_empty() {
        0.0
    } else {
        halo_seed.iter().map(|&(_, _, m)| m).sum::<f64>() / halo_seed.len() as f64
    };
    let halo_bytes = halo_coefficient * sites_per_rank.powf(2.0 / 3.0);
    let compute_s = model.time(0, 0, sites_per_rank.round() as u64);
    let comm_s = model.alpha * mean_msgs.max(1.0) + halo_bytes / model.beta;
    let projection = Projection {
        ranks: target_ranks,
        sites: target_sites,
        model,
        r2: cal.r2,
        halo_coefficient,
        compute_s,
        comm_s,
        comm_fraction: comm_s / (comm_s + compute_s),
    };

    ScalingResult {
        sites: geo.fluid_count(),
        rows,
        kernel_rows,
        projection,
    }
}

impl ScalingResult {
    /// Rows for one partitioner.
    pub fn rows_for(&self, name: &str) -> Vec<&ScalingRow> {
        self.rows.iter().filter(|r| r.partitioner == name).collect()
    }
}

impl fmt::Display for ScalingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Strong scaling of the distributed LB step — {} sites",
            self.sites
        )?;
        writeln!(
            f,
            "{:<9} {:>6} {:>12} {:>14} {:>10} {:>10}",
            "partition", "ranks", "ms/step", "halo B/step", "edge cut", "imbalance"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<9} {:>6} {:>12.3} {:>14} {:>10} {:>10.3}",
                r.partitioner,
                r.ranks,
                r.seconds_per_step * 1e3,
                workloads::fmt_bytes(r.halo_bytes_per_step),
                r.edge_cut,
                r.imbalance,
            )?;
        }
        writeln!(
            f,
            "on-rank kernel: serial vs chunk-parallel (bit-identical)"
        )?;
        writeln!(
            f,
            "{:<9} {:>7} {:>12} {:>16} {:>10}",
            "kernel", "threads", "ms/step", "site-updates/s", "bit-exact"
        )?;
        for k in &self.kernel_rows {
            writeln!(
                f,
                "{:<9} {:>7} {:>12.3} {:>16.0} {:>10}",
                k.kernel,
                k.threads,
                k.seconds_per_step * 1e3,
                k.site_updates_per_sec,
                k.bit_identical,
            )?;
        }
        let p = &self.projection;
        writeln!(
            f,
            "calibrated model (fit to the rows above, R² {:.3}): α = {:.2e} s/msg, \
             β = {:.2e} B/s, γ = {:.2e} site-updates/s, halo k = {:.1} B/site^⅔",
            p.r2, p.model.alpha, p.model.beta, p.model.gamma, p.halo_coefficient
        )?;
        writeln!(
            f,
            "projection to the paper's scale ({} ranks, {} sites): compute {:.1} µs/step, halo {:.1} µs/step, comm fraction {:.1}%",
            p.ranks,
            p.sites,
            p.compute_s * 1e6,
            p.comm_s * 1e6,
            p.comm_fraction * 100.0
        )?;
        writeln!(
            f,
            "(the paper's 'scales well to 32k cores' claim holds where the comm fraction stays below 50%; \
             see `reproduce projection` for the full technique curves)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_run_measures_and_projects() {
        let result = run(Size::Tiny, &[1, 2, 4], 5);
        assert_eq!(result.rows.len(), 9);
        // One rank has no halo.
        for name in ["naive", "hilbert", "kway"] {
            let rows = result.rows_for(name);
            assert_eq!(rows[0].ranks, 1);
            assert_eq!(rows[0].halo_bytes_per_step, 0);
            assert!(rows[2].halo_bytes_per_step > 0);
        }
        // The projection is priced by a model calibrated from the rows
        // themselves: the fraction is a real ratio, and γ is finite
        // (there is always compute signal). On an in-process "machine"
        // the calibrated bandwidth is far below a Cray link's, so no
        // fixed band on the fraction is honest — only its validity.
        assert!(result.projection.comm_fraction > 0.0);
        assert!(result.projection.comm_fraction < 1.0);
        assert!(result.projection.model.gamma.is_finite());
        assert!(result.projection.halo_coefficient > 0.0);
        assert!(result.projection.compute_s > 0.0 && result.projection.comm_s > 0.0);
        // Legacy + two SoA rows + three threaded rows, all bit-identical.
        assert_eq!(result.kernel_rows.len(), 6);
        for k in &result.kernel_rows {
            assert!(k.bit_identical, "threads={} diverged", k.threads);
            assert!(k.site_updates_per_sec > 0.0);
        }
    }

    #[test]
    fn kway_cut_not_worse_than_naive_at_scale() {
        let result = run(Size::Tiny, &[8], 2);
        let naive = result.rows_for("naive")[0].edge_cut;
        let kway = result.rows_for("kway")[0].edge_cut;
        assert!(
            kway <= naive * 2,
            "kway cut {kway} should be comparable or better than naive {naive}"
        );
    }
}
