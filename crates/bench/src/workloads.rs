//! Shared workload builders for the experiments.
//!
//! The canonical workload is the saccular-aneurysm vessel of the
//! paper's Fig. 4 at a handful of resolutions, with a developed
//! pressure-driven flow field produced by actually running the solver.

use hemelb_core::{FieldSnapshot, Solver, SolverConfig};
use hemelb_geometry::{SparseGeometry, Vec3, VesselBuilder};
use hemelb_partition::graph::{Connectivity, SiteGraph};
use hemelb_partition::{MultilevelKWay, Partitioner};
use std::sync::Arc;

/// Workload size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// ~3 k sites: unit-test scale.
    Tiny,
    /// ~25 k sites: default experiment scale.
    Small,
    /// ~180 k sites: bench scale.
    Medium,
}

impl Size {
    /// Lattice spacing for the standard aneurysm vessel.
    pub fn dx(self) -> f64 {
        match self {
            Size::Tiny => 1.0,
            Size::Small => 0.5,
            Size::Medium => 0.25,
        }
    }
}

/// The standard aneurysm geometry (parent vessel + saccular bulge).
pub fn aneurysm(size: Size) -> Arc<SparseGeometry> {
    Arc::new(VesselBuilder::aneurysm(28.0, 4.0, 6.0).voxelise(size.dx()))
}

/// The standard bifurcation geometry.
pub fn bifurcation(size: Size) -> Arc<SparseGeometry> {
    Arc::new(VesselBuilder::bifurcation(16.0, 14.0, 4.0, 0.5).voxelise(size.dx()))
}

/// A developed flow field: run the pressure-driven solver for `steps`
/// (enough for the jet through the neck of the sac to form).
pub fn developed_flow(geo: &Arc<SparseGeometry>, steps: u64) -> Arc<FieldSnapshot> {
    let mut solver = Solver::new(
        geo.clone(),
        SolverConfig::pressure_driven(1.01, 0.99).with_tau(0.8),
    );
    solver.step_n(steps);
    Arc::new(solver.snapshot())
}

/// Slab decomposition along x (the strawman owner map).
pub fn slab_owner(geo: &SparseGeometry, p: usize) -> Vec<usize> {
    (0..geo.fluid_count() as u32)
        .map(|s| (geo.position(s)[0] as usize * p / geo.shape()[0]).min(p - 1))
        .collect()
}

/// Multilevel k-way decomposition (the ParMETIS-analogue owner map).
pub fn kway_owner(geo: &SparseGeometry, p: usize) -> Vec<usize> {
    let graph = SiteGraph::from_geometry(geo, Connectivity::D3Q15);
    MultilevelKWay::default().partition(&graph, p)
}

/// Seed points clustered in the inlet cross-section (how a user places
/// streamline rakes in practice).
pub fn inlet_seeds(geo: &SparseGeometry, n: usize) -> Vec<Vec3> {
    let cy = (geo.shape()[1] as f64 - 1.0) / 2.0;
    let cz = find_axis_z(geo);
    let side = (n as f64).sqrt().ceil() as usize;
    (0..n)
        .map(|i| {
            Vec3::new(
                2.0,
                cy + ((i % side) as f64 - side as f64 / 2.0) * 0.8,
                cz + ((i / side) as f64 - side as f64 / 2.0) * 0.8,
            )
        })
        .collect()
}

/// z of the parent-vessel axis: the z coordinate with the most fluid
/// sites in the inlet region.
pub fn find_axis_z(geo: &SparseGeometry) -> f64 {
    let mut counts = vec![0usize; geo.shape()[2]];
    for i in 0..geo.fluid_count() as u32 {
        let p = geo.position(i);
        if p[0] < 4 {
            counts[p[2] as usize] += 1;
        }
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(z, _)| z as f64)
        .unwrap_or(0.0)
}

/// Render the standard output directory, creating it if needed.
pub fn out_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("out");
    std::fs::create_dir_all(&dir).expect("output directory must be creatable");
    dir
}

/// Format a byte count human-readably.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 10 * 1024 * 1024 {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 10 * 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builders_produce_consistent_sizes() {
        let tiny = aneurysm(Size::Tiny);
        let small = aneurysm(Size::Small);
        assert!(tiny.fluid_count() > 1000);
        assert!(small.fluid_count() > 6 * tiny.fluid_count());
    }

    #[test]
    fn developed_flow_actually_flows() {
        let geo = aneurysm(Size::Tiny);
        let snap = developed_flow(&geo, 100);
        assert!(snap.mean_speed() > 1e-4);
        assert!(snap.validity_report().is_empty());
    }

    #[test]
    fn owner_maps_cover_all_ranks() {
        let geo = aneurysm(Size::Tiny);
        for p in [2, 4] {
            for owner in [slab_owner(&geo, p), kway_owner(&geo, p)] {
                assert_eq!(owner.len(), geo.fluid_count());
                let mut seen = vec![false; p];
                for &o in &owner {
                    seen[o] = true;
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn seeds_land_in_fluid() {
        let geo = aneurysm(Size::Tiny);
        let seeds = inlet_seeds(&geo, 9);
        let in_fluid = seeds
            .iter()
            .filter(|s| {
                geo.site_at(s.x.round() as i64, s.y.round() as i64, s.z.round() as i64)
                    .is_some()
            })
            .count();
        assert!(
            in_fluid >= 5,
            "most seeds must be in the lumen: {in_fluid}/9"
        );
    }
}
