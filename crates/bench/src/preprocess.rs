//! Experiment E8 — §IV-B's two-level read: "the number of reading cores
//! enables control over the balance between file I/O and distribution
//! communication."
//!
//! Write the aneurysm geometry as `.sgmy`, then load it with `R` of `P`
//! ranks reading, sweeping `R`; measure per-reader file bytes (the
//! filesystem pressure) against forwarding traffic (the distribution
//! communication) and the wall time of the collective load.

use crate::workloads::{self, Size};
use hemelb_geometry::distio::read_distributed;
use hemelb_geometry::format::write_sgmy;
use hemelb_parallel::{run_spmd_with_stats, TagClass};
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

/// One reader-count measurement.
#[derive(Debug, Clone)]
pub struct PreprocessRow {
    /// Reading ranks.
    pub readers: usize,
    /// Maximum file bytes read by any single rank (filesystem hotspot).
    pub max_file_bytes_per_reader: u64,
    /// Total forwarding (geometry-class) bytes.
    pub forward_bytes: u64,
    /// Wall seconds for the collective load.
    pub seconds: f64,
}

/// The sweep.
pub struct PreprocessResult {
    /// Ranks.
    pub ranks: usize,
    /// File size on disk.
    pub file_bytes: u64,
    /// Total sites.
    pub sites: usize,
    /// Rows by reader count.
    pub rows: Vec<PreprocessRow>,
}

/// Run E8 with `p` ranks and the given reader counts.
pub fn run(size: Size, p: usize, reader_counts: &[usize]) -> PreprocessResult {
    let geo = workloads::aneurysm(size);
    let mut buf = Vec::new();
    write_sgmy(&geo, 8, &mut buf).expect("in-memory serialisation");
    let path: PathBuf = std::env::temp_dir().join(format!(
        "hemelb_e8_{}_{}.sgmy",
        std::process::id(),
        geo.fluid_count()
    ));
    std::fs::write(&path, &buf).expect("scratch geometry file");
    let file_bytes = buf.len() as u64;

    let mut rows = Vec::new();
    for &readers in reader_counts {
        let path2 = path.clone();
        let t0 = Instant::now();
        let out = run_spmd_with_stats(p, move |comm| {
            let dg = read_distributed(&path2, comm, readers).unwrap();
            (dg.file_bytes_read, dg.my_sites.len())
        });
        let seconds = t0.elapsed().as_secs_f64();
        let total_sites: usize = out.results.iter().map(|r| r.1).sum();
        assert_eq!(total_sites, geo.fluid_count(), "every site delivered once");
        rows.push(PreprocessRow {
            readers,
            max_file_bytes_per_reader: out.results.iter().map(|r| r.0).max().unwrap_or(0),
            forward_bytes: out.summary.total.bytes(TagClass::Geometry),
            seconds,
        });
    }
    std::fs::remove_file(&path).ok();
    PreprocessResult {
        ranks: p,
        file_bytes,
        sites: geo.fluid_count(),
        rows,
    }
}

impl fmt::Display for PreprocessResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Two-level geometry load ({} ranks, {} file, {} sites): file I/O vs redistribution",
            self.ranks,
            workloads::fmt_bytes(self.file_bytes),
            self.sites
        )?;
        writeln!(
            f,
            "{:>8} {:>20} {:>16} {:>10}",
            "readers", "max file B / reader", "forwarded B", "ms"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>20} {:>16} {:>10.2}",
                r.readers,
                workloads::fmt_bytes(r.max_file_bytes_per_reader),
                workloads::fmt_bytes(r.forward_bytes),
                r.seconds * 1e3,
            )?;
        }
        writeln!(
            f,
            "(more readers spread the filesystem load; forwarding vanishes when every rank reads its own blocks)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_sweep_shows_the_tradeoff() {
        let result = run(Size::Tiny, 8, &[1, 2, 4, 8]);
        assert_eq!(result.rows.len(), 4);
        // One reader bears the whole file; more readers spread it.
        let one = &result.rows[0];
        let all = &result.rows[3];
        assert!(one.max_file_bytes_per_reader > all.max_file_bytes_per_reader);
        // Forwarding shrinks as readers own more of what they read.
        assert!(
            all.forward_bytes < one.forward_bytes,
            "{} !< {}",
            all.forward_bytes,
            one.forward_bytes
        );
    }
}
