//! Experiment E15 — measurement-driven adaptive load balancing.
//!
//! The co-design loop of the paper closes only if the runtime can act
//! on its own measurements: the observability layer feeds per-rank
//! `lb.*` span totals into the adaptive load balancer, which plans a
//! diffusive rebalance and applies it through the migrating
//! repartitioner when the cost/benefit gate approves. E15 demonstrates
//! the whole chain on a *deliberately skewed* decomposition of the
//! aneurysm geometry — one rank starts with most of the bulb — and
//! reports
//!
//! * the measured max/mean step-time imbalance in the first decision
//!   window (before any rebalance) and in the last one (after);
//! * how many rebalances the hysteresis + gate let through, how many
//!   sites migrated, and the projected migration volume in bytes;
//! * bit-exactness of the final fields against a serial solver that
//!   never repartitions — the adaptive path must be invisible to the
//!   physics.
//!
//! The report is also written as `out/BENCH_adaptive.json` via the obs
//! JSON codec.

use crate::workloads::{self, Size};
use hemelb_core::{DistSolver, Solver, SolverConfig};
use hemelb_obs::{ObsReport, Recorder};
use hemelb_parallel::{run_spmd_opts, SpmdOptions};
use hemelb_partition::{AdaptiveLbConfig, Observation};
use hemelb_steering::AdaptiveDriver;
use std::fmt;

/// A decomposition that puts roughly `frac` of all sites on rank 0 and
/// splits the rest evenly (by fluid index) across the other ranks — the
/// "dense bulb on one rank" starting point the adaptive balancer must
/// dig itself out of.
pub fn skewed_owner(geo: &hemelb_geometry::SparseGeometry, p: usize, frac: f64) -> Vec<usize> {
    let n = geo.fluid_count();
    let head = ((n as f64 * frac) as usize).min(n);
    let rest_ranks = p.saturating_sub(1).max(1);
    let tail = n - head;
    (0..n)
        .map(|s| {
            if s < head || p == 1 {
                0
            } else {
                let i = s - head;
                (1 + i * rest_ranks / tail.max(1)).min(p - 1)
            }
        })
        .collect()
}

/// Everything E15 measures.
pub struct AdaptiveResult {
    /// Ranks in the distributed run.
    pub ranks: usize,
    /// Steps simulated.
    pub steps: u64,
    /// Decision-window length in steps.
    pub window_steps: u64,
    /// Fraction of sites parked on rank 0 at the start.
    pub skew: f64,
    /// Per-window hysteresis observations (identical on every rank).
    pub observations: Vec<Observation>,
    /// Measured sim-cost imbalance in the first window (pre-rebalance).
    pub imbalance_before: f64,
    /// Measured sim-cost imbalance in the last window.
    pub imbalance_after: f64,
    /// Repartitions the gate let through.
    pub rebalances: u64,
    /// Sites that changed ranks, summed over all rebalances.
    pub sites_moved: u64,
    /// Triggered windows the cost/benefit gate rejected.
    pub gate_skips: u64,
    /// Migration payload the moves amount to (Migration-class bytes).
    pub migration_bytes: u64,
    /// Final fields identical to the never-repartitioned serial run?
    pub bit_exact: bool,
    /// The exported report, also written to `out/BENCH_adaptive.json`.
    pub report: ObsReport,
}

/// Run E15: skewed start, adaptive windows, bit-exactness reference.
pub fn run(size: Size, ranks: usize) -> AdaptiveResult {
    let geo = workloads::aneurysm(size);
    let ranks = ranks.max(2);
    let skew = 0.7;
    let cfg = SolverConfig::pressure_driven(1.01, 0.99);
    // E15 wants visible convergence within a short run on an
    // oversubscribed test box, so it reacts on every hot window and
    // uses a tight balance cap; the hysteresis behaviour itself is
    // pinned by unit tests and `tests/adaptive_lb.rs`.
    let lb_cfg = AdaptiveLbConfig {
        window_steps: 20,
        threshold: 1.15,
        hysteresis_windows: 1,
        epsilon: 0.05,
        max_passes: 60,
        ..Default::default()
    };
    let windows = 12u64;
    let steps = lb_cfg.window_steps * windows;

    let (geo2, cfg2) = (geo.clone(), cfg.clone());
    let out = run_spmd_opts(ranks, SpmdOptions::default(), move |comm| {
        let owner = skewed_owner(&geo2, comm.size(), skew);
        let mut ds = DistSolver::new(geo2.clone(), owner, cfg2.clone(), comm).unwrap();
        let mut driver = AdaptiveDriver::new(&geo2, lb_cfg);
        let mut observations = Vec::with_capacity(windows as usize);
        let mut q = 0usize;
        while ds.step_count() < steps {
            ds.step_n(lb_cfg.window_steps.min(steps - ds.step_count()))
                .unwrap();
            let remaining = steps - ds.step_count();
            let d = driver
                .end_window(comm, &mut ds, lb_cfg.window_steps, remaining)
                .unwrap();
            observations.push(d.observation);
            q = ds.model().q;
        }
        (ds.gather_snapshot().unwrap(), observations, q)
    });

    let merged = out.merged_obs();
    let counter = |k: &str| merged.counters.get(k).copied().unwrap_or(0);
    let rebalances = counter("lb.rebalance.count") / ranks as u64;
    let sites_moved = counter("lb.rebalance.sites_moved");
    let gate_skips = counter("lb.rebalance.skipped.gate") / ranks as u64;
    let (snapshot, observations, q) = &out.results[0];
    let migration_bytes = sites_moved * (4 + 8 * *q as u64);
    // Per-window wall measurements are noisy on a shared box; compare
    // the mean of the first two windows against the last two.
    let mean_imbalance = |os: &[Observation]| -> f64 {
        if os.is_empty() {
            1.0
        } else {
            os.iter().map(|o| o.sim_imbalance).sum::<f64>() / os.len() as f64
        }
    };
    let head = observations.len().min(2);
    let imbalance_before = mean_imbalance(&observations[..head]);
    let imbalance_after = mean_imbalance(&observations[observations.len() - head..]);

    // The never-repartitioned reference: a serial solver over the same
    // geometry and step count. Bitwise-equal densities prove the whole
    // adaptive chain (measure → plan → gate → migrate) left the physics
    // untouched.
    let mut reference = Solver::new(geo.clone(), cfg);
    reference.step_n(steps);
    let bit_exact = snapshot
        .as_ref()
        .is_some_and(|s| s.rho == reference.snapshot().rho);

    let mut rec = Recorder::new();
    rec.count("adaptive.rebalances", rebalances);
    rec.count("adaptive.sites_moved", sites_moved);
    rec.count("adaptive.gate_skips", gate_skips);
    rec.count("adaptive.migration_bytes", migration_bytes);
    rec.count("adaptive.bit_exact", u64::from(bit_exact));
    rec.record_secs("adaptive.imbalance_before", imbalance_before);
    rec.record_secs("adaptive.imbalance_after", imbalance_after);
    let report = rec.report();
    let path = workloads::out_dir().join("BENCH_adaptive.json");
    std::fs::write(&path, report.to_json()).expect("BENCH_adaptive.json written");

    AdaptiveResult {
        ranks,
        steps,
        window_steps: lb_cfg.window_steps,
        skew,
        observations: observations.clone(),
        imbalance_before,
        imbalance_after,
        rebalances,
        sites_moved,
        gate_skips,
        migration_bytes,
        bit_exact,
        report,
    }
}

impl fmt::Display for AdaptiveResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Adaptive load balancing: {} ranks, {} steps, windows of {}, \
             {:.0}% of sites start on rank 0",
            self.ranks,
            self.steps,
            self.window_steps,
            self.skew * 100.0,
        )?;
        writeln!(
            f,
            "{:>7} {:>12} {:>12} {:>5} {:>7} {:>10}",
            "window", "sim imbal", "vis imbal", "hot", "streak", "triggered"
        )?;
        for o in &self.observations {
            writeln!(
                f,
                "{:>7} {:>12.3} {:>12.3} {:>5} {:>7} {:>10}",
                o.window,
                o.sim_imbalance,
                o.vis_imbalance,
                if o.hot { "yes" } else { "no" },
                o.hot_streak,
                if o.triggered { "yes" } else { "no" },
            )?;
        }
        writeln!(
            f,
            "imbalance {:.3} -> {:.3} ({:+.1}%), {} rebalance(s), {} site(s) moved \
             ({} migration bytes), {} gate skip(s)",
            self.imbalance_before,
            self.imbalance_after,
            100.0 * (self.imbalance_after - self.imbalance_before)
                / self.imbalance_before.max(1e-12),
            self.rebalances,
            self.sites_moved,
            workloads::fmt_bytes(self.migration_bytes),
            self.gate_skips,
        )?;
        writeln!(
            f,
            "bit-exact vs never-repartitioned serial run: {}",
            if self.bit_exact { "yes" } else { "NO" },
        )?;
        writeln!(f, "JSON: out/BENCH_adaptive.json")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_owner_is_skewed_and_covers_all_ranks() {
        let geo = workloads::aneurysm(Size::Tiny);
        let owner = skewed_owner(&geo, 4, 0.7);
        assert_eq!(owner.len(), geo.fluid_count());
        let mut counts = [0usize; 4];
        for &o in &owner {
            counts[o] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        assert!(
            counts[0] > owner.len() / 2,
            "rank 0 must start overloaded: {counts:?}"
        );
    }

    #[test]
    fn adaptive_run_rebalances_and_stays_bit_exact() {
        let r = run(Size::Tiny, 3);
        assert!(
            r.bit_exact,
            "adaptive repartitioning must not touch physics"
        );
        assert!(
            r.rebalances >= 1,
            "a 70% skew must trigger at least one rebalance: {:?}",
            r.observations
        );
        assert!(r.sites_moved > 0);
        assert!(
            r.imbalance_after < r.imbalance_before,
            "imbalance must drop: {} -> {}",
            r.imbalance_before,
            r.imbalance_after
        );
        let back = ObsReport::from_json(&r.report.to_json()).expect("valid JSON");
        assert_eq!(back.counters["adaptive.bit_exact"], 1);
    }
}
