//! Experiment E19 — the simulation farm: a parameter sweep over
//! synthetic vasculature run as concurrent multi-rank jobs on one
//! shared worker pool, against the sequential "script" baseline that
//! runs the same sweep one job at a time with per-job pre-processing.
//!
//! The co-design claim being measured: clinically useful answers come
//! from *sweeps* — many closely-related runs over one vasculature — and
//! pre-processing (voxelise, partition) is a first-class, *repeated*
//! cost in that regime. The farm memoises pre-processing products
//! across the sweep (the [`hemelb_farm::PrepCache`]), so the saturated
//! farm's jobs/hour beats the baseline even on a single core; the gap
//! widens with idle cores.
//!
//! The run also injects one `KillRank` into a designated job (with a
//! checkpoint cadence) and asserts **inline** that every farm job's
//! final-field digest — including the killed-and-recovered job — equals
//! the clean sequential baseline's digest: recovery is bit-exact and
//! neighbouring jobs are unperturbed, in a single assertion.
//!
//! Results export to `out/BENCH_farm.json` (gated by `ci-gate`).

use crate::workloads::{self, Size};
use hemelb_farm::{Drive, FarmConfig, FarmScheduler, GeometryKind, JobSpec, Scenario};
use hemelb_obs::Recorder;
use hemelb_parallel::{FaultEvent, FaultKind, FaultPlan, TagClass};
use std::collections::BTreeMap;
use std::fmt;

/// Fault-clock step at which the designated job's rank 1 dies.
const KILL_STEP: u64 = 3;
/// Checkpoint cadence of the designated kill job.
const KILL_CHECKPOINT_EVERY: u64 = 2;
/// Timed repetitions per configuration; the best (shortest makespan)
/// is kept. Millisecond-scale farm runs are noisy on shared CI boxes;
/// best-of-N keeps the numbers comparable against the blessed
/// baselines (digest assertions still run on every rep).
const REPS: usize = 5;

/// One farm configuration of the saturation sweep.
#[derive(Debug, Clone)]
pub struct FarmRow {
    /// Rank slots in the shared pool.
    pub slots: usize,
    /// Wall seconds, first dispatch to last commit.
    pub makespan_secs: f64,
    /// Completed-job throughput.
    pub jobs_per_hour: f64,
    /// `jobs_per_hour / sequential baseline jobs_per_hour`.
    pub speedup: f64,
    /// Queue-wait p95 across jobs, seconds.
    pub queue_wait_p95: f64,
    /// Submission-to-commit latency p95 across jobs, seconds.
    pub latency_p95: f64,
    /// Pre-processing cache hits of this run.
    pub cache_hits: u64,
    /// Pre-processing builds of this run.
    pub cache_misses: u64,
    /// In-world kill restarts observed (the injected kill).
    pub restarts: u64,
}

/// The E19 result.
pub struct FarmBenchResult {
    /// Jobs in the sweep.
    pub jobs: usize,
    /// Name of the job carrying the injected kill.
    pub kill_job: String,
    /// Sequential-baseline wall seconds for the whole sweep.
    pub seq_secs: f64,
    /// Sequential-baseline throughput.
    pub seq_jobs_per_hour: f64,
    /// One row per pool size, ascending.
    pub rows: Vec<FarmRow>,
    /// Whether the killed job replayed bit-exactly (digest equality
    /// with the clean baseline) *and* actually died at least once.
    pub kill_replay_bit_exact: bool,
}

/// The sweep: viscosity × pressure drop × waveform over two synthetic
/// vasculatures, mixed rank counts, two tenants.
fn sweep(size: Size) -> Vec<JobSpec> {
    // dx is chosen so pre-processing (voxelise + multilevel partition)
    // is a visible share of each job — the regime the farm amortises.
    let (dx, steps) = match size {
        Size::Tiny => (0.5, 4u64),
        Size::Small => (0.35, 8),
        Size::Medium => (0.25, 10),
    };
    let tube = GeometryKind::Tube {
        length: 10.0,
        radius: 2.4,
    };
    let bif = GeometryKind::Bifurcation {
        parent_len: 8.0,
        child_len: 6.0,
        radius: 2.0,
        half_angle: 0.5,
    };
    let mut jobs = Vec::new();
    // Tenant "icu": a viscosity (tau) sweep over the tube at 2 ranks.
    for tau in [0.65, 0.7, 0.8, 0.9, 1.0, 1.1] {
        jobs.push(JobSpec::new(
            format!("icu-tube-tau{tau}"),
            "icu",
            Scenario {
                geometry: tube,
                dx,
                drive: Drive::Pressure {
                    rho_in: 1.01,
                    rho_out: 0.99,
                },
                tau,
                steps,
                ranks: 2,
            },
        ));
    }
    // Tenant "lab": pressure-drop and waveform variants over the
    // bifurcation, mixed rank counts.
    for (i, rho_in) in [1.005, 1.01, 1.02, 1.03].into_iter().enumerate() {
        jobs.push(JobSpec::new(
            format!("lab-bif-dp{i}"),
            "lab",
            Scenario {
                geometry: bif,
                dx,
                drive: Drive::Pressure {
                    rho_in,
                    rho_out: 0.99,
                },
                tau: 0.8,
                steps,
                ranks: 2,
            },
        ));
    }
    for (i, amplitude) in [0.3, 0.6].into_iter().enumerate() {
        jobs.push(JobSpec::new(
            format!("lab-bif-pulse{i}"),
            "lab",
            Scenario {
                geometry: bif,
                dx,
                drive: Drive::Pulsatile {
                    peak: 0.04,
                    amplitude,
                    period: 4,
                },
                tau: 0.8,
                steps,
                ranks: 1,
            },
        ));
    }
    jobs
}

/// The designated kill job: checkpoint cadence plus a scheduled
/// rank-death mid-run. Applied to the first 2-rank job of the sweep.
fn arm_kill(jobs: &mut [JobSpec]) -> String {
    let victim = jobs
        .iter_mut()
        .find(|j| j.scenario.ranks >= 2)
        .expect("sweep has a multi-rank job");
    victim.checkpoint_every = Some(KILL_CHECKPOINT_EVERY);
    victim.faults = Some(FaultPlan::new(vec![FaultEvent {
        rank: 1,
        class: TagClass::Halo,
        step: KILL_STEP,
        kind: FaultKind::KillRank,
    }]));
    victim.name.clone()
}

fn farm_config(slots: usize, tag: &str) -> FarmConfig {
    FarmConfig {
        slots,
        backoff_ms: 5,
        workdir: std::env::temp_dir()
            .join(format!("hemelb_farm_bench_{tag}_{}", std::process::id())),
        ..Default::default()
    }
}

/// Run E19: the sequential baseline, then the farm at pool sizes
/// {1, 2, 4, 8} clipped to `max_slots`, asserting digest equality
/// between every farm run and the baseline.
pub fn run(size: Size, max_slots: usize) -> FarmBenchResult {
    let mut jobs = sweep(size);
    let kill_job = arm_kill(&mut jobs);
    let n = jobs.len();

    // Sequential "script" baseline: one job at a time, each with its
    // own fresh pre-processing (the per-run `writeInput` pattern), no
    // faults — this produces the reference digests. Best of `REPS`
    // per job.
    let mut seq_secs = 0.0;
    let mut seq_digests: BTreeMap<String, u64> = BTreeMap::new();
    for spec in &jobs {
        let mut best = f64::INFINITY;
        for rep_i in 0..REPS {
            let mut farm = FarmScheduler::new(farm_config(spec.scenario.ranks, "seq"));
            farm.submit(JobSpec::new(
                spec.name.clone(),
                spec.tenant.clone(),
                spec.scenario.clone(),
            ));
            let rep = farm.run();
            assert_eq!(rep.completed(), 1, "baseline job failed: {:?}", rep.records);
            best = best.min(rep.makespan_secs);
            if rep_i == 0 {
                seq_digests.extend(rep.digests());
            } else {
                assert_eq!(rep.digests(), {
                    let mut one = BTreeMap::new();
                    one.insert(spec.name.clone(), seq_digests[&spec.name]);
                    one
                });
            }
        }
        seq_secs += best;
    }
    let seq_jobs_per_hour = n as f64 * 3600.0 / seq_secs.max(1e-9);

    let mut rec = Recorder::new();
    let mut rows = Vec::new();
    let mut kill_replay_bit_exact = true;
    let slot_list: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&s| s <= max_slots.max(2))
        .collect();
    for &slots in &slot_list {
        let mut best: Option<hemelb_farm::FarmReport> = None;
        for _ in 0..REPS {
            let mut farm = FarmScheduler::new(farm_config(slots, &format!("s{slots}")));
            farm.set_tenant_weight("icu", 2.0);
            farm.set_tenant_weight("lab", 1.0);
            for spec in &jobs {
                farm.submit(spec.clone());
            }
            let report = farm.run();
            assert_eq!(
                report.completed(),
                n,
                "farm run at {slots} slots lost jobs:\n{}",
                report.render_table()
            );
            // THE acceptance assertion, inline: every farm job — the
            // killed-and-recovered one included — lands bit-exactly on
            // the clean sequential baseline. One equality covers both
            // recovery fidelity and neighbour isolation, on every rep.
            assert_eq!(
                report.digests(),
                seq_digests,
                "farm digests diverged from the sequential baseline at {slots} slots"
            );
            if best
                .as_ref()
                .is_none_or(|b| report.makespan_secs < b.makespan_secs)
            {
                best = Some(report);
            }
        }
        let report = best.expect("at least one rep ran");
        let restarts = report.restarts();
        let killed = report
            .records
            .iter()
            .find(|r| r.name == kill_job)
            .expect("kill job ran");
        kill_replay_bit_exact &= restarts >= 1 && killed.restarts >= 1;
        let wait = report.queue_wait_hist();
        let lat = report.latency_hist();
        for r in &report.records {
            rec.record_secs(&format!("farm.s{slots}.queue_wait"), r.queue_wait_secs);
            rec.record_secs(&format!("farm.s{slots}.latency"), r.latency_secs);
        }
        rec.record_secs(&format!("farm.s{slots}.makespan"), report.makespan_secs);
        let jph = report.jobs_per_hour();
        rec.count(
            &format!("farm.s{slots}.jobs_per_hour_milli"),
            (jph * 1000.0) as u64,
        );
        rows.push(FarmRow {
            slots,
            makespan_secs: report.makespan_secs,
            jobs_per_hour: jph,
            speedup: jph / seq_jobs_per_hour.max(1e-9),
            queue_wait_p95: wait.p95(),
            latency_p95: lat.p95(),
            cache_hits: report.cache_hits,
            cache_misses: report.cache_misses,
            restarts,
        });
    }

    // The saturation point is the best throughput across the pool-size
    // sweep — the farm's capacity claim, robust to one noisy row.
    let saturated = rows
        .iter()
        .max_by(|a, b| a.jobs_per_hour.total_cmp(&b.jobs_per_hour))
        .expect("at least one pool size ran");
    rec.count("farm.jobs", n as u64);
    rec.count("farm.speedup_permille", (saturated.speedup * 1000.0) as u64);
    rec.count(
        "farm.kill_replay_bit_exact",
        u64::from(kill_replay_bit_exact),
    );
    rec.count("farm.kill_restarts", saturated.restarts);
    rec.count("farm.cache.hits", saturated.cache_hits);
    rec.count("farm.cache.misses", saturated.cache_misses);
    rec.record_secs("farm.seq.makespan", seq_secs);
    rec.count(
        "farm.seq.jobs_per_hour_milli",
        (seq_jobs_per_hour * 1000.0) as u64,
    );
    let path = workloads::out_dir().join("BENCH_farm.json");
    std::fs::write(&path, rec.report().to_json()).expect("BENCH_farm.json written");

    FarmBenchResult {
        jobs: n,
        kill_job,
        seq_secs,
        seq_jobs_per_hour,
        rows,
        kill_replay_bit_exact,
    }
}

impl fmt::Display for FarmBenchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Simulation farm — {} jobs (2 tenants, weights icu:lab = 2:1), injected kill on \
             '{}' (rank 1 at fault step {KILL_STEP}, checkpoint every {KILL_CHECKPOINT_EVERY})",
            self.jobs, self.kill_job
        )?;
        writeln!(
            f,
            "sequential baseline: {:.2}s for the sweep ({:.1} jobs/hour, per-job pre-processing)",
            self.seq_secs, self.seq_jobs_per_hour
        )?;
        writeln!(
            f,
            "{:<6} {:>10} {:>12} {:>9} {:>11} {:>11} {:>11} {:>9}",
            "slots",
            "makespan",
            "jobs/hour",
            "speedup",
            "wait p95",
            "lat p95",
            "prep hits",
            "restarts"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:>9.2}s {:>12.1} {:>8.2}x {:>10.3}s {:>10.3}s {:>5}/{:<5} {:>9}",
                r.slots,
                r.makespan_secs,
                r.jobs_per_hour,
                r.speedup,
                r.queue_wait_p95,
                r.latency_p95,
                r.cache_hits,
                r.cache_hits + r.cache_misses,
                r.restarts,
            )?;
        }
        writeln!(
            f,
            "kill replay bit-exact (digest equality with clean baseline): {}",
            self.kill_replay_bit_exact
        )?;
        writeln!(f, "JSON: out/BENCH_farm.json")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farm_bench_amortises_prep_and_replays_the_kill_bit_exactly() {
        // `run` asserts digest equality against the baseline inline;
        // reaching the assertions below means recovery was bit-exact
        // and neighbours were unperturbed.
        let result = run(Size::Tiny, 2);
        assert_eq!(result.rows.len(), 2, "pool sizes 1 and 2");
        assert!(result.kill_replay_bit_exact, "kill must fire and replay");
        for row in &result.rows {
            assert!(row.makespan_secs > 0.0 && row.jobs_per_hour > 0.0);
            assert!(
                row.cache_misses < (result.jobs * 2) as u64,
                "the shared cache must amortise some pre-processing: \
                 {} misses for {} jobs",
                row.cache_misses,
                result.jobs
            );
            assert!(row.restarts >= 1, "the injected kill must fire");
        }
        assert!(workloads::out_dir().join("BENCH_farm.json").exists());
    }
}
