//! Experiment E14 — fault injection and graceful degradation.
//!
//! The paper's closed loop only matters if it survives the weather of a
//! real machine: ranks stall, links drop, nodes die. E14 measures the
//! two degradation paths the fault harness provides:
//!
//! * **Frame latency under dead render ranks.** The steering client
//!   requests frames while 0, 1 and 2 render ranks have their
//!   compositing contributions silently dropped (a [`FaultKind::DropOnce`]
//!   per frame per dead rank). With a compositing deadline the master
//!   ships a degraded frame instead of hanging, so the p50/p95 round
//!   trip rises to the deadline bound — and no further.
//! * **Recovery-replay cost.** A rank is killed mid-run; the world
//!   restarts and replays from the latest checkpoint. We time the
//!   killed run against an identical fault-free run (same checkpoint
//!   cadence) and assert the recovered fields are bit-exact.
//!
//! The report is also written as `out/BENCH_faults.json` via the obs
//! JSON codec.

use crate::workloads::{self, Size};
use hemelb_core::{DistSolver, SolverConfig};
use hemelb_obs::{fmt_secs, Histogram, ObsReport, Recorder};
use hemelb_parallel::{run_spmd_opts, FaultEvent, FaultKind, FaultPlan, SpmdOptions, TagClass};
use hemelb_steering::{
    duplex_listener, run_closed_loop_opts, Acceptor, ClientLossPolicy, ClosedLoopConfig,
    SteeringClient, SteeringCommand,
};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Frame-latency measurements with a given number of dead render ranks.
#[derive(Debug, Clone)]
pub struct DegradedRow {
    /// Render ranks whose compositing payloads were dropped.
    pub dead_ranks: usize,
    /// `RequestFrame → ImageFrame` round trips (seconds).
    pub rtts: Vec<f64>,
    /// Frames rendered by the closed loop.
    pub frames: u64,
    /// Frames shipped with at least one contribution missing.
    pub frames_degraded: u64,
    /// `vis.composite.dropped` across all ranks.
    pub dropped: u64,
}

impl DegradedRow {
    /// The round-trip distribution as an observability histogram.
    pub fn rtt_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for &s in &self.rtts {
            h.record(s);
        }
        h
    }
}

/// Everything E14 measures.
pub struct FaultsResult {
    /// Ranks in each run.
    pub ranks: usize,
    /// Compositing deadline used for the degraded-frame sweep.
    pub deadline: Duration,
    /// One row per dead-rank count (0, 1, 2).
    pub rows: Vec<DegradedRow>,
    /// Steps of the recovery workload.
    pub steps: u64,
    /// Wall seconds of the fault-free checkpointing run.
    pub clean_secs: f64,
    /// Wall seconds of the killed run (restart + checkpoint replay).
    pub recovery_secs: f64,
    /// World restarts the kill forced (expected: 1).
    pub restarts: u64,
    /// Whether the recovered fields matched the fault-free run bit for
    /// bit.
    pub bit_exact: bool,
    /// The exported report, also written to `out/BENCH_faults.json`.
    pub report: ObsReport,
}

/// One closed-loop run with `dead` render ranks' compositing sends
/// dropped on every requested frame, measuring `frames` round trips.
fn degraded_frames(
    geo: &Arc<hemelb_geometry::SparseGeometry>,
    ranks: usize,
    dead: usize,
    frames: usize,
    deadline: Duration,
) -> DegradedRow {
    // Each frame triggers exactly one compositing-class send per worker
    // rank, and each send consumes at most one DropOnce event — so
    // `frames` events per dead rank drop that rank's contribution to
    // every requested frame.
    let mut events = Vec::new();
    for rank in 1..=dead {
        for _ in 0..frames {
            events.push(FaultEvent {
                rank,
                class: TagClass::Compositing,
                step: 0,
                kind: FaultKind::DropOnce,
            });
        }
    }
    let plan = FaultPlan::new(events);

    let (connector, acceptor) = duplex_listener();
    let acceptor_slot = Arc::new(Mutex::new(Some(Box::new(acceptor) as Box<dyn Acceptor>)));
    let client_thread = std::thread::spawn(move || {
        let client = SteeringClient::new(Box::new(connector.connect().unwrap()));
        let mut rtts = Vec::with_capacity(frames);
        for _ in 0..frames {
            let (_, rtt) = client.request_frame().expect("frame round trip");
            rtts.push(rtt.as_secs_f64());
        }
        client.send(&SteeringCommand::Terminate).ok();
        while client.recv().is_ok() {}
        rtts
    });

    let geo2 = geo.clone();
    let out = run_spmd_opts(ranks, SpmdOptions::with_faults(plan), move |comm| {
        let acceptor = if comm.is_master() {
            acceptor_slot.lock().take()
        } else {
            None
        };
        run_closed_loop_opts(
            geo2.clone(),
            workloads::slab_owner(&geo2, comm.size()),
            SolverConfig::pressure_driven(1.005, 0.995),
            comm,
            None,
            acceptor,
            &ClosedLoopConfig {
                max_steps: u64::MAX / 2,
                image: (64, 48),
                initial_vis_rate: u32::MAX, // frames only on request
                steps_per_cycle: 5,
                frame_deadline: Some(deadline),
                on_client_loss: ClientLossPolicy::Headless,
                ..Default::default()
            },
        )
        .unwrap()
    });
    let rtts = client_thread.join().expect("client thread");
    let merged = out.merged_obs();
    DegradedRow {
        dead_ranks: dead,
        rtts,
        frames: out.results[0].frames_rendered,
        frames_degraded: out.results[0].frames_degraded,
        dropped: merged
            .counters
            .get("vis.composite.dropped")
            .copied()
            .unwrap_or(0),
    }
}

/// The checkpoint-every-20-steps solver workload both recovery runs
/// execute; returns the gathered density field for the bit-exactness
/// check.
fn recovery_workload(
    geo: &Arc<hemelb_geometry::SparseGeometry>,
    ranks: usize,
    steps: u64,
    plan: FaultPlan,
    tag: &str,
) -> (f64, u64, Vec<f64>) {
    let dir =
        std::env::temp_dir().join(format!("hemelb_bench_faults_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let cp = dir.join("cp");
    let (geo2, cp2) = (geo.clone(), cp.clone());
    let t = Instant::now();
    let out = run_spmd_opts(ranks, SpmdOptions::with_faults(plan), move |comm| {
        let owner = workloads::slab_owner(&geo2, comm.size());
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let mut ds = DistSolver::new(geo2.clone(), owner, cfg, comm).unwrap();
        // Crash recovery: resume from the latest checkpoint if one
        // exists (`checkpoint` ends in a barrier, so the on-disk set is
        // always a consistent cut).
        if cp2.join(format!("rank_{}.chkp", comm.rank())).exists() {
            ds.restore(&cp2).unwrap();
        }
        while ds.step_count() < steps {
            let burst = 20 - ds.step_count() % 20;
            ds.step_n(burst.min(steps - ds.step_count())).unwrap();
            ds.checkpoint(&cp2).unwrap();
        }
        ds.gather_snapshot().unwrap()
    });
    let secs = t.elapsed().as_secs_f64();
    let merged = out.merged_obs();
    let restarts = merged.counters.get("fault.restarts").copied().unwrap_or(0);
    let rho = out.results[0].as_ref().expect("master gathers").rho.clone();
    std::fs::remove_dir_all(&dir).ok();
    (secs, restarts, rho)
}

/// Run E14 on the standard aneurysm: the degraded-frame latency sweep
/// at 0/1/2 dead render ranks, then the kill/checkpoint-replay cost.
pub fn run(size: Size, ranks: usize, frames: usize) -> FaultsResult {
    let geo = Arc::new(workloads::aneurysm(size));
    let ranks = ranks.max(3); // at least two worker ranks to kill
    let deadline = Duration::from_millis(60);

    let rows: Vec<DegradedRow> = (0..=2usize.min(ranks - 1))
        .map(|dead| degraded_frames(&geo, ranks, dead, frames, deadline))
        .collect();

    // Recovery cost: kill rank 1 at step 30 of a 60-step run with
    // checkpoints every 20 steps, against an identical fault-free run.
    let steps = 60;
    let (clean_secs, _, clean_rho) =
        recovery_workload(&geo, ranks, steps, FaultPlan::default(), "clean");
    let kill = FaultPlan::new(vec![FaultEvent {
        rank: 1,
        class: TagClass::Halo,
        step: 30,
        kind: FaultKind::KillRank,
    }]);
    let (recovery_secs, restarts, recovered_rho) =
        recovery_workload(&geo, ranks, steps, kill, "kill");
    let bit_exact = clean_rho == recovered_rho;

    // Export through the obs codec.
    let mut rec = Recorder::new();
    for row in &rows {
        let h = row.rtt_histogram();
        rec.record_secs(&format!("faults.rtt_p50.dead{}", row.dead_ranks), h.p50());
        rec.record_secs(&format!("faults.rtt_p95.dead{}", row.dead_ranks), h.p95());
        rec.count(
            &format!("faults.frames_degraded.dead{}", row.dead_ranks),
            row.frames_degraded,
        );
    }
    rec.record_secs("faults.recovery.clean", clean_secs);
    rec.record_secs("faults.recovery.killed", recovery_secs);
    rec.count("faults.recovery.restarts", restarts);
    rec.count("faults.recovery.bit_exact", u64::from(bit_exact));
    let report = rec.report();
    let path = workloads::out_dir().join("BENCH_faults.json");
    std::fs::write(&path, report.to_json()).expect("BENCH_faults.json written");

    FaultsResult {
        ranks,
        deadline,
        rows,
        steps,
        clean_secs,
        recovery_secs,
        restarts,
        bit_exact,
        report,
    }
}

impl fmt::Display for FaultsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Frame latency under dead render ranks ({} ranks, {} ms compositing deadline):",
            self.ranks,
            self.deadline.as_millis()
        )?;
        writeln!(
            f,
            "{:>11} {:>10} {:>10} {:>8} {:>10} {:>9}",
            "dead ranks", "p50", "p95", "frames", "degraded", "dropped"
        )?;
        for r in &self.rows {
            let h = r.rtt_histogram();
            writeln!(
                f,
                "{:>11} {:>10} {:>10} {:>8} {:>10} {:>9}",
                r.dead_ranks,
                fmt_secs(h.p50()),
                fmt_secs(h.p95()),
                r.frames,
                r.frames_degraded,
                r.dropped,
            )?;
        }
        writeln!(
            f,
            "recovery replay ({} steps, checkpoint every 20, kill rank 1 @ step 30):",
            self.steps
        )?;
        writeln!(
            f,
            "  fault-free {} vs killed+replayed {} ({:+.1}% overhead), {} restart(s), bit-exact: {}",
            fmt_secs(self.clean_secs),
            fmt_secs(self.recovery_secs),
            100.0 * (self.recovery_secs - self.clean_secs) / self.clean_secs.max(1e-12),
            self.restarts,
            if self.bit_exact { "yes" } else { "NO" },
        )?;
        writeln!(f, "JSON: out/BENCH_faults.json")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_frames_stay_bounded_and_recovery_is_bit_exact() {
        let r = run(Size::Tiny, 3, 2);
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0].frames_degraded, 0, "no faults, no degradation");
        for row in &r.rows[1..] {
            assert_eq!(
                row.frames_degraded,
                row.rtts.len() as u64,
                "every requested frame degrades with {} dead ranks",
                row.dead_ranks
            );
            assert!(row.dropped >= row.dead_ranks as u64);
        }
        assert_eq!(r.restarts, 1, "the kill forces exactly one restart");
        assert!(r.bit_exact, "checkpoint replay must be bit-exact");
        let back = ObsReport::from_json(&r.report.to_json()).expect("valid JSON");
        assert_eq!(back.counters["faults.recovery.bit_exact"], 1);
    }
}
