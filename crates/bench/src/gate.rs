//! Bench-regression gate: diff a fresh `out/BENCH_*.json` against its
//! blessed baseline under `benches/baselines/` and fail CI when a gated
//! metric regresses beyond tolerance.
//!
//! Every bench exports one [`ObsReport`] document: phase rows (timings
//! with percentile histograms) and counters. The gate flattens both
//! into named scalar metrics and classifies each *by name*:
//!
//! * **Exact** — correctness pins (`bit_identical`, site/job counts,
//!   injected parameters). Any difference fails.
//! * **Higher-better** — throughput/ratio counters (`jobs_per_hour`,
//!   `speedup`, `efficiency`, cache `hits`). Fails when the fresh value
//!   drops below `baseline × (1 − tol) − floor`; values where both
//!   sides sit under an absolute count floor are ignored (a tiny-size
//!   counter going 2 → 0 is noise, not a regression).
//! * **Lower-better** — timings (phase totals and percentiles). Fails
//!   when the fresh value exceeds `baseline × (1 + tol)`; values where
//!   both sides sit under an absolute floor are ignored (sub-floor
//!   timings are scheduler noise, not signal).
//! * **Info** — everything else: reported, never gated.
//!
//! Timing tolerances are deliberately generous (CI boxes are noisy
//! shared machines); the gate exists to catch step-function regressions
//! — a 2× slower kernel, a lost overlap, a correctness bit flip — not
//! 10% jitter. Baselines are re-blessed by running the same benches
//! with `CI_GATE_BLESS=1` (see the `ci-gate` binary).

use hemelb_obs::ObsReport;
use std::collections::BTreeMap;
use std::fmt;

/// Relative tolerance for higher-is-better counters (fraction of the
/// baseline the fresh value may lose).
pub const TOL_HIGHER: f64 = 0.5;
/// Absolute floor for higher-is-better counters: differences where both
/// sides are this small are noise (a tiny-size cache going 2 → 0 hits
/// is one scheduling accident, not a regression), mirroring the timing
/// floor on lower-is-better metrics.
pub const COUNT_FLOOR: f64 = 10.0;
/// Relative tolerance for lower-is-better timings (fraction of the
/// baseline the fresh value may gain).
pub const TOL_LOWER: f64 = 1.5;
/// Absolute floor (seconds) below which timing differences are noise.
pub const TIMING_FLOOR_SECS: f64 = 1e-3;

/// How one metric is gated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricClass {
    /// Must match the baseline exactly.
    Exact,
    /// Must not drop below `baseline × (1 − tol) − floor`; ignored while
    /// both sides are under `floor`.
    HigherBetter {
        /// Allowed relative loss.
        tol: f64,
        /// Absolute noise floor.
        floor: f64,
    },
    /// Must not exceed `baseline × (1 + tol)`; ignored while both sides
    /// are under `floor`.
    LowerBetter {
        /// Allowed relative gain.
        tol: f64,
        /// Absolute noise floor.
        floor: f64,
    },
    /// Reported but never gated.
    Info,
}

/// Classify a flattened metric by its name.
///
/// Correctness pins and injected parameters gate exactly; throughput
/// counters gate higher-is-better; phase timings gate lower-is-better.
/// Unrecognised names are informational.
pub fn classify(name: &str) -> MetricClass {
    let base = name.rsplit('.').next().unwrap_or(name);
    // Correctness pins and workload-identity counters: these describe
    // *what ran*, not how fast — any drift means the bench and the
    // baseline measured different things.
    if base.contains("bit_identical")
        || base.contains("bit_exact")
        || base.contains("within_band")
        || matches!(
            base,
            "sites" | "jobs" | "delay_ms" | "ranks" | "steps" | "frames" | "observers"
        )
    {
        return MetricClass::Exact;
    }
    if base.contains("jobs_per_hour")
        || base.contains("per_sec")
        || base.contains("speedup")
        || base.contains("efficiency")
        || base.contains("permille")
        || base == "hits"
    {
        return MetricClass::HigherBetter {
            tol: TOL_HIGHER,
            floor: COUNT_FLOOR,
        };
    }
    // Timings: phase-derived statistics and explicitly-named waits.
    if matches!(base, "total_secs" | "p50" | "p95" | "p99" | "max")
        || base.ends_with("_secs")
        || base.contains("wait")
        || base.contains("latency")
        || base.contains("rtt")
        || base.ends_with("_step")
    {
        return MetricClass::LowerBetter {
            tol: TOL_LOWER,
            floor: TIMING_FLOOR_SECS,
        };
    }
    MetricClass::Info
}

/// Flatten a bench report into named scalar metrics: every counter by
/// its own name, every phase as `<phase>.{total_secs,p50,p95,p99,max}`.
pub fn flatten(report: &ObsReport) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for (name, &v) in &report.counters {
        out.insert(name.clone(), v as f64);
    }
    for (name, p) in &report.phases {
        out.insert(format!("{name}.total_secs"), p.total_secs);
        out.insert(format!("{name}.p50"), p.hist.p50());
        out.insert(format!("{name}.p95"), p.hist.p95());
        out.insert(format!("{name}.p99"), p.hist.p99());
        out.insert(format!("{name}.max"), p.hist.max());
    }
    out
}

/// Verdict for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or informational).
    Pass,
    /// Outside tolerance — fails the gate.
    Regressed,
    /// Present in the fresh report only (informational).
    New,
    /// Gated metric present in the baseline only — fails the gate (the
    /// bench stopped measuring something it used to pin).
    Missing,
}

/// One row of the before/after comparison.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// Flattened metric name.
    pub name: String,
    /// Baseline value (`None` for new metrics).
    pub baseline: Option<f64>,
    /// Fresh value (`None` for missing metrics).
    pub current: Option<f64>,
    /// How the metric was gated.
    pub class: MetricClass,
    /// Outcome.
    pub verdict: Verdict,
}

/// The gate's comparison of one bench report against its baseline.
#[derive(Debug, Clone)]
pub struct GateResult {
    /// Report label (e.g. `farm` for `BENCH_farm.json`).
    pub label: String,
    /// Every metric, baseline-name order then new metrics.
    pub diffs: Vec<MetricDiff>,
}

impl GateResult {
    /// Names of the metrics that fail the gate.
    pub fn regressions(&self) -> Vec<&str> {
        self.diffs
            .iter()
            .filter(|d| matches!(d.verdict, Verdict::Regressed | Verdict::Missing))
            .map(|d| d.name.as_str())
            .collect()
    }

    /// Whether the report passes.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty()
    }
}

fn judge(class: MetricClass, baseline: f64, current: f64) -> Verdict {
    match class {
        MetricClass::Exact => {
            if baseline.to_bits() == current.to_bits() {
                Verdict::Pass
            } else {
                Verdict::Regressed
            }
        }
        MetricClass::HigherBetter { tol, floor } => {
            if baseline.max(current) < floor || current >= baseline * (1.0 - tol) - floor {
                Verdict::Pass
            } else {
                Verdict::Regressed
            }
        }
        MetricClass::LowerBetter { tol, floor } => {
            if baseline.max(current) < floor || current <= baseline * (1.0 + tol) + floor {
                Verdict::Pass
            } else {
                Verdict::Regressed
            }
        }
        MetricClass::Info => Verdict::Pass,
    }
}

/// Compare a fresh report against its baseline.
pub fn compare(label: &str, baseline: &ObsReport, current: &ObsReport) -> GateResult {
    let base = flatten(baseline);
    let cur = flatten(current);
    let mut diffs = Vec::new();
    for (name, &b) in &base {
        let class = classify(name);
        match cur.get(name) {
            Some(&c) => diffs.push(MetricDiff {
                name: name.clone(),
                baseline: Some(b),
                current: Some(c),
                class,
                verdict: judge(class, b, c),
            }),
            None => diffs.push(MetricDiff {
                name: name.clone(),
                baseline: Some(b),
                current: None,
                class,
                verdict: if class == MetricClass::Info {
                    Verdict::Pass
                } else {
                    Verdict::Missing
                },
            }),
        }
    }
    for (name, &c) in &cur {
        if !base.contains_key(name) {
            diffs.push(MetricDiff {
                name: name.clone(),
                baseline: None,
                current: Some(c),
                class: classify(name),
                verdict: Verdict::New,
            });
        }
    }
    GateResult {
        label: label.to_string(),
        diffs,
    }
}

impl fmt::Display for GateResult {
    /// Before/after table: gated rows always, informational rows only
    /// when they changed name-set (new/missing).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== bench gate: {} ({} metrics, {} gated) ===",
            self.label,
            self.diffs.len(),
            self.diffs
                .iter()
                .filter(|d| d.class != MetricClass::Info)
                .count()
        )?;
        writeln!(
            f,
            "{:<44} {:>14} {:>14} {:>8}  verdict",
            "metric", "baseline", "current", "delta"
        )?;
        for d in &self.diffs {
            let gated = d.class != MetricClass::Info;
            let changed_set = matches!(d.verdict, Verdict::New | Verdict::Missing);
            if !gated && !changed_set {
                continue;
            }
            let fmt_v = |v: Option<f64>| match v {
                Some(x) => format!("{x:.6}"),
                None => "-".to_string(),
            };
            let delta = match (d.baseline, d.current) {
                (Some(b), Some(c)) if b != 0.0 => format!("{:+.1}%", (c - b) / b * 100.0),
                _ => "-".to_string(),
            };
            writeln!(
                f,
                "{:<44} {:>14} {:>14} {:>8}  {}",
                d.name,
                fmt_v(d.baseline),
                fmt_v(d.current),
                delta,
                match d.verdict {
                    Verdict::Pass => "ok",
                    Verdict::Regressed => "REGRESSED",
                    Verdict::New => "new",
                    Verdict::Missing => "MISSING",
                }
            )?;
        }
        let reg = self.regressions();
        if reg.is_empty() {
            writeln!(f, "PASS: {}", self.label)
        } else {
            writeln!(f, "FAIL: {} — regressed: {}", self.label, reg.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemelb_obs::Recorder;

    fn sample() -> ObsReport {
        let mut rec = Recorder::new();
        rec.count("farm.jobs", 8);
        rec.count("farm.speedup_permille", 2100);
        rec.count("farm.kill_replay_bit_exact", 1);
        rec.count("farm.note", 42); // unrecognised → Info
        for _ in 0..4 {
            rec.record_secs("farm.s4.latency", 0.25);
        }
        rec.report()
    }

    #[test]
    fn identical_reports_pass() {
        let r = sample();
        let g = compare("farm", &r, &r);
        assert!(g.passed(), "{g}");
    }

    #[test]
    fn degraded_counter_fails_and_is_named() {
        let base = sample();
        let mut cur = sample();
        // Below baseline × (1 − 0.5) ⇒ regression.
        cur.counters.insert("farm.speedup_permille".into(), 900);
        let g = compare("farm", &base, &cur);
        assert!(!g.passed());
        assert_eq!(g.regressions(), ["farm.speedup_permille"]);
        assert!(g.to_string().contains("farm.speedup_permille"), "{g}");
        assert!(g.to_string().contains("REGRESSED"), "{g}");
    }

    #[test]
    fn exact_metrics_tolerate_nothing() {
        let base = sample();
        let mut cur = sample();
        cur.counters.insert("farm.kill_replay_bit_exact".into(), 0);
        cur.counters.insert("farm.jobs".into(), 7);
        let g = compare("farm", &base, &cur);
        assert_eq!(g.regressions(), ["farm.jobs", "farm.kill_replay_bit_exact"]);
    }

    #[test]
    fn timings_gate_generously_with_a_noise_floor() {
        let base = sample();
        let mut cur = sample();
        for p in cur.phases.values_mut() {
            p.total_secs *= 2.0; // within 1 + TOL_LOWER
        }
        assert!(compare("farm", &base, &cur).passed());
        for p in cur.phases.values_mut() {
            p.total_secs *= 2.0; // now 4×: outside
        }
        let g = compare("farm", &base, &cur);
        assert!(g
            .regressions()
            .iter()
            .any(|n| n.starts_with("farm.s4.latency")));

        // Sub-millisecond timings never gate, however large the ratio.
        let mut tiny_base = ObsReport::default();
        let mut tiny_cur = ObsReport::default();
        let mut rec = Recorder::new();
        rec.record_secs("blip", 10e-6);
        tiny_base.merge(&rec.report());
        let mut rec = Recorder::new();
        rec.record_secs("blip", 900e-6);
        tiny_cur.merge(&rec.report());
        assert!(compare("t", &tiny_base, &tiny_cur).passed());
    }

    #[test]
    fn tiny_counters_do_not_flap_the_gate() {
        // A tiny-size run's cache going 2 → 0 hits is one scheduling
        // accident; without an absolute floor this ratio (−100%) failed
        // the gate on noise.
        let mut base = ObsReport::default();
        let mut cur = ObsReport::default();
        base.counters.insert("gw.cache.hits".into(), 2);
        cur.counters.insert("gw.cache.hits".into(), 0);
        assert!(compare("gw", &base, &cur).passed());
        // Just under the floor in both directions is equally quiet.
        base.counters.insert("gw.cache.hits".into(), 0);
        cur.counters.insert("gw.cache.hits".into(), 9);
        assert!(compare("gw", &base, &cur).passed());
        // But a real collapse on a large counter still fails: the floor
        // is absolute, not a blanket pardon.
        base.counters.insert("gw.cache.hits".into(), 10_000);
        cur.counters.insert("gw.cache.hits".into(), 100);
        let g = compare("gw", &base, &cur);
        assert_eq!(g.regressions(), ["gw.cache.hits"]);
    }

    #[test]
    fn info_metrics_never_gate_but_missing_gated_metrics_do() {
        let base = sample();
        let mut cur = sample();
        cur.counters.insert("farm.note".into(), 7); // Info: any change ok
        assert!(compare("farm", &base, &cur).passed());
        cur.counters.remove("farm.kill_replay_bit_exact");
        let g = compare("farm", &base, &cur);
        assert_eq!(g.regressions(), ["farm.kill_replay_bit_exact"]);
        assert!(g.to_string().contains("MISSING"), "{g}");
    }

    #[test]
    fn classification_covers_the_exported_names() {
        assert_eq!(
            classify("overlap.r2.clean.bit_identical"),
            MetricClass::Exact
        );
        assert_eq!(classify("overlap.sites"), MetricClass::Exact);
        assert!(matches!(
            classify("farm.s4.jobs_per_hour_milli"),
            MetricClass::HigherBetter { .. }
        ));
        assert!(matches!(
            classify("overlap.r2.clean.efficiency_permille"),
            MetricClass::HigherBetter { .. }
        ));
        assert!(matches!(
            classify("overlap.r2.clean.sync_step.total_secs"),
            MetricClass::LowerBetter { .. }
        ));
        assert!(matches!(
            classify("gateway.frame_rtt.p95"),
            MetricClass::LowerBetter { .. }
        ));
        assert!(matches!(
            classify("kernel.soa_simd.site_updates_per_sec"),
            MetricClass::HigherBetter { .. }
        ));
        assert_eq!(classify("kernel.lanes"), MetricClass::Info);
        // The projection validation pin: a boolean that must stay 1.
        assert_eq!(
            classify("projection.validation.within_band"),
            MetricClass::Exact
        );
    }
}
