//! `reproduce` — regenerate every table and figure of the paper.
//!
//! ```text
//! reproduce [table1|fig1|fig2|fig3|fig4a|fig4b|scaling|preprocessing|multires|repartition|obs|render|faults|adaptive|kernel|overlap|gateway|farm|projection|ablation|all]
//!           [--size tiny|small|medium] [--ranks N]
//! ```
//!
//! Results print as paper-style tables; figure experiments also write
//! PPM images under `./out/`. `EXPERIMENTS.md` records a reference run.

use hemelb_bench::workloads::Size;
use hemelb_bench::{
    ablation, adaptive, extract, farm, faults, fig1, fig2, fig3, fig4, gateway, kernel, multires,
    obs, overlap, preprocess, projection, render, repartition, scaling, table1,
};

struct Args {
    what: String,
    size: Size,
    ranks: usize,
}

fn parse_args() -> Args {
    let mut what = "all".to_string();
    let mut size = Size::Small;
    let mut ranks = 8usize;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--size" => {
                i += 1;
                size = match argv.get(i).map(String::as_str) {
                    Some("tiny") => Size::Tiny,
                    Some("small") => Size::Small,
                    Some("medium") => Size::Medium,
                    other => {
                        eprintln!("unknown size {other:?} (tiny|small|medium)");
                        std::process::exit(2);
                    }
                };
            }
            "--ranks" => {
                i += 1;
                ranks = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--ranks needs a number");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [table1|fig1|fig2|fig3|fig4a|fig4b|scaling|preprocessing|multires|repartition|obs|render|faults|adaptive|kernel|overlap|gateway|farm|projection|ablation|all] [--size tiny|small|medium] [--ranks N]"
                );
                std::process::exit(0);
            }
            w => what = w.to_string(),
        }
        i += 1;
    }
    Args { what, size, ranks }
}

fn main() {
    let args = parse_args();
    let run_all = args.what == "all";
    let mut ran = false;

    if run_all || args.what == "table1" {
        ran = true;
        println!("=== E1: Table I ===");
        let params = table1::Table1Params {
            size: args.size,
            ranks: args.ranks,
            ..Default::default()
        };
        println!("{}", table1::run(params));
    }
    if run_all || args.what == "fig1" {
        ran = true;
        println!("=== E2: Fig. 1 (sparse storage) ===");
        let sizes: &[Size] = match args.size {
            Size::Tiny => &[Size::Tiny],
            Size::Small => &[Size::Tiny, Size::Small],
            Size::Medium => &[Size::Tiny, Size::Small, Size::Medium],
        };
        println!("{}", fig1::run(sizes));
    }
    if run_all || args.what == "fig2" {
        ran = true;
        println!("=== E3: Fig. 2 (closed-loop steering) ===");
        let configs = [
            (2usize, (64u32, 48u32)),
            (args.ranks.max(2), (128, 96)),
            (args.ranks.max(2), (256, 192)),
        ];
        println!("{}", fig2::run(args.size, &configs, 5));
    }
    if run_all || args.what == "fig3" {
        ran = true;
        println!("=== E4: Fig. 3 (post-processing pipeline) ===");
        println!("{}", fig3::run(args.size, 3, (128, 96)));
    }
    if run_all || args.what == "fig4a" {
        ran = true;
        println!("=== E5: Fig. 4a (volume rendering) ===");
        println!("{}", fig4::run_4a(args.size, args.ranks, 512, 384));
    }
    if run_all || args.what == "fig4b" {
        ran = true;
        println!("=== E6: Fig. 4b (streamlines) ===");
        println!("{}", fig4::run_4b(args.size, args.ranks, 64, 512, 384));
    }
    if run_all || args.what == "lic" {
        ran = true;
        println!("=== E1-aux: LIC slice figure ===");
        println!("{}", fig4::run_lic(args.size, args.ranks.min(4)));
    }
    if run_all || args.what == "scaling" {
        ran = true;
        println!("=== E7: strong scaling + 32k projection ===");
        println!("{}", scaling::run(args.size, &[1, 2, 4, 8, 16], 10));
    }
    if run_all || args.what == "preprocessing" {
        ran = true;
        println!("=== E8: two-level read, reading-core sweep ===");
        println!("{}", preprocess::run(args.size, 16, &[1, 2, 4, 8, 16]));
    }
    if run_all || args.what == "multires" {
        ran = true;
        println!("=== E9: multi-resolution octree ===");
        println!("{}", multires::run(args.size));
    }
    if run_all || args.what == "repartition" {
        ran = true;
        println!("=== E10: vis-aware repartitioning ===");
        println!("{}", repartition::run(args.size, args.ranks));
    }
    if run_all || args.what == "extract" {
        ran = true;
        println!("=== E11: in situ feature extraction (isosurface + vortices) ===");
        println!("{}", extract::run(args.size));
    }
    if run_all || args.what == "obs" {
        ran = true;
        println!("=== E12: observability (phase timings, wait by class, steering RTT) ===");
        println!("{}", obs::run(args.size, args.ranks, 5));
    }
    if run_all || args.what == "render" {
        ran = true;
        println!("=== E13: in situ rendering (macrocell skipping + sparse compositing) ===");
        let (w, h) = match args.size {
            Size::Tiny => (160u32, 120u32),
            Size::Small => (320, 240),
            Size::Medium => (512, 384),
        };
        println!("{}", render::run(args.size, args.ranks.clamp(2, 8), w, h));
    }
    if run_all || args.what == "faults" {
        ran = true;
        println!("=== E14: fault injection (degraded frames + recovery replay) ===");
        println!("{}", faults::run(args.size, args.ranks.clamp(3, 8), 5));
    }
    if run_all || args.what == "adaptive" {
        ran = true;
        println!("=== E15: adaptive load balancing (measure -> plan -> gate -> migrate) ===");
        println!("{}", adaptive::run(args.size, args.ranks.clamp(2, 8)));
    }
    if run_all || args.what == "kernel" {
        ran = true;
        println!("=== E16: kernel memory-layout ablation (legacy vs SoA vs SoA-SIMD) ===");
        let steps = match args.size {
            Size::Tiny => 50,
            Size::Small => 40,
            Size::Medium => 10,
        };
        println!("{}", kernel::run(args.size, steps));
    }
    if run_all || args.what == "overlap" {
        ran = true;
        println!("=== E18: communication/computation overlap (sync vs frontier-first) ===");
        let steps = match args.size {
            Size::Tiny => 4,
            Size::Small => 8,
            Size::Medium => 6,
        };
        println!("{}", overlap::run(args.size, steps, args.ranks.clamp(2, 8)));
    }
    if run_all || args.what == "gateway" {
        ran = true;
        println!("=== E17: steering gateway load test (fan-out + frame cache) ===");
        let (observers, frames) = match args.size {
            Size::Tiny => (120, 5),
            Size::Small => (200, 8),
            Size::Medium => (400, 10),
        };
        println!(
            "{}",
            gateway::run(args.size, args.ranks.clamp(2, 8), observers, frames)
        );
    }
    if run_all || args.what == "farm" {
        ran = true;
        println!("=== E19: simulation farm (sweep saturation vs sequential baseline) ===");
        println!("{}", farm::run(args.size, args.ranks.clamp(2, 8)));
    }
    if run_all || args.what == "projection" {
        ran = true;
        println!("=== E20: calibrated cost model + 1k-32k rank projection ===");
        let steps = match args.size {
            Size::Tiny => 4,
            Size::Small => 8,
            Size::Medium => 4,
        };
        println!(
            "{}",
            projection::run(args.size, steps, args.ranks.clamp(2, 16))
        );
    }
    if run_all || args.what == "ablation" {
        ran = true;
        println!("=== A1: resolution convergence (mesh refinement pay-off) ===");
        let spacings: &[f64] = match args.size {
            Size::Tiny => &[1.0, 0.5],
            _ => &[1.0, 0.5, 0.25],
        };
        println!("{}", ablation::run(spacings));
    }

    if !ran {
        eprintln!("unknown experiment '{}'; try --help", args.what);
        std::process::exit(2);
    }
}
