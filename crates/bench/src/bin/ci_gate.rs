//! `ci-gate` — the bench-regression gate.
//!
//! ```text
//! ci-gate [--baselines DIR] [--out DIR] [labels...]
//! ```
//!
//! For each label (default: every `BENCH_*.json` present under the
//! output directory), compares `out/BENCH_<label>.json` against
//! `benches/baselines/BENCH_<label>.json` (see
//! [`hemelb_bench::gate`] for metric classes and tolerances) and prints
//! a before/after table. Exits nonzero — naming the regressed metrics —
//! when any gated metric fails.
//!
//! With `CI_GATE_BLESS=1`, instead *re-blesses* the baselines: every
//! fresh report under `out/` is copied over its baseline, so run the
//! benches first at the same sizes CI uses, review the diff, and commit
//! the new baselines together with the change that moved them.

use hemelb_bench::gate;
use hemelb_obs::ObsReport;
use std::path::{Path, PathBuf};

struct Args {
    baselines: PathBuf,
    out: PathBuf,
    labels: Vec<String>,
}

fn parse_args() -> Args {
    let mut baselines = PathBuf::from("benches/baselines");
    let mut out = PathBuf::from("out");
    let mut labels = Vec::new();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--baselines" => {
                i += 1;
                baselines = PathBuf::from(argv.get(i).unwrap_or_else(|| {
                    eprintln!("--baselines needs a directory");
                    std::process::exit(2);
                }));
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(argv.get(i).unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: ci-gate [--baselines DIR] [--out DIR] [labels...]\n\
                     CI_GATE_BLESS=1 copies fresh out/BENCH_*.json over the baselines instead"
                );
                std::process::exit(0);
            }
            l => labels.push(l.to_string()),
        }
        i += 1;
    }
    Args {
        baselines,
        out,
        labels,
    }
}

/// Labels of every `BENCH_<label>.json` in `dir`, sorted.
fn discover(dir: &Path) -> Vec<String> {
    let mut labels: Vec<String> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            Some(
                name.strip_prefix("BENCH_")?
                    .strip_suffix(".json")?
                    .to_string(),
            )
        })
        .collect();
    labels.sort();
    labels
}

fn load(path: &Path) -> Result<ObsReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    ObsReport::from_json(&text).map_err(|e| format!("{path:?} is not a bench report: {e:?}"))
}

fn main() {
    let args = parse_args();
    let bless = std::env::var("CI_GATE_BLESS").is_ok_and(|v| v == "1");
    let labels = if args.labels.is_empty() {
        let found = discover(&args.out);
        if found.is_empty() {
            eprintln!(
                "no BENCH_*.json under {:?} — run the benches first (e.g. \
                 `cargo run --release -p hemelb-bench --bin reproduce -- farm --size tiny`)",
                args.out
            );
            std::process::exit(2);
        }
        found
    } else {
        args.labels.clone()
    };

    if bless {
        std::fs::create_dir_all(&args.baselines).expect("baselines directory created");
        for label in &labels {
            let fresh = args.out.join(format!("BENCH_{label}.json"));
            let blessed = args.baselines.join(format!("BENCH_{label}.json"));
            // Parse before blessing: a truncated report must not
            // become the baseline everything else is judged against.
            if let Err(e) = load(&fresh) {
                eprintln!("refusing to bless {label}: {e}");
                std::process::exit(2);
            }
            std::fs::copy(&fresh, &blessed).expect("baseline copied");
            println!("blessed {blessed:?} from {fresh:?}");
        }
        return;
    }

    let mut failed: Vec<String> = Vec::new();
    for label in &labels {
        let fresh_path = args.out.join(format!("BENCH_{label}.json"));
        let base_path = args.baselines.join(format!("BENCH_{label}.json"));
        let fresh = match load(&fresh_path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{label}: {e} — run the matching bench before gating");
                failed.push(format!("{label} (no fresh report)"));
                continue;
            }
        };
        let base = match load(&base_path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!(
                    "{label}: {e} — bless a baseline first (CI_GATE_BLESS=1 ci-gate {label})"
                );
                failed.push(format!("{label} (no baseline)"));
                continue;
            }
        };
        let result = gate::compare(label, &base, &fresh);
        print!("{result}");
        for name in result.regressions() {
            failed.push(format!("{label}:{name}"));
        }
    }

    if failed.is_empty() {
        println!(
            "bench gate: all {} report(s) within tolerance",
            labels.len()
        );
    } else {
        eprintln!(
            "bench gate FAILED — regressed metrics: {}",
            failed.join(", ")
        );
        std::process::exit(1);
    }
}
