//! Experiment E2 — the paper's **Fig. 1**: the LB method uses a regular
//! lattice, stored sparsely.
//!
//! The figure itself is a diagram; the quantitative content behind it is
//! the *sparsity* of vascular geometry in its bounding box and the
//! memory the sparse (indirect-addressing) representation saves over a
//! dense array — the raison d'être of "sparse geometry" in the title.

use crate::workloads::{self, Size};
use hemelb_geometry::blocks::BlockDecomposition;
use std::fmt;

/// One resolution's row.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Lattice spacing.
    pub dx: f64,
    /// Bounding-box cells.
    pub box_cells: usize,
    /// Fluid sites.
    pub fluid_sites: usize,
    /// Fluid fraction.
    pub fluid_fraction: f64,
    /// Sparse storage bytes (sites + index grid).
    pub sparse_bytes: usize,
    /// Dense storage bytes (full box of distributions).
    pub dense_bytes: usize,
    /// Non-empty 8³ blocks over total blocks.
    pub nonempty_blocks: (usize, usize),
}

/// The sweep over resolutions.
pub struct Fig1Result {
    /// Rows, coarse to fine.
    pub rows: Vec<Fig1Row>,
}

/// Bytes per dense cell: 2×Q f64 distributions (double-buffered D3Q15)
/// plus flags.
const DENSE_BYTES_PER_CELL: usize = 2 * 15 * 8 + 8;

/// Run E2 over a set of resolutions.
pub fn run(sizes: &[Size]) -> Fig1Result {
    let rows = sizes
        .iter()
        .map(|&size| {
            let geo = workloads::aneurysm(size);
            let (sparse, dense) = geo.storage_comparison(DENSE_BYTES_PER_CELL);
            // Sparse per-site storage also needs distributions:
            let sparse_full = sparse + geo.fluid_count() * 2 * 15 * 8;
            let dec = BlockDecomposition::build(&geo, 8);
            Fig1Row {
                dx: size.dx(),
                box_cells: geo.shape().iter().product(),
                fluid_sites: geo.fluid_count(),
                fluid_fraction: geo.fluid_fraction(),
                sparse_bytes: sparse_full,
                dense_bytes: dense,
                nonempty_blocks: (dec.nonempty_block_count(), dec.block_count()),
            }
        })
        .collect();
    Fig1Result { rows }
}

impl fmt::Display for Fig1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 1 (quantified): sparse regular lattice vs dense storage — aneurysm vessel"
        )?;
        writeln!(
            f,
            "{:>6} {:>12} {:>12} {:>9} {:>12} {:>12} {:>8} {:>14}",
            "dx", "box cells", "fluid", "fluid %", "sparse", "dense", "saving", "blocks (≠0/all)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6.2} {:>12} {:>12} {:>8.1}% {:>12} {:>12} {:>7.1}x {:>8}/{}",
                r.dx,
                r.box_cells,
                r.fluid_sites,
                r.fluid_fraction * 100.0,
                workloads::fmt_bytes(r.sparse_bytes as u64),
                workloads::fmt_bytes(r.dense_bytes as u64),
                r.dense_bytes as f64 / r.sparse_bytes as f64,
                r.nonempty_blocks.0,
                r.nonempty_blocks.1,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_storage_wins_at_every_resolution() {
        let result = run(&[Size::Tiny, Size::Small]);
        for r in &result.rows {
            assert!(r.fluid_fraction < 0.5, "vascular geometry is sparse");
            assert!(
                r.sparse_bytes < r.dense_bytes,
                "sparse {} !< dense {}",
                r.sparse_bytes,
                r.dense_bytes
            );
        }
        // Refinement keeps the fluid fraction roughly constant while the
        // absolute counts grow ~8×.
        let a = &result.rows[0];
        let b = &result.rows[1];
        assert!(b.fluid_sites > 5 * a.fluid_sites);
        assert!((a.fluid_fraction - b.fluid_fraction).abs() < 0.15);
    }
}
