//! Experiment E12 — the observability report: per-phase timings of the
//! full steering loop (collide/stream/halo-wait, render/composite,
//! steering poll/broadcast/ship), per-rank and fleet-aggregated, plus
//! per-tag-class communication wait time and the client-side steering
//! round-trip latency distribution.
//!
//! This is the co-design instrument of the paper in miniature: before
//! deciding where in situ work may run, you need to know where each
//! rank's step time actually goes and how long the steering loop takes
//! end to end.

use crate::workloads::{self, Size};
use hemelb_core::SolverConfig;
use hemelb_obs::{fmt_secs, ObsReport};
use hemelb_parallel::{run_spmd_opts, SpmdOptions};
use hemelb_steering::{
    duplex_pair, run_closed_loop, ClosedLoopConfig, SteeringClient, SteeringCommand, Transport,
};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Everything E12 measures in one closed-loop run.
pub struct ObsResult {
    /// Ranks in the run.
    pub ranks: usize,
    /// Simulation steps completed.
    pub steps: u64,
    /// Frames the client requested.
    pub frames: usize,
    /// Per-rank observability reports (rank-stamped).
    pub per_rank: Vec<ObsReport>,
    /// Fleet-wide aggregate (phases and counters summed over ranks).
    pub merged: ObsReport,
    /// Communication wait seconds by tag class, summed over ranks.
    pub wait_by_class: Vec<(&'static str, f64)>,
    /// The steering client's own report (`steer.rtt` = end-to-end
    /// round-trip latency).
    pub client: ObsReport,
}

/// Run E12: drive a closed loop on `ranks` ranks, with a client issuing
/// `frames` frame requests, and collect every layer's observability
/// report.
pub fn run(size: Size, ranks: usize, frames: usize) -> ObsResult {
    let geo = workloads::aneurysm(size);
    let (client_end, server_end) = duplex_pair();
    let server_slot = Arc::new(Mutex::new(Some(Box::new(server_end) as Box<dyn Transport>)));
    let geo2 = geo.clone();

    let client_thread = std::thread::spawn(move || {
        let client = SteeringClient::new(Box::new(client_end));
        for _ in 0..frames {
            client.request_frame().expect("frame round trip");
        }
        client.send(&SteeringCommand::Terminate).ok();
        while client.recv().is_ok() {}
        client.obs_report()
    });

    let ranks = ranks.max(2);
    let output = run_spmd_opts(ranks, SpmdOptions::default(), move |comm| {
        let transport = if comm.is_master() {
            server_slot.lock().take()
        } else {
            None
        };
        run_closed_loop(
            geo2.clone(),
            workloads::slab_owner(&geo2, comm.size()),
            SolverConfig::pressure_driven(1.01, 0.99),
            comm,
            transport,
            &ClosedLoopConfig {
                max_steps: u64::MAX / 2,
                image: (64, 48),
                initial_vis_rate: u32::MAX, // frames only on request
                steps_per_cycle: 5,
                vis_aware_repartition: false,
                ..Default::default()
            },
        )
        .expect("closed loop")
    });
    let client = client_thread.join().expect("client thread");

    ObsResult {
        ranks,
        steps: output.results[0].steps_done,
        frames,
        merged: output.merged_obs(),
        wait_by_class: output.summary.wait_by_class(),
        per_rank: output.obs,
        client,
    }
}

impl ObsResult {
    /// The fleet-wide report as JSON (machine-readable export).
    pub fn json(&self) -> String {
        self.merged.to_json()
    }
}

impl fmt::Display for ObsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Observability: {} ranks, {} steps, {} requested frames",
            self.ranks, self.steps, self.frames
        )?;
        writeln!(f, "\nPer-phase timings, summed over ranks:")?;
        write!(f, "{}", self.merged.render_table())?;

        writeln!(f, "\nPer-rank phase totals:")?;
        let phases = [
            "lb.collide",
            "lb.stream",
            "lb.halo-wait",
            "vis.render",
            "vis.composite",
        ];
        write!(f, "{:>6}", "rank")?;
        for p in phases {
            write!(f, " {p:>14}")?;
        }
        writeln!(f)?;
        for report in &self.per_rank {
            write!(
                f,
                "{:>6}",
                report.rank.map_or_else(|| "?".into(), |r| r.to_string())
            )?;
            for p in phases {
                let total = report.phases.get(p).map_or(0.0, |s| s.total_secs);
                write!(f, " {:>14}", fmt_secs(total))?;
            }
            writeln!(f)?;
        }

        writeln!(f, "\nCommunication wait by tag class (all ranks):")?;
        for (label, secs) in &self.wait_by_class {
            writeln!(f, "  {:>12}: {}", label, fmt_secs(*secs))?;
        }

        match self.client.phases.get("steer.rtt") {
            Some(rtt) => writeln!(
                f,
                "\nSteering round trip: {} rounds, p50 {}, p95 {}, p99 {}, max {}",
                rtt.calls,
                fmt_secs(rtt.hist.p50()),
                fmt_secs(rtt.hist.p95()),
                fmt_secs(rtt.hist.p99()),
                fmt_secs(rtt.hist.max()),
            )?,
            None => writeln!(f, "\nSteering round trip: no rounds recorded")?,
        }
        writeln!(f, "\nJSON: {}", self.json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observability_report_covers_every_layer() {
        let r = run(Size::Tiny, 2, 3);
        // The LB phases, the vis phases and the steering phases all show
        // up with real time in them.
        for phase in [
            "lb.collide",
            "lb.stream",
            "lb.halo-wait",
            "sim.step",
            "vis.render",
            "vis.composite",
            "steer.broadcast",
        ] {
            let p = r
                .merged
                .phases
                .get(phase)
                .unwrap_or_else(|| panic!("missing phase {phase}"));
            assert!(p.calls > 0, "{phase} never ran");
        }
        assert!(r.merged.phases["lb.collide"].total_secs > 0.0);
        // The client's RTT histogram saw each requested frame.
        assert!(r.client.phases["steer.rtt"].calls >= 3);
        // Halo traffic implies nonzero recorded wait classes.
        assert!(r.wait_by_class.iter().any(|(l, _)| *l == "halo"));
        // The JSON export round-trips.
        let parsed = ObsReport::from_json(&r.json()).expect("valid JSON");
        assert_eq!(parsed.phases.len(), r.merged.phases.len());
    }
}
