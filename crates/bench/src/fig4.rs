//! Experiments E5/E6 — the paper's **Fig. 4**: (a) a volume-rendered
//! aneurysm data set, (b) streamline visualisation of the same flow.
//!
//! The runs regenerate both panels as PPM images from a live solver
//! field, exercising the full distributed path: k-way decomposition →
//! per-rank brick rendering → binary-swap compositing (4a), and
//! distributed streamline tracing with hand-off → gather → projection
//! (4b). Both also report the communication the frame cost.

use crate::workloads::{self, Size};
use hemelb_geometry::Vec3;
use hemelb_insitu::camera::Camera;
use hemelb_insitu::compositing::binary_swap;
use hemelb_insitu::field::{SampledField, Scalar};
use hemelb_insitu::image::Image;
use hemelb_insitu::lines::{stitch_segments, trace_distributed, TraceConfig};
use hemelb_insitu::transfer::TransferFunction;
use hemelb_insitu::volume::{render_brick, Brick};
use hemelb_parallel::{run_spmd_with_stats, TagClass, WireReader, WireWriter};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Result of a Fig. 4 render.
pub struct Fig4Result {
    /// Panel name ("4a" / "4b").
    pub panel: &'static str,
    /// Where the PPM was written.
    pub path: PathBuf,
    /// Fraction of pixels covered by the vessel.
    pub coverage: f64,
    /// Visualisation data bytes (hand-off; 0 for volume rendering).
    pub data_bytes: u64,
    /// Compositing bytes.
    pub composite_bytes: u64,
    /// Streamlines traced (panel b only).
    pub lines: usize,
}

fn camera_for(geo: &hemelb_geometry::SparseGeometry, width: u32, height: u32) -> Camera {
    let s = geo.shape();
    Camera::framing(
        Vec3::ZERO,
        Vec3::new(s[0] as f64, s[1] as f64, s[2] as f64),
        Vec3::new(0.15, -1.0, 0.25),
        width,
        height,
    )
}

/// E5: distributed volume rendering of the aneurysm flow → `fig4a.ppm`.
pub fn run_4a(size: Size, ranks: usize, width: u32, height: u32) -> Fig4Result {
    let geo = workloads::aneurysm(size);
    let snap = workloads::developed_flow(&geo, 300);
    let owner = Arc::new(workloads::kway_owner(&geo, ranks));
    let cam = camera_for(&geo, width, height);
    let geo2 = geo.clone();
    let snap2 = snap.clone();

    let out = run_spmd_with_stats(ranks, move |comm| {
        let mine: Vec<u32> = (0..geo2.fluid_count() as u32)
            .filter(|&s| owner[s as usize] == comm.rank())
            .collect();
        let field = SampledField::new(&geo2, &snap2);
        let (lo, hi) = field.scalar_range(Scalar::Speed);
        let tf = TransferFunction::heat(lo, hi.max(lo + 1e-9));
        let partial = match Brick::from_sites(&geo2, &snap2, Scalar::Speed, &mine) {
            Some(brick) => render_brick(&brick, &cam, &tf, 0.4),
            None => hemelb_insitu::image::PartialImage::new(cam.width, cam.height),
        };
        binary_swap(comm, partial).unwrap()
    });
    let image = out.results[0].as_ref().expect("master image").clone();
    let path = workloads::out_dir().join("fig4a_volume_rendering.ppm");
    image.write_ppm(&path).expect("PPM written");
    Fig4Result {
        panel: "4a",
        path,
        coverage: image.coverage(),
        data_bytes: out.summary.total.bytes(TagClass::Visualisation),
        composite_bytes: out.summary.total.bytes(TagClass::Compositing),
        lines: 0,
    }
}

/// E6: distributed streamline tracing → projected line render →
/// `fig4b_streamlines.ppm`.
pub fn run_4b(size: Size, ranks: usize, n_seeds: usize, width: u32, height: u32) -> Fig4Result {
    let geo = workloads::aneurysm(size);
    let snap = workloads::developed_flow(&geo, 300);
    let owner = Arc::new(workloads::kway_owner(&geo, ranks));
    let seeds = Arc::new(workloads::inlet_seeds(&geo, n_seeds));
    let cam = camera_for(&geo, width, height);
    let geo2 = geo.clone();
    let snap2 = snap.clone();
    let n_lines = seeds.len();

    let out = run_spmd_with_stats(ranks, move |comm| {
        let field = SampledField::new(&geo2, &snap2);
        let cfg = TraceConfig {
            h: 0.4,
            max_steps: 4000,
            min_speed: 1e-9,
        };
        let (segments, _) = trace_distributed(comm, &geo2, &field, &owner, &seeds, &cfg).unwrap();
        // Gather segments at rank 0 (encode: id, start, points).
        let mut w = WireWriter::new();
        w.put_usize(segments.len());
        for (id, start, verts) in &segments {
            w.put_u32(*id);
            w.put_u32(*start);
            w.put_usize(verts.len());
            for v in verts {
                w.put(&v.to_array());
            }
        }
        let gathered = comm.gather(0, w.finish()).unwrap();
        gathered.map(|parts| {
            let mut all = Vec::new();
            for part in parts {
                let mut r = WireReader::new(part);
                let n = r.get_usize().unwrap();
                for _ in 0..n {
                    let id = r.get_u32().unwrap();
                    let start = r.get_u32().unwrap();
                    let m = r.get_usize().unwrap();
                    let mut verts = Vec::with_capacity(m);
                    for _ in 0..m {
                        let a: [f64; 3] = r.get().unwrap();
                        verts.push(Vec3::from(a));
                    }
                    all.push((id, start, verts));
                }
            }
            all
        })
    });

    let segments = out.results[0].clone().expect("master gathers segments");
    let lines = stitch_segments(segments, n_lines);
    let field = SampledField::new(&geo, &snap);
    let (lo, hi) = field.scalar_range(Scalar::Speed);
    let tf = TransferFunction::heat(lo, hi.max(lo + 1e-9));

    let mut image = Image::new(width, height);
    let mut drawn = 0usize;
    for line in &lines {
        if line.len() < 2 {
            continue;
        }
        drawn += 1;
        for w2 in line.windows(2) {
            let speed = field
                .velocity_at(w2[0])
                .map(|v| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt())
                .unwrap_or(0.0);
            let mut c = tf.classify(speed);
            c[3] = 1.0;
            draw_segment(&mut image, &cam, w2[0], w2[1], c);
        }
    }

    let path = workloads::out_dir().join("fig4b_streamlines.ppm");
    image.write_ppm(&path).expect("PPM written");
    Fig4Result {
        panel: "4b",
        path,
        coverage: image.coverage(),
        data_bytes: out.summary.total.bytes(TagClass::Visualisation),
        composite_bytes: out.summary.total.bytes(TagClass::Compositing),
        lines: drawn,
    }
}

/// Table I's fourth technique as an artefact: distributed LIC of the
/// mid-vessel slice → greyscale PPM (`out/lic_slice.ppm`).
pub fn run_lic(size: Size, ranks: usize) -> Fig4Result {
    use hemelb_insitu::lic::{lic_distributed, LicConfig, VelocitySlice};

    let geo = workloads::aneurysm(size);
    let snap = workloads::developed_flow(&geo, 300);
    let plane_z = workloads::find_axis_z(&geo);
    let geo2 = geo.clone();
    let snap2 = snap.clone();
    let out = run_spmd_with_stats(ranks, move |comm| {
        let field = SampledField::new(&geo2, &snap2);
        let slice = VelocitySlice::extract(&field, plane_z);
        let (img, _) = lic_distributed(comm, &slice, &LicConfig::default()).unwrap();
        img.map(|v| (slice.nx, slice.ny, v))
    });
    let (nx, ny, values) = out.results[0].clone().expect("master image");

    // Greyscale with NaN (solid) as white.
    let mut image = Image::new(nx as u32, ny as u32);
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in &values {
        if !v.is_nan() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let span = (hi - lo).max(1e-6);
    for x in 0..nx {
        for y in 0..ny {
            let v = values[x * ny + y];
            if !v.is_nan() {
                let g = (v - lo) / span;
                *image.at_mut(x as u32, (ny - 1 - y) as u32) = [g, g, g, 1.0];
            }
        }
    }
    let path = workloads::out_dir().join("lic_slice.ppm");
    image.write_ppm(&path).expect("PPM written");
    Fig4Result {
        panel: "LIC",
        path,
        coverage: image.coverage(),
        data_bytes: out.summary.total.bytes(TagClass::Visualisation),
        composite_bytes: out.summary.total.bytes(TagClass::Compositing),
        lines: 0,
    }
}

/// Rasterise one projected 3-D segment with simple DDA.
pub fn draw_segment(img: &mut Image, cam: &Camera, a: Vec3, b: Vec3, colour: [f32; 4]) {
    let (Some((ax, ay, _)), Some((bx, by, _))) = (cam.project(a), cam.project(b)) else {
        return;
    };
    let steps = ((bx - ax).abs().max((by - ay).abs()).ceil() as usize).max(1);
    for s in 0..=steps {
        let t = s as f64 / steps as f64;
        let x = ax + (bx - ax) * t;
        let y = ay + (by - ay) * t;
        if x < 0.0 || y < 0.0 || x >= img.width as f64 || y >= img.height as f64 {
            continue;
        }
        let px = img.at_mut(x as u32, y as u32);
        // Opaque line: overwrite (premultiplied, alpha already 1).
        *px = [colour[0], colour[1], colour[2], 1.0];
    }
}

impl fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. {}: wrote {} (coverage {:.1}%, data {}, compositing {}{})",
            self.panel,
            self.path.display(),
            self.coverage * 100.0,
            workloads::fmt_bytes(self.data_bytes),
            workloads::fmt_bytes(self.composite_bytes),
            if self.lines > 0 {
                format!(", {} streamlines", self.lines)
            } else {
                String::new()
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_renders_the_vessel() {
        let r = run_4a(Size::Tiny, 2, 64, 48);
        assert!(r.coverage > 0.03, "vessel visible: {}", r.coverage);
        assert!(r.coverage < 0.9);
        assert_eq!(r.data_bytes, 0, "volume rendering moves no data");
        assert!(r.composite_bytes > 0);
        assert!(r.path.exists());
        std::fs::remove_file(&r.path).ok();
    }

    #[test]
    fn fig4b_draws_streamlines() {
        let r = run_4b(Size::Tiny, 2, 9, 64, 48);
        assert!(r.lines >= 4, "most seeds produce lines: {}", r.lines);
        assert!(r.coverage > 0.005, "lines visible: {}", r.coverage);
        assert!(r.path.exists());
        std::fs::remove_file(&r.path).ok();
    }
}
