//! Experiment E1 — the paper's **Table I**, measured.
//!
//! Paper (qualitative):
//!
//! | | volume rendering | line integral | particle tracing | LIC |
//! |---|---|---|---|---|
//! | communication cost | low | high | high | medium |
//! | load balance | can be optimised | — | — | good |
//! | ease of parallelisation | easy | hard | hard | moderate |
//!
//! Here every cell becomes a number: simulation-data bytes & dependency
//! rounds (communication cost), max/mean work (load balance), and
//! mid-frame rounds (ease of parallelisation), all measured on the same
//! aneurysm flow and decomposition.

use crate::workloads::{self, Size};
use hemelb_insitu::report::{measure_techniques, TechniqueInputs, TechniqueReport};
use std::fmt;
use std::sync::Arc;

/// Parameters of the Table I run.
#[derive(Debug, Clone, Copy)]
pub struct Table1Params {
    /// Workload size.
    pub size: Size,
    /// Ranks.
    pub ranks: usize,
    /// Solver steps to develop the flow.
    pub flow_steps: u64,
    /// Streamline/particle seeds.
    pub seeds: usize,
    /// In situ particle steps.
    pub particle_steps: usize,
}

impl Default for Table1Params {
    fn default() -> Self {
        Table1Params {
            size: Size::Small,
            ranks: 8,
            flow_steps: 300,
            seeds: 64,
            particle_steps: 800,
        }
    }
}

/// The measured table.
pub struct Table1Result {
    /// Parameters used.
    pub params: Table1Params,
    /// One report per technique.
    pub reports: Vec<TechniqueReport>,
    /// Cost model calibrated from a quick measurement probe (γ in
    /// site-updates/s), shown alongside the two presets in the
    /// data-movement shares.
    pub calibrated: hemelb_parallel::CostModel,
}

/// Run E1.
pub fn run(params: Table1Params) -> Table1Result {
    // Quick calibration probe: 1- and 2-rank tiny worlds are enough to
    // price data movement with measured coefficients instead of only
    // the presets (machine coefficients do not depend on the workload
    // size, so the probe stays cheap regardless of `params.size`).
    let calibrated =
        crate::projection::effective_model(&crate::projection::calibrate(Size::Tiny, 3, 2));
    let geo = workloads::aneurysm(params.size);
    let snap = workloads::developed_flow(&geo, params.flow_steps);
    let owner = Arc::new(workloads::slab_owner(&geo, params.ranks));
    let seeds = Arc::new(workloads::inlet_seeds(&geo, params.seeds));
    let inputs = TechniqueInputs {
        lic_plane_z: workloads::find_axis_z(&geo),
        trace: hemelb_insitu::lines::TraceConfig {
            h: 1.0,
            max_steps: 1500,
            min_speed: 1e-8,
        },
        geo,
        snap,
        owner,
        ranks: params.ranks,
        image: (128, 96),
        seeds,
        particle_steps: params.particle_steps,
    };
    Table1Result {
        params,
        reports: measure_techniques(&inputs),
        calibrated,
    }
}

impl Table1Result {
    /// Look a technique up by substring.
    pub fn by_name(&self, name: &str) -> &TechniqueReport {
        self.reports
            .iter()
            .find(|r| r.technique.contains(name))
            .expect("technique present")
    }

    /// Check the paper's qualitative orderings; returns failures.
    pub fn check_orderings(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let volume = self.by_name("volume");
        let lines = self.by_name("line");
        let particles = self.by_name("particle");
        let lic = self.by_name("LIC");
        if volume.data_bytes != 0 {
            problems.push(format!(
                "volume rendering moved {} data bytes (expected 0)",
                volume.data_bytes
            ));
        }
        if lic.data_bytes == 0 {
            problems.push("LIC moved no halo data".into());
        }
        if lines.rounds <= lic.rounds {
            problems.push(format!(
                "line integrals rounds {} not > LIC rounds {}",
                lines.rounds, lic.rounds
            ));
        }
        if particles.rounds <= lic.rounds {
            problems.push("particle rounds not > LIC rounds".into());
        }
        if lic.work_imbalance >= lines.work_imbalance {
            problems.push(format!(
                "LIC imbalance {} not < line imbalance {}",
                lic.work_imbalance, lines.work_imbalance
            ));
        }
        problems
    }
}

impl fmt::Display for Table1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table I (measured) — aneurysm, {} ranks, slab decomposition",
            self.params.ranks
        )?;
        writeln!(
            f,
            "{:<18} {:>12} {:>12} {:>8} {:>10} {:>10}",
            "technique", "data moved", "composite", "rounds", "imbalance", "paper says"
        )?;
        let paper = ["low", "high", "high", "medium"];
        for (r, expect) in self.reports.iter().zip(paper) {
            writeln!(
                f,
                "{:<18} {:>12} {:>12} {:>8} {:>10.3} {:>10}",
                r.technique,
                workloads::fmt_bytes(r.data_bytes),
                workloads::fmt_bytes(r.composite_bytes),
                r.rounds,
                r.work_imbalance,
                expect,
            )?;
        }
        let problems = self.check_orderings();
        if problems.is_empty() {
            writeln!(f, "orderings: all of the paper's qualitative cells hold")?;
        } else {
            for p in &problems {
                writeln!(f, "ordering VIOLATION: {p}")?;
            }
        }
        // The exascale premise: project each frame onto the two machine
        // presets *and* the model calibrated on this machine, and show
        // the data-movement share growing.
        use hemelb_parallel::{CostModel, MachineModel};
        let xe6 = CostModel::for_machine(MachineModel::CrayXe6);
        let exa = CostModel::for_machine(MachineModel::ExascaleProjection);
        writeln!(
            f,
            "{:<18} {:>22} {:>22} {:>22}",
            "data-movement share", "Cray-XE6 model", "exascale model", "calibrated (this box)"
        )?;
        for r in &self.reports {
            let a = r.projected_cost(&xe6).data_movement_fraction();
            let b = r.projected_cost(&exa).data_movement_fraction();
            let c = r.projected_cost(&self.calibrated).data_movement_fraction();
            writeln!(
                f,
                "{:<18} {:>21.1}% {:>21.1}% {:>21.1}%",
                r.technique,
                a * 100.0,
                b * 100.0,
                c * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_small_run_reproduces_paper_orderings() {
        let result = run(Table1Params {
            size: Size::Tiny,
            ranks: 4,
            flow_steps: 120,
            seeds: 16,
            particle_steps: 150,
        });
        let problems = result.check_orderings();
        assert!(problems.is_empty(), "{problems:?}");
        // The calibrated model is finite and priced the shares.
        assert!(result.calibrated.gamma.is_finite() && result.calibrated.gamma > 0.0);
        assert!(result.calibrated.beta.is_finite() && result.calibrated.beta > 0.0);
        // And the table prints, calibrated column included.
        let text = format!("{result}");
        assert!(text.contains("volume rendering"));
        assert!(text.contains("LIC"));
        assert!(text.contains("calibrated (this box)"));
    }
}
