//! Experiment E16 — kernel memory-layout ablation: the legacy
//! site-major brick against the SoA fluid-site list, scalar and
//! chunked-lane (SIMD-style) collision, on the standard aneurysm
//! workload.
//!
//! The co-design claim being measured: the lattice-Boltzmann inner loop
//! is memory-bound, so a structure-of-arrays walk (one contiguous lane
//! per velocity direction, streaming resolved through a precomputed
//! index table, boundary work hoisted out of the bulk loop) buys
//! site-updates/sec *without* touching the arithmetic — every layout is
//! bit-identical, which the run re-verifies inline.
//!
//! Methodology: one solver per layout stepped in interleaved rounds
//! (layout A steps, then B, then C, repeat), best-of-`reps` per-step
//! time kept per layout, so cache warm-up and machine noise hit all
//! layouts alike. Results export to `out/BENCH_kernel.json`.

use crate::workloads::{self, Size};
use hemelb_core::{KernelLayout, Solver, SolverConfig};
use hemelb_obs::Recorder;
use std::fmt;
use std::time::Instant;

/// The layouts under test, in reporting order.
const LAYOUTS: [(&str, KernelLayout); 3] = [
    ("legacy", KernelLayout::Legacy),
    ("soa-scalar", KernelLayout::SoaScalar),
    ("soa-simd", KernelLayout::SoaSimd),
];

/// One layout measurement.
#[derive(Debug, Clone)]
pub struct LayoutRow {
    /// "legacy", "soa-scalar" or "soa-simd".
    pub layout: &'static str,
    /// Best-of-`reps` wall seconds per LB step.
    pub seconds_per_step: f64,
    /// Fluid-site updates per second at that rate.
    pub site_updates_per_sec: f64,
    /// Throughput relative to the legacy row.
    pub speedup_vs_legacy: f64,
    /// Whether the final distributions matched legacy bit-for-bit.
    pub bit_identical: bool,
}

/// The E16 result.
pub struct KernelResult {
    /// Fluid sites in the workload.
    pub sites: usize,
    /// Steps per timed round.
    pub steps: u64,
    /// Timed rounds per layout (best kept).
    pub reps: usize,
    /// Fraction of sites on the branch-free bulk path of the SoA
    /// streaming table.
    pub bulk_fraction: f64,
    /// One row per layout.
    pub rows: Vec<LayoutRow>,
}

/// Run E16: interleaved best-of-5 timing of the three kernel layouts on
/// the standard aneurysm, with inline bit-identity verification.
pub fn run(size: Size, steps: u64) -> KernelResult {
    let geo = workloads::aneurysm(size);
    let cfg = SolverConfig::pressure_driven(1.005, 0.995);
    let sites = geo.fluid_count();

    let mut solvers: Vec<Solver> = LAYOUTS
        .iter()
        .map(|&(_, layout)| Solver::new(geo.clone(), cfg.clone().with_layout(layout)))
        .collect();
    let bulk_fraction = solvers
        .iter()
        .find_map(|s| s.bulk_fraction())
        .expect("an SoA solver reports its bulk fraction");

    // Warm-up round (untimed): touches every lane and settles the flow
    // off the uniform initial state.
    for s in &mut solvers {
        s.step_n(steps.min(5));
    }

    // Interleaved best-of-`reps`: every round steps each layout once,
    // so thermal/cache drift cannot favour whichever ran last.
    let reps = 5usize;
    let mut best = [f64::INFINITY; LAYOUTS.len()];
    for _ in 0..reps {
        for (k, s) in solvers.iter_mut().enumerate() {
            let t0 = Instant::now();
            s.step_n(steps);
            best[k] = best[k].min(t0.elapsed().as_secs_f64() / steps as f64);
        }
    }

    // Inline bit-identity: all solvers have taken the same total step
    // count, so their states must agree exactly.
    let want = solvers[0].raw_distributions().to_vec();
    let rows: Vec<LayoutRow> = LAYOUTS
        .iter()
        .enumerate()
        .map(|(k, &(name, _))| {
            let bit_identical = k == 0
                || solvers[k]
                    .raw_distributions()
                    .iter()
                    .zip(want.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            LayoutRow {
                layout: name,
                seconds_per_step: best[k],
                site_updates_per_sec: sites as f64 / best[k],
                speedup_vs_legacy: best[0] / best[k],
                bit_identical,
            }
        })
        .collect();

    // Export through the obs codec.
    let mut rec = Recorder::new();
    for row in &rows {
        rec.record_secs(&format!("kernel.{}.step", row.layout), row.seconds_per_step);
        rec.count(
            &format!("kernel.{}.site_updates_per_sec", row.layout),
            row.site_updates_per_sec as u64,
        );
        rec.count(
            &format!("kernel.{}.bit_identical", row.layout),
            u64::from(row.bit_identical),
        );
    }
    rec.count("kernel.sites", sites as u64);
    rec.count("kernel.bulk_permille", (bulk_fraction * 1000.0) as u64);
    let path = workloads::out_dir().join("BENCH_kernel.json");
    std::fs::write(&path, rec.report().to_json()).expect("BENCH_kernel.json written");

    KernelResult {
        sites,
        steps,
        reps,
        bulk_fraction,
        rows,
    }
}

impl fmt::Display for KernelResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Kernel memory-layout ablation — {} sites, {} steps/round, best of {} \
             interleaved rounds",
            self.sites, self.steps, self.reps
        )?;
        writeln!(
            f,
            "bulk (branch-free) fraction of the SoA streaming table: {:.1}%",
            self.bulk_fraction * 100.0
        )?;
        writeln!(
            f,
            "{:<12} {:>12} {:>16} {:>9} {:>10}",
            "layout", "ms/step", "site-updates/s", "speedup", "bit-exact"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>12.3} {:>16.0} {:>8.2}x {:>10}",
                r.layout,
                r.seconds_per_step * 1e3,
                r.site_updates_per_sec,
                r.speedup_vs_legacy,
                r.bit_identical,
            )?;
        }
        writeln!(f, "JSON: out/BENCH_kernel.json")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_ablation_measures_and_stays_bit_exact() {
        let result = run(Size::Tiny, 3);
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.rows[0].layout, "legacy");
        assert!((result.rows[0].speedup_vs_legacy - 1.0).abs() < 1e-12);
        for r in &result.rows {
            assert!(r.bit_identical, "{} diverged from legacy", r.layout);
            assert!(r.site_updates_per_sec > 0.0);
        }
        assert!(result.bulk_fraction > 0.0 && result.bulk_fraction <= 1.0);
        assert!(workloads::out_dir().join("BENCH_kernel.json").exists());
    }
}
