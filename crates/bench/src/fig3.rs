//! Experiment E4 — the paper's **Fig. 3**: the post-processing pipeline
//! (extract → filter → map → render) with user iteration.
//!
//! We build that exact pipeline over a live solver snapshot and measure
//! per-stage time and payload size, with the *filter* stage either a
//! pass-through (classical post-processing) or an octree level cut
//! (the in situ data-reduction path of §V) — quantifying how much the
//! multi-resolution filter shrinks what the downstream stages touch.

use crate::workloads::{self, Size};
use hemelb_core::FieldSnapshot;
use hemelb_geometry::{SparseGeometry, Vec3};
use hemelb_insitu::camera::Camera;
use hemelb_insitu::pipeline::{Pipeline, Sized2, StageStats};
use hemelb_insitu::transfer::TransferFunction;
use hemelb_insitu::volume::{render_brick, Brick};
use hemelb_octree::FieldOctree;
use std::fmt;
use std::sync::Arc;

/// The payload flowing through the Fig. 3 pipeline.
pub enum Payload {
    /// Raw snapshot (after extract).
    Field {
        /// Geometry.
        geo: Arc<SparseGeometry>,
        /// Per-site scalar.
        values: Vec<f64>,
    },
    /// Reduced point set (after filter).
    Points {
        /// Positions.
        points: Vec<[u32; 3]>,
        /// Scalar values.
        values: Vec<f64>,
    },
    /// Classified render input (after map).
    Classified {
        /// Positions.
        points: Vec<[u32; 3]>,
        /// Scalar values.
        values: Vec<f64>,
        /// Transfer function.
        tf: TransferFunction,
    },
    /// The rendered image (after render).
    Rendered(hemelb_insitu::image::Image),
}

impl Sized2 for Payload {
    fn approx_bytes(&self) -> usize {
        match self {
            Payload::Field { values, .. } => values.len() * 8,
            Payload::Points { points, values } => points.len() * 12 + values.len() * 8,
            Payload::Classified { points, values, .. } => points.len() * 12 + values.len() * 8,
            Payload::Rendered(img) => img.pixels.len() * 16,
        }
    }
}

/// Result: stage stats for both pipeline variants.
pub struct Fig3Result {
    /// Stages of the full-resolution pipeline.
    pub full: Vec<StageStats>,
    /// Stages of the octree-reduced pipeline.
    pub reduced: Vec<StageStats>,
    /// Octree level used by the reduced variant.
    pub level: u8,
}

fn build_pipeline(
    geo: Arc<SparseGeometry>,
    snap: Arc<FieldSnapshot>,
    reduce_to_level: Option<u8>,
    image: (u32, u32),
) -> Pipeline<Payload> {
    let geo_extract = geo.clone();
    let snap_extract = snap.clone();
    let geo_filter = geo.clone();
    Pipeline::new()
        .stage("extract", move |_ignored: Payload| Payload::Field {
            geo: geo_extract.clone(),
            values: (0..snap_extract.len())
                .map(|i| snap_extract.speed(i))
                .collect(),
        })
        .stage("filter", move |p: Payload| {
            let Payload::Field { geo, values } = p else {
                unreachable!("filter follows extract")
            };
            match reduce_to_level {
                None => Payload::Points {
                    points: geo.positions().to_vec(),
                    values,
                },
                Some(level) => {
                    let tree = FieldOctree::build(&geo_filter, &values);
                    let cut = tree.cut_at_level(level);
                    let (points, values) = cut
                        .iter()
                        .map(|n| {
                            let c = n.origin;
                            let h = n.size / 2;
                            ([c[0] + h, c[1] + h, c[2] + h], n.agg.mean)
                        })
                        .unzip();
                    Payload::Points { points, values }
                }
            }
        })
        .stage("map", |p: Payload| {
            let Payload::Points { points, values } = p else {
                unreachable!("map follows filter")
            };
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            Payload::Classified {
                points,
                values,
                tf: TransferFunction::heat(lo, hi.max(lo + 1e-9)),
            }
        })
        .stage("render", move |p: Payload| {
            let Payload::Classified { points, values, tf } = p else {
                unreachable!("render follows map")
            };
            let cam = Camera::framing(
                Vec3::ZERO,
                Vec3::new(
                    geo.shape()[0] as f64,
                    geo.shape()[1] as f64,
                    geo.shape()[2] as f64,
                ),
                Vec3::new(0.2, -1.0, 0.3),
                image.0,
                image.1,
            );
            let img = match Brick::from_points(&points, &values) {
                Some(brick) => render_brick(&brick, &cam, &tf, 0.5).image,
                None => hemelb_insitu::image::Image::new(image.0, image.1),
            };
            Payload::Rendered(img)
        })
}

/// Run E4.
pub fn run(size: Size, level: u8, image: (u32, u32)) -> Fig3Result {
    let geo = workloads::aneurysm(size);
    let snap = workloads::developed_flow(&geo, 150);
    let seed = Payload::Points {
        points: vec![],
        values: vec![],
    };
    let seed2 = Payload::Points {
        points: vec![],
        values: vec![],
    };

    let mut full = build_pipeline(geo.clone(), snap.clone(), None, image);
    full.run_tracked(seed);
    let mut reduced = build_pipeline(geo, snap, Some(level), image);
    reduced.run_tracked(seed2);

    Fig3Result {
        full: full.stats().into_iter().cloned().collect(),
        reduced: reduced.stats().into_iter().cloned().collect(),
        level,
    }
}

impl Fig3Result {
    /// Payload size after the filter stage (bytes) for both variants.
    pub fn filtered_bytes(&self) -> (usize, usize) {
        (
            self.full[1].last_bytes.unwrap_or(0),
            self.reduced[1].last_bytes.unwrap_or(0),
        )
    }
}

impl fmt::Display for Fig3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 3 (measured): post-processing pipeline stages, full vs octree level-{} reduction",
            self.level
        )?;
        writeln!(
            f,
            "{:<10} {:>12} {:>12} {:>12} {:>12}",
            "stage", "full [ms]", "full [B]", "reduced [ms]", "reduced [B]"
        )?;
        for (a, b) in self.full.iter().zip(&self.reduced) {
            writeln!(
                f,
                "{:<10} {:>12.3} {:>12} {:>12.3} {:>12}",
                a.name,
                a.seconds * 1e3,
                a.last_bytes.unwrap_or(0),
                b.seconds * 1e3,
                b.last_bytes.unwrap_or(0),
            )?;
        }
        let (full, reduced) = self.filtered_bytes();
        if reduced > 0 {
            writeln!(
                f,
                "data reduction after filter: {:.1}x",
                full as f64 / reduced as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_stages_run_and_reduce() {
        let result = run(Size::Tiny, 3, (48, 36));
        assert_eq!(result.full.len(), 4);
        assert_eq!(result.reduced.len(), 4);
        let (full, reduced) = result.filtered_bytes();
        assert!(full > 0);
        assert!(reduced > 0);
        assert!(
            reduced < full / 2,
            "octree filter must reduce the payload: {reduced} !< {full}/2"
        );
    }
}
