//! The two-level block decomposition of the sparse lattice.
//!
//! HemeLB's geometry format groups sites into cubic *blocks* (8³ by
//! default). Level one of the format records only the fluid-site count of
//! each block — enough for an initial approximate load balance before any
//! site data is read (§IV-B of the paper). Level two holds the per-site
//! records, block by block. [`BlockDecomposition`] provides the block
//! indexing shared by the file format, the distributed reader and the
//! partitioners.

use crate::lattice::SparseGeometry;
use serde::{Deserialize, Serialize};

/// Default block edge length, matching HemeLB's 8³ blocks.
pub const DEFAULT_BLOCK_SIZE: usize = 8;

/// Cubic-block overlay on a sparse geometry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockDecomposition {
    /// Block edge length in lattice cells.
    pub block_size: usize,
    /// Blocks per axis.
    pub blocks: [usize; 3],
    /// Fluid sites in each block, x-major block order (level one of the
    /// two-level format).
    pub fluid_per_block: Vec<u32>,
}

impl BlockDecomposition {
    /// Overlay `block_size`-cubed blocks on the geometry and count fluid
    /// sites per block.
    pub fn build(geo: &SparseGeometry, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let shape = geo.shape();
        let blocks = [
            shape[0].div_ceil(block_size),
            shape[1].div_ceil(block_size),
            shape[2].div_ceil(block_size),
        ];
        let mut fluid_per_block = vec![0u32; blocks[0] * blocks[1] * blocks[2]];
        for p in geo.positions() {
            let b = Self::block_of_impl(blocks, block_size, *p);
            fluid_per_block[b] += 1;
        }
        BlockDecomposition {
            block_size,
            blocks,
            fluid_per_block,
        }
    }

    /// Number of blocks in the overlay (including empty ones).
    pub fn block_count(&self) -> usize {
        self.fluid_per_block.len()
    }

    /// Number of blocks containing at least one fluid site.
    pub fn nonempty_block_count(&self) -> usize {
        self.fluid_per_block.iter().filter(|&&c| c > 0).count()
    }

    /// Total fluid sites across blocks.
    pub fn total_fluid(&self) -> u64 {
        self.fluid_per_block.iter().map(|&c| c as u64).sum()
    }

    /// Flat block index of the block containing lattice cell `p`.
    pub fn block_of(&self, p: [u32; 3]) -> usize {
        Self::block_of_impl(self.blocks, self.block_size, p)
    }

    fn block_of_impl(blocks: [usize; 3], block_size: usize, p: [u32; 3]) -> usize {
        let bx = p[0] as usize / block_size;
        let by = p[1] as usize / block_size;
        let bz = p[2] as usize / block_size;
        (bx * blocks[1] + by) * blocks[2] + bz
    }

    /// Block coordinates of flat block index `b`.
    pub fn block_coords(&self, b: usize) -> [usize; 3] {
        let bz = b % self.blocks[2];
        let by = (b / self.blocks[2]) % self.blocks[1];
        let bx = b / (self.blocks[2] * self.blocks[1]);
        [bx, by, bz]
    }

    /// Greedy contiguous assignment of blocks to `parts` readers/owners,
    /// balanced by fluid-site count: the *initial approximate load
    /// balance* HemeLB derives from level one of the format before
    /// reading any site data.
    ///
    /// Returns `owner[b]` for every block (empty blocks get the owner of
    /// the surrounding range).
    pub fn approximate_decomposition(&self, parts: usize) -> Vec<usize> {
        crate::distio::plan_block_owners(&self.fluid_per_block, parts)
    }

    /// Per-part fluid-site loads under an owner map.
    pub fn loads(&self, owner: &[usize], parts: usize) -> Vec<u64> {
        let mut loads = vec![0u64; parts];
        for (b, &o) in owner.iter().enumerate() {
            loads[o] += self.fluid_per_block[b] as u64;
        }
        loads
    }

    /// Load imbalance `max/mean` of an owner map (1.0 = perfect).
    pub fn imbalance(&self, owner: &[usize], parts: usize) -> f64 {
        let loads = self.loads(owner, parts);
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let mean = self.total_fluid() as f64 / parts as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vessels::VesselBuilder;

    fn demo_geo() -> SparseGeometry {
        VesselBuilder::aneurysm(32.0, 5.0, 7.0).voxelise(1.0)
    }

    #[test]
    fn block_counts_sum_to_fluid_count() {
        let geo = demo_geo();
        let dec = BlockDecomposition::build(&geo, DEFAULT_BLOCK_SIZE);
        assert_eq!(dec.total_fluid(), geo.fluid_count() as u64);
        assert!(dec.nonempty_block_count() <= dec.block_count());
        assert!(dec.nonempty_block_count() > 0);
    }

    #[test]
    fn block_of_round_trips_coords() {
        let geo = demo_geo();
        let dec = BlockDecomposition::build(&geo, 8);
        for (i, p) in geo.positions().iter().enumerate().step_by(97) {
            let b = dec.block_of(*p);
            let [bx, by, bz] = dec.block_coords(b);
            assert_eq!(bx, p[0] as usize / 8, "site {i}");
            assert_eq!(by, p[1] as usize / 8);
            assert_eq!(bz, p[2] as usize / 8);
        }
    }

    #[test]
    fn approximate_decomposition_covers_all_parts() {
        let geo = demo_geo();
        let dec = BlockDecomposition::build(&geo, 8);
        for parts in [1, 2, 4, 7] {
            let owner = dec.approximate_decomposition(parts);
            assert_eq!(owner.len(), dec.block_count());
            let loads = dec.loads(&owner, parts);
            assert_eq!(loads.iter().sum::<u64>(), dec.total_fluid());
            assert!(
                loads.iter().all(|&l| l > 0),
                "every part should get some work for parts={parts}: {loads:?}"
            );
            // The block-granularity balance is approximate but bounded.
            assert!(dec.imbalance(&owner, parts) < 2.0, "parts={parts}");
        }
    }

    #[test]
    fn single_part_owns_everything() {
        let geo = demo_geo();
        let dec = BlockDecomposition::build(&geo, 8);
        let owner = dec.approximate_decomposition(1);
        assert!(owner.iter().all(|&o| o == 0));
        assert!((dec.imbalance(&owner, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn block_size_one_degenerates_to_cells() {
        let geo = demo_geo();
        let dec = BlockDecomposition::build(&geo, 1);
        assert_eq!(dec.blocks, geo.shape());
        assert_eq!(dec.nonempty_block_count(), geo.fluid_count());
    }
}
