//! # hemelb-geometry
//!
//! Synthetic vascular geometry for the sparse lattice-Boltzmann solver:
//! parametric vessel primitives (straight tubes, bends, bifurcations,
//! saccular aneurysms) combined through signed-distance functions, a
//! voxeliser that classifies lattice sites, and HemeLB's *two-level*
//! sparse block geometry format together with the "subset of reading
//! cores" distributed loader the paper describes in §IV-B.
//!
//! The original HemeLB operates on patient-specific geometries segmented
//! from medical scans — data we do not have. The parametric aneurysm
//! built here (see [`vessels`]) exercises the identical code paths: a
//! sparse fluid domain (a few percent to ~20 % of its bounding box),
//! wall-adjacent sites everywhere, and pressure inlets/outlets capping
//! open vessel ends (substitution documented in `DESIGN.md`).
//!
//! ```
//! use hemelb_geometry::vessels::VesselBuilder;
//!
//! // A small aneurysm geometry: a tube with a spherical sac on its side.
//! let geo = VesselBuilder::aneurysm(24.0, 6.0, 8.0).voxelise(1.0);
//! assert!(geo.fluid_count() > 0);
//! // Sparse: far fewer fluid sites than bounding-box cells.
//! let box_cells = geo.shape().iter().product::<usize>();
//! assert!(geo.fluid_count() < box_cells);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod distio;
pub mod format;
pub mod lattice;
pub mod sdf;
pub mod vec3;
pub mod vessels;
pub mod voxel;

pub use lattice::{IoLet, IoLetKind, SiteKind, SparseGeometry};
pub use sdf::Sdf;
pub use vec3::Vec3;
pub use vessels::VesselBuilder;
