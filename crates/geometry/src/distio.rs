//! Distributed two-level geometry loading (§IV-B of the paper).
//!
//! "HemeLB reads data from a two-level file format […] A subset of the
//! cores then read the detailed geometry data and distribute the data to
//! those cores that require it. This approach minimises stress on the
//! filesystem. Additionally, the number of reading cores enables control
//! over the balance between file I/O and distribution communication."
//!
//! [`read_distributed`] implements exactly that trade-off and is the
//! device under test in experiment **E8**: with `R` reading ranks out of
//! `P`, each reader reads a contiguous slice of level two and forwards
//! each block's site records to the rank that owns the block under the
//! initial approximate decomposition computed from level one.

use crate::format::{read_block_sites, read_header, SgmyHeader, SiteRecord};
use crate::lattice::{IoLet, IoLetKind, SiteKind};
use crate::vec3::Vec3;
use hemelb_parallel::{CommResult, Communicator, Tag, Wire, WireReader, WireWriter};
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

const T_SITES: Tag = Tag::geometry(1);

/// Greedy contiguous assignment of blocks to `parts` owners, balanced by
/// fluid-site count — the "initial approximate load balance" HemeLB
/// derives from level one before reading site data.
pub fn plan_block_owners(fluid_per_block: &[u32], parts: usize) -> Vec<usize> {
    assert!(parts > 0);
    let total: u64 = fluid_per_block.iter().map(|&c| c as u64).sum();
    let target = total as f64 / parts as f64;
    let mut owner = vec![0usize; fluid_per_block.len()];
    let mut current = 0usize;
    let mut acc = 0u64;
    for (b, &count) in fluid_per_block.iter().enumerate() {
        owner[b] = current;
        acc += count as u64;
        if current + 1 < parts && (acc as f64) >= target * (current as f64 + 1.0) {
            current += 1;
        }
    }
    owner
}

/// Contiguous split of the block list among `readers`, balanced by
/// byte volume (site counts): `reader_ranges[r]` is the half-open block
/// range read by reader `r`.
pub fn plan_reader_ranges(fluid_per_block: &[u32], readers: usize) -> Vec<std::ops::Range<usize>> {
    let owner = plan_block_owners(fluid_per_block, readers);
    let mut ranges = vec![0..0; readers];
    let mut start = 0usize;
    let mut cur = 0usize;
    for (b, &o) in owner.iter().enumerate() {
        if o != cur {
            ranges[cur] = start..b;
            start = b;
            cur = o;
        }
    }
    ranges[cur] = start..fluid_per_block.len();
    // Any readers after `cur` get empty trailing ranges.
    for r in ranges.iter_mut().skip(cur + 1) {
        *r = fluid_per_block.len()..fluid_per_block.len();
    }
    ranges
}

/// What one rank ends up holding after a distributed read.
#[derive(Debug)]
pub struct DistributedGeometry {
    /// The file header (replicated on every rank via broadcast).
    pub header: SgmyHeader,
    /// Block-to-owner map under the initial approximate decomposition.
    pub block_owner: Vec<usize>,
    /// The site records owned by this rank, sorted by position.
    pub my_sites: Vec<SiteRecord>,
    /// Bytes this rank read from the file (0 for non-readers).
    pub file_bytes_read: u64,
}

impl Wire for SiteRecord {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.position[0]);
        w.put_u32(self.position[1]);
        w.put_u32(self.position[2]);
        let (code, id) = self.kind.to_code();
        w.put_u8(code);
        w.put_u32(id as u32);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        let position = [r.get_u32()?, r.get_u32()?, r.get_u32()?];
        let code = r.get_u8()?;
        let id = r.get_u32()? as u16;
        let kind = SiteKind::from_code(code, id).ok_or(hemelb_parallel::CommError::Decode {
            reason: format!("invalid site kind code {code}"),
        })?;
        Ok(SiteRecord { position, kind })
    }
}

fn encode_header(h: &SgmyHeader) -> bytes::Bytes {
    let mut w = WireWriter::new();
    for s in h.shape {
        w.put_u64(s as u64);
    }
    w.put_u64(h.block_size as u64);
    w.put_u64(h.fluid_total);
    w.put_u64(h.data_offset);
    w.put_usize(h.iolets.len());
    for io in &h.iolets {
        w.put_u8(match io.kind {
            IoLetKind::Inlet => 0,
            IoLetKind::Outlet => 1,
        });
        w.put(&io.centre.to_array());
        w.put(&io.normal.to_array());
        w.put_f64(io.radius);
    }
    w.put_u32_slice(&h.fluid_per_block);
    w.finish()
}

fn decode_header(b: bytes::Bytes) -> CommResult<SgmyHeader> {
    let mut r = WireReader::new(b);
    let shape = [
        r.get_u64()? as usize,
        r.get_u64()? as usize,
        r.get_u64()? as usize,
    ];
    let block_size = r.get_u64()? as usize;
    let fluid_total = r.get_u64()?;
    let data_offset = r.get_u64()?;
    let n = r.get_usize()?;
    let mut iolets = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = match r.get_u8()? {
            0 => IoLetKind::Inlet,
            1 => IoLetKind::Outlet,
            k => {
                return Err(hemelb_parallel::CommError::Decode {
                    reason: format!("invalid iolet kind {k}"),
                })
            }
        };
        let centre: [f64; 3] = r.get()?;
        let normal: [f64; 3] = r.get()?;
        let radius = r.get_f64()?;
        iolets.push(IoLet {
            kind,
            centre: Vec3::from(centre),
            normal: Vec3::from(normal),
            radius,
        });
    }
    let fluid_per_block = r.get_u32_vec()?;
    r.expect_end()?;
    Ok(SgmyHeader {
        shape,
        block_size,
        fluid_total,
        iolets,
        fluid_per_block,
        data_offset,
    })
}

/// SPMD entry point: collectively load `path` with the first `n_readers`
/// ranks doing file I/O. Every rank returns its owned slice of the
/// geometry. Must be called by all ranks of `comm`.
///
/// # Panics
/// Panics on I/O errors (a missing geometry file is unrecoverable for an
/// SPMD job, matching HemeLB's abort-on-bad-input behaviour).
pub fn read_distributed(
    path: &Path,
    comm: &Communicator,
    n_readers: usize,
) -> CommResult<DistributedGeometry> {
    let p = comm.size();
    let n_readers = n_readers.clamp(1, p);

    // Rank 0 reads header + level one, broadcasts both.
    let header = if comm.is_master() {
        let mut f = BufReader::new(File::open(path).expect("geometry file must open"));
        let h = read_header(&mut f).expect("geometry header must parse");
        let payload = encode_header(&h);
        comm.broadcast(0, Some(payload))?;
        h
    } else {
        let payload = comm.broadcast(0, None)?;
        decode_header(payload)?
    };

    let block_owner = plan_block_owners(&header.fluid_per_block, p);
    let reader_ranges = plan_reader_ranges(&header.fluid_per_block, n_readers);

    // Phase 2: readers read their slice and forward per-owner batches.
    let mut file_bytes_read = 0u64;
    if comm.rank() < n_readers {
        let range = reader_ranges[comm.rank()].clone();
        if !range.is_empty() {
            let mut f = File::open(path).expect("geometry file must open");
            let records = read_block_sites(&header, &mut f, range.clone())
                .expect("geometry blocks must parse");
            file_bytes_read = records.len() as u64 * crate::format::SITE_RECORD_BYTES;

            // Group records by owning rank (blocks are contiguous per
            // owner, so batches stay in block order).
            let mut batches: Vec<Vec<SiteRecord>> = vec![Vec::new(); p];
            let mut cursor = 0usize;
            for b in range {
                let n = header.fluid_per_block[b] as usize;
                batches[block_owner[b]].extend_from_slice(&records[cursor..cursor + n]);
                cursor += n;
            }
            for (owner, batch) in batches.into_iter().enumerate() {
                if !batch.is_empty() {
                    comm.send_wire(owner, T_SITES, &batch)?;
                }
            }
        }
    }

    // Phase 3: every rank collects the records for the blocks it owns.
    let expected: u64 = header
        .fluid_per_block
        .iter()
        .zip(&block_owner)
        .filter(|(_, &o)| o == comm.rank())
        .map(|(&c, _)| c as u64)
        .sum();
    let mut my_sites: Vec<SiteRecord> = Vec::with_capacity(expected as usize);
    while (my_sites.len() as u64) < expected {
        let (_, payload) = comm.recv_any(T_SITES)?;
        let batch = Vec::<SiteRecord>::from_bytes(payload)?;
        my_sites.extend(batch);
    }
    my_sites.sort_unstable_by_key(|s| s.position);

    // Make the read collective: nobody proceeds until all data arrived
    // (mirrors HemeLB's synchronous initialisation).
    comm.barrier()?;

    Ok(DistributedGeometry {
        header,
        block_owner,
        my_sites,
        file_bytes_read,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::write_sgmy;
    use crate::vessels::VesselBuilder;
    use hemelb_parallel::run_spmd_with_stats;
    use std::io::Write as _;

    fn write_demo_file() -> (std::path::PathBuf, usize) {
        let geo = VesselBuilder::aneurysm(24.0, 5.0, 6.0).voxelise(1.0);
        let mut buf = Vec::new();
        write_sgmy(&geo, 8, &mut buf).unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "hemelb_distio_test_{}_{}.sgmy",
            std::process::id(),
            geo.fluid_count()
        ));
        let mut f = File::create(&path).unwrap();
        f.write_all(&buf).unwrap();
        (path, geo.fluid_count())
    }

    #[test]
    fn owners_cover_all_blocks_and_balance() {
        let counts = vec![4u32, 0, 8, 8, 2, 2, 0, 8];
        let owner = plan_block_owners(&counts, 4);
        assert_eq!(owner.len(), counts.len());
        assert!(owner.windows(2).all(|w| w[0] <= w[1]), "contiguous");
        assert_eq!(*owner.last().unwrap(), 3, "all parts used");
    }

    #[test]
    fn reader_ranges_partition_blocks() {
        let counts = vec![4u32, 0, 8, 8, 2, 2, 0, 8];
        for readers in [1, 2, 3, 4] {
            let ranges = plan_reader_ranges(&counts, readers);
            assert_eq!(ranges.len(), readers);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "ranges must be contiguous");
                covered = r.end;
            }
            assert_eq!(covered, counts.len());
        }
    }

    #[test]
    fn distributed_read_delivers_every_site_exactly_once() {
        let (path, fluid_count) = write_demo_file();
        for (p, readers) in [(1, 1), (4, 1), (4, 2), (4, 4), (6, 3)] {
            let path2 = path.clone();
            let out = run_spmd_with_stats(p, move |comm| {
                let dg = read_distributed(&path2, comm, readers).unwrap();
                dg.my_sites.len()
            });
            let total: usize = out.results.iter().sum();
            assert_eq!(total, fluid_count, "p={p} readers={readers}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fewer_readers_means_less_file_io_but_more_forwarding() {
        let (path, _) = write_demo_file();
        let p = 8;
        let run = |readers: usize| {
            let path2 = path.clone();
            run_spmd_with_stats(p, move |comm| {
                let dg = read_distributed(&path2, comm, readers).unwrap();
                dg.file_bytes_read
            })
        };
        let one = run(1);
        let all = run(8);
        // With one reader, that rank reads the whole file.
        let one_total_read: u64 = one.results.iter().sum();
        let all_total_read: u64 = all.results.iter().sum();
        assert_eq!(one_total_read, all_total_read, "same bytes read in total");
        assert!(one.results[0] == one_total_read, "single reader reads all");
        // With every rank reading its own slice, forwarding traffic drops.
        use hemelb_parallel::TagClass;
        let fwd_one = one.summary.total.bytes(TagClass::Geometry);
        let fwd_all = all.summary.total.bytes(TagClass::Geometry);
        assert!(
            fwd_all < fwd_one,
            "self-owned blocks need no forwarding: {fwd_all} !< {fwd_one}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn site_record_wire_round_trip() {
        let rec = SiteRecord {
            position: [3, 700, 12],
            kind: SiteKind::Inlet(5),
        };
        let b = rec.to_bytes();
        assert_eq!(SiteRecord::from_bytes(b).unwrap(), rec);
    }

    #[test]
    fn header_wire_round_trip() {
        let geo = VesselBuilder::straight_tube(12.0, 3.0).voxelise(1.0);
        let mut buf = Vec::new();
        write_sgmy(&geo, 8, &mut buf).unwrap();
        let h = read_header(&mut std::io::Cursor::new(&buf)).unwrap();
        let h2 = decode_header(encode_header(&h)).unwrap();
        assert_eq!(h2.shape, h.shape);
        assert_eq!(h2.fluid_per_block, h.fluid_per_block);
        assert_eq!(h2.iolets, h.iolets);
        assert_eq!(h2.data_offset, h.data_offset);
    }
}
