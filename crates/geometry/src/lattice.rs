//! The sparse lattice: fluid-site storage with indirect addressing.
//!
//! The lattice-Boltzmann method uses a *regular* lattice (the paper's
//! Fig. 1), but vascular geometry occupies only a small fraction of its
//! bounding box, so HemeLB stores only the fluid sites and addresses them
//! indirectly. [`SparseGeometry`] is that representation: a flat list of
//! fluid sites (position + classification) plus a dense site-index grid
//! for O(1) neighbour lookup inside the bounding box.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Classification of a fluid site, fixing which boundary condition the
/// solver applies on its missing links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteKind {
    /// Interior fluid: all lattice neighbours are fluid.
    Bulk,
    /// Adjacent to at least one solid (vessel wall) cell.
    Wall,
    /// In the slab of inlet `id`: open-boundary condition applies.
    Inlet(u16),
    /// In the slab of outlet `id`.
    Outlet(u16),
}

impl SiteKind {
    /// Compact one-byte discriminant used by the file format.
    pub fn to_code(self) -> (u8, u16) {
        match self {
            SiteKind::Bulk => (0, 0),
            SiteKind::Wall => (1, 0),
            SiteKind::Inlet(id) => (2, id),
            SiteKind::Outlet(id) => (3, id),
        }
    }

    /// Inverse of [`SiteKind::to_code`].
    pub fn from_code(code: u8, id: u16) -> Option<SiteKind> {
        match code {
            0 => Some(SiteKind::Bulk),
            1 => Some(SiteKind::Wall),
            2 => Some(SiteKind::Inlet(id)),
            3 => Some(SiteKind::Outlet(id)),
            _ => None,
        }
    }

    /// Whether this is an inlet or outlet site.
    pub fn is_iolet(self) -> bool {
        matches!(self, SiteKind::Inlet(_) | SiteKind::Outlet(_))
    }
}

/// Whether an open boundary is an inlet or an outlet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoLetKind {
    /// Flow enters here.
    Inlet,
    /// Flow leaves here.
    Outlet,
}

/// An open vessel end: a disk in the cutting plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoLet {
    /// Inlet or outlet.
    pub kind: IoLetKind,
    /// Centre of the disk, lattice units.
    pub centre: Vec3,
    /// Outward unit normal (pointing out of the fluid domain).
    pub normal: Vec3,
    /// Disk radius, lattice units.
    pub radius: f64,
}

/// Sentinel in the dense index grid marking a non-fluid cell.
pub const NOT_FLUID: u32 = u32::MAX;

/// The sparse lattice produced by the voxeliser.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SparseGeometry {
    shape: [usize; 3],
    /// Dense `x-major` grid of fluid-site indices (`NOT_FLUID` outside).
    index: Vec<u32>,
    /// Position of each fluid site (lattice coordinates).
    positions: Vec<[u32; 3]>,
    /// Classification of each fluid site.
    kinds: Vec<SiteKind>,
    /// Open boundaries; `SiteKind::Inlet(i)` refers to `iolets` entries
    /// with `kind == Inlet` counted separately from outlets.
    iolets: Vec<IoLet>,
}

impl SparseGeometry {
    /// Assemble a geometry from parts (used by the voxeliser and the file
    /// reader).
    ///
    /// # Panics
    /// Panics if the parts are inconsistent (index grid size, position
    /// count vs kind count, positions out of range or not matching the
    /// index grid).
    pub fn from_parts(
        shape: [usize; 3],
        index: Vec<u32>,
        positions: Vec<[u32; 3]>,
        kinds: Vec<SiteKind>,
        iolets: Vec<IoLet>,
    ) -> Self {
        assert_eq!(index.len(), shape[0] * shape[1] * shape[2]);
        assert_eq!(positions.len(), kinds.len());
        for (i, p) in positions.iter().enumerate() {
            debug_assert!(
                (p[0] as usize) < shape[0]
                    && (p[1] as usize) < shape[1]
                    && (p[2] as usize) < shape[2],
                "site {i} out of range"
            );
        }
        SparseGeometry {
            shape,
            index,
            positions,
            kinds,
            iolets,
        }
    }

    /// Bounding-box extent `[nx, ny, nz]` in lattice cells.
    #[inline]
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// Number of fluid sites.
    #[inline]
    pub fn fluid_count(&self) -> usize {
        self.positions.len()
    }

    /// Fraction of bounding-box cells that are fluid — the sparsity the
    /// title's "sparse geometry" refers to.
    pub fn fluid_fraction(&self) -> f64 {
        self.fluid_count() as f64 / self.index.len() as f64
    }

    /// Flat grid offset of `(x, y, z)`.
    #[inline]
    pub fn grid_offset(&self, x: usize, y: usize, z: usize) -> usize {
        (x * self.shape[1] + y) * self.shape[2] + z
    }

    /// Fluid-site index at `(x, y, z)`, if that cell is fluid.
    /// Coordinates outside the bounding box are (correctly) not fluid.
    #[inline]
    pub fn site_at(&self, x: i64, y: i64, z: i64) -> Option<u32> {
        if x < 0
            || y < 0
            || z < 0
            || x as usize >= self.shape[0]
            || y as usize >= self.shape[1]
            || z as usize >= self.shape[2]
        {
            return None;
        }
        let v = self.index[self.grid_offset(x as usize, y as usize, z as usize)];
        (v != NOT_FLUID).then_some(v)
    }

    /// Whether `(x, y, z)` is a fluid cell.
    #[inline]
    pub fn is_fluid(&self, x: i64, y: i64, z: i64) -> bool {
        self.site_at(x, y, z).is_some()
    }

    /// Position of fluid site `i`.
    #[inline]
    pub fn position(&self, i: u32) -> [u32; 3] {
        self.positions[i as usize]
    }

    /// Position of fluid site `i` as a `Vec3` (cell centre).
    #[inline]
    pub fn position_v(&self, i: u32) -> Vec3 {
        let p = self.positions[i as usize];
        Vec3::new(p[0] as f64, p[1] as f64, p[2] as f64)
    }

    /// Classification of fluid site `i`.
    #[inline]
    pub fn kind(&self, i: u32) -> SiteKind {
        self.kinds[i as usize]
    }

    /// All fluid-site positions, indexed by site id.
    #[inline]
    pub fn positions(&self) -> &[[u32; 3]] {
        &self.positions
    }

    /// All site kinds, indexed by site id.
    #[inline]
    pub fn kinds(&self) -> &[SiteKind] {
        &self.kinds
    }

    /// The open boundaries.
    #[inline]
    pub fn iolets(&self) -> &[IoLet] {
        &self.iolets
    }

    /// The inlet disks in id order.
    pub fn inlets(&self) -> Vec<&IoLet> {
        self.iolets
            .iter()
            .filter(|i| i.kind == IoLetKind::Inlet)
            .collect()
    }

    /// The outlet disks in id order.
    pub fn outlets(&self) -> Vec<&IoLet> {
        self.iolets
            .iter()
            .filter(|i| i.kind == IoLetKind::Outlet)
            .collect()
    }

    /// Estimated bytes to store this geometry sparsely (positions, kinds
    /// and the index grid) versus densely (full-box per-cell record of
    /// `dense_bytes_per_cell` bytes). Used by experiment E2 (Fig. 1).
    pub fn storage_comparison(&self, dense_bytes_per_cell: usize) -> (usize, usize) {
        let sparse = self.positions.len() * (12 + 4) + self.index.len() * 4;
        let dense = self.index.len() * dense_bytes_per_cell;
        (sparse, dense)
    }

    /// Count of sites per [`SiteKind`] discriminant: `(bulk, wall,
    /// inlet, outlet)`.
    pub fn kind_census(&self) -> (usize, usize, usize, usize) {
        let mut census = (0, 0, 0, 0);
        for k in &self.kinds {
            match k {
                SiteKind::Bulk => census.0 += 1,
                SiteKind::Wall => census.1 += 1,
                SiteKind::Inlet(_) => census.2 += 1,
                SiteKind::Outlet(_) => census.3 += 1,
            }
        }
        census
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SparseGeometry {
        // 2×2×2 box with two fluid cells at (0,0,0) and (1,1,1).
        let mut index = vec![NOT_FLUID; 8];
        index[0] = 0;
        index[7] = 1;
        SparseGeometry::from_parts(
            [2, 2, 2],
            index,
            vec![[0, 0, 0], [1, 1, 1]],
            vec![SiteKind::Bulk, SiteKind::Wall],
            vec![],
        )
    }

    #[test]
    fn site_lookup_and_bounds() {
        let g = tiny();
        assert_eq!(g.site_at(0, 0, 0), Some(0));
        assert_eq!(g.site_at(1, 1, 1), Some(1));
        assert_eq!(g.site_at(1, 0, 0), None);
        assert_eq!(g.site_at(-1, 0, 0), None);
        assert_eq!(g.site_at(2, 0, 0), None);
        assert!(g.is_fluid(0, 0, 0));
        assert!(!g.is_fluid(0, 1, 1));
    }

    #[test]
    fn census_and_fraction() {
        let g = tiny();
        assert_eq!(g.fluid_count(), 2);
        assert_eq!(g.fluid_fraction(), 0.25);
        assert_eq!(g.kind_census(), (1, 1, 0, 0));
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in [
            SiteKind::Bulk,
            SiteKind::Wall,
            SiteKind::Inlet(3),
            SiteKind::Outlet(77),
        ] {
            let (c, id) = k.to_code();
            assert_eq!(SiteKind::from_code(c, id), Some(k));
        }
        assert_eq!(SiteKind::from_code(9, 0), None);
    }

    #[test]
    fn storage_comparison_favours_sparse_for_sparse_domains() {
        let g = tiny();
        // A dense field of 19 f64 distributions + meta ≈ 160 B/cell.
        let (sparse, dense) = g.storage_comparison(160);
        assert!(sparse < dense);
    }

    #[test]
    #[should_panic]
    fn inconsistent_parts_panic() {
        SparseGeometry::from_parts([1, 1, 1], vec![NOT_FLUID; 2], vec![], vec![], vec![]);
    }
}
