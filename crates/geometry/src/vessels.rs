//! Parametric synthetic vasculature.
//!
//! Stand-ins for the patient-specific geometries HemeLB is normally fed:
//! each builder produces a lumen SDF, the inlet/outlet disks capping its
//! open ends, and a bounding box, ready for the voxeliser. The
//! `aneurysm` scenario — a parent vessel with a saccular bulge — is the
//! workload of the paper's Fig. 4 visualisations.

use crate::lattice::{IoLet, IoLetKind, SparseGeometry};
use crate::sdf::{Capsule, Sdf, Sphere, TorusArc, Union};
use crate::vec3::Vec3;
use crate::voxel::{voxelise, VoxelInput};

/// A composed vessel scene: lumen + open ends + bounds.
pub struct VesselBuilder {
    lumen: Union,
    iolets: Vec<IoLet>,
    lo: Vec3,
    hi: Vec3,
}

impl VesselBuilder {
    fn new(lo: Vec3, hi: Vec3) -> Self {
        VesselBuilder {
            lumen: Union::new(),
            iolets: Vec::new(),
            lo,
            hi,
        }
    }

    /// A straight cylindrical vessel of the given `length` and `radius`,
    /// axis along +x, with an inlet at x≈0 and an outlet at x≈length.
    pub fn straight_tube(length: f64, radius: f64) -> Self {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(length, 0.0, 0.0);
        let margin = 2.0;
        let mut vb = VesselBuilder::new(
            Vec3::new(0.0, -radius - margin, -radius - margin),
            Vec3::new(length, radius + margin, radius + margin),
        );
        vb.lumen.add(Capsule::tube(a, b, radius));
        vb.iolets.push(IoLet {
            kind: IoLetKind::Inlet,
            centre: Vec3::new(1.0, 0.0, 0.0),
            normal: Vec3::new(-1.0, 0.0, 0.0),
            radius,
        });
        vb.iolets.push(IoLet {
            kind: IoLetKind::Outlet,
            centre: Vec3::new(length - 1.0, 0.0, 0.0),
            normal: Vec3::new(1.0, 0.0, 0.0),
            radius,
        });
        vb
    }

    /// A parent vessel with a saccular (spherical) aneurysm bulging from
    /// its side at mid-length — the canonical workload of the paper's
    /// Fig. 4. `length` and `radius` describe the parent tube;
    /// `sac_radius` the aneurysm sphere.
    pub fn aneurysm(length: f64, radius: f64, sac_radius: f64) -> Self {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(length, 0.0, 0.0);
        // Sac centre sits above the tube wall so the sphere overlaps the
        // lumen, leaving a neck opening.
        let sac_centre = Vec3::new(length / 2.0, 0.0, radius + sac_radius * 0.55);
        let margin = 2.0;
        let top = sac_centre.z + sac_radius + margin;
        let mut vb = VesselBuilder::new(
            Vec3::new(0.0, -radius - margin, -radius - margin),
            Vec3::new(length, radius + margin, top),
        );
        vb.lumen.add(Capsule::tube(a, b, radius));
        vb.lumen.add(Sphere {
            centre: sac_centre,
            radius: sac_radius,
        });
        vb.iolets.push(IoLet {
            kind: IoLetKind::Inlet,
            centre: Vec3::new(1.0, 0.0, 0.0),
            normal: Vec3::new(-1.0, 0.0, 0.0),
            radius,
        });
        vb.iolets.push(IoLet {
            kind: IoLetKind::Outlet,
            centre: Vec3::new(length - 1.0, 0.0, 0.0),
            normal: Vec3::new(1.0, 0.0, 0.0),
            radius,
        });
        vb
    }

    /// A symmetric Y-bifurcation: parent along +x for `parent_len`, then
    /// two children of `child_len` at ±`half_angle` in the xy-plane.
    /// Child radii follow Murray's law for two equal children
    /// (`r_child = r_parent / 2^(1/3)`).
    pub fn bifurcation(parent_len: f64, child_len: f64, radius: f64, half_angle: f64) -> Self {
        let junction = Vec3::new(parent_len, 0.0, 0.0);
        let child_r = radius / 2f64.powf(1.0 / 3.0);
        let dir_up = Vec3::new(half_angle.cos(), half_angle.sin(), 0.0);
        let dir_dn = Vec3::new(half_angle.cos(), -half_angle.sin(), 0.0);
        let end_up = junction + dir_up * child_len;
        let end_dn = junction + dir_dn * child_len;

        let margin = 2.0;
        let max_y = end_up.y + child_r + margin;
        let mut vb = VesselBuilder::new(
            Vec3::new(0.0, -max_y, -radius - margin),
            Vec3::new(end_up.x + margin, max_y, radius + margin),
        );
        vb.lumen.add(Capsule::tube(Vec3::ZERO, junction, radius));
        // Rounded ends blend the junction; children are cut by outlets.
        vb.lumen.add(Capsule::rounded(junction, end_up, child_r));
        vb.lumen.add(Capsule::rounded(junction, end_dn, child_r));
        vb.iolets.push(IoLet {
            kind: IoLetKind::Inlet,
            centre: Vec3::new(1.0, 0.0, 0.0),
            normal: Vec3::new(-1.0, 0.0, 0.0),
            radius,
        });
        vb.iolets.push(IoLet {
            kind: IoLetKind::Outlet,
            centre: end_up - dir_up * 1.0,
            normal: dir_up,
            radius: child_r,
        });
        vb.iolets.push(IoLet {
            kind: IoLetKind::Outlet,
            centre: end_dn - dir_dn * 1.0,
            normal: dir_dn,
            radius: child_r,
        });
        vb
    }

    /// A 90° circular bend of bend radius `major` and vessel radius
    /// `minor`, in the xy-plane: inlet along −y at angle 0, outlet along
    /// −x at angle 90°.
    pub fn bend(major: f64, minor: f64) -> Self {
        let centre = Vec3::ZERO;
        let u = Vec3::new(1.0, 0.0, 0.0);
        let v = Vec3::new(0.0, 1.0, 0.0);
        let margin = 2.0;
        let mut vb = VesselBuilder::new(
            Vec3::new(-margin, -margin, -minor - margin),
            Vec3::new(
                major + minor + margin,
                major + minor + margin,
                minor + margin,
            ),
        );
        vb.lumen.add(TorusArc {
            centre,
            u,
            v,
            major_radius: major,
            minor_radius: minor,
            arc_radians: std::f64::consts::FRAC_PI_2,
        });
        // Angle 0 end: tube points along +y direction of travel, so the
        // outward normal is −y.
        vb.iolets.push(IoLet {
            kind: IoLetKind::Inlet,
            centre: Vec3::new(major, 1.0, 0.0),
            normal: Vec3::new(0.0, -1.0, 0.0),
            radius: minor,
        });
        // Angle 90° end: outward normal is −x.
        vb.iolets.push(IoLet {
            kind: IoLetKind::Outlet,
            centre: Vec3::new(1.0, major, 0.0),
            normal: Vec3::new(-1.0, 0.0, 0.0),
            radius: minor,
        });
        vb
    }

    /// A vessel along an arbitrary polyline with per-vertex radii
    /// (rounded joints), inlet at the first vertex, outlet at the last —
    /// the building block for synthetic vascular trees.
    ///
    /// # Panics
    /// Panics unless `points.len() == radii.len() >= 2`.
    pub fn polyline(points: &[Vec3], radii: &[f64]) -> Self {
        assert_eq!(points.len(), radii.len());
        assert!(points.len() >= 2, "a polyline needs at least two vertices");
        let margin = 2.0;
        let rmax = radii.iter().cloned().fold(0.0, f64::max);
        let mut lo = Vec3::splat(f64::INFINITY);
        let mut hi = Vec3::splat(f64::NEG_INFINITY);
        for p in points {
            lo = lo.min(*p);
            hi = hi.max(*p);
        }
        let pad = Vec3::splat(rmax + margin);
        let mut vb = VesselBuilder::new(lo - pad, hi + pad);
        for w in points.windows(2).zip(radii.windows(2)) {
            let ((a, b), (ra, rb)) = ((w.0[0], w.0[1]), (w.1[0], w.1[1]));
            // Approximate a taper with the mean radius per segment.
            vb.lumen.add(Capsule::rounded(a, b, (ra + rb) / 2.0));
        }
        let dir_in = (points[1] - points[0]).normalised();
        let n = points.len();
        let dir_out = (points[n - 1] - points[n - 2]).normalised();
        vb.iolets.push(IoLet {
            kind: IoLetKind::Inlet,
            centre: points[0] + dir_in * 1.0,
            normal: -dir_in,
            radius: radii[0],
        });
        vb.iolets.push(IoLet {
            kind: IoLetKind::Outlet,
            centre: points[n - 1] - dir_out * 1.0,
            normal: dir_out,
            radius: radii[n - 1],
        });
        vb
    }

    /// A synthetic bifurcating arterial tree: a root vessel that splits
    /// in two at every generation (radii by Murray's law for equal
    /// children, branching planes alternating), `depth` generations
    /// deep. One inlet at the root, one outlet per leaf — the kind of
    /// multi-outlet sparse geometry HemeLB's patient vasculature
    /// actually looks like.
    pub fn arterial_tree(depth: usize, root_len: f64, root_radius: f64) -> Self {
        assert!(depth >= 1);
        let murray = 2f64.powf(-1.0 / 3.0);
        let mut segments: Vec<(Vec3, Vec3, f64)> = Vec::new();
        let mut leaves: Vec<(Vec3, Vec3, f64)> = Vec::new(); // (end, dir, radius)

        // Depth-first growth.
        #[allow(clippy::too_many_arguments)]
        fn grow(
            p: Vec3,
            dir: Vec3,
            len: f64,
            radius: f64,
            generation: usize,
            depth: usize,
            murray: f64,
            segments: &mut Vec<(Vec3, Vec3, f64)>,
            leaves: &mut Vec<(Vec3, Vec3, f64)>,
        ) {
            let end = p + dir * len;
            segments.push((p, end, radius));
            if generation + 1 == depth {
                leaves.push((end, dir, radius));
                return;
            }
            // Branch in the plane spanned by dir and an alternating
            // normal, ±35°.
            let axis = if generation.is_multiple_of(2) {
                dir.any_orthogonal()
            } else {
                dir.cross(dir.any_orthogonal()).normalised()
            };
            let angle = 35f64.to_radians();
            let (s, c) = angle.sin_cos();
            for sign in [1.0, -1.0] {
                let child_dir = (dir * c + axis * (s * sign)).normalised();
                grow(
                    end,
                    child_dir,
                    len * 0.75,
                    radius * murray,
                    generation + 1,
                    depth,
                    murray,
                    segments,
                    leaves,
                );
            }
        }
        grow(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            root_len,
            root_radius,
            0,
            depth,
            murray,
            &mut segments,
            &mut leaves,
        );

        // Bounding box over all segment endpoints.
        let margin = 2.0;
        let mut lo = Vec3::splat(f64::INFINITY);
        let mut hi = Vec3::splat(f64::NEG_INFINITY);
        for (a, b, _) in &segments {
            lo = lo.min(*a).min(*b);
            hi = hi.max(*a).max(*b);
        }
        let pad = Vec3::splat(root_radius + margin);
        let mut vb = VesselBuilder::new(lo - pad, hi + pad);
        for (a, b, r) in segments {
            vb.lumen.add(Capsule::rounded(a, b, r));
        }
        vb.iolets.push(IoLet {
            kind: IoLetKind::Inlet,
            centre: Vec3::new(1.0, 0.0, 0.0),
            normal: Vec3::new(-1.0, 0.0, 0.0),
            radius: root_radius,
        });
        for (end, dir, r) in leaves {
            vb.iolets.push(IoLet {
                kind: IoLetKind::Outlet,
                centre: end - dir * 1.0,
                normal: dir,
                radius: r,
            });
        }
        vb
    }

    /// The open boundaries, world units.
    pub fn iolets(&self) -> &[IoLet] {
        &self.iolets
    }

    /// Bounding box `(lo, hi)`, world units.
    pub fn bounds(&self) -> (Vec3, Vec3) {
        (self.lo, self.hi)
    }

    /// The lumen SDF.
    pub fn lumen(&self) -> &dyn Sdf {
        &self.lumen
    }

    /// Voxelise at lattice spacing `dx` (world units per cell).
    pub fn voxelise(&self, dx: f64) -> SparseGeometry {
        voxelise(
            &VoxelInput {
                lumen: &self.lumen,
                iolets: self.iolets.clone(),
                lo: self.lo,
                hi: self.hi,
            },
            dx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::SiteKind;

    #[test]
    fn straight_tube_is_connected_and_capped() {
        let geo = VesselBuilder::straight_tube(24.0, 5.0).voxelise(1.0);
        let (_, _, inlets, outlets) = geo.kind_census();
        assert!(inlets > 10, "inlet slab should span the cross-section");
        assert!(outlets > 10);
    }

    #[test]
    fn aneurysm_has_more_sites_than_plain_tube() {
        let tube = VesselBuilder::straight_tube(24.0, 5.0).voxelise(1.0);
        let aneu = VesselBuilder::aneurysm(24.0, 5.0, 7.0).voxelise(1.0);
        assert!(aneu.fluid_count() > tube.fluid_count());
    }

    #[test]
    fn aneurysm_sac_is_wall_bounded() {
        let geo = VesselBuilder::aneurysm(24.0, 5.0, 7.0).voxelise(1.0);
        // The topmost fluid sites (inside the sac) must be wall sites.
        let max_z = geo.positions().iter().map(|p| p[2]).max().unwrap();
        let top_sites: Vec<_> = (0..geo.fluid_count() as u32)
            .filter(|&i| geo.position(i)[2] == max_z)
            .collect();
        assert!(!top_sites.is_empty());
        for i in top_sites {
            assert_eq!(geo.kind(i), SiteKind::Wall);
        }
    }

    #[test]
    fn bifurcation_has_one_inlet_two_outlets() {
        let geo = VesselBuilder::bifurcation(16.0, 14.0, 4.0, 0.5).voxelise(1.0);
        let inlet_ids: std::collections::HashSet<u16> = geo
            .kinds()
            .iter()
            .filter_map(|k| match k {
                SiteKind::Inlet(id) => Some(*id),
                _ => None,
            })
            .collect();
        let outlet_ids: std::collections::HashSet<u16> = geo
            .kinds()
            .iter()
            .filter_map(|k| match k {
                SiteKind::Outlet(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(inlet_ids.len(), 1);
        assert_eq!(outlet_ids.len(), 2, "both children must be capped");
    }

    #[test]
    fn bend_has_fluid_along_the_arc() {
        let geo = VesselBuilder::bend(12.0, 3.0).voxelise(1.0);
        assert!(geo.fluid_count() > 100);
        let (_, _, inlets, outlets) = geo.kind_census();
        assert!(inlets > 0);
        assert!(outlets > 0);
    }

    #[test]
    fn polyline_vessel_connects_inlet_to_outlet() {
        let pts = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(10.0, 2.0, 0.0),
            Vec3::new(18.0, 6.0, 2.0),
            Vec3::new(26.0, 6.0, 6.0),
        ];
        let radii = [4.0, 3.5, 3.0, 2.5];
        let geo = VesselBuilder::polyline(&pts, &radii).voxelise(1.0);
        assert!(geo.fluid_count() > 300);
        let (_, _, inlets, outlets) = geo.kind_census();
        assert!(inlets > 0, "inlet capped");
        assert!(outlets > 0, "outlet capped");
    }

    #[test]
    fn arterial_tree_has_one_inlet_and_a_leaf_outlet_per_branch() {
        let depth = 3;
        let vb = VesselBuilder::arterial_tree(depth, 14.0, 4.0);
        // 2^(depth-1) leaves.
        let outlets = vb
            .iolets()
            .iter()
            .filter(|io| io.kind == crate::lattice::IoLetKind::Outlet)
            .count();
        assert_eq!(outlets, 4);
        let geo = vb.voxelise(1.0);
        assert!(geo.fluid_count() > 1000, "{}", geo.fluid_count());
        let outlet_ids: std::collections::HashSet<u16> = geo
            .kinds()
            .iter()
            .filter_map(|k| match k {
                SiteKind::Outlet(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert!(
            outlet_ids.len() >= 3,
            "most leaves produce outlet sites: {outlet_ids:?}"
        );
        // Murray's law: leaf radii are root/2^((depth-1)/3).
        let leaf_r = vb
            .iolets()
            .iter()
            .find(|io| io.kind == crate::lattice::IoLetKind::Outlet)
            .unwrap()
            .radius;
        let expect = 4.0 * 2f64.powf(-(depth as f64 - 1.0) / 3.0);
        assert!((leaf_r - expect).abs() < 1e-9);
    }

    #[test]
    fn geometries_are_sparse_in_their_boxes() {
        for geo in [
            VesselBuilder::aneurysm(32.0, 5.0, 8.0).voxelise(1.0),
            VesselBuilder::bifurcation(16.0, 14.0, 4.0, 0.5).voxelise(1.0),
            VesselBuilder::bend(14.0, 3.0).voxelise(1.0),
        ] {
            assert!(
                geo.fluid_fraction() < 0.5,
                "vascular geometry should be sparse, got {}",
                geo.fluid_fraction()
            );
        }
    }
}
