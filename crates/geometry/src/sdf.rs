//! Signed-distance primitives and CSG combinators.
//!
//! Vessel shapes are described as signed-distance functions (negative
//! inside the lumen). The voxeliser only needs an inside/outside oracle
//! plus approximate distances near the surface, so the usual "bound, not
//! exact" caveats of CSG min/max distances are acceptable.

use crate::vec3::Vec3;

/// A signed-distance field: `distance(p) < 0` means `p` is inside.
pub trait Sdf: Send + Sync {
    /// Signed distance (or a conservative bound of it) from `p` to the
    /// surface; negative inside.
    fn distance(&self, p: Vec3) -> f64;

    /// Whether `p` lies strictly inside.
    fn contains(&self, p: Vec3) -> bool {
        self.distance(p) < 0.0
    }
}

/// A solid sphere.
#[derive(Debug, Clone, Copy)]
pub struct Sphere {
    /// Centre.
    pub centre: Vec3,
    /// Radius.
    pub radius: f64,
}

impl Sdf for Sphere {
    fn distance(&self, p: Vec3) -> f64 {
        (p - self.centre).norm() - self.radius
    }
}

/// A finite capped cylinder from `a` to `b` with the given radius.
#[derive(Debug, Clone, Copy)]
pub struct Capsule {
    /// One end of the axis.
    pub a: Vec3,
    /// Other end of the axis.
    pub b: Vec3,
    /// Radius.
    pub radius: f64,
    /// If true the ends are hemispherical caps (a capsule); if false the
    /// cylinder is cut flat at `a` and `b`.
    pub rounded: bool,
}

impl Capsule {
    /// A flat-ended cylinder (open vessel segment).
    pub fn tube(a: Vec3, b: Vec3, radius: f64) -> Self {
        Capsule {
            a,
            b,
            radius,
            rounded: false,
        }
    }

    /// A hemispherically capped capsule.
    pub fn rounded(a: Vec3, b: Vec3, radius: f64) -> Self {
        Capsule {
            a,
            b,
            radius,
            rounded: true,
        }
    }
}

impl Sdf for Capsule {
    fn distance(&self, p: Vec3) -> f64 {
        let ab = self.b - self.a;
        let len2 = ab.norm2();
        let t_raw = if len2 == 0.0 {
            0.0
        } else {
            (p - self.a).dot(ab) / len2
        };
        if self.rounded {
            let t = t_raw.clamp(0.0, 1.0);
            let closest = self.a + ab * t;
            (p - closest).norm() - self.radius
        } else {
            // Distance to an infinite cylinder, intersected with the slab
            // between the two cap planes (exact for points beside the
            // tube, a bound near edges — fine for voxelisation).
            let axis_point = self.a + ab * t_raw;
            let radial = (p - axis_point).norm() - self.radius;
            let cap = if t_raw < 0.0 {
                -t_raw * len2.sqrt()
            } else if t_raw > 1.0 {
                (t_raw - 1.0) * len2.sqrt()
            } else {
                // Negative distance to the nearer cap plane.
                -(t_raw.min(1.0 - t_raw)) * len2.sqrt()
            };
            radial.max(cap)
        }
    }
}

/// A torus segment (circular-arc bend) lying in the plane spanned by `u`
/// and `v` about `centre`; the tube sweeps the arc from angle 0 to
/// `arc_radians`.
#[derive(Debug, Clone)]
pub struct TorusArc {
    /// Centre of the arc circle.
    pub centre: Vec3,
    /// First in-plane unit axis (angle 0 direction).
    pub u: Vec3,
    /// Second in-plane unit axis (angle π/2 direction).
    pub v: Vec3,
    /// Radius of the arc circle (bend radius).
    pub major_radius: f64,
    /// Radius of the swept tube (vessel radius).
    pub minor_radius: f64,
    /// Arc extent in radians, from 0 to `arc_radians`.
    pub arc_radians: f64,
}

impl Sdf for TorusArc {
    fn distance(&self, p: Vec3) -> f64 {
        let rel = p - self.centre;
        let x = rel.dot(self.u);
        let y = rel.dot(self.v);
        let theta = y.atan2(x);
        let theta_clamped = theta.clamp(0.0, self.arc_radians);
        let ring_point = self.centre
            + (self.u * theta_clamped.cos() + self.v * theta_clamped.sin()) * self.major_radius;
        (p - ring_point).norm() - self.minor_radius
    }
}

/// CSG union of a set of shapes: distance is the minimum of the parts.
pub struct Union {
    parts: Vec<Box<dyn Sdf>>,
}

impl Union {
    /// An empty union (contains nothing: distance +∞).
    pub fn new() -> Self {
        Union { parts: Vec::new() }
    }

    /// Add a shape to the union.
    pub fn add(&mut self, s: impl Sdf + 'static) -> &mut Self {
        self.parts.push(Box::new(s));
        self
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the union has no parts.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl Default for Union {
    fn default() -> Self {
        Self::new()
    }
}

impl Sdf for Union {
    fn distance(&self, p: Vec3) -> f64 {
        self.parts
            .iter()
            .map(|s| s.distance(p))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Intersection of a shape with a half-space `(p - point)·normal <= 0`
/// (used to cut vessels flat at inlet/outlet planes).
pub struct HalfSpaceCut<S> {
    /// The shape being cut.
    pub shape: S,
    /// A point on the cutting plane.
    pub point: Vec3,
    /// Outward normal: the side `(p-point)·normal > 0` is removed.
    pub normal: Vec3,
}

impl<S: Sdf> Sdf for HalfSpaceCut<S> {
    fn distance(&self, p: Vec3) -> f64 {
        let plane = (p - self.point).dot(self.normal);
        self.shape.distance(p).max(plane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_distance_signs() {
        let s = Sphere {
            centre: Vec3::new(1.0, 2.0, 3.0),
            radius: 2.0,
        };
        assert!(s.contains(Vec3::new(1.0, 2.0, 3.0)));
        assert!(s.contains(Vec3::new(2.5, 2.0, 3.0)));
        assert!(!s.contains(Vec3::new(4.0, 2.0, 3.0)));
        assert!((s.distance(Vec3::new(1.0, 2.0, 6.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tube_contains_axis_not_outside() {
        let t = Capsule::tube(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0), 1.5);
        assert!(t.contains(Vec3::new(5.0, 0.0, 0.0)));
        assert!(t.contains(Vec3::new(5.0, 1.0, 0.0)));
        assert!(!t.contains(Vec3::new(5.0, 2.0, 0.0)));
        // Beyond the flat caps:
        assert!(!t.contains(Vec3::new(-0.5, 0.0, 0.0)));
        assert!(!t.contains(Vec3::new(10.5, 0.0, 0.0)));
    }

    #[test]
    fn rounded_capsule_extends_past_ends() {
        let t = Capsule::rounded(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0), 1.5);
        assert!(t.contains(Vec3::new(-1.0, 0.0, 0.0)));
        assert!(t.contains(Vec3::new(11.0, 0.0, 0.0)));
        assert!(!t.contains(Vec3::new(-2.0, 0.0, 0.0)));
    }

    #[test]
    fn torus_arc_quarter_bend() {
        // Quarter bend of radius 10, tube radius 1, in the xy-plane.
        let arc = TorusArc {
            centre: Vec3::ZERO,
            u: Vec3::new(1.0, 0.0, 0.0),
            v: Vec3::new(0.0, 1.0, 0.0),
            major_radius: 10.0,
            minor_radius: 1.0,
            arc_radians: std::f64::consts::FRAC_PI_2,
        };
        // On the ring at angle 0 and at 90°:
        assert!(arc.contains(Vec3::new(10.0, 0.0, 0.0)));
        assert!(arc.contains(Vec3::new(0.0, 10.0, 0.0)));
        // Mid-arc (45°):
        let m = std::f64::consts::FRAC_PI_4;
        assert!(arc.contains(Vec3::new(10.0 * m.cos(), 10.0 * m.sin(), 0.0)));
        // Past the arc end (angle 180°) the tube is absent:
        assert!(!arc.contains(Vec3::new(-10.0, 0.0, 0.0)));
        // Centre of the bend circle is far from the tube:
        assert!(!arc.contains(Vec3::ZERO));
    }

    #[test]
    fn union_is_min_of_parts() {
        let mut u = Union::new();
        u.add(Sphere {
            centre: Vec3::ZERO,
            radius: 1.0,
        });
        u.add(Sphere {
            centre: Vec3::new(5.0, 0.0, 0.0),
            radius: 1.0,
        });
        assert!(u.contains(Vec3::ZERO));
        assert!(u.contains(Vec3::new(5.0, 0.0, 0.0)));
        assert!(!u.contains(Vec3::new(2.5, 0.0, 0.0)));
        assert!(Union::new().distance(Vec3::ZERO).is_infinite());
    }

    #[test]
    fn half_space_cut_removes_one_side() {
        let cut = HalfSpaceCut {
            shape: Sphere {
                centre: Vec3::ZERO,
                radius: 2.0,
            },
            point: Vec3::ZERO,
            normal: Vec3::new(1.0, 0.0, 0.0),
        };
        assert!(cut.contains(Vec3::new(-1.0, 0.0, 0.0)));
        assert!(!cut.contains(Vec3::new(1.0, 0.0, 0.0)));
    }
}
