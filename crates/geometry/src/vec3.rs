//! Minimal 3-vector used throughout the geometry, solver and renderer.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A 3-component double-precision vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm (avoids the square root).
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in this direction; returns `self` unchanged if the
    /// norm is zero.
    #[inline]
    pub fn normalised(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            self
        } else {
            self / n
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Linear interpolation `self + t (o - self)`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self + (o - self) * t
    }

    /// Some unit vector orthogonal to `self` (assumes `self` nonzero).
    pub fn any_orthogonal(self) -> Vec3 {
        let trial = if self.x.abs() < 0.9 {
            Vec3::new(1.0, 0.0, 0.0)
        } else {
            Vec3::new(0.0, 1.0, 0.0)
        };
        self.cross(trial).normalised()
    }

    /// As an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        let b = Vec3::new(0.5, 4.0, -1.0);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 2.0 / 2.0, a);
        assert_eq!(-(-a), a);
        assert_eq!(a + Vec3::ZERO, a);
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn normalised_has_unit_length() {
        let v = Vec3::new(3.0, 4.0, 12.0).normalised();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalised(), Vec3::ZERO);
    }

    #[test]
    fn any_orthogonal_is_orthogonal_and_unit() {
        for v in [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(-0.3, 2.0, 0.7),
        ] {
            let o = v.any_orthogonal();
            assert!(v.dot(o).abs() < 1e-12, "{v:?}");
            assert!((o.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.0, 5.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert_eq!(mid, Vec3::new(0.0, 1.0, 4.0));
    }
}
