//! Voxelisation: sample a signed-distance vessel onto the sparse lattice.
//!
//! Cells whose centre lies inside the lumen *and* inside every
//! inlet/outlet half-space become fluid sites. Sites within one cell of
//! an open-end plane are classified as inlet/outlet sites; remaining
//! fluid sites with a non-fluid 26-neighbour are wall sites; the rest are
//! bulk.

use crate::lattice::{IoLet, IoLetKind, SiteKind, SparseGeometry, NOT_FLUID};
use crate::sdf::Sdf;
use crate::vec3::Vec3;

/// Input to the voxeliser: the lumen shape plus open-end disks.
pub struct VoxelInput<'a> {
    /// Lumen signed-distance function (negative inside).
    pub lumen: &'a dyn Sdf,
    /// Open boundaries. Normals must point *out* of the fluid domain;
    /// fluid only exists on the `(p - centre)·normal <= 0` side.
    pub iolets: Vec<IoLet>,
    /// Bounding box minimum corner in world units.
    pub lo: Vec3,
    /// Bounding box maximum corner in world units.
    pub hi: Vec3,
}

/// Voxelise at the given lattice spacing `dx` (world units per cell).
///
/// Geometry coordinates in the result are *lattice* units: cell `(x,y,z)`
/// has its centre at `lo + (x+0.5, y+0.5, z+0.5)·dx` in world units.
pub fn voxelise(input: &VoxelInput<'_>, dx: f64) -> SparseGeometry {
    assert!(dx > 0.0, "lattice spacing must be positive");
    let extent = input.hi - input.lo;
    let shape = [
        (extent.x / dx).ceil().max(1.0) as usize,
        (extent.y / dx).ceil().max(1.0) as usize,
        (extent.z / dx).ceil().max(1.0) as usize,
    ];

    let world_of = |x: usize, y: usize, z: usize| -> Vec3 {
        input.lo
            + Vec3::new(
                (x as f64 + 0.5) * dx,
                (y as f64 + 0.5) * dx,
                (z as f64 + 0.5) * dx,
            )
    };

    let in_fluid = |p: Vec3| -> bool {
        if !input.lumen.contains(p) {
            return false;
        }
        input
            .iolets
            .iter()
            .all(|io| (p - io.centre).dot(io.normal) <= 0.0)
    };

    // Pass 1: mark fluid cells.
    let ncells = shape[0] * shape[1] * shape[2];
    let mut fluid = vec![false; ncells];
    let off = |x: usize, y: usize, z: usize| (x * shape[1] + y) * shape[2] + z;
    for x in 0..shape[0] {
        for y in 0..shape[1] {
            for z in 0..shape[2] {
                fluid[off(x, y, z)] = in_fluid(world_of(x, y, z));
            }
        }
    }

    // Pass 2: index fluid cells and classify.
    let mut index = vec![NOT_FLUID; ncells];
    let mut positions = Vec::new();
    let mut kinds = Vec::new();
    let is_fluid_cell = |x: i64, y: i64, z: i64| -> bool {
        if x < 0
            || y < 0
            || z < 0
            || x as usize >= shape[0]
            || y as usize >= shape[1]
            || z as usize >= shape[2]
        {
            return false;
        }
        fluid[off(x as usize, y as usize, z as usize)]
    };

    for x in 0..shape[0] {
        for y in 0..shape[1] {
            for z in 0..shape[2] {
                if !fluid[off(x, y, z)] {
                    continue;
                }
                let id = positions.len() as u32;
                index[off(x, y, z)] = id;
                positions.push([x as u32, y as u32, z as u32]);

                let p = world_of(x, y, z);
                let kind = classify(p, dx, &input.iolets, || {
                    let (xi, yi, zi) = (x as i64, y as i64, z as i64);
                    let mut has_solid_neighbour = false;
                    'scan: for ddx in -1..=1i64 {
                        for ddy in -1..=1i64 {
                            for ddz in -1..=1i64 {
                                if ddx == 0 && ddy == 0 && ddz == 0 {
                                    continue;
                                }
                                if !is_fluid_cell(xi + ddx, yi + ddy, zi + ddz) {
                                    has_solid_neighbour = true;
                                    break 'scan;
                                }
                            }
                        }
                    }
                    has_solid_neighbour
                });
                kinds.push(kind);
            }
        }
    }

    // Geometry iolets are stored in lattice units for downstream use.
    let lattice_iolets: Vec<IoLet> = input
        .iolets
        .iter()
        .map(|io| IoLet {
            kind: io.kind,
            centre: (io.centre - input.lo) / dx - Vec3::splat(0.5),
            normal: io.normal,
            radius: io.radius / dx,
        })
        .collect();

    SparseGeometry::from_parts(shape, index, positions, kinds, lattice_iolets)
}

/// Classify one fluid cell: iolet slab membership wins, then wall
/// adjacency (computed lazily), then bulk.
fn classify(
    p: Vec3,
    dx: f64,
    iolets: &[IoLet],
    has_solid_neighbour: impl FnOnce() -> bool,
) -> SiteKind {
    let mut inlet_id = 0u16;
    let mut outlet_id = 0u16;
    for io in iolets {
        let along = (p - io.centre).dot(io.normal);
        // Fluid exists at along <= 0; the slab is the last cell layer
        // before the plane.
        if along > -dx && along <= 0.0 {
            return match io.kind {
                IoLetKind::Inlet => SiteKind::Inlet(inlet_id),
                IoLetKind::Outlet => SiteKind::Outlet(outlet_id),
            };
        }
        match io.kind {
            IoLetKind::Inlet => inlet_id += 1,
            IoLetKind::Outlet => outlet_id += 1,
        }
    }
    if has_solid_neighbour() {
        SiteKind::Wall
    } else {
        SiteKind::Bulk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdf::Capsule;

    fn straight_tube_input(len: f64, radius: f64) -> (Capsule, Vec<IoLet>, Vec3, Vec3) {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(len, 0.0, 0.0);
        let tube = Capsule::tube(a, b, radius);
        let iolets = vec![
            IoLet {
                kind: IoLetKind::Inlet,
                centre: a + Vec3::new(1.0, 0.0, 0.0),
                normal: Vec3::new(-1.0, 0.0, 0.0),
                radius,
            },
            IoLet {
                kind: IoLetKind::Outlet,
                centre: b - Vec3::new(1.0, 0.0, 0.0),
                normal: Vec3::new(1.0, 0.0, 0.0),
                radius,
            },
        ];
        let lo = Vec3::new(0.0, -radius - 2.0, -radius - 2.0);
        let hi = Vec3::new(len, radius + 2.0, radius + 2.0);
        (tube, iolets, lo, hi)
    }

    #[test]
    fn tube_voxelisation_has_all_site_kinds() {
        let (tube, iolets, lo, hi) = straight_tube_input(20.0, 4.0);
        let geo = voxelise(
            &VoxelInput {
                lumen: &tube,
                iolets,
                lo,
                hi,
            },
            1.0,
        );
        let (bulk, wall, inlet, outlet) = geo.kind_census();
        assert!(bulk > 0, "expected bulk sites");
        assert!(wall > 0, "expected wall sites");
        assert!(inlet > 0, "expected inlet sites");
        assert!(outlet > 0, "expected outlet sites");
        // A tube in a square box is roughly π r² / (2r+4)² of the box.
        assert!(geo.fluid_fraction() > 0.1 && geo.fluid_fraction() < 0.7);
    }

    #[test]
    fn refining_dx_scales_site_count_cubically() {
        let (tube, iolets, lo, hi) = straight_tube_input(16.0, 4.0);
        let coarse = voxelise(
            &VoxelInput {
                lumen: &tube,
                iolets: iolets.clone(),
                lo,
                hi,
            },
            1.0,
        );
        let fine = voxelise(
            &VoxelInput {
                lumen: &tube,
                iolets,
                lo,
                hi,
            },
            0.5,
        );
        let ratio = fine.fluid_count() as f64 / coarse.fluid_count() as f64;
        assert!(
            (4.0..=16.0).contains(&ratio),
            "halving dx should multiply sites by ~8, got {ratio}"
        );
    }

    #[test]
    fn index_grid_matches_positions() {
        let (tube, iolets, lo, hi) = straight_tube_input(12.0, 3.0);
        let geo = voxelise(
            &VoxelInput {
                lumen: &tube,
                iolets,
                lo,
                hi,
            },
            1.0,
        );
        for i in 0..geo.fluid_count() as u32 {
            let [x, y, z] = geo.position(i);
            assert_eq!(geo.site_at(x as i64, y as i64, z as i64), Some(i));
        }
    }

    #[test]
    fn interior_of_tube_is_bulk() {
        let (tube, iolets, lo, hi) = straight_tube_input(20.0, 5.0);
        let geo = voxelise(
            &VoxelInput {
                lumen: &tube,
                iolets,
                lo,
                hi,
            },
            1.0,
        );
        // A site near the axis at mid-length must be bulk.
        let mid = geo
            .positions()
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = dist_to(a, 10.0, geo.shape());
                let db = dist_to(b, 10.0, geo.shape());
                da.partial_cmp(&db).unwrap()
            })
            .map(|(i, _)| i as u32)
            .unwrap();
        assert_eq!(geo.kind(mid), SiteKind::Bulk);
    }

    fn dist_to(p: &[u32; 3], x_mid: f64, shape: [usize; 3]) -> f64 {
        let cy = shape[1] as f64 / 2.0;
        let cz = shape[2] as f64 / 2.0;
        let dx = p[0] as f64 - x_mid;
        let dy = p[1] as f64 - cy;
        let dz = p[2] as f64 - cz;
        dx * dx + dy * dy + dz * dz
    }
}
