//! The `.sgmy` two-level sparse geometry file format.
//!
//! Our analogue of HemeLB's `.gmy`: a header, then **level one** — the
//! fluid-site count of every block (coarse information sufficient for an
//! initial approximate domain decomposition without touching site data) —
//! then **level two** — fixed-width per-site records grouped by block, so
//! a reader can seek directly to any block range. This is the property
//! the distributed loader ([`crate::distio`]) exploits: each *reading
//! core* reads only its slice of level two (§IV-B: "a subset of the cores
//! then read the detailed geometry data and distribute").
//!
//! ```text
//! magic "SGMY" | version u32 | shape 3×u64 | block_size u64
//! fluid_total u64 | iolet count u64 | iolets…
//! level 1: block count u64 | fluid_per_block u32 × blocks
//! level 2: per non-empty block, in block order:
//!          site record × count  (local x,y,z u8 | kind u8 | iolet id u16)
//! ```
//!
//! All integers little-endian. Site records are 6 bytes, so the byte
//! offset of any block's records follows from the level-one table alone.

use crate::blocks::BlockDecomposition;
use crate::lattice::{IoLet, IoLetKind, SiteKind, SparseGeometry, NOT_FLUID};
use crate::vec3::Vec3;
use std::io::{self, Read, Seek, SeekFrom, Write};

/// File magic.
pub const MAGIC: &[u8; 4] = b"SGMY";
/// Format version.
pub const VERSION: u32 = 1;
/// Bytes per level-two site record.
pub const SITE_RECORD_BYTES: u64 = 6;

/// Parsed header plus the level-one table.
#[derive(Debug, Clone)]
pub struct SgmyHeader {
    /// Lattice bounding-box shape.
    pub shape: [usize; 3],
    /// Block edge length.
    pub block_size: usize,
    /// Total fluid sites in the file.
    pub fluid_total: u64,
    /// Open boundaries.
    pub iolets: Vec<IoLet>,
    /// Level one: fluid sites per block, x-major block order.
    pub fluid_per_block: Vec<u32>,
    /// Byte offset in the file where level two begins.
    pub data_offset: u64,
}

impl SgmyHeader {
    /// Blocks per axis.
    pub fn blocks(&self) -> [usize; 3] {
        [
            self.shape[0].div_ceil(self.block_size),
            self.shape[1].div_ceil(self.block_size),
            self.shape[2].div_ceil(self.block_size),
        ]
    }

    /// Byte offset of block `b`'s level-two records.
    pub fn block_offset(&self, b: usize) -> u64 {
        let before: u64 = self.fluid_per_block[..b].iter().map(|&c| c as u64).sum();
        self.data_offset + before * SITE_RECORD_BYTES
    }

    /// Byte length of block `b`'s level-two records.
    pub fn block_len(&self, b: usize) -> u64 {
        self.fluid_per_block[b] as u64 * SITE_RECORD_BYTES
    }

    /// Lattice coordinates of the minimum corner of block `b`.
    pub fn block_origin(&self, b: usize) -> [u32; 3] {
        let blocks = self.blocks();
        let bz = b % blocks[2];
        let by = (b / blocks[2]) % blocks[1];
        let bx = b / (blocks[2] * blocks[1]);
        [
            (bx * self.block_size) as u32,
            (by * self.block_size) as u32,
            (bz * self.block_size) as u32,
        ]
    }
}

fn put_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn put_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn put_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn get_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn get_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn get_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serialise a geometry in `.sgmy` form.
///
/// # Errors
/// Propagates I/O errors from `w`. Panics if `block_size` is 0 or larger
/// than 255 (local offsets are stored as bytes).
pub fn write_sgmy(geo: &SparseGeometry, block_size: usize, w: &mut impl Write) -> io::Result<()> {
    assert!(
        (1..=255).contains(&block_size),
        "block size must fit in a byte"
    );
    let dec = BlockDecomposition::build(geo, block_size);
    let shape = geo.shape();

    w.write_all(MAGIC)?;
    put_u32(w, VERSION)?;
    for s in shape {
        put_u64(w, s as u64)?;
    }
    put_u64(w, block_size as u64)?;
    put_u64(w, geo.fluid_count() as u64)?;
    put_u64(w, geo.iolets().len() as u64)?;
    for io_ in geo.iolets() {
        w.write_all(&[match io_.kind {
            IoLetKind::Inlet => 0u8,
            IoLetKind::Outlet => 1u8,
        }])?;
        for v in [io_.centre, io_.normal] {
            put_f64(w, v.x)?;
            put_f64(w, v.y)?;
            put_f64(w, v.z)?;
        }
        put_f64(w, io_.radius)?;
    }

    // Level one.
    put_u64(w, dec.block_count() as u64)?;
    for &c in &dec.fluid_per_block {
        put_u32(w, c)?;
    }

    // Level two: group sites by block. Build per-block site lists first
    // so records are written in block order regardless of site order.
    let mut by_block: Vec<Vec<u32>> = vec![Vec::new(); dec.block_count()];
    for i in 0..geo.fluid_count() as u32 {
        by_block[dec.block_of(geo.position(i))].push(i);
    }
    for sites in &by_block {
        for &i in sites {
            let [x, y, z] = geo.position(i);
            let rec = [
                (x as usize % block_size) as u8,
                (y as usize % block_size) as u8,
                (z as usize % block_size) as u8,
            ];
            w.write_all(&rec)?;
            let (code, id) = geo.kind(i).to_code();
            w.write_all(&[code])?;
            w.write_all(&id.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Read the header and level-one table (cheap: no site data touched).
pub fn read_header(r: &mut impl Read) -> io::Result<SgmyHeader> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an SGMY file (bad magic)"));
    }
    let version = get_u32(r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported SGMY version {version}")));
    }
    let shape = [
        get_u64(r)? as usize,
        get_u64(r)? as usize,
        get_u64(r)? as usize,
    ];
    let block_size = get_u64(r)? as usize;
    if block_size == 0 || block_size > 255 {
        return Err(bad(format!("invalid block size {block_size}")));
    }
    let fluid_total = get_u64(r)?;
    let n_iolets = get_u64(r)?;
    if n_iolets > 1_000_000 {
        return Err(bad(format!("implausible iolet count {n_iolets}")));
    }
    let mut iolets = Vec::with_capacity(n_iolets as usize);
    for _ in 0..n_iolets {
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind)?;
        let kind = match kind[0] {
            0 => IoLetKind::Inlet,
            1 => IoLetKind::Outlet,
            k => return Err(bad(format!("invalid iolet kind {k}"))),
        };
        let centre = Vec3::new(get_f64(r)?, get_f64(r)?, get_f64(r)?);
        let normal = Vec3::new(get_f64(r)?, get_f64(r)?, get_f64(r)?);
        let radius = get_f64(r)?;
        iolets.push(IoLet {
            kind,
            centre,
            normal,
            radius,
        });
    }
    let block_count = get_u64(r)? as usize;
    let expected_blocks = shape[0].div_ceil(block_size)
        * shape[1].div_ceil(block_size)
        * shape[2].div_ceil(block_size);
    if block_count != expected_blocks {
        return Err(bad(format!(
            "block count {block_count} does not match shape (expected {expected_blocks})"
        )));
    }
    let mut fluid_per_block = Vec::with_capacity(block_count);
    let mut sum = 0u64;
    for _ in 0..block_count {
        let c = get_u32(r)?;
        sum += c as u64;
        fluid_per_block.push(c);
    }
    if sum != fluid_total {
        return Err(bad(format!(
            "level-one total {sum} disagrees with header fluid count {fluid_total}"
        )));
    }
    // Header size: fixed part + iolets + level-1 table.
    let data_offset =
        4 + 4 + 3 * 8 + 8 + 8 + 8 + n_iolets * (1 + 7 * 8) + 8 + block_count as u64 * 4;
    Ok(SgmyHeader {
        shape,
        block_size,
        fluid_total,
        iolets,
        fluid_per_block,
        data_offset,
    })
}

/// One decoded level-two record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteRecord {
    /// Absolute lattice position.
    pub position: [u32; 3],
    /// Site classification.
    pub kind: SiteKind,
}

/// Decode the level-two records of blocks `block_range` from a reader
/// positioned anywhere (seeks to the right offset itself).
pub fn read_block_sites<R: Read + Seek>(
    header: &SgmyHeader,
    r: &mut R,
    block_range: std::ops::Range<usize>,
) -> io::Result<Vec<SiteRecord>> {
    let start = header.block_offset(block_range.start);
    let total_sites: u64 = header.fluid_per_block[block_range.clone()]
        .iter()
        .map(|&c| c as u64)
        .sum();
    r.seek(SeekFrom::Start(start))?;
    let mut raw = vec![0u8; (total_sites * SITE_RECORD_BYTES) as usize];
    r.read_exact(&mut raw)?;

    let mut out = Vec::with_capacity(total_sites as usize);
    let mut cursor = 0usize;
    for b in block_range {
        let origin = header.block_origin(b);
        for _ in 0..header.fluid_per_block[b] {
            let rec = &raw[cursor..cursor + SITE_RECORD_BYTES as usize];
            cursor += SITE_RECORD_BYTES as usize;
            let position = [
                origin[0] + rec[0] as u32,
                origin[1] + rec[1] as u32,
                origin[2] + rec[2] as u32,
            ];
            let kind = SiteKind::from_code(rec[3], u16::from_le_bytes([rec[4], rec[5]]))
                .ok_or_else(|| bad(format!("invalid site kind code {}", rec[3])))?;
            if position[0] as usize >= header.shape[0]
                || position[1] as usize >= header.shape[1]
                || position[2] as usize >= header.shape[2]
            {
                return Err(bad("site position outside lattice shape"));
            }
            out.push(SiteRecord { position, kind });
        }
    }
    Ok(out)
}

/// Read an entire `.sgmy` stream back into a [`SparseGeometry`].
pub fn read_sgmy<R: Read + Seek>(r: &mut R) -> io::Result<SparseGeometry> {
    let header = read_header(r)?;
    let sites = read_block_sites(&header, r, 0..header.fluid_per_block.len())?;
    Ok(assemble(&header, sites))
}

/// Build a [`SparseGeometry`] from a header plus a full set of records
/// (in any order).
pub fn assemble(header: &SgmyHeader, sites: Vec<SiteRecord>) -> SparseGeometry {
    let shape = header.shape;
    let mut index = vec![NOT_FLUID; shape[0] * shape[1] * shape[2]];
    let mut positions = Vec::with_capacity(sites.len());
    let mut kinds = Vec::with_capacity(sites.len());
    for s in sites {
        let off = (s.position[0] as usize * shape[1] + s.position[1] as usize) * shape[2]
            + s.position[2] as usize;
        index[off] = positions.len() as u32;
        positions.push(s.position);
        kinds.push(s.kind);
    }
    SparseGeometry::from_parts(shape, index, positions, kinds, header.iolets.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vessels::VesselBuilder;
    use std::io::Cursor;

    fn round_trip(geo: &SparseGeometry, block_size: usize) -> SparseGeometry {
        let mut buf = Vec::new();
        write_sgmy(geo, block_size, &mut buf).unwrap();
        read_sgmy(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn full_round_trip_preserves_geometry() {
        let geo = VesselBuilder::aneurysm(24.0, 5.0, 6.0).voxelise(1.0);
        let back = round_trip(&geo, 8);
        assert_eq!(back.shape(), geo.shape());
        assert_eq!(back.fluid_count(), geo.fluid_count());
        assert_eq!(back.iolets(), geo.iolets());
        // Site order may differ (file is block-ordered); compare as sets
        // through the index grid.
        for i in 0..geo.fluid_count() as u32 {
            let [x, y, z] = geo.position(i);
            let j = back
                .site_at(x as i64, y as i64, z as i64)
                .expect("site present after round trip");
            assert_eq!(back.kind(j), geo.kind(i));
        }
    }

    #[test]
    fn round_trip_with_odd_block_size() {
        let geo = VesselBuilder::straight_tube(15.0, 3.0).voxelise(1.0);
        let back = round_trip(&geo, 5);
        assert_eq!(back.fluid_count(), geo.fluid_count());
    }

    #[test]
    fn header_readable_without_site_data() {
        let geo = VesselBuilder::straight_tube(20.0, 4.0).voxelise(1.0);
        let mut buf = Vec::new();
        write_sgmy(&geo, 8, &mut buf).unwrap();
        let header = read_header(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(header.fluid_total, geo.fluid_count() as u64);
        assert_eq!(header.shape, geo.shape());
        assert_eq!(header.iolets.len(), 2);
        assert_eq!(
            header
                .fluid_per_block
                .iter()
                .map(|&c| c as u64)
                .sum::<u64>(),
            header.fluid_total
        );
    }

    #[test]
    fn block_offsets_address_level_two_correctly() {
        let geo = VesselBuilder::straight_tube(20.0, 4.0).voxelise(1.0);
        let mut buf = Vec::new();
        write_sgmy(&geo, 8, &mut buf).unwrap();
        let header = read_header(&mut Cursor::new(&buf)).unwrap();
        // Reading [0, n) in two halves equals reading it at once.
        let n = header.fluid_per_block.len();
        let mut c = Cursor::new(&buf);
        let all = read_block_sites(&header, &mut c, 0..n).unwrap();
        let first = read_block_sites(&header, &mut c, 0..n / 2).unwrap();
        let second = read_block_sites(&header, &mut c, n / 2..n).unwrap();
        let stitched: Vec<_> = first.into_iter().chain(second).collect();
        assert_eq!(all, stitched);
        assert_eq!(all.len(), geo.fluid_count());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_sgmy(
            &VesselBuilder::straight_tube(10.0, 2.0).voxelise(1.0),
            8,
            &mut buf,
        )
        .unwrap();
        buf[0] = b'X';
        assert!(read_sgmy(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let mut buf = Vec::new();
        write_sgmy(
            &VesselBuilder::straight_tube(10.0, 2.0).voxelise(1.0),
            8,
            &mut buf,
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_sgmy(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn corrupt_kind_code_rejected() {
        let geo = VesselBuilder::straight_tube(10.0, 2.0).voxelise(1.0);
        let mut buf = Vec::new();
        write_sgmy(&geo, 8, &mut buf).unwrap();
        let header = read_header(&mut Cursor::new(&buf)).unwrap();
        // Corrupt the kind byte of the first site record.
        let off = header.data_offset as usize + 3;
        buf[off] = 200;
        assert!(read_sgmy(&mut Cursor::new(buf)).is_err());
    }
}
