//! The farm scheduler: concurrent multi-rank jobs over one shared
//! worker pool, with deterministic dispatch, per-job checkpoint/restart
//! and bounded retry.
//!
//! ## Execution model
//!
//! The pool is a budget of *rank slots* ([`FarmConfig::slots`]): a job
//! needing `ranks` ranks occupies that many slots for its whole run
//! (each rank is one blocking SPMD thread — LB collectives block, so
//! ranks cannot share a cooperative thread pool without deadlock; each
//! rank still gets its own rayon pool of
//! [`FarmConfig::threads_per_rank`] workers for intra-rank loops).
//!
//! ## Determinism
//!
//! The schedule is a pure function of (submitted specs, tenant weights,
//! slot count): dispatch order comes from the fair-share queue, and
//! completions are *committed in dispatch order* (head-of-line commit —
//! the scheduler joins the oldest running job before reusing its
//! slots). Physically, later jobs still finish whenever they finish;
//! only the recorded completion order and slot reuse are serialised.
//! This trades a little work-conservation for a completion order and
//! per-job state that are bit-reproducible run to run — the property
//! the determinism proptest pins.
//!
//! ## Fault isolation
//!
//! Each job runs in its own SPMD world with its own fault session: a
//! [`FaultPlan`](hemelb_parallel::FaultPlan) on one job — including a
//! `KillRank` — restarts *that world only*, where the job recovers from
//! its latest checkpoint ([`DistSolver::try_restore`]) and replays
//! bit-exactly. Attempts that fail outright (panic or infrastructure
//! error) are retried with exponential backoff up to
//! [`FarmConfig::max_retries`] times before the job is marked failed;
//! a failed job never takes the farm down.

use crate::cache::PrepCache;
use crate::queue::{JobId, JobQueue};
use crate::spec::JobSpec;
use hemelb_core::DistSolver;
use hemelb_obs::{Histogram, ObsReport};
use hemelb_parallel::{
    install_quiet_panic_hook, run_spmd_opts, InjectedJobFault, RankKilled, SpmdOptions,
};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Shared pool capacity in rank slots. A job needing more ranks
    /// than the pool holds still runs (it takes the whole pool).
    pub slots: usize,
    /// Rayon workers per rank inside each job.
    pub threads_per_rank: usize,
    /// Re-dispatches after a failed attempt before the job is marked
    /// failed (so a job gets `max_retries + 1` attempts).
    pub max_retries: u32,
    /// Base backoff before the first retry, doubling per further retry.
    pub backoff_ms: u64,
    /// Root directory for per-job checkpoint workdirs.
    pub workdir: PathBuf,
    /// Keep per-job workdirs after completion (debugging).
    pub keep_workdirs: bool,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            slots: 4,
            threads_per_rank: 1,
            max_retries: 2,
            backoff_ms: 10,
            workdir: std::env::temp_dir().join(format!("hemelb_farm_{}", std::process::id())),
            keep_workdirs: false,
        }
    }
}

/// Terminal state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to its final step (possibly after in-world restarts and/or
    /// scheduler retries).
    Completed,
    /// Every attempt failed; the error of the last one is recorded.
    Failed,
}

/// What the farm remembers about one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Identity assigned at submission.
    pub id: JobId,
    /// Spec name.
    pub name: String,
    /// Owning tenant.
    pub tenant: String,
    /// Terminal state.
    pub status: JobStatus,
    /// Attempts consumed (1 = first try sufficed).
    pub attempts: u32,
    /// In-world restarts (injected kills recovered via checkpoint).
    pub restarts: u64,
    /// FNV-1a digest over the final distributions, rank order —
    /// bit-exact fingerprint of the job's physics.
    pub digest: Option<u64>,
    /// Steps completed.
    pub steps: u64,
    /// Seconds between submission (farm start) and dispatch.
    pub queue_wait_secs: f64,
    /// Seconds between dispatch and commit (includes retries/backoff).
    pub run_secs: f64,
    /// Seconds between submission and commit.
    pub latency_secs: f64,
    /// Last attempt's error, for failed jobs.
    pub error: Option<String>,
    /// Rank-merged observability report of the successful attempt.
    pub obs: ObsReport,
}

/// The result of one farm run.
#[derive(Debug)]
pub struct FarmReport {
    /// Per-job records in commit (completion) order.
    pub records: Vec<JobRecord>,
    /// Wall seconds from first dispatch to last commit.
    pub makespan_secs: f64,
    /// Pool capacity the run used.
    pub slots: usize,
    /// Pre-processing cache hits across the run.
    pub cache_hits: u64,
    /// Pre-processing cache misses (builds) across the run.
    pub cache_misses: u64,
}

impl FarmReport {
    /// Job ids in commit order (the determinism proptest's subject).
    pub fn completion_order(&self) -> Vec<JobId> {
        self.records.iter().map(|r| r.id).collect()
    }

    /// Jobs that completed.
    pub fn completed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.status == JobStatus::Completed)
            .count()
    }

    /// Jobs that exhausted their retries.
    pub fn failed(&self) -> usize {
        self.records.len() - self.completed()
    }

    /// Completed-job throughput over the makespan.
    pub fn jobs_per_hour(&self) -> f64 {
        if self.makespan_secs <= 0.0 {
            return 0.0;
        }
        self.completed() as f64 * 3600.0 / self.makespan_secs
    }

    /// Total in-world kill restarts across jobs.
    pub fn restarts(&self) -> u64 {
        self.records.iter().map(|r| r.restarts).sum()
    }

    /// Queue-wait distribution across jobs.
    pub fn queue_wait_hist(&self) -> Histogram {
        let mut h = Histogram::new();
        for r in &self.records {
            h.record(r.queue_wait_secs);
        }
        h
    }

    /// Submission-to-commit latency distribution across jobs.
    pub fn latency_hist(&self) -> Histogram {
        let mut h = Histogram::new();
        for r in &self.records {
            h.record(r.latency_secs);
        }
        h
    }

    /// Final-field digests keyed by job name (completed jobs only).
    pub fn digests(&self) -> BTreeMap<String, u64> {
        self.records
            .iter()
            .filter_map(|r| r.digest.map(|d| (r.name.clone(), d)))
            .collect()
    }

    /// Farm-wide observability aggregate: every job's rank-merged
    /// report folded together under plain phase names.
    pub fn merged_obs(&self) -> ObsReport {
        let mut out = ObsReport::default();
        for r in &self.records {
            out.merge(&r.obs);
        }
        out
    }

    /// Per-tenant roll-up: each job's report folded under
    /// `tenant.<name>.*`, so one report compares tenants side by side.
    pub fn tenant_obs(&self) -> ObsReport {
        let mut out = ObsReport::default();
        for r in &self.records {
            out.merge_prefixed(&format!("tenant.{}", r.tenant), &r.obs);
        }
        out
    }

    /// Human-readable per-job table plus farm-wide summary lines.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<5} {:<26} {:<12} {:>9} {:>4} {:>4} {:>9} {:>9} {:>9}  digest",
            "job", "name", "tenant", "status", "try", "rst", "wait", "run", "latency"
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{:<5} {:<26} {:<12} {:>9} {:>4} {:>4} {:>8.2}s {:>8.2}s {:>8.2}s  {}",
                r.id.to_string(),
                r.name,
                r.tenant,
                match r.status {
                    JobStatus::Completed => "done",
                    JobStatus::Failed => "FAILED",
                },
                r.attempts,
                r.restarts,
                r.queue_wait_secs,
                r.run_secs,
                r.latency_secs,
                r.digest
                    .map(|d| format!("{d:016x}"))
                    .unwrap_or_else(|| r.error.clone().unwrap_or_default()),
            );
        }
        let wait = self.queue_wait_hist();
        let lat = self.latency_hist();
        let _ = writeln!(
            out,
            "{} jobs ({} failed), {} slots, makespan {:.2}s, {:.1} jobs/hour, \
             queue-wait p95 {:.2}s, latency p95 {:.2}s, prep cache {}/{} hits",
            self.records.len(),
            self.failed(),
            self.slots,
            self.makespan_secs,
            self.jobs_per_hour(),
            wait.p95(),
            lat.p95(),
            self.cache_hits,
            self.cache_hits + self.cache_misses,
        );
        out
    }
}

/// What one job's worker thread hands back to the scheduler.
enum AttemptOutcome {
    Done {
        digest: u64,
        steps: u64,
        restarts: u64,
        obs: ObsReport,
        attempts: u32,
    },
    Failed {
        error: String,
        attempts: u32,
    },
}

/// One running job in the commit queue.
struct Running<'scope> {
    id: JobId,
    name: String,
    tenant: String,
    slots: usize,
    dispatched_secs: f64,
    handle: std::thread::ScopedJoinHandle<'scope, AttemptOutcome>,
}

/// The farm: a fair-share queue feeding a slot-bounded pool.
#[derive(Debug)]
pub struct FarmScheduler {
    cfg: FarmConfig,
    queue: JobQueue,
    cache: Arc<PrepCache>,
}

impl FarmScheduler {
    /// A farm over a fresh pre-processing cache.
    pub fn new(cfg: FarmConfig) -> Self {
        FarmScheduler::with_cache(cfg, Arc::new(PrepCache::new()))
    }

    /// A farm sharing an existing pre-processing cache (sweep batches
    /// submitted across several runs reuse each other's voxelisations).
    pub fn with_cache(cfg: FarmConfig, cache: Arc<PrepCache>) -> Self {
        FarmScheduler {
            cfg,
            queue: JobQueue::new(),
            cache,
        }
    }

    /// Configure a tenant's fair-share weight.
    pub fn set_tenant_weight(&mut self, tenant: &str, weight: f64) {
        self.queue.set_weight(tenant, weight);
    }

    /// Submit a job.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        self.queue.push(spec)
    }

    /// The shared pre-processing cache.
    pub fn cache(&self) -> &Arc<PrepCache> {
        &self.cache
    }

    /// Run every submitted job to a terminal state and report.
    pub fn run(mut self) -> FarmReport {
        // Injected job faults and kills are scheduled, not bugs.
        install_quiet_panic_hook();
        let t0 = Instant::now();
        let slots_total = self.cfg.slots.max(1);
        let cfg = Arc::new(self.cfg);
        let mut records: Vec<JobRecord> = Vec::new();
        std::thread::scope(|scope| {
            let mut running: VecDeque<Running<'_>> = VecDeque::new();
            let mut free = slots_total;
            loop {
                let next_need = self
                    .queue
                    .peek()
                    .map(|(_, s)| s.scenario.ranks.max(1).min(slots_total));
                match next_need {
                    Some(need) if need <= free => {
                        let (id, spec) = self.queue.pop().expect("peeked job pops");
                        let name = spec.name.clone();
                        let tenant = spec.tenant.clone();
                        let (cfg2, cache2) = (Arc::clone(&cfg), Arc::clone(&self.cache));
                        let handle =
                            scope.spawn(move || run_job_with_retries(&cfg2, &cache2, id, &spec));
                        running.push_back(Running {
                            id,
                            name,
                            tenant,
                            slots: need,
                            dispatched_secs: t0.elapsed().as_secs_f64(),
                            handle,
                        });
                        free -= need;
                    }
                    _ => {
                        // Not enough free slots (or nothing pending):
                        // commit the oldest running job. With an empty
                        // commit queue the guard above always admits
                        // the next job, so this branch cannot stall.
                        let Some(r) = running.pop_front() else {
                            break; // queue and pool both empty: done
                        };
                        free += r.slots;
                        let Running {
                            id,
                            name,
                            tenant,
                            dispatched_secs,
                            handle,
                            ..
                        } = r;
                        let outcome =
                            handle
                                .join()
                                .unwrap_or_else(|payload| AttemptOutcome::Failed {
                                    error: format!(
                                        "job worker panicked outside the retry guard: {}",
                                        panic_message(payload.as_ref())
                                    ),
                                    attempts: 0,
                                });
                        let committed_secs = t0.elapsed().as_secs_f64();
                        records.push(make_record(
                            id,
                            name,
                            tenant,
                            dispatched_secs,
                            outcome,
                            committed_secs,
                        ));
                    }
                }
            }
        });
        if !cfg.keep_workdirs {
            // Best-effort: only removes if every job dir was cleaned.
            std::fs::remove_dir(&cfg.workdir).ok();
        }
        FarmReport {
            records,
            makespan_secs: t0.elapsed().as_secs_f64(),
            slots: slots_total,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
        }
    }
}

fn make_record(
    id: JobId,
    name: String,
    tenant: String,
    dispatched_secs: f64,
    outcome: AttemptOutcome,
    committed_secs: f64,
) -> JobRecord {
    let (status, attempts, restarts, digest, steps, error, obs) = match outcome {
        AttemptOutcome::Done {
            digest,
            steps,
            restarts,
            obs,
            attempts,
        } => (
            JobStatus::Completed,
            attempts,
            restarts,
            Some(digest),
            steps,
            None,
            obs,
        ),
        AttemptOutcome::Failed { error, attempts } => (
            JobStatus::Failed,
            attempts,
            0,
            None,
            0,
            Some(error),
            ObsReport::default(),
        ),
    };
    JobRecord {
        id,
        name,
        tenant,
        status,
        attempts,
        restarts,
        digest,
        steps,
        queue_wait_secs: dispatched_secs,
        run_secs: committed_secs - dispatched_secs,
        latency_secs: committed_secs,
        error,
        obs,
    }
}

/// Render a panic payload for a job record.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(f) = payload.downcast_ref::<InjectedJobFault>() {
        format!("injected job fault: {}", f.0)
    } else if let Some(k) = payload.downcast_ref::<RankKilled>() {
        format!("rank {} killed at step {}", k.rank, k.step)
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run one job to a terminal state: bounded attempts with exponential
/// backoff, each attempt fully isolated in its own SPMD world.
fn run_job_with_retries(
    cfg: &FarmConfig,
    cache: &PrepCache,
    id: JobId,
    spec: &JobSpec,
) -> AttemptOutcome {
    let jobdir = cfg.workdir.join(id.to_string());
    let attempts_max = cfg.max_retries + 1;
    let mut last_err = String::new();
    for attempt in 0..attempts_max {
        if attempt > 0 {
            // Exponential backoff, capped at 64× base so a misconfigured
            // retry count cannot park a worker for minutes.
            let exp = (attempt - 1).min(6);
            std::thread::sleep(Duration::from_millis(cfg.backoff_ms << exp));
        }
        match catch_unwind(AssertUnwindSafe(|| {
            run_job(cfg, cache, spec, &jobdir, attempt)
        })) {
            Ok(Ok((digest, steps, restarts, obs))) => {
                if !cfg.keep_workdirs {
                    std::fs::remove_dir_all(&jobdir).ok();
                }
                return AttemptOutcome::Done {
                    digest,
                    steps,
                    restarts,
                    obs,
                    attempts: attempt + 1,
                };
            }
            Ok(Err(e)) => last_err = e,
            Err(payload) => last_err = panic_message(payload.as_ref()),
        }
    }
    if !cfg.keep_workdirs {
        std::fs::remove_dir_all(&jobdir).ok();
    }
    AttemptOutcome::Failed {
        error: last_err,
        attempts: attempts_max,
    }
}

/// One attempt: build the world, restore any checkpoint, run to the
/// final step checkpointing on cadence, and digest the final state.
fn run_job(
    cfg: &FarmConfig,
    cache: &PrepCache,
    spec: &JobSpec,
    jobdir: &std::path::Path,
    attempt: u32,
) -> Result<(u64, u64, u64, ObsReport), String> {
    if attempt < spec.poison_attempts {
        std::panic::panic_any(InjectedJobFault(format!(
            "poisoned attempt {attempt} of job '{}'",
            spec.name
        )));
    }
    let sc = spec.scenario.clone();
    let ranks = sc.ranks.max(1);
    let geo = cache.geometry(&sc.geometry, sc.dx);
    let owner = cache.owner(&sc.geometry, sc.dx, ranks);
    let cp = jobdir.join("cp");
    let every = spec.checkpoint_every;
    let opts = SpmdOptions::for_job(cfg.threads_per_rank, spec.faults.clone());
    let out = run_spmd_opts(ranks, opts, move |comm| -> Result<(u64, u64), String> {
        let mut ds = DistSolver::new(geo.clone(), (*owner).clone(), sc.solver_config(), comm)
            .map_err(|e| format!("world construction failed: {e:?}"))?;
        if let Some(bc) = sc.inlet_override() {
            ds.set_inlet_bc(0, bc);
        }
        // Crash recovery: a restarted world resumes from the latest
        // consistent cut; a first attempt finds nothing and runs cold.
        if every.is_some() {
            ds.try_restore(&cp)
                .map_err(|e| format!("checkpoint restore failed: {e:?}"))?;
        }
        while ds.step_count() < sc.steps {
            let remaining = sc.steps - ds.step_count();
            let burst = match every {
                Some(k) => (k - ds.step_count() % k).min(remaining),
                None => remaining,
            };
            ds.step_n(burst)
                .map_err(|e| format!("step failed at {}: {e:?}", ds.step_count()))?;
            if let Some(k) = every {
                if ds.step_count() % k == 0 && ds.step_count() < sc.steps {
                    ds.checkpoint(&cp)
                        .map_err(|e| format!("checkpoint failed: {e:?}"))?;
                }
            }
        }
        Ok((digest_bits(&ds.raw_distributions()), ds.step_count()))
    });
    let mut rank_digests = Vec::with_capacity(ranks);
    let mut steps = 0;
    for (rank, res) in out.results.iter().enumerate() {
        match res {
            Ok((d, s)) => {
                rank_digests.push(*d);
                steps = *s;
            }
            Err(e) => return Err(format!("rank {rank}: {e}")),
        }
    }
    let obs = out.merged_obs();
    let restarts = obs.counters.get("fault.restarts").copied().unwrap_or(0);
    Ok((combine_digests(&rank_digests), steps, restarts, obs))
}

/// FNV-1a over the IEEE bit patterns of a field array.
fn digest_bits(values: &[f64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Fold per-rank digests (rank order) into one job digest.
fn combine_digests(rank_digests: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for d in rank_digests {
        for b in d.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Drive, GeometryKind, Scenario};

    fn tiny_scenario(steps: u64, ranks: usize) -> Scenario {
        Scenario {
            geometry: GeometryKind::Tube {
                length: 8.0,
                radius: 2.0,
            },
            dx: 1.0,
            drive: Drive::Pressure {
                rho_in: 1.01,
                rho_out: 0.99,
            },
            tau: 0.8,
            steps,
            ranks,
        }
    }

    fn test_cfg(tag: &str, slots: usize) -> FarmConfig {
        FarmConfig {
            slots,
            backoff_ms: 1,
            workdir: std::env::temp_dir()
                .join(format!("hemelb_farm_test_{tag}_{}", std::process::id())),
            ..Default::default()
        }
    }

    #[test]
    fn farm_runs_all_jobs_and_commits_in_dispatch_order() {
        let mut farm = FarmScheduler::new(test_cfg("order", 2));
        let ids: Vec<JobId> = (0..4)
            .map(|i| farm.submit(JobSpec::new(format!("job{i}"), "t", tiny_scenario(3, 1))))
            .collect();
        let report = farm.run();
        assert_eq!(report.completed(), 4);
        assert_eq!(report.failed(), 0);
        assert_eq!(report.completion_order(), ids, "head-of-line commit");
        assert!(report.jobs_per_hour() > 0.0);
        assert_eq!(report.records.len(), 4);
        for r in &report.records {
            assert_eq!(r.steps, 3);
            assert_eq!(r.attempts, 1);
            assert!(r.digest.is_some());
            assert!(r.obs.phases.contains_key("lb.collide"), "obs rolled up");
        }
    }

    #[test]
    fn digests_are_independent_of_slot_count() {
        let specs = |farm: &mut FarmScheduler| {
            for (i, ranks) in [1usize, 2, 1].iter().enumerate() {
                farm.submit(JobSpec::new(
                    format!("job{i}"),
                    "t",
                    tiny_scenario(4, *ranks),
                ));
            }
        };
        let mut a = FarmScheduler::new(test_cfg("slots_a", 1));
        specs(&mut a);
        let mut b = FarmScheduler::new(test_cfg("slots_b", 4));
        specs(&mut b);
        assert_eq!(
            a.run().digests(),
            b.run().digests(),
            "physics is schedule-invariant"
        );
    }

    #[test]
    fn oversized_job_takes_the_whole_pool_but_still_runs() {
        let mut farm = FarmScheduler::new(test_cfg("oversized", 1));
        farm.submit(JobSpec::new("wide", "t", tiny_scenario(3, 2)));
        let report = farm.run();
        assert_eq!(report.completed(), 1);
        assert_eq!(report.records[0].steps, 3);
    }

    #[test]
    fn tenant_roll_up_namespaces_phases() {
        let mut farm = FarmScheduler::new(test_cfg("rollup", 2));
        farm.submit(JobSpec::new("a", "icu", tiny_scenario(2, 1)));
        farm.submit(JobSpec::new("b", "lab", tiny_scenario(2, 1)));
        let report = farm.run();
        let by_tenant = report.tenant_obs();
        assert!(by_tenant.phases.contains_key("tenant.icu.lb.collide"));
        assert!(by_tenant.phases.contains_key("tenant.lab.lb.collide"));
        let merged = report.merged_obs();
        assert_eq!(
            merged.phases["lb.collide"].calls,
            by_tenant.phases["tenant.icu.lb.collide"].calls
                + by_tenant.phases["tenant.lab.lb.collide"].calls
        );
    }
}
