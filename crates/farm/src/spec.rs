//! Job specifications: what one sweep member simulates.
//!
//! A production hemodynamics farm runs patient-specific *sweeps* —
//! synthetic vasculature × {pressure drop / viscosity, boundary-condition
//! waveform, geometry parameters, rank count} — exactly the "generate an
//! array of input files" pattern of HemeLB_Tools' `writeInput.py`, but
//! typed: a [`Scenario`] is the input file, a [`JobSpec`] adds the
//! scheduling envelope (tenant, priority, checkpoint cadence, fault
//! schedule).

use hemelb_core::boundary::IoletBc;
use hemelb_core::SolverConfig;
use hemelb_geometry::{SparseGeometry, VesselBuilder};
use hemelb_parallel::FaultPlan;

/// The synthetic vasculature family a job voxelises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeometryKind {
    /// Straight cylindrical vessel.
    Tube {
        /// Axis length in physical units.
        length: f64,
        /// Lumen radius.
        radius: f64,
    },
    /// Parent vessel splitting into two children.
    Bifurcation {
        /// Parent-vessel length.
        parent_len: f64,
        /// Child-vessel length.
        child_len: f64,
        /// Parent lumen radius (children follow Murray's law).
        radius: f64,
        /// Half-angle between the children, radians.
        half_angle: f64,
    },
    /// Parent vessel with a saccular aneurysm bulge.
    Aneurysm {
        /// Axis length.
        length: f64,
        /// Lumen radius.
        radius: f64,
        /// Sac radius.
        sac_radius: f64,
    },
}

impl GeometryKind {
    /// Voxelise this vasculature at lattice spacing `dx`.
    pub fn build(&self, dx: f64) -> SparseGeometry {
        match *self {
            GeometryKind::Tube { length, radius } => {
                VesselBuilder::straight_tube(length, radius).voxelise(dx)
            }
            GeometryKind::Bifurcation {
                parent_len,
                child_len,
                radius,
                half_angle,
            } => VesselBuilder::bifurcation(parent_len, child_len, radius, half_angle).voxelise(dx),
            GeometryKind::Aneurysm {
                length,
                radius,
                sac_radius,
            } => VesselBuilder::aneurysm(length, radius, sac_radius).voxelise(dx),
        }
    }

    /// Exact cache key for `(self, dx)`: parameters keyed by their IEEE
    /// bit patterns, so two jobs share a voxelisation iff their inputs
    /// are identical.
    pub fn cache_key(&self, dx: f64) -> String {
        let b = |v: f64| v.to_bits();
        match *self {
            GeometryKind::Tube { length, radius } => {
                format!("tube:{:x}:{:x}:{:x}", b(length), b(radius), b(dx))
            }
            GeometryKind::Bifurcation {
                parent_len,
                child_len,
                radius,
                half_angle,
            } => format!(
                "bifurcation:{:x}:{:x}:{:x}:{:x}:{:x}",
                b(parent_len),
                b(child_len),
                b(radius),
                b(half_angle),
                b(dx)
            ),
            GeometryKind::Aneurysm {
                length,
                radius,
                sac_radius,
            } => format!(
                "aneurysm:{:x}:{:x}:{:x}:{:x}",
                b(length),
                b(radius),
                b(sac_radius),
                b(dx)
            ),
        }
    }
}

/// How the flow is driven through the vessel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Drive {
    /// Steady pressure difference between inlet and outlet(s) — the
    /// Reynolds-number knob of a sweep.
    Pressure {
        /// Inlet density (pressure `p = cs² ρ`).
        rho_in: f64,
        /// Outlet density.
        rho_out: f64,
    },
    /// Pulsatile (cardiac-cycle) velocity inflow against reference
    /// outlet pressure.
    Pulsatile {
        /// Cycle-mean peak inflow speed, lattice units/step.
        peak: f64,
        /// Relative oscillation amplitude (0 = steady).
        amplitude: f64,
        /// Cycle length in steps.
        period: u64,
    },
}

/// One simulation of a sweep: geometry × physics × run length × ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Synthetic vasculature to voxelise.
    pub geometry: GeometryKind,
    /// Lattice spacing (resolution).
    pub dx: f64,
    /// Flow drive (pressure drop or pulsatile inflow).
    pub drive: Drive,
    /// BGK relaxation time (viscosity knob).
    pub tau: f64,
    /// LB steps to run.
    pub steps: u64,
    /// SPMD ranks the job runs on.
    pub ranks: usize,
}

impl Scenario {
    /// The solver configuration this scenario prescribes.
    pub fn solver_config(&self) -> SolverConfig {
        match self.drive {
            Drive::Pressure { rho_in, rho_out } => SolverConfig::pressure_driven(rho_in, rho_out),
            Drive::Pulsatile { peak, .. } => SolverConfig::velocity_driven(peak),
        }
        .with_tau(self.tau)
    }

    /// The inlet override a pulsatile drive installs after construction
    /// (`None` for steady drives).
    pub fn inlet_override(&self) -> Option<IoletBc> {
        match self.drive {
            Drive::Pressure { .. } => None,
            Drive::Pulsatile {
                peak,
                amplitude,
                period,
            } => Some(IoletBc::Pulsatile {
                peak,
                parabolic: true,
                amplitude,
                period,
            }),
        }
    }

    /// Deterministic up-front cost estimate used for fair-share
    /// accounting (rank-steps; the site count is unknown before
    /// voxelisation and the queue must not voxelise to schedule).
    pub fn cost(&self) -> f64 {
        (self.steps.max(1) as f64) * (self.ranks.max(1) as f64)
    }
}

/// One schedulable unit: a scenario plus its scheduling envelope.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable job name (sweep coordinates, typically).
    pub name: String,
    /// Owning tenant; fair-share weights are configured per tenant on
    /// the queue.
    pub tenant: String,
    /// Priority *within* the tenant: higher runs first. Cross-tenant
    /// order is governed by fair share, so one tenant's priorities
    /// cannot starve another tenant.
    pub priority: u8,
    /// What to simulate.
    pub scenario: Scenario,
    /// Checkpoint every this many steps (enables mid-run kill
    /// recovery); `None` runs checkpoint-free.
    pub checkpoint_every: Option<u64>,
    /// Deterministic fault schedule injected into this job's world
    /// only; neighbours never observe it.
    pub faults: Option<FaultPlan>,
    /// Chaos hook: deliberately fail this many attempts before letting
    /// the job run (exercises the scheduler's bounded retry/backoff).
    pub poison_attempts: u32,
}

impl JobSpec {
    /// A plain job for `tenant` with default scheduling envelope
    /// (priority 0, no checkpoints, no faults).
    pub fn new(name: impl Into<String>, tenant: impl Into<String>, scenario: Scenario) -> Self {
        JobSpec {
            name: name.into(),
            tenant: tenant.into(),
            priority: 0,
            scenario,
            checkpoint_every: None,
            faults: None,
            poison_attempts: 0,
        }
    }

    /// Set the within-tenant priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Checkpoint every `steps` steps.
    pub fn with_checkpoint_every(mut self, steps: u64) -> Self {
        self.checkpoint_every = Some(steps);
        self
    }

    /// Inject `plan` into this job's world.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Deliberately fail the first `n` attempts (chaos hook).
    pub fn with_poison_attempts(mut self, n: u32) -> Self {
        self.poison_attempts = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tube(steps: u64, ranks: usize) -> Scenario {
        Scenario {
            geometry: GeometryKind::Tube {
                length: 8.0,
                radius: 2.0,
            },
            dx: 1.0,
            drive: Drive::Pressure {
                rho_in: 1.01,
                rho_out: 0.99,
            },
            tau: 0.8,
            steps,
            ranks,
        }
    }

    #[test]
    fn cache_keys_are_exact_in_the_parameters() {
        let a = GeometryKind::Tube {
            length: 8.0,
            radius: 2.0,
        };
        let b = GeometryKind::Tube {
            length: 8.0,
            radius: 2.0 + 1e-15,
        };
        assert_eq!(a.cache_key(1.0), a.cache_key(1.0));
        assert_ne!(a.cache_key(1.0), b.cache_key(1.0));
        assert_ne!(a.cache_key(1.0), a.cache_key(0.5));
    }

    #[test]
    fn cost_is_rank_steps() {
        assert_eq!(tube(10, 4).cost(), 40.0);
        assert_eq!(tube(0, 0).cost(), 1.0, "degenerate jobs still cost");
    }

    #[test]
    fn pulsatile_drive_overrides_the_inlet() {
        let mut s = tube(5, 1);
        assert!(s.inlet_override().is_none());
        s.drive = Drive::Pulsatile {
            peak: 0.05,
            amplitude: 0.5,
            period: 40,
        };
        match s.inlet_override() {
            Some(IoletBc::Pulsatile {
                peak,
                parabolic,
                amplitude,
                period,
            }) => {
                assert_eq!(peak, 0.05);
                assert!(parabolic);
                assert_eq!(amplitude, 0.5);
                assert_eq!(period, 40);
            }
            other => panic!("expected pulsatile inlet, got {other:?}"),
        }
    }

    #[test]
    fn geometries_voxelise() {
        for kind in [
            GeometryKind::Tube {
                length: 8.0,
                radius: 2.0,
            },
            GeometryKind::Bifurcation {
                parent_len: 8.0,
                child_len: 6.0,
                radius: 2.0,
                half_angle: 0.5,
            },
            GeometryKind::Aneurysm {
                length: 10.0,
                radius: 2.0,
                sac_radius: 3.0,
            },
        ] {
            assert!(kind.build(1.0).fluid_count() > 50, "{kind:?}");
        }
    }
}
