//! Simulation farm: batched scenario sweeps over a shared worker pool.
//!
//! The SC'12 co-design study frames HemeLB as one stage of a clinical
//! pipeline: pre-processing (voxelise, partition) and post-processing
//! surround every run, and clinically useful answers come from *sweeps*
//! — many closely-related simulations over one vasculature — not single
//! hero runs. This crate batches such sweeps:
//!
//! * [`JobSpec`]/[`Scenario`] — one sweep member (synthetic vasculature
//!   × {pressure drop/viscosity, BC waveform, geometry params, ranks})
//!   plus its scheduling envelope,
//! * [`JobQueue`] — priority within a tenant, weighted fair share
//!   across tenants (start-time fair queueing),
//! * [`PrepCache`] — memoised voxelisation and k-way partitions, so the
//!   farm pays pre-processing once per distinct geometry instead of
//!   once per job,
//! * [`FarmScheduler`] — concurrent multi-rank jobs over a rank-slot
//!   pool, deterministic head-of-line commit, per-job
//!   checkpoint/restart, fault isolation and bounded retry,
//! * [`FarmReport`] — per-job records, throughput, queue-wait/latency
//!   histograms and per-tenant observability roll-ups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod queue;
pub mod scheduler;
pub mod spec;

pub use cache::PrepCache;
pub use queue::{JobId, JobQueue};
pub use scheduler::{FarmConfig, FarmReport, FarmScheduler, JobRecord, JobStatus};
pub use spec::{Drive, GeometryKind, JobSpec, Scenario};
