//! Shared pre-processing cache.
//!
//! The paper's co-design premise is that pre-processing (geometry
//! voxelisation, partitioning) is a first-class cost, not an offline
//! footnote — and in a sweep it is a *repeated* cost: many jobs differ
//! only in physics parameters and share the same vasculature. The farm
//! therefore memoises the two expensive deterministic preprocessing
//! products, keyed exactly by their inputs:
//!
//! * the voxelised [`SparseGeometry`] per `(geometry params, dx)`, and
//! * the multilevel k-way owner map per `(geometry, rank count)`.
//!
//! A sequential "script" baseline (one `writeInput.py`-style run per
//! job) pays these per job; the farm pays them once per distinct key.
//! Hit/miss counters feed the farm report so the amortisation is
//! visible in `reproduce farm`.

use crate::spec::GeometryKind;
use hemelb_geometry::SparseGeometry;
use hemelb_partition::graph::{Connectivity, SiteGraph};
use hemelb_partition::{MultilevelKWay, Partitioner};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Owner maps memoised per `(geometry cache key, rank count)`.
type OwnerMap = BTreeMap<(String, usize), Arc<Vec<usize>>>;

/// Memoised pre-processing products shared by every job of a farm run.
#[derive(Debug, Default)]
pub struct PrepCache {
    geos: Mutex<BTreeMap<String, Arc<SparseGeometry>>>,
    owners: Mutex<OwnerMap>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PrepCache {
    /// An empty cache.
    pub fn new() -> Self {
        PrepCache::default()
    }

    /// The voxelised geometry for `(kind, dx)`, building it on first
    /// use.
    pub fn geometry(&self, kind: &GeometryKind, dx: f64) -> Arc<SparseGeometry> {
        let key = kind.cache_key(dx);
        if let Some(geo) = lock(&self.geos).get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return geo;
        }
        // Voxelise outside the lock: a concurrent job wanting a
        // *different* geometry must not serialise behind this build.
        // Two jobs racing on the same key both build; the first insert
        // wins and both results are identical (voxelisation is
        // deterministic), so the only cost is one wasted build.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(kind.build(dx));
        lock(&self.geos).entry(key).or_insert(built).clone()
    }

    /// The multilevel k-way owner map for `(kind, dx, ranks)`, building
    /// it on first use. Single-rank jobs get the trivial map.
    pub fn owner(&self, kind: &GeometryKind, dx: f64, ranks: usize) -> Arc<Vec<usize>> {
        let geo = self.geometry(kind, dx);
        let key = (kind.cache_key(dx), ranks);
        if let Some(owner) = lock(&self.owners).get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return owner;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(if ranks <= 1 {
            vec![0usize; geo.fluid_count()]
        } else {
            let graph = SiteGraph::from_geometry(&geo, Connectivity::D3Q15);
            MultilevelKWay::default().partition(&graph, ranks)
        });
        lock(&self.owners).entry(key).or_insert(built).clone()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (builds) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tube() -> GeometryKind {
        GeometryKind::Tube {
            length: 8.0,
            radius: 2.0,
        }
    }

    #[test]
    fn geometry_is_built_once_per_key() {
        let cache = PrepCache::new();
        let a = cache.geometry(&tube(), 1.0);
        let b = cache.geometry(&tube(), 1.0);
        assert!(Arc::ptr_eq(&a, &b), "second lookup is the same object");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        let c = cache.geometry(&tube(), 0.5);
        assert!(!Arc::ptr_eq(&a, &c), "different dx is a different key");
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn owner_maps_cover_ranks_and_cache_per_rank_count() {
        let cache = PrepCache::new();
        let o2 = cache.owner(&tube(), 1.0, 2);
        let geo = cache.geometry(&tube(), 1.0);
        assert_eq!(o2.len(), geo.fluid_count());
        assert!(o2.iter().all(|&o| o < 2));
        assert!((0..2).all(|r| o2.contains(&r)));
        let o2b = cache.owner(&tube(), 1.0, 2);
        assert!(Arc::ptr_eq(&o2, &o2b));
        let o1 = cache.owner(&tube(), 1.0, 1);
        assert!(o1.iter().all(|&o| o == 0));
    }
}
