//! The job queue: priority within a tenant, weighted fair share across
//! tenants.
//!
//! Scheduling is *start-time fair queueing* over a virtual clock: every
//! tenant carries a virtual time `vtime`, advanced by
//! `cost / weight` whenever one of its jobs is dispatched, and the queue
//! always dispatches from the backlogged tenant with the smallest
//! `vtime` (ties broken by tenant name, then submission order — nothing
//! depends on wall time, so the dispatch order is a pure function of
//! the submitted specs and configured weights). Over any interval in
//! which two tenants are both backlogged, their dispatched cost is
//! proportional to their weights — a flood of low-priority jobs from
//! one tenant cannot push another tenant's share below
//! `weight / Σ weights`.
//!
//! Within a tenant, higher [`JobSpec::priority`] dispatches first;
//! equal priorities dispatch in submission order.

use crate::spec::JobSpec;
use std::collections::BTreeMap;

/// Opaque job identity, assigned at submission (monotonic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

#[derive(Debug)]
struct QueuedJob {
    id: JobId,
    seq: u64,
    spec: JobSpec,
}

#[derive(Debug)]
struct TenantState {
    weight: f64,
    vtime: f64,
    pending: Vec<QueuedJob>,
}

/// Pending jobs, organised per tenant.
#[derive(Debug, Default)]
pub struct JobQueue {
    tenants: BTreeMap<String, TenantState>,
    next_id: u64,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        JobQueue::default()
    }

    /// Configure `tenant`'s fair-share weight (default 1.0). A weight
    /// of 2 receives twice the dispatched rank-steps of a weight-1
    /// tenant while both are backlogged.
    ///
    /// # Panics
    /// Panics unless `weight` is finite and positive.
    pub fn set_weight(&mut self, tenant: &str, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "tenant weight must be finite and positive, got {weight}"
        );
        self.tenant_entry(tenant).weight = weight;
    }

    fn tenant_entry(&mut self, tenant: &str) -> &mut TenantState {
        self.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                weight: 1.0,
                vtime: 0.0,
                pending: Vec::new(),
            })
    }

    /// Submit a job; returns its identity. A tenant returning from idle
    /// is clocked forward to the minimum backlogged `vtime` so banked
    /// idle time cannot be spent monopolising the pool later.
    pub fn push(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.next_id);
        let seq = self.next_id;
        self.next_id += 1;
        let floor = self
            .tenants
            .values()
            .filter(|t| !t.pending.is_empty())
            .map(|t| t.vtime)
            .fold(f64::INFINITY, f64::min);
        let t = self.tenant_entry(&spec.tenant);
        if t.pending.is_empty() && floor.is_finite() {
            t.vtime = t.vtime.max(floor);
        }
        t.pending.push(QueuedJob { id, seq, spec });
        id
    }

    /// Pending jobs across all tenants.
    pub fn len(&self) -> usize {
        self.tenants.values().map(|t| t.pending.len()).sum()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tenant the next dispatch comes from, and the index of the
    /// job within its pending list.
    fn select(&self) -> Option<(&str, usize)> {
        let (name, t) = self
            .tenants
            .iter()
            .filter(|(_, t)| !t.pending.is_empty())
            .min_by(|(an, a), (bn, b)| a.vtime.total_cmp(&b.vtime).then_with(|| an.cmp(bn)))?;
        let idx = t
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, j)| (std::cmp::Reverse(j.spec.priority), j.seq))
            .map(|(i, _)| i)?;
        Some((name.as_str(), idx))
    }

    /// The job the next [`JobQueue::pop`] would return, without
    /// dispatching it (the scheduler peeks to check slot availability).
    pub fn peek(&self) -> Option<(JobId, &JobSpec)> {
        let (name, idx) = self.select()?;
        let j = &self.tenants[name].pending[idx];
        Some((j.id, &j.spec))
    }

    /// Dispatch the next job under fair share + priority, charging its
    /// cost to the tenant's virtual clock.
    pub fn pop(&mut self) -> Option<(JobId, JobSpec)> {
        let (name, idx) = self.select().map(|(n, i)| (n.to_string(), i))?;
        let t = self.tenants.get_mut(&name).expect("selected tenant exists");
        let job = t.pending.remove(idx);
        t.vtime += job.spec.scenario.cost() / t.weight;
        Some((job.id, job.spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Drive, GeometryKind, Scenario};

    fn spec(tenant: &str, priority: u8, steps: u64) -> JobSpec {
        JobSpec::new(
            format!("{tenant}-{priority}-{steps}"),
            tenant,
            Scenario {
                geometry: GeometryKind::Tube {
                    length: 8.0,
                    radius: 2.0,
                },
                dx: 1.0,
                drive: Drive::Pressure {
                    rho_in: 1.01,
                    rho_out: 0.99,
                },
                tau: 0.8,
                steps,
                ranks: 1,
            },
        )
        .with_priority(priority)
    }

    #[test]
    fn fifo_within_tenant_and_priority_first() {
        let mut q = JobQueue::new();
        let a = q.push(spec("t", 0, 4));
        let b = q.push(spec("t", 2, 4));
        let c = q.push(spec("t", 2, 4));
        let d = q.push(spec("t", 1, 4));
        let order: Vec<JobId> = std::iter::from_fn(|| q.pop().map(|(id, _)| id)).collect();
        assert_eq!(order, vec![b, c, d, a]);
    }

    #[test]
    fn equal_weights_alternate_between_backlogged_tenants() {
        let mut q = JobQueue::new();
        for _ in 0..3 {
            q.push(spec("a", 0, 4));
            q.push(spec("b", 0, 4));
        }
        let tenants: Vec<String> = std::iter::from_fn(|| q.pop().map(|(_, s)| s.tenant)).collect();
        assert_eq!(tenants, ["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn weights_skew_the_share() {
        let mut q = JobQueue::new();
        q.set_weight("heavy", 3.0);
        for _ in 0..8 {
            q.push(spec("heavy", 0, 4));
            q.push(spec("light", 0, 4));
        }
        let first8: Vec<String> = (0..8)
            .filter_map(|_| q.pop().map(|(_, s)| s.tenant))
            .collect();
        let heavy = first8.iter().filter(|t| *t == "heavy").count();
        assert_eq!(heavy, 6, "3:1 weights give a 3/4 share: {first8:?}");
    }

    #[test]
    fn returning_tenant_cannot_spend_banked_idle_time() {
        let mut q = JobQueue::new();
        for _ in 0..4 {
            q.push(spec("busy", 0, 100));
        }
        // Drain two expensive jobs: busy's vtime is now far ahead.
        q.pop();
        q.pop();
        // A newcomer starts at the current backlogged floor, not at 0 —
        // it gets its fair share from now on, not a catch-up monopoly.
        q.push(spec("new", 0, 4));
        q.push(spec("new", 0, 4));
        q.push(spec("new", 0, 4));
        let next: Vec<String> = (0..3)
            .filter_map(|_| q.pop().map(|(_, s)| s.tenant))
            .collect();
        assert!(
            next.contains(&"busy".to_string()),
            "busy is not locked out by the newcomer: {next:?}"
        );
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = JobQueue::new();
        q.push(spec("a", 0, 4));
        q.push(spec("b", 5, 2));
        for _ in 0..2 {
            let peeked = q.peek().map(|(id, s)| (id, s.name.clone())).unwrap();
            let popped = q.pop().map(|(id, s)| (id, s.name)).unwrap();
            assert_eq!(peeked, popped);
        }
        assert!(q.peek().is_none());
    }
}
