//! Compact little-endian wire encoding.
//!
//! Messages on the substrate are raw byte payloads ([`bytes::Bytes`]).
//! This module provides a small, allocation-conscious encoding layer used
//! by the solver, the visualisation algorithms and the steering protocol:
//! fixed-width little-endian scalars, length-prefixed sequences, and a
//! [`Wire`] trait for composite types.
//!
//! The format is deliberately simple (no schema evolution) because both
//! ends of every channel are compiled from the same source — the same
//! situation as MPI messages inside one binary.

use crate::error::{CommError, CommResult};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serialisation sink with typed put helpers.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// A new empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer pre-sized for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append an `i64` (little-endian).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Append an `f32` (little-endian bit pattern).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.put_f32_le(v);
    }

    /// Append an `f64` (little-endian bit pattern).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Append a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.put_slice(s.as_bytes());
    }

    /// Append a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.buf.put_f64_le(x);
        }
    }

    /// Append a length-prefixed `f32` slice.
    pub fn put_f32_slice(&mut self, v: &[f32]) {
        self.put_usize(v.len());
        self.buf.reserve(v.len() * 4);
        for &x in v {
            self.buf.put_f32_le(x);
        }
    }

    /// Append a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_usize(v.len());
        for &x in v {
            self.buf.put_u64_le(x);
        }
    }

    /// Append a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_usize(v.len());
        for &x in v {
            self.buf.put_u32_le(x);
        }
    }

    /// Append a length-prefixed raw byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.put_slice(v);
    }

    /// Append an encodable value.
    pub fn put<T: Wire>(&mut self, v: &T) {
        v.encode(self);
    }

    /// Finish, yielding the immutable payload.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Deserialisation cursor over a received payload.
#[derive(Debug)]
pub struct WireReader {
    buf: Bytes,
}

macro_rules! need {
    ($self:ident, $n:expr, $what:expr) => {
        if $self.buf.remaining() < $n {
            return Err(CommError::Decode {
                reason: format!(
                    "truncated payload: need {} bytes for {}, have {}",
                    $n,
                    $what,
                    $self.buf.remaining()
                ),
            });
        }
    };
}

impl WireReader {
    /// Wrap a payload for reading.
    pub fn new(buf: Bytes) -> Self {
        WireReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> CommResult<u8> {
        need!(self, 1, "u8");
        Ok(self.buf.get_u8())
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> CommResult<u32> {
        need!(self, 4, "u32");
        Ok(self.buf.get_u32_le())
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> CommResult<u64> {
        need!(self, 8, "u64");
        Ok(self.buf.get_u64_le())
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> CommResult<i64> {
        need!(self, 8, "i64");
        Ok(self.buf.get_i64_le())
    }

    /// Read an `f32`.
    pub fn get_f32(&mut self) -> CommResult<f32> {
        need!(self, 4, "f32");
        Ok(self.buf.get_f32_le())
    }

    /// Read an `f64`.
    pub fn get_f64(&mut self) -> CommResult<f64> {
        need!(self, 8, "f64");
        Ok(self.buf.get_f64_le())
    }

    /// Read a `usize` (encoded as `u64`); errors if it overflows `usize`.
    pub fn get_usize(&mut self) -> CommResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CommError::Decode {
            reason: format!("length {v} overflows usize"),
        })
    }

    /// Read a `bool`.
    pub fn get_bool(&mut self) -> CommResult<bool> {
        Ok(self.get_u8()? != 0)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> CommResult<String> {
        let n = self.get_checked_len(1, "string")?;
        let raw = self.buf.split_to(n);
        String::from_utf8(raw.to_vec()).map_err(|e| CommError::Decode {
            reason: format!("invalid utf-8: {e}"),
        })
    }

    /// Read a length-prefixed `f64` vector.
    pub fn get_f64_vec(&mut self) -> CommResult<Vec<f64>> {
        let n = self.get_checked_len(8, "f64 slice")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.buf.get_f64_le());
        }
        Ok(out)
    }

    /// Read a length-prefixed `f32` vector.
    pub fn get_f32_vec(&mut self) -> CommResult<Vec<f32>> {
        let n = self.get_checked_len(4, "f32 slice")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.buf.get_f32_le());
        }
        Ok(out)
    }

    /// Read a length-prefixed `f32` slice into `out` (cleared first),
    /// reusing its allocation — the bulk path for pixel payloads, which
    /// are decoded once per compositing round per frame.
    pub fn get_f32_slice(&mut self, out: &mut Vec<f32>) -> CommResult<()> {
        let n = self.get_checked_len(4, "f32 slice")?;
        out.clear();
        out.reserve(n);
        let raw = self.buf.split_to(n * 4);
        for ch in raw.chunks_exact(4) {
            out.push(f32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]));
        }
        Ok(())
    }

    /// Read a length-prefixed `f64` slice into `out` (cleared first),
    /// reusing its allocation — the bulk path for halo payloads, which
    /// are decoded once per peer per LB step.
    pub fn get_f64_slice(&mut self, out: &mut Vec<f64>) -> CommResult<()> {
        let n = self.get_checked_len(8, "f64 slice")?;
        out.clear();
        out.reserve(n);
        let raw = self.buf.split_to(n * 8);
        for ch in raw.chunks_exact(8) {
            out.push(f64::from_le_bytes([
                ch[0], ch[1], ch[2], ch[3], ch[4], ch[5], ch[6], ch[7],
            ]));
        }
        Ok(())
    }

    /// Read a length-prefixed `u64` vector.
    pub fn get_u64_vec(&mut self) -> CommResult<Vec<u64>> {
        let n = self.get_checked_len(8, "u64 slice")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.buf.get_u64_le());
        }
        Ok(out)
    }

    /// Read a length-prefixed `u32` vector.
    pub fn get_u32_vec(&mut self) -> CommResult<Vec<u32>> {
        let n = self.get_checked_len(4, "u32 slice")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.buf.get_u32_le());
        }
        Ok(out)
    }

    /// Read a length-prefixed raw byte vector.
    pub fn get_bytes(&mut self) -> CommResult<Bytes> {
        let n = self.get_checked_len(1, "byte slice")?;
        Ok(self.buf.split_to(n))
    }

    /// Read a decodable value.
    pub fn get<T: Wire>(&mut self) -> CommResult<T> {
        T::decode(self)
    }

    /// Error unless the payload has been fully consumed. Useful as a
    /// trailing check in protocol decoders.
    pub fn expect_end(&self) -> CommResult<()> {
        if self.buf.has_remaining() {
            Err(CommError::Decode {
                reason: format!("{} trailing bytes after decode", self.buf.remaining()),
            })
        } else {
            Ok(())
        }
    }

    /// Read a length prefix and validate that `len * elem` bytes are
    /// actually present, so corrupt lengths fail cleanly instead of
    /// attempting huge allocations.
    fn get_checked_len(&mut self, elem: usize, what: &str) -> CommResult<usize> {
        let n = self.get_usize()?;
        let need = n.checked_mul(elem).ok_or_else(|| CommError::Decode {
            reason: format!("length overflow decoding {what}"),
        })?;
        if self.buf.remaining() < need {
            return Err(CommError::Decode {
                reason: format!(
                    "truncated payload: {what} of {n} elems needs {need} bytes, have {}",
                    self.buf.remaining()
                ),
            });
        }
        Ok(n)
    }
}

/// Types with a fixed, self-describing wire encoding.
pub trait Wire: Sized {
    /// Append `self` to the writer.
    fn encode(&self, w: &mut WireWriter);
    /// Parse one value from the reader.
    fn decode(r: &mut WireReader) -> CommResult<Self>;

    /// Encode as a standalone payload.
    fn to_bytes(&self) -> Bytes {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Decode from a standalone payload, requiring full consumption.
    fn from_bytes(b: Bytes) -> CommResult<Self> {
        let mut r = WireReader::new(b);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        r.get_u64()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(*self);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        r.get_u32()
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        r.get_f64()
    }
}

impl Wire for f32 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f32(*self);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        r.get_f32()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bool(*self);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        r.get_bool()
    }
}

impl Wire for String {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        r.get_str()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        let n = r.get_usize()?;
        // Guard against corrupt lengths: each element needs >= 1 byte.
        if r.remaining() < n {
            return Err(CommError::Decode {
                reason: format!("vec length {n} exceeds remaining {} bytes", r.remaining()),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire, U: Wire> Wire for (T, U) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        Ok((T::decode(r)?, U::decode(r)?))
    }
}

impl Wire for [f64; 3] {
    fn encode(&self, w: &mut WireWriter) {
        for &x in self {
            w.put_f64(x);
        }
    }
    fn decode(r: &mut WireReader) -> CommResult<Self> {
        Ok([r.get_f64()?, r.get_f64()?, r.get_f64()?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f32(1.5);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_str("aneurysm");
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f32().unwrap(), 1.5);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "aneurysm");
        r.expect_end().unwrap();
    }

    #[test]
    fn slices_round_trip() {
        let mut w = WireWriter::new();
        w.put_f64_slice(&[1.0, 2.0, 3.0]);
        w.put_u64_slice(&[]);
        w.put_u32_slice(&[9, 8]);
        w.put_bytes(b"xyz");
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_f64_vec().unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(r.get_u64_vec().unwrap(), Vec::<u64>::new());
        assert_eq!(r.get_u32_vec().unwrap(), vec![9, 8]);
        assert_eq!(&r.get_bytes().unwrap()[..], b"xyz");
        r.expect_end().unwrap();
    }

    #[test]
    fn f32_slice_bulk_round_trip() {
        let mut w = WireWriter::new();
        w.put_f32_slice(&[1.5, -0.25, f32::INFINITY]);
        w.put_f32_slice(&[]);
        let mut r = WireReader::new(w.finish());
        let mut out = vec![9.0f32; 8]; // pre-filled: must be cleared
        r.get_f32_slice(&mut out).unwrap();
        assert_eq!(out, vec![1.5, -0.25, f32::INFINITY]);
        r.get_f32_slice(&mut out).unwrap();
        assert!(out.is_empty());
        r.expect_end().unwrap();

        let mut w = WireWriter::new();
        w.put_u64(4); // claims 4 f32s, provides none
        let mut r = WireReader::new(w.finish());
        assert!(r.get_f32_slice(&mut out).is_err());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.put_u64(5);
        let mut r = WireReader::new(w.finish());
        // Claims 5 f64s but has none.
        assert!(r.get_f64_vec().is_err());
    }

    #[test]
    fn corrupt_huge_length_fails_cleanly() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        let mut r = WireReader::new(w.finish());
        assert!(r.get_u64_vec().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new();
        w.put_u64(1);
        w.put_u8(0);
        let b = w.finish();
        assert!(matches!(u64::from_bytes(b), Err(CommError::Decode { .. })));
    }

    #[test]
    fn composite_wire_round_trip() {
        let v: Vec<(u32, String)> = vec![(1, "a".into()), (2, "bb".into())];
        let b = v.to_bytes();
        let back = Vec::<(u32, String)>::from_bytes(b).unwrap();
        assert_eq!(back, v);
    }
}
