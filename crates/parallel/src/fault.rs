//! Deterministic fault injection for the in-process communicator.
//!
//! At exascale something is always slow or gone; the closed loop of the
//! paper (§IV-C-1) has to keep producing frames anyway. This module
//! provides the *controlled* version of that reality: a [`FaultPlan`] is
//! an immutable schedule of fault events keyed by `(rank, TagClass,
//! step)` that the [`Communicator`](crate::Communicator) consults on
//! every network send. Because the plan is injected through
//! [`SpmdOptions`](crate::SpmdOptions), any existing SPMD test can run
//! under faults without code changes.
//!
//! Four fault kinds are supported:
//!
//! * [`FaultKind::Delay`] — the sender sleeps before the send, modelling
//!   a slow link or an overloaded rank. Because the sender blocks, FIFO
//!   order per `(src, dst)` pair is preserved and the fault is
//!   *bit-transparent* to every collective.
//! * [`FaultKind::DropOnce`] — one matching send is swallowed,
//!   modelling a lost message. Only deadline-based receives
//!   ([`Communicator::recv_deadline`]) can observe the loss.
//! * [`FaultKind::DuplicateOnce`] — one matching send is delivered
//!   twice with the same sequence number; receiver-side dedup drops the
//!   retransmit, so duplicates are bit-transparent too (the guarantee
//!   the fault-injection proptest pins).
//! * [`FaultKind::KillRank`] — the victim rank dies (panics) when its
//!   fault clock reaches `step`, after waking every peer with an abort
//!   message so nobody hangs. The SPMD runner then restarts the world
//!   with the kill consumed; application closures recover by restoring
//!   from their latest checkpoint and replaying.
//!
//! The *fault clock* is per rank and advances only when the application
//! calls [`Communicator::set_fault_step`] (the distributed solver does
//! so once per LB step). Message faults arm once the sender's clock has
//! reached their `step`; a clock that never advances stays at 0, so
//! step-0 events still apply to step-oblivious code.

use crate::stats::TagClass;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once};

/// What an injected fault does to matching traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep this many milliseconds before every matching send (persists
    /// from the event's step onward).
    Delay {
        /// Sleep duration per matching send.
        millis: u64,
    },
    /// Swallow the first matching send, then disarm.
    DropOnce,
    /// Deliver the first matching send twice, then disarm. The
    /// retransmit carries the same sequence number and is dropped by
    /// receiver-side dedup.
    DuplicateOnce,
    /// Kill the rank (modelled as a panic, like a lost node) when its
    /// fault clock reaches the event's step. The traffic class is
    /// ignored.
    KillRank,
}

impl FaultKind {
    /// Short label used in counters and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Delay { .. } => "delay",
            FaultKind::DropOnce => "drop",
            FaultKind::DuplicateOnce => "duplicate",
            FaultKind::KillRank => "kill",
        }
    }

    /// Whether this kind is bit-transparent to collectives (delay and
    /// duplicate are; drops and kills are observable).
    pub fn is_benign(self) -> bool {
        matches!(self, FaultKind::Delay { .. } | FaultKind::DuplicateOnce)
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The rank the fault applies to: the *sender* for message faults,
    /// the victim for [`FaultKind::KillRank`].
    pub rank: usize,
    /// Traffic class the fault applies to (ignored by `KillRank`).
    pub class: TagClass,
    /// Fault-clock step from which the event is armed.
    pub step: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// An immutable, deterministic schedule of fault events.
///
/// The same plan against the same program yields the same injected
/// faults; combined with the determinism of the communication layer this
/// is what lets the test suite assert *bit-exact* recovery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan executing exactly `events`.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of `KillRank` events (bounds the runner's restart count).
    pub fn kill_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == FaultKind::KillRank)
            .count()
    }

    /// Whether any event is a `KillRank`.
    pub fn has_kills(&self) -> bool {
        self.kill_count() > 0
    }

    /// A seeded pseudo-random plan of *benign* events only (delays up to
    /// `max_delay_ms` and duplicates), spread over `world` ranks, all
    /// eight traffic classes and steps `0..=max_step`. Deterministic in
    /// `seed`; used by the transparency proptest.
    pub fn seeded_benign(
        seed: u64,
        world: usize,
        events: usize,
        max_step: u64,
        max_delay_ms: u64,
    ) -> Self {
        let mut state = seed;
        let mut next = move || splitmix64(&mut state);
        let evs = (0..events)
            .map(|_| {
                let rank = (next() % world.max(1) as u64) as usize;
                let class = TagClass::ALL[(next() % 8) as usize];
                let step = next() % (max_step + 1);
                let kind = if next() % 2 == 0 {
                    FaultKind::Delay {
                        millis: 1 + next() % max_delay_ms.max(1),
                    }
                } else {
                    FaultKind::DuplicateOnce
                };
                FaultEvent {
                    rank,
                    class,
                    step,
                    kind,
                }
            })
            .collect();
        FaultPlan { events: evs }
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The message faults applying to one send.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SendFaults {
    /// Total sleep before the send, in milliseconds.
    pub delay_ms: u64,
    /// Swallow the message.
    pub drop: bool,
    /// Deliver the message twice.
    pub duplicate: bool,
}

/// Shared per-world-attempt fault state: which one-shot events have
/// fired, each rank's fault clock, and whether a kill has aborted the
/// attempt. One session is created per attempt by the SPMD runner;
/// kills consumed by earlier attempts never re-fire.
#[derive(Debug)]
pub(crate) struct FaultSession {
    plan: FaultPlan,
    /// One-shot events (drop/duplicate/kill) already fired this attempt.
    fired: Mutex<HashSet<usize>>,
    /// Kill events consumed by earlier attempts of the same run.
    consumed_kills: HashSet<usize>,
    /// Per-rank fault clocks.
    steps: Vec<AtomicU64>,
    /// Set when a kill fires; every comm operation on every rank then
    /// aborts the attempt.
    aborted: AtomicBool,
    /// The kill that ended this attempt: `(event index, rank, step)`.
    kill: Mutex<Option<(usize, usize, u64)>>,
}

impl FaultSession {
    pub(crate) fn new(plan: FaultPlan, world: usize, consumed_kills: HashSet<usize>) -> Self {
        FaultSession {
            plan,
            fired: Mutex::new(HashSet::new()),
            consumed_kills,
            steps: (0..world).map(|_| AtomicU64::new(0)).collect(),
            aborted: AtomicBool::new(false),
            kill: Mutex::new(None),
        }
    }

    /// The rank's current fault clock.
    pub(crate) fn step_of(&self, rank: usize) -> u64 {
        self.steps[rank].load(Ordering::Relaxed)
    }

    /// Advance `rank`'s fault clock. Returns `true` if a `KillRank`
    /// event fires at this step — the caller must then abort the world
    /// and die.
    pub(crate) fn advance(&self, rank: usize, step: u64) -> bool {
        self.steps[rank].store(step, Ordering::Relaxed);
        let mut fired = lock(&self.fired);
        for (i, ev) in self.plan.events.iter().enumerate() {
            if ev.kind == FaultKind::KillRank
                && ev.rank == rank
                && step >= ev.step
                && !self.consumed_kills.contains(&i)
                && fired.insert(i)
            {
                *lock(&self.kill) = Some((i, rank, step));
                self.aborted.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// The message faults applying to a send from `rank` in `class` at
    /// its current fault clock. One-shot events are consumed here.
    pub(crate) fn send_faults(&self, rank: usize, class: TagClass) -> SendFaults {
        let step = self.step_of(rank);
        let mut out = SendFaults::default();
        let mut fired = lock(&self.fired);
        for (i, ev) in self.plan.events.iter().enumerate() {
            if ev.rank != rank || ev.class != class || step < ev.step {
                continue;
            }
            match ev.kind {
                FaultKind::Delay { millis } => out.delay_ms += millis,
                FaultKind::DropOnce => {
                    if !out.drop && fired.insert(i) {
                        out.drop = true;
                    }
                }
                FaultKind::DuplicateOnce => {
                    if !out.duplicate && fired.insert(i) {
                        out.duplicate = true;
                    }
                }
                FaultKind::KillRank => {}
            }
        }
        out
    }

    /// Whether a kill has aborted this attempt.
    pub(crate) fn aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Mark the attempt aborted (set when an abort message is received,
    /// in case the flag write has not yet propagated).
    pub(crate) fn mark_aborted(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    /// The kill that ended this attempt, if any.
    pub(crate) fn kill_record(&self) -> Option<(usize, usize, u64)> {
        *lock(&self.kill)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Panic payload of the victim rank of a [`FaultKind::KillRank`] fault.
/// Recognised (and silenced) by the SPMD runner's restart machinery.
#[derive(Debug, Clone, Copy)]
pub struct RankKilled {
    /// The killed rank.
    pub rank: usize,
    /// The fault-clock step at which it died.
    pub step: u64,
}

/// Panic payload of surviving ranks when a kill aborts a world attempt.
#[derive(Debug, Clone, Copy)]
pub struct WorldAborted;

/// Panic payload for a *deliberately* injected job-level failure — the
/// chaos hook a job scheduler (see `hemelb-farm`) uses to exercise its
/// retry/backoff path. Like [`RankKilled`], these panics are scheduled,
/// not bugs, so the quiet hook keeps them off stderr; the scheduler
/// catches them at the job boundary and retries or marks the job
/// failed.
#[derive(Debug, Clone)]
pub struct InjectedJobFault(pub String);

static QUIET_HOOK: Once = Once::new();

/// Install (once per process) a panic hook that silences the expected
/// [`RankKilled`] / [`WorldAborted`] / [`InjectedJobFault`] payloads
/// and forwards everything else to the previously installed hook.
/// Injected kills are part of the plan, not bugs; they should not spray
/// backtraces over test output. The SPMD runner installs it before any
/// world that can kill ranks; schedulers that inject job-level faults
/// call it themselves.
pub fn install_quiet_panic_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info.payload().is::<RankKilled>()
                || info.payload().is::<WorldAborted>()
                || info.payload().is::<InjectedJobFault>();
            if !expected {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_benign() {
        let a = FaultPlan::seeded_benign(42, 4, 10, 5, 3);
        let b = FaultPlan::seeded_benign(42, 4, 10, 5, 3);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 10);
        assert!(a.events().iter().all(|e| e.kind.is_benign()));
        assert!(a.events().iter().all(|e| e.rank < 4 && e.step <= 5));
        let c = FaultPlan::seeded_benign(43, 4, 10, 5, 3);
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn one_shot_events_fire_once() {
        let plan = FaultPlan::new(vec![FaultEvent {
            rank: 0,
            class: TagClass::Halo,
            step: 2,
            kind: FaultKind::DropOnce,
        }]);
        let s = FaultSession::new(plan, 2, HashSet::new());
        // Not armed before its step.
        assert!(!s.send_faults(0, TagClass::Halo).drop);
        assert!(!s.advance(0, 2));
        // Wrong class and wrong rank never match.
        assert!(!s.send_faults(0, TagClass::Steering).drop);
        assert!(!s.send_faults(1, TagClass::Halo).drop);
        // Fires exactly once.
        assert!(s.send_faults(0, TagClass::Halo).drop);
        assert!(!s.send_faults(0, TagClass::Halo).drop);
    }

    #[test]
    fn delays_persist_and_accumulate() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                rank: 1,
                class: TagClass::Compositing,
                step: 0,
                kind: FaultKind::Delay { millis: 3 },
            },
            FaultEvent {
                rank: 1,
                class: TagClass::Compositing,
                step: 0,
                kind: FaultKind::Delay { millis: 4 },
            },
        ]);
        let s = FaultSession::new(plan, 2, HashSet::new());
        assert_eq!(s.send_faults(1, TagClass::Compositing).delay_ms, 7);
        assert_eq!(s.send_faults(1, TagClass::Compositing).delay_ms, 7);
    }

    #[test]
    fn kill_fires_at_step_and_consumed_kills_do_not_refire() {
        let plan = FaultPlan::new(vec![FaultEvent {
            rank: 1,
            class: TagClass::User,
            step: 5,
            kind: FaultKind::KillRank,
        }]);
        assert_eq!(plan.kill_count(), 1);
        let s = FaultSession::new(plan.clone(), 3, HashSet::new());
        assert!(!s.advance(1, 4));
        assert!(s.advance(1, 5), "kill fires when the clock reaches 5");
        assert!(s.aborted());
        assert_eq!(s.kill_record(), Some((0, 1, 5)));
        // A fresh attempt with the kill consumed never fires it again.
        let s2 = FaultSession::new(plan, 3, HashSet::from([0]));
        assert!(!s2.advance(1, 5));
        assert!(!s2.advance(1, 500));
        assert!(s2.kill_record().is_none());
    }
}
