//! Communication accounting.
//!
//! Every send performed through a [`Communicator`](crate::Communicator)
//! is recorded in a per-rank [`CommStats`]: one message count and one byte
//! count per [`TagClass`]. The experiment harness aggregates the per-rank
//! records into a [`StatsSummary`] (totals, per-rank maxima, imbalance),
//! which is the measured stand-in for the paper's qualitative
//! "communication cost" column.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Traffic classes, one per co-design subsystem (derived from tag ranges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagClass {
    /// Collective-internal traffic (barriers, reductions, ...).
    Collective,
    /// LB halo exchange (distribution functions crossing rank boundaries).
    Halo,
    /// Geometry loading and redistribution (pre-processing).
    Geometry,
    /// Data migration due to (re)partitioning.
    Migration,
    /// In situ visualisation traffic moving simulation data (halo
    /// strips, particle hand-off, ...).
    Visualisation,
    /// Image compositing traffic (result reduction).
    Compositing,
    /// Steering protocol traffic.
    Steering,
    /// Application-defined traffic.
    User,
}

impl TagClass {
    /// All classes, in reporting order.
    pub const ALL: [TagClass; 8] = [
        TagClass::Collective,
        TagClass::Halo,
        TagClass::Geometry,
        TagClass::Migration,
        TagClass::Visualisation,
        TagClass::Compositing,
        TagClass::Steering,
        TagClass::User,
    ];

    #[inline]
    fn index(self) -> usize {
        match self {
            TagClass::Collective => 0,
            TagClass::Halo => 1,
            TagClass::Geometry => 2,
            TagClass::Migration => 3,
            TagClass::Visualisation => 4,
            TagClass::Compositing => 5,
            TagClass::Steering => 6,
            TagClass::User => 7,
        }
    }

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            TagClass::Collective => "collective",
            TagClass::Halo => "halo",
            TagClass::Geometry => "geometry",
            TagClass::Migration => "migration",
            TagClass::Visualisation => "vis",
            TagClass::Compositing => "composite",
            TagClass::Steering => "steering",
            TagClass::User => "user",
        }
    }
}

/// Injected-fault event kinds recorded in [`CommStats`] by the
/// fault-injection layer (`hemelb_parallel::fault`). `Dedup` counts
/// receiver-side drops of duplicated messages — the proof that a
/// duplicate was both injected and absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultStat {
    /// A send was delayed.
    Delay,
    /// A send was swallowed.
    Drop,
    /// A send was delivered twice.
    Duplicate,
    /// A duplicated message was dropped by receiver-side dedup.
    Dedup,
}

impl FaultStat {
    /// All kinds, in reporting order.
    pub const ALL: [FaultStat; 4] = [
        FaultStat::Delay,
        FaultStat::Drop,
        FaultStat::Duplicate,
        FaultStat::Dedup,
    ];

    #[inline]
    fn index(self) -> usize {
        match self {
            FaultStat::Delay => 0,
            FaultStat::Drop => 1,
            FaultStat::Duplicate => 2,
            FaultStat::Dedup => 3,
        }
    }

    /// Short label used in counters and report tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultStat::Delay => "delay",
            FaultStat::Drop => "drop",
            FaultStat::Duplicate => "duplicate",
            FaultStat::Dedup => "dedup",
        }
    }
}

/// Per-rank communication counters.
///
/// Counters are cumulative over the life of a rank; callers that need
/// per-phase figures snapshot with [`CommStats::clone`] and subtract with
/// [`CommStats::delta_since`].
///
/// Besides message/byte volume this also accounts *time*: per-class
/// wall seconds spent blocked inside `recv` (`recv_wait_secs`) and
/// spent in `send` (`send_secs`), the complement the observability
/// layer needs to turn Table I's "communication cost" from a volume
/// column into a latency budget.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    msgs: [u64; 8],
    bytes: [u64; 8],
    recv_wait: [f64; 8],
    send_time: [f64; 8],
    faults: [u64; 4],
    /// Number of blocking collective entries (synchronisation points).
    pub sync_points: u64,
    /// Number of repartitions (adaptive or steered) this rank took part
    /// in. Migration *traffic* is under [`TagClass::Migration`]; this
    /// counts the events themselves.
    #[serde(default)]
    pub rebalances: u64,
    /// Wall seconds of useful compute performed *under* in-flight halo
    /// messages (the interior collide+stream of an overlapped LB step).
    #[serde(default)]
    overlap_compute: f64,
    /// Wall seconds still blocked on halo receives *after* the
    /// overlapped compute finished — the residual latency the overlap
    /// failed to hide.
    #[serde(default)]
    overlap_residual: f64,
}

impl CommStats {
    /// A fresh, zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sent message of `len` payload bytes in `class`.
    #[inline]
    pub fn record_send(&mut self, class: TagClass, len: usize) {
        let i = class.index();
        self.msgs[i] += 1;
        self.bytes[i] += len as u64;
    }

    /// Record entry into a blocking collective (a synchronisation point).
    #[inline]
    pub fn record_sync(&mut self) {
        self.sync_points += 1;
    }

    /// Record participation in one repartition event.
    #[inline]
    pub fn record_rebalance(&mut self) {
        self.rebalances += 1;
    }

    /// Record wall seconds spent blocked in a `recv` of `class`.
    #[inline]
    pub fn record_recv_wait(&mut self, class: TagClass, secs: f64) {
        self.recv_wait[class.index()] += secs;
    }

    /// Record wall seconds spent inside a `send` of `class`.
    #[inline]
    pub fn record_send_time(&mut self, class: TagClass, secs: f64) {
        self.send_time[class.index()] += secs;
    }

    /// Record one overlapped exchange: `compute` seconds of interior
    /// work done while halo messages were in flight, and `residual`
    /// seconds still blocked on receives after that work finished.
    #[inline]
    pub fn record_overlap(&mut self, compute: f64, residual: f64) {
        self.overlap_compute += compute.max(0.0);
        self.overlap_residual += residual.max(0.0);
    }

    /// Wall seconds of compute performed under in-flight halo messages.
    #[inline]
    pub fn overlap_compute_secs(&self) -> f64 {
        self.overlap_compute
    }

    /// Wall seconds still blocked on halo receives after overlapped
    /// compute finished.
    #[inline]
    pub fn overlap_residual_secs(&self) -> f64 {
        self.overlap_residual
    }

    /// Fraction of the overlapped-exchange window spent computing
    /// rather than waiting: `compute / (compute + residual)`. 1.0 means
    /// the halo latency was hidden entirely; reported as 1.0 when no
    /// overlapped exchange was recorded.
    pub fn overlap_efficiency(&self) -> f64 {
        let total = self.overlap_compute + self.overlap_residual;
        if total > 0.0 {
            self.overlap_compute / total
        } else {
            1.0
        }
    }

    /// Record one injected (or absorbed) fault event of `kind`.
    #[inline]
    pub fn record_fault(&mut self, kind: FaultStat) {
        self.faults[kind.index()] += 1;
    }

    /// Injected/absorbed fault events of `kind`.
    #[inline]
    pub fn faults(&self, kind: FaultStat) -> u64 {
        self.faults[kind.index()]
    }

    /// Total fault events across all kinds.
    pub fn total_faults(&self) -> u64 {
        self.faults.iter().sum()
    }

    /// Messages sent in `class`.
    #[inline]
    pub fn msgs(&self, class: TagClass) -> u64 {
        self.msgs[class.index()]
    }

    /// Payload bytes sent in `class`.
    #[inline]
    pub fn bytes(&self, class: TagClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Wall seconds spent blocked in `recv` for `class`.
    #[inline]
    pub fn recv_wait_secs(&self, class: TagClass) -> f64 {
        self.recv_wait[class.index()]
    }

    /// Wall seconds spent inside `send` for `class`.
    #[inline]
    pub fn send_secs(&self, class: TagClass) -> f64 {
        self.send_time[class.index()]
    }

    /// Total seconds spent blocked in `recv` across all classes.
    pub fn total_recv_wait_secs(&self) -> f64 {
        self.recv_wait.iter().sum()
    }

    /// Total seconds spent in `send` across all classes.
    pub fn total_send_secs(&self) -> f64 {
        self.send_time.iter().sum()
    }

    /// Total messages sent across all classes.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total payload bytes sent across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Counter-wise difference `self - earlier` (panics on underflow,
    /// which would indicate the snapshots were swapped).
    pub fn delta_since(&self, earlier: &CommStats) -> CommStats {
        let mut out = CommStats::default();
        for i in 0..8 {
            out.msgs[i] = self.msgs[i]
                .checked_sub(earlier.msgs[i])
                .expect("stats snapshots out of order");
            out.bytes[i] = self.bytes[i]
                .checked_sub(earlier.bytes[i])
                .expect("stats snapshots out of order");
            out.recv_wait[i] = (self.recv_wait[i] - earlier.recv_wait[i]).max(0.0);
            out.send_time[i] = (self.send_time[i] - earlier.send_time[i]).max(0.0);
        }
        for i in 0..4 {
            out.faults[i] = self.faults[i]
                .checked_sub(earlier.faults[i])
                .expect("stats snapshots out of order");
        }
        out.sync_points = self
            .sync_points
            .checked_sub(earlier.sync_points)
            .expect("stats snapshots out of order");
        out.rebalances = self
            .rebalances
            .checked_sub(earlier.rebalances)
            .expect("stats snapshots out of order");
        out.overlap_compute = (self.overlap_compute - earlier.overlap_compute).max(0.0);
        out.overlap_residual = (self.overlap_residual - earlier.overlap_residual).max(0.0);
        out
    }

    /// Counter-wise sum, used when folding per-rank records.
    pub fn merged_with(&self, other: &CommStats) -> CommStats {
        let mut out = self.clone();
        for i in 0..8 {
            out.msgs[i] += other.msgs[i];
            out.bytes[i] += other.bytes[i];
            out.recv_wait[i] += other.recv_wait[i];
            out.send_time[i] += other.send_time[i];
        }
        for i in 0..4 {
            out.faults[i] += other.faults[i];
        }
        out.sync_points += other.sync_points;
        out.rebalances += other.rebalances;
        out.overlap_compute += other.overlap_compute;
        out.overlap_residual += other.overlap_residual;
        out
    }
}

/// Aggregate view over the per-rank [`CommStats`] of one SPMD run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsSummary {
    /// Number of ranks that contributed.
    pub ranks: usize,
    /// Sum of all per-rank counters.
    pub total: CommStats,
    /// Maximum total bytes sent by any single rank.
    pub max_bytes_per_rank: u64,
    /// Maximum total messages sent by any single rank.
    pub max_msgs_per_rank: u64,
    /// `max_bytes_per_rank / mean_bytes_per_rank`; 1.0 is perfectly even.
    /// Reported as 1.0 when no traffic occurred.
    pub byte_imbalance: f64,
}

impl StatsSummary {
    /// Fold per-rank records into an aggregate.
    pub fn from_ranks(per_rank: &[CommStats]) -> Self {
        let ranks = per_rank.len();
        let total = per_rank
            .iter()
            .fold(CommStats::default(), |acc, s| acc.merged_with(s));
        let max_bytes_per_rank = per_rank.iter().map(|s| s.total_bytes()).max().unwrap_or(0);
        let max_msgs_per_rank = per_rank.iter().map(|s| s.total_msgs()).max().unwrap_or(0);
        let mean = if ranks == 0 {
            0.0
        } else {
            total.total_bytes() as f64 / ranks as f64
        };
        let byte_imbalance = if mean > 0.0 {
            max_bytes_per_rank as f64 / mean
        } else {
            1.0
        };
        StatsSummary {
            ranks,
            total,
            max_bytes_per_rank,
            max_msgs_per_rank,
            byte_imbalance,
        }
    }

    /// Bytes per class as `(label, bytes)` pairs with non-zero counts.
    pub fn bytes_by_class(&self) -> Vec<(&'static str, u64)> {
        TagClass::ALL
            .iter()
            .filter(|c| self.total.bytes(**c) > 0)
            .map(|c| (c.label(), self.total.bytes(*c)))
            .collect()
    }

    /// Recv-wait seconds per class as `(label, secs)` pairs for classes
    /// that saw any traffic or wait time.
    pub fn wait_by_class(&self) -> Vec<(&'static str, f64)> {
        TagClass::ALL
            .iter()
            .filter(|c| self.total.msgs(**c) > 0 || self.total.recv_wait_secs(**c) > 0.0)
            .map(|c| (c.label(), self.total.recv_wait_secs(*c)))
            .collect()
    }
}

impl fmt::Display for StatsSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ranks={} total_msgs={} total_bytes={} max_bytes/rank={} imbalance={:.3} syncs={} rebalances={}",
            self.ranks,
            self.total.total_msgs(),
            self.total.total_bytes(),
            self.max_bytes_per_rank,
            self.byte_imbalance,
            self.total.sync_points,
            self.total.rebalances,
        )?;
        for (label, bytes) in self.bytes_by_class() {
            let wait = self.total.recv_wait_secs(
                *TagClass::ALL
                    .iter()
                    .find(|c| c.label() == label)
                    .expect("label comes from TagClass::ALL"),
            );
            writeln!(
                f,
                "  {label:>10}: {bytes} B  (recv-wait {:.3} ms)",
                wait * 1e3
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut s = CommStats::new();
        s.record_send(TagClass::Halo, 128);
        s.record_send(TagClass::Halo, 64);
        s.record_send(TagClass::Visualisation, 1000);
        assert_eq!(s.msgs(TagClass::Halo), 2);
        assert_eq!(s.bytes(TagClass::Halo), 192);
        assert_eq!(s.msgs(TagClass::Visualisation), 1);
        assert_eq!(s.total_msgs(), 3);
        assert_eq!(s.total_bytes(), 1192);
    }

    #[test]
    fn delta_subtracts_counterwise() {
        let mut s = CommStats::new();
        s.record_send(TagClass::Halo, 100);
        let snap = s.clone();
        s.record_send(TagClass::Halo, 50);
        s.record_sync();
        let d = s.delta_since(&snap);
        assert_eq!(d.bytes(TagClass::Halo), 50);
        assert_eq!(d.msgs(TagClass::Halo), 1);
        assert_eq!(d.sync_points, 1);
    }

    #[test]
    fn summary_imbalance() {
        let mut a = CommStats::new();
        a.record_send(TagClass::User, 300);
        let mut b = CommStats::new();
        b.record_send(TagClass::User, 100);
        let sum = StatsSummary::from_ranks(&[a, b]);
        assert_eq!(sum.total.total_bytes(), 400);
        assert_eq!(sum.max_bytes_per_rank, 300);
        assert!((sum.byte_imbalance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_silence_is_balanced() {
        let sum = StatsSummary::from_ranks(&[CommStats::new(), CommStats::new()]);
        assert_eq!(sum.byte_imbalance, 1.0);
        assert_eq!(sum.total.total_bytes(), 0);
    }

    #[test]
    fn wait_time_accounting() {
        let mut s = CommStats::new();
        s.record_recv_wait(TagClass::Halo, 0.5);
        s.record_recv_wait(TagClass::Halo, 0.25);
        s.record_send_time(TagClass::Steering, 0.1);
        assert_eq!(s.recv_wait_secs(TagClass::Halo), 0.75);
        assert_eq!(s.send_secs(TagClass::Steering), 0.1);
        assert_eq!(s.total_recv_wait_secs(), 0.75);
        assert_eq!(s.total_send_secs(), 0.1);

        let snap = s.clone();
        s.record_recv_wait(TagClass::Halo, 1.0);
        let d = s.delta_since(&snap);
        assert!((d.recv_wait_secs(TagClass::Halo) - 1.0).abs() < 1e-12);
        assert_eq!(d.send_secs(TagClass::Steering), 0.0);

        let merged = s.merged_with(&snap);
        assert!((merged.recv_wait_secs(TagClass::Halo) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_reports_wait_by_class() {
        let mut a = CommStats::new();
        a.record_send(TagClass::Halo, 10);
        a.record_recv_wait(TagClass::Halo, 0.2);
        let sum = StatsSummary::from_ranks(&[a]);
        let wait = sum.wait_by_class();
        assert_eq!(wait, vec![("halo", 0.2)]);
        assert!(format!("{sum}").contains("recv-wait"));
    }

    #[test]
    fn fault_counters_record_delta_and_merge() {
        let mut s = CommStats::new();
        s.record_fault(FaultStat::Delay);
        s.record_fault(FaultStat::Delay);
        s.record_fault(FaultStat::Duplicate);
        assert_eq!(s.faults(FaultStat::Delay), 2);
        assert_eq!(s.faults(FaultStat::Drop), 0);
        assert_eq!(s.total_faults(), 3);

        let snap = s.clone();
        s.record_fault(FaultStat::Dedup);
        let d = s.delta_since(&snap);
        assert_eq!(d.faults(FaultStat::Dedup), 1);
        assert_eq!(d.faults(FaultStat::Delay), 0);

        let merged = s.merged_with(&snap);
        assert_eq!(merged.faults(FaultStat::Delay), 4);
        assert_eq!(merged.total_faults(), 7);
    }

    #[test]
    fn rebalance_counter_records_deltas_and_merges() {
        let mut s = CommStats::new();
        s.record_rebalance();
        assert_eq!(s.rebalances, 1);
        let snap = s.clone();
        s.record_rebalance();
        assert_eq!(s.delta_since(&snap).rebalances, 1);
        assert_eq!(s.merged_with(&snap).rebalances, 3);
        let sum = StatsSummary::from_ranks(&[s, snap]);
        assert_eq!(sum.total.rebalances, 3);
        assert!(format!("{sum}").contains("rebalances=3"));
    }

    #[test]
    fn overlap_accounting_records_deltas_and_merges() {
        let mut s = CommStats::new();
        // No overlapped exchange yet: vacuously fully efficient.
        assert_eq!(s.overlap_efficiency(), 1.0);

        s.record_overlap(0.3, 0.1);
        assert!((s.overlap_compute_secs() - 0.3).abs() < 1e-12);
        assert!((s.overlap_residual_secs() - 0.1).abs() < 1e-12);
        assert!((s.overlap_efficiency() - 0.75).abs() < 1e-12);

        let snap = s.clone();
        s.record_overlap(0.2, 0.0);
        let d = s.delta_since(&snap);
        assert!((d.overlap_compute_secs() - 0.2).abs() < 1e-12);
        assert_eq!(d.overlap_residual_secs(), 0.0);

        let merged = s.merged_with(&snap);
        assert!((merged.overlap_compute_secs() - 0.8).abs() < 1e-12);
        assert!((merged.overlap_residual_secs() - 0.2).abs() < 1e-12);

        // Negative inputs (clock skew) are clamped, not accumulated.
        let mut t = CommStats::new();
        t.record_overlap(-1.0, -1.0);
        assert_eq!(t.overlap_compute_secs(), 0.0);
        assert_eq!(t.overlap_efficiency(), 1.0);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = CommStats::new();
        a.record_send(TagClass::Halo, 10);
        let mut b = CommStats::new();
        b.record_send(TagClass::Steering, 20);
        assert_eq!(a.merged_with(&b), b.merged_with(&a));
    }
}
