//! SPMD execution: run the same closure on `P` rank-threads.

use crate::comm::{Communicator, World};
use crate::stats::{CommStats, StatsSummary};
use std::thread;

/// The result of an SPMD run: per-rank return values plus the per-rank
/// communication records and their aggregate.
#[derive(Debug)]
pub struct SpmdOutput<T> {
    /// `results[r]` is what rank `r`'s closure returned.
    pub results: Vec<T>,
    /// `stats[r]` is rank `r`'s cumulative communication record.
    pub stats: Vec<CommStats>,
    /// Aggregate over all ranks.
    pub summary: StatsSummary,
}

/// Run `f` on `size` ranks (one OS thread each) and collect the per-rank
/// return values, indexed by rank.
///
/// Panics in any rank propagate to the caller (with the rank attributed),
/// matching the fail-fast behaviour of an MPI abort.
pub fn run_spmd<T, F>(size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Communicator) -> T + Send + Sync,
{
    run_spmd_with_stats(size, f).results
}

/// Hybrid-execution options for an SPMD run.
///
/// The paper's co-design target is MPI ranks × on-node threads; here the
/// analogue is rank-threads × a rayon pool per rank. With
/// `threads_per_rank > 1` every rank closure runs inside its own rayon
/// pool, so the chunk-parallel collide/stream kernels in `hemelb-core`
/// split each rank's site loop across that many workers. Results are
/// bit-identical at any setting (pull streaming + disjoint chunk
/// writes), so the knob trades nothing but scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmdOptions {
    /// Rayon worker threads installed for each rank closure (≥ 1).
    pub threads_per_rank: usize,
}

impl Default for SpmdOptions {
    fn default() -> Self {
        SpmdOptions {
            threads_per_rank: 1,
        }
    }
}

/// Like [`run_spmd`] but also returns communication statistics — the
/// measurement entry point used by every experiment in this repository.
pub fn run_spmd_with_stats<T, F>(size: usize, f: F) -> SpmdOutput<T>
where
    T: Send,
    F: Fn(&Communicator) -> T + Send + Sync,
{
    run_spmd_opts(size, SpmdOptions::default(), f)
}

/// Run `f` on `size` ranks with explicit [`SpmdOptions`]; each rank
/// closure executes inside a rayon pool of `threads_per_rank` workers.
pub fn run_spmd_opts<T, F>(size: usize, opts: SpmdOptions, f: F) -> SpmdOutput<T>
where
    T: Send,
    F: Fn(&Communicator) -> T + Send + Sync,
{
    let threads = opts.threads_per_rank.max(1);
    let comms = World::communicators(size);
    let f = &f;
    let mut pairs: Vec<(T, CommStats)> = Vec::with_capacity(size);
    thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                scope.spawn(move || {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .expect("rank thread pool");
                    let result = pool.install(|| f(&comm));
                    let stats = comm.stats();
                    (result, stats)
                })
            })
            .collect();
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(pair) => pairs.push(pair),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic payload>");
                    panic!("rank {rank} panicked: {msg}");
                }
            }
        }
    });
    let (results, stats): (Vec<T>, Vec<CommStats>) = pairs.into_iter().unzip();
    let summary = StatsSummary::from_ranks(&stats);
    SpmdOutput {
        results,
        stats,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Tag;
    use crate::wire::Wire;

    #[test]
    fn results_are_indexed_by_rank() {
        let results = run_spmd(6, |comm| comm.rank() * comm.rank());
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25]);
    }

    #[test]
    fn threads_per_rank_installs_a_pool() {
        let out = run_spmd_opts(
            2,
            SpmdOptions {
                threads_per_rank: 3,
            },
            |_| rayon::current_num_threads(),
        );
        assert_eq!(out.results, vec![3, 3]);
        // Default options keep the historical single-thread behaviour.
        let out = run_spmd_with_stats(2, |_| rayon::current_num_threads());
        assert_eq!(out.results, vec![1, 1]);
    }

    #[test]
    fn single_rank_world_works() {
        let results = run_spmd(1, |comm| {
            comm.barrier().unwrap();
            comm.all_reduce_f64(3.0, |a, b| a + b).unwrap()
        });
        assert_eq!(results, vec![3.0]);
    }

    #[test]
    fn stats_are_collected_per_rank() {
        let out = run_spmd_with_stats(3, |comm| {
            // Ring: everyone sends 16 bytes to the next rank.
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_wire(next, Tag::user(0), &(comm.rank() as u64))
                .unwrap();
            comm.send_wire(next, Tag::user(0), &0u64).unwrap();
            comm.recv(prev, Tag::user(0)).unwrap();
            comm.recv(prev, Tag::user(0)).unwrap();
        });
        assert_eq!(out.stats.len(), 3);
        for s in &out.stats {
            assert_eq!(s.total_msgs(), 2);
            assert_eq!(s.total_bytes(), 16);
        }
        assert_eq!(out.summary.total.total_bytes(), 48);
        assert!((out.summary.byte_imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked")]
    fn rank_panics_are_attributed() {
        // Use a 1-deep dependency so rank 0 finishes before rank 1 dies.
        run_spmd(2, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate failure for test");
            } else {
                // rank 0 exits immediately
            }
        });
    }

    #[test]
    fn large_payload_round_trip() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                let big: Vec<f64> = (0..100_000).map(|i| i as f64 * 0.5).collect();
                comm.send_wire(1, Tag::user(0), &big).unwrap();
                0.0
            } else {
                let big: Vec<f64> = comm.recv_wire(0, Tag::user(0)).unwrap();
                big.iter().sum::<f64>()
            }
        });
        let expect: f64 = (0..100_000).map(|i| i as f64 * 0.5).sum();
        assert_eq!(results[1], expect);
    }

    #[test]
    fn wire_trait_usable_through_runner() {
        // Regression guard: ensure Wire is exported in a way that SPMD
        // closures can use it without extra imports beyond the prelude.
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag::user(1), 42u64.to_bytes()).unwrap();
                0
            } else {
                u64::from_bytes(comm.recv(0, Tag::user(1)).unwrap()).unwrap()
            }
        });
        assert_eq!(results[1], 42);
    }
}
