//! SPMD execution: run the same closure on `P` rank-threads.

use crate::comm::{Communicator, World};
use crate::fault::{install_quiet_panic_hook, FaultPlan, FaultSession};
use crate::stats::{CommStats, StatsSummary};
use hemelb_obs::ObsReport;
use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

/// The result of an SPMD run: per-rank return values plus the per-rank
/// communication records, observability reports and their aggregates.
#[derive(Debug)]
pub struct SpmdOutput<T> {
    /// `results[r]` is what rank `r`'s closure returned.
    pub results: Vec<T>,
    /// `stats[r]` is rank `r`'s cumulative communication record.
    pub stats: Vec<CommStats>,
    /// Aggregate over all ranks.
    pub summary: StatsSummary,
    /// `obs[r]` is rank `r`'s observability report (phase timings,
    /// counters, timeline) as recorded through its communicator.
    pub obs: Vec<ObsReport>,
}

impl<T> SpmdOutput<T> {
    /// Fleet-wide observability aggregate: per-phase stats and counters
    /// summed over every rank (timelines stay per rank in
    /// [`SpmdOutput::obs`]).
    pub fn merged_obs(&self) -> ObsReport {
        ObsReport::merged(&self.obs)
    }
}

/// Run `f` on `size` ranks (one OS thread each) and collect the per-rank
/// return values, indexed by rank.
///
/// Panics in any rank propagate to the caller (with the rank attributed),
/// matching the fail-fast behaviour of an MPI abort.
pub fn run_spmd<T, F>(size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Communicator) -> T + Send + Sync,
{
    run_spmd_with_stats(size, f).results
}

/// Hybrid-execution options for an SPMD run.
///
/// The paper's co-design target is MPI ranks × on-node threads; here the
/// analogue is rank-threads × a rayon pool per rank. With
/// `threads_per_rank > 1` every rank closure runs inside its own rayon
/// pool, so the chunk-parallel collide/stream kernels in `hemelb-core`
/// split each rank's site loop across that many workers. Results are
/// bit-identical at any setting (pull streaming + disjoint chunk
/// writes), so the knob trades nothing but scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmdOptions {
    /// Rayon worker threads installed for each rank closure (≥ 1).
    pub threads_per_rank: usize,
    /// Deterministic fault schedule applied to every communicator in
    /// the world; `None` (the default) costs one branch per operation.
    ///
    /// Plans containing `KillRank` events engage the restart machinery:
    /// when the victim dies, the whole attempt is aborted (peers are
    /// woken out of blocking receives), the world is re-run with that
    /// kill consumed, and the closures recover by restoring from their
    /// latest checkpoint — the MPI-style consistent-cut recovery the
    /// fault-injection suite asserts bit-exact.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for SpmdOptions {
    fn default() -> Self {
        SpmdOptions {
            threads_per_rank: 1,
            fault_plan: None,
        }
    }
}

impl SpmdOptions {
    /// Options running `plan` on single-threaded ranks.
    pub fn with_faults(plan: FaultPlan) -> Self {
        SpmdOptions {
            fault_plan: Some(Arc::new(plan)),
            ..Default::default()
        }
    }

    /// Options for one scheduled job: `threads` rayon workers per rank
    /// and an optional per-job fault schedule. Worlds built from
    /// different jobs share nothing — each `run_spmd_opts` call gets its
    /// own fault session, so a plan (or a kill-triggered restart) in one
    /// job cannot perturb a concurrently running neighbour.
    pub fn for_job(threads: usize, plan: Option<FaultPlan>) -> Self {
        SpmdOptions {
            threads_per_rank: threads.max(1),
            fault_plan: plan.map(Arc::new),
        }
    }
}

/// Like [`run_spmd`] but also returns communication statistics — the
/// measurement entry point used by every experiment in this repository.
pub fn run_spmd_with_stats<T, F>(size: usize, f: F) -> SpmdOutput<T>
where
    T: Send,
    F: Fn(&Communicator) -> T + Send + Sync,
{
    run_spmd_opts(size, SpmdOptions::default(), f)
}

/// Run `f` on `size` ranks with explicit [`SpmdOptions`]; each rank
/// closure executes inside a rayon pool of `threads_per_rank` workers.
///
/// With a [`FaultPlan`](crate::fault::FaultPlan) containing `KillRank`
/// events, a fired kill aborts the whole attempt and the world is
/// restarted with that kill consumed (at most one restart per kill
/// event). The closure `f` re-runs from scratch on every rank; closures
/// that checkpoint can restore and replay, which is how the recovery
/// path reaches a bit-exact post-fault state.
pub fn run_spmd_opts<T, F>(size: usize, opts: SpmdOptions, f: F) -> SpmdOutput<T>
where
    T: Send,
    F: Fn(&Communicator) -> T + Send + Sync,
{
    let threads = opts.threads_per_rank.max(1);
    let Some(plan) = opts.fault_plan else {
        return run_world(size, threads, None, &f).unwrap_or_else(|_| {
            unreachable!("attempts abort only under kill faults");
        });
    };
    if plan.has_kills() {
        // Injected deaths are scheduled, not bugs: keep their panics
        // off stderr.
        install_quiet_panic_hook();
    }
    let max_restarts = plan.kill_count();
    let mut consumed: HashSet<usize> = HashSet::new();
    let mut restarts = 0usize;
    loop {
        let session = Arc::new(FaultSession::new((*plan).clone(), size, consumed.clone()));
        match run_world(size, threads, Some(Arc::clone(&session)), &f) {
            Ok(mut out) => {
                if restarts > 0 {
                    // The killed attempts' per-rank reports died with
                    // them; surface the recovery on the master report so
                    // `merged_obs` still tells the story.
                    *out.obs[0]
                        .counters
                        .entry("fault.restarts".to_string())
                        .or_insert(0) += restarts as u64;
                    *out.obs[0]
                        .counters
                        .entry("fault.injected.kill".to_string())
                        .or_insert(0) += restarts as u64;
                }
                return out;
            }
            Err(()) => {
                let (idx, _rank, _step) = session
                    .kill_record()
                    .expect("aborted attempts always record their kill");
                consumed.insert(idx);
                restarts += 1;
                assert!(
                    restarts <= max_restarts,
                    "fault restart limit exceeded: {restarts} restarts for \
                     {max_restarts} kill events"
                );
            }
        }
    }
}

/// One attempt at running the world. Returns `Err(())` when a kill
/// fault aborted the attempt (all panics are then collateral and the
/// partial results are discarded); genuine panics propagate with the
/// rank attributed, as ever.
fn run_world<T, F>(
    size: usize,
    threads: usize,
    session: Option<Arc<FaultSession>>,
    f: &F,
) -> Result<SpmdOutput<T>, ()>
where
    T: Send,
    F: Fn(&Communicator) -> T + Send + Sync,
{
    let comms = World::communicators_faulty(size, session.clone());
    let mut triples: Vec<(T, CommStats, ObsReport)> = Vec::with_capacity(size);
    let mut first_panic: Option<(usize, String)> = None;
    thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                scope.spawn(move || {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .expect("rank thread pool");
                    let result = pool.install(|| f(&comm));
                    let stats = comm.stats();
                    let obs = comm.obs_report();
                    (result, stats, obs)
                })
            })
            .collect();
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(triple) => triples.push(triple),
                Err(payload) => {
                    if first_panic.is_none() {
                        let msg = payload
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| payload.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic payload>")
                            .to_string();
                        first_panic = Some((rank, msg));
                    }
                }
            }
        }
    });
    if session.is_some_and(|s| s.kill_record().is_some()) {
        return Err(());
    }
    if let Some((rank, msg)) = first_panic {
        panic!("rank {rank} panicked: {msg}");
    }
    let mut results = Vec::with_capacity(size);
    let mut stats = Vec::with_capacity(size);
    let mut obs = Vec::with_capacity(size);
    for (r, s, o) in triples {
        results.push(r);
        stats.push(s);
        obs.push(o);
    }
    let summary = StatsSummary::from_ranks(&stats);
    Ok(SpmdOutput {
        results,
        stats,
        summary,
        obs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Tag;
    use crate::wire::Wire;

    #[test]
    fn results_are_indexed_by_rank() {
        let results = run_spmd(6, |comm| comm.rank() * comm.rank());
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25]);
    }

    #[test]
    fn threads_per_rank_installs_a_pool() {
        let out = run_spmd_opts(
            2,
            SpmdOptions {
                threads_per_rank: 3,
                ..Default::default()
            },
            |_| rayon::current_num_threads(),
        );
        assert_eq!(out.results, vec![3, 3]);
        // Default options keep the historical single-thread behaviour.
        let out = run_spmd_with_stats(2, |_| rayon::current_num_threads());
        assert_eq!(out.results, vec![1, 1]);
    }

    #[test]
    fn single_rank_world_works() {
        let results = run_spmd(1, |comm| {
            comm.barrier().unwrap();
            comm.all_reduce_f64(3.0, |a, b| a + b).unwrap()
        });
        assert_eq!(results, vec![3.0]);
    }

    #[test]
    fn stats_are_collected_per_rank() {
        let out = run_spmd_with_stats(3, |comm| {
            // Ring: everyone sends 16 bytes to the next rank.
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_wire(next, Tag::user(0), &(comm.rank() as u64))
                .unwrap();
            comm.send_wire(next, Tag::user(0), &0u64).unwrap();
            comm.recv(prev, Tag::user(0)).unwrap();
            comm.recv(prev, Tag::user(0)).unwrap();
        });
        assert_eq!(out.stats.len(), 3);
        for s in &out.stats {
            assert_eq!(s.total_msgs(), 2);
            assert_eq!(s.total_bytes(), 16);
        }
        assert_eq!(out.summary.total.total_bytes(), 48);
        assert!((out.summary.byte_imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn obs_reports_are_collected_and_merge() {
        let out = run_spmd_with_stats(3, |comm| {
            comm.with_obs(|rec| {
                rec.record_secs("lb.collide", 0.001 * (comm.rank() + 1) as f64);
                rec.count("steps", 10);
            });
        });
        assert_eq!(out.obs.len(), 3);
        for (r, report) in out.obs.iter().enumerate() {
            assert_eq!(report.rank, Some(r));
            assert_eq!(report.phases["lb.collide"].calls, 1);
        }
        let merged = out.merged_obs();
        assert_eq!(merged.phases["lb.collide"].calls, 3);
        assert_eq!(merged.counters["steps"], 30);
        assert!((merged.phases["lb.collide"].total_secs - 0.006).abs() < 1e-12);
    }

    #[test]
    fn recv_wait_time_is_attributed_to_the_tag_class() {
        let out = run_spmd_with_stats(2, |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                comm.send(1, Tag::halo(0), 64u64.to_bytes()).unwrap();
            } else {
                comm.recv(0, Tag::halo(0)).unwrap();
            }
        });
        use crate::stats::TagClass;
        let waiter = &out.stats[1];
        assert!(
            waiter.recv_wait_secs(TagClass::Halo) >= 0.015,
            "rank 1 blocked ~20ms on the halo recv, recorded {}",
            waiter.recv_wait_secs(TagClass::Halo)
        );
        assert_eq!(waiter.recv_wait_secs(TagClass::Steering), 0.0);
        assert!(out.stats[0].send_secs(TagClass::Halo) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked")]
    fn rank_panics_are_attributed() {
        // Use a 1-deep dependency so rank 0 finishes before rank 1 dies.
        run_spmd(2, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate failure for test");
            } else {
                // rank 0 exits immediately
            }
        });
    }

    #[test]
    fn killed_rank_restarts_the_world_once() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};
        use crate::stats::TagClass;
        use std::sync::atomic::{AtomicUsize, Ordering};

        let attempts = AtomicUsize::new(0);
        let plan = FaultPlan::new(vec![FaultEvent {
            rank: 1,
            class: TagClass::User,
            step: 3,
            kind: FaultKind::KillRank,
        }]);
        let out = run_spmd_opts(3, SpmdOptions::with_faults(plan), |comm| {
            if comm.rank() == 0 {
                attempts.fetch_add(1, Ordering::SeqCst);
            }
            let mut acc = 0u64;
            for step in 0..6u64 {
                comm.set_fault_step(step);
                acc = comm
                    .all_reduce_u64(step + comm.rank() as u64, |a, b| a + b)
                    .unwrap();
            }
            acc
        });
        // The kill at step 3 aborted attempt 1; attempt 2 (kill
        // consumed) ran to completion with identical results.
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
        let expect = 5 + (5 + 1) + (5 + 2);
        assert_eq!(out.results, vec![expect, expect, expect]);
        assert_eq!(out.merged_obs().counters["fault.restarts"], 1);
        assert_eq!(out.merged_obs().counters["fault.injected.kill"], 1);
    }

    #[test]
    fn benign_fault_plans_leave_results_unchanged() {
        use crate::fault::FaultPlan;

        let clean = run_spmd(3, |comm| {
            comm.all_reduce_u64(comm.rank() as u64 + 1, |a, b| a + b)
                .unwrap()
        });
        let plan = FaultPlan::seeded_benign(7, 3, 6, 0, 2);
        let out = run_spmd_opts(3, SpmdOptions::with_faults(plan), |comm| {
            comm.all_reduce_u64(comm.rank() as u64 + 1, |a, b| a + b)
                .unwrap()
        });
        assert_eq!(out.results, clean);
    }

    #[test]
    fn large_payload_round_trip() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                let big: Vec<f64> = (0..100_000).map(|i| i as f64 * 0.5).collect();
                comm.send_wire(1, Tag::user(0), &big).unwrap();
                0.0
            } else {
                let big: Vec<f64> = comm.recv_wire(0, Tag::user(0)).unwrap();
                big.iter().sum::<f64>()
            }
        });
        let expect: f64 = (0..100_000).map(|i| i as f64 * 0.5).sum();
        assert_eq!(results[1], expect);
    }

    #[test]
    fn wire_trait_usable_through_runner() {
        // Regression guard: ensure Wire is exported in a way that SPMD
        // closures can use it without extra imports beyond the prelude.
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag::user(1), 42u64.to_bytes()).unwrap();
                0
            } else {
                u64::from_bytes(comm.recv(0, Tag::user(1)).unwrap()).unwrap()
            }
        });
        assert_eq!(results[1], 42);
    }
}
