//! The α–β–γ communication/computation cost model.
//!
//! The substrate measures *exact* message and byte counts; this module
//! turns those counts into projected wall-clock times on machines we do
//! not have access to — the device that lets a thread-scale run speak to
//! the paper's exascale questions. The model is the classic
//! postal/LogP-flavoured linear model
//!
//! ```text
//! T = α · messages + bytes / β + flops / γ
//! ```
//!
//! with `α` the per-message latency (s), `β` the bandwidth (B/s) and `γ`
//! the compute rate (flop/s). Two presets bracket the design space of the
//! 2012 paper: a HECToR-like Cray XE6 node (the machine HemeLB's 32k-core
//! scaling study ran on) and a projected exascale node following the
//! DOE/ASCAC exascale report the paper cites (its reference [12]): much
//! more compute per node than bandwidth, and latency that barely improves
//! — exactly the regime in which the paper argues data movement becomes
//! the dominant cost.

use serde::{Deserialize, Serialize};

pub mod calibrate;

/// Machine presets for cost projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MachineModel {
    /// Cray XE6 / Gemini-class interconnect (c. 2012, HECToR): α ≈ 1.5 µs,
    /// β ≈ 5 GB/s per link, γ ≈ 10 Gflop/s per core.
    CrayXe6,
    /// ASCAC-report exascale projection: α ≈ 0.5 µs, β ≈ 50 GB/s,
    /// γ ≈ 1 Tflop/s per node — a 100× compute jump against a 10×
    /// bandwidth jump, so byte-heavy algorithms regress *relative to*
    /// compute.
    ExascaleProjection,
    /// A laptop-class shared-memory "interconnect", for sanity checks
    /// against measured in-process times.
    SharedMemory,
}

/// Linear cost model `T = α·msgs + bytes/β + flops/γ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Per-message latency, seconds.
    pub alpha: f64,
    /// Bandwidth, bytes per second.
    pub beta: f64,
    /// Compute rate, flops per second.
    pub gamma: f64,
}

impl CostModel {
    /// Build a model from a preset.
    pub fn for_machine(machine: MachineModel) -> Self {
        match machine {
            MachineModel::CrayXe6 => CostModel {
                alpha: 1.5e-6,
                beta: 5.0e9,
                gamma: 1.0e10,
            },
            MachineModel::ExascaleProjection => CostModel {
                alpha: 0.5e-6,
                beta: 5.0e10,
                gamma: 1.0e12,
            },
            MachineModel::SharedMemory => CostModel {
                alpha: 1.0e-7,
                beta: 2.0e10,
                gamma: 5.0e9,
            },
        }
    }

    /// Projected time for a communication phase of `msgs` messages
    /// carrying `bytes` payload bytes, plus `flops` arithmetic.
    pub fn time(&self, msgs: u64, bytes: u64, flops: u64) -> f64 {
        self.alpha * msgs as f64 + bytes as f64 / self.beta + flops as f64 / self.gamma
    }

    /// Projected cost breakdown for the *critical path* of one rank:
    /// callers pass the per-rank maxima (bulk-synchronous phases are
    /// gated by the slowest rank).
    pub fn critical_path(&self, max_msgs: u64, max_bytes: u64, max_flops: u64) -> ProjectedCost {
        ProjectedCost {
            latency_s: self.alpha * max_msgs as f64,
            transfer_s: max_bytes as f64 / self.beta,
            compute_s: max_flops as f64 / self.gamma,
        }
    }
}

/// A decomposed projected time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectedCost {
    /// α-term: message-count-dominated latency.
    pub latency_s: f64,
    /// β-term: byte-volume transfer time.
    pub transfer_s: f64,
    /// γ-term: arithmetic time.
    pub compute_s: f64,
}

impl ProjectedCost {
    /// Total projected seconds.
    pub fn total_s(&self) -> f64 {
        self.latency_s + self.transfer_s + self.compute_s
    }

    /// Fraction of the total spent moving data (α+β terms) — the
    /// "data movement" share the exascale report warns about.
    pub fn data_movement_fraction(&self) -> f64 {
        let t = self.total_s();
        if t == 0.0 {
            0.0
        } else {
            (self.latency_s + self.transfer_s) / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_in_each_term() {
        let m = CostModel::for_machine(MachineModel::CrayXe6);
        let t1 = m.time(1, 0, 0);
        let t2 = m.time(2, 0, 0);
        assert!((t2 - 2.0 * t1).abs() < 1e-18);
        let b1 = m.time(0, 1000, 0);
        let b2 = m.time(0, 3000, 0);
        assert!((b2 - 3.0 * b1).abs() < 1e-12);
    }

    #[test]
    fn exascale_shifts_balance_toward_communication() {
        // Same workload: 1e9 flops, 1e8 bytes, 1e4 messages.
        let xe6 = CostModel::for_machine(MachineModel::CrayXe6).critical_path(
            1_0000,
            100_000_000,
            1_000_000_000,
        );
        let exa = CostModel::for_machine(MachineModel::ExascaleProjection).critical_path(
            1_0000,
            100_000_000,
            1_000_000_000,
        );
        // On the exascale projection, data movement takes a strictly larger
        // share of the total — the paper's central premise.
        assert!(exa.data_movement_fraction() > xe6.data_movement_fraction());
    }

    #[test]
    fn zero_workload_costs_nothing() {
        let m = CostModel::for_machine(MachineModel::SharedMemory);
        assert_eq!(m.time(0, 0, 0), 0.0);
        assert_eq!(m.critical_path(0, 0, 0).data_movement_fraction(), 0.0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let c = CostModel::for_machine(MachineModel::CrayXe6).critical_path(5, 1 << 20, 1 << 24);
        let sum = c.latency_s + c.transfer_s + c.compute_s;
        assert!((c.total_s() - sum).abs() < 1e-18);
    }
}
