//! Error types for the message-passing substrate.

use std::fmt;

/// Errors that can arise in communicator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer rank index is outside `0..size`.
    InvalidRank {
        /// The offending rank index.
        rank: usize,
        /// The communicator size.
        size: usize,
    },
    /// The channel to or from a peer was disconnected — a peer rank
    /// panicked or exited while others were still communicating.
    Disconnected {
        /// The peer whose channel broke.
        peer: usize,
    },
    /// A payload failed to decode as the requested type.
    Decode {
        /// Human-readable description of the failure.
        reason: String,
    },
    /// A collective was invoked with inconsistent arguments across ranks
    /// (detected where cheaply possible, e.g. mismatched lengths).
    CollectiveMismatch {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A deadline-bounded operation (`recv_deadline`,
    /// `barrier_deadline`) expired before the expected message arrived —
    /// the peer is slow or gone. The graceful-degradation paths (e.g.
    /// deadline compositing) treat this as "drop the contributor", not
    /// as a fatal error.
    Timeout {
        /// The peer waited on.
        peer: usize,
        /// Milliseconds waited before giving up.
        waited_ms: u64,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for communicator of size {size}")
            }
            CommError::Disconnected { peer } => {
                write!(f, "channel to/from rank {peer} disconnected")
            }
            CommError::Decode { reason } => write!(f, "payload decode error: {reason}"),
            CommError::CollectiveMismatch { reason } => {
                write!(f, "inconsistent collective arguments: {reason}")
            }
            CommError::Timeout { peer, waited_ms } => {
                write!(
                    f,
                    "deadline expired after {waited_ms} ms waiting on rank {peer}"
                )
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Convenience alias used throughout the crate.
pub type CommResult<T> = Result<T, CommError>;
