//! Message tags.
//!
//! Tags serve two purposes: (i) MPI-style matching of point-to-point
//! messages, and (ii) *attribution* of traffic to a subsystem so that the
//! experiment harness can report, per technique, how many bytes each part
//! of the co-design moved (the paper's Table I "communication cost"
//! column). Attribution is carried by [`TagClass`](crate::stats::TagClass),
//! derived from the tag's numeric range.

use serde::{Deserialize, Serialize};

/// A message tag. The numeric space is partitioned into ranges, one per
/// subsystem; see [`Tag::class`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tag(pub u32);

impl Tag {
    // ----- reserved internal ranges -------------------------------------
    /// Tags used by collective implementations (barrier, reduce, ...).
    pub const COLLECTIVE_BASE: u32 = 0x0100_0000;
    /// Tags used by the LB solver's halo exchange.
    pub const HALO_BASE: u32 = 0x0200_0000;
    /// Tags used by geometry loading / redistribution (pre-processing).
    pub const GEOMETRY_BASE: u32 = 0x0300_0000;
    /// Tags used by partition migration (repartitioning).
    pub const MIGRATION_BASE: u32 = 0x0400_0000;
    /// Tags used by visualisation algorithms moving *simulation data*
    /// (halo strips, particle hand-off, ...).
    pub const VIS_BASE: u32 = 0x0500_0000;
    /// Tags used by image compositing (result reduction, not data
    /// movement — the distinction Table I's "communication cost" rests
    /// on).
    pub const COMPOSITE_BASE: u32 = 0x0580_0000;
    /// Tags used by the steering protocol.
    pub const STEERING_BASE: u32 = 0x0600_0000;
    /// First tag value free for application use.
    pub const USER_BASE: u32 = 0x0700_0000;

    /// A collective-internal tag with the given offset.
    #[inline]
    pub const fn collective(offset: u32) -> Self {
        Tag(Self::COLLECTIVE_BASE + offset)
    }

    /// A halo-exchange tag with the given offset (e.g. direction index).
    #[inline]
    pub const fn halo(offset: u32) -> Self {
        Tag(Self::HALO_BASE + offset)
    }

    /// A geometry/pre-processing tag with the given offset.
    #[inline]
    pub const fn geometry(offset: u32) -> Self {
        Tag(Self::GEOMETRY_BASE + offset)
    }

    /// A data-migration tag with the given offset.
    #[inline]
    pub const fn migration(offset: u32) -> Self {
        Tag(Self::MIGRATION_BASE + offset)
    }

    /// A visualisation (simulation-data) tag with the given offset.
    #[inline]
    pub const fn vis(offset: u32) -> Self {
        Tag(Self::VIS_BASE + offset)
    }

    /// An image-compositing tag with the given offset.
    #[inline]
    pub const fn composite(offset: u32) -> Self {
        Tag(Self::COMPOSITE_BASE + offset)
    }

    /// A steering tag with the given offset.
    #[inline]
    pub const fn steering(offset: u32) -> Self {
        Tag(Self::STEERING_BASE + offset)
    }

    /// A user/application tag with the given offset.
    #[inline]
    pub const fn user(offset: u32) -> Self {
        Tag(Self::USER_BASE + offset)
    }

    /// The traffic class this tag belongs to, for accounting.
    #[inline]
    pub fn class(self) -> crate::stats::TagClass {
        use crate::stats::TagClass;
        match self.0 {
            x if x >= Self::USER_BASE => TagClass::User,
            x if x >= Self::STEERING_BASE => TagClass::Steering,
            x if x >= Self::COMPOSITE_BASE => TagClass::Compositing,
            x if x >= Self::VIS_BASE => TagClass::Visualisation,
            x if x >= Self::MIGRATION_BASE => TagClass::Migration,
            x if x >= Self::GEOMETRY_BASE => TagClass::Geometry,
            x if x >= Self::HALO_BASE => TagClass::Halo,
            x if x >= Self::COLLECTIVE_BASE => TagClass::Collective,
            _ => TagClass::User,
        }
    }
}

impl From<u32> for Tag {
    fn from(v: u32) -> Self {
        Tag(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TagClass;

    #[test]
    fn tag_classes_map_to_ranges() {
        assert_eq!(Tag::collective(3).class(), TagClass::Collective);
        assert_eq!(Tag::halo(0).class(), TagClass::Halo);
        assert_eq!(Tag::geometry(9).class(), TagClass::Geometry);
        assert_eq!(Tag::migration(1).class(), TagClass::Migration);
        assert_eq!(Tag::vis(7).class(), TagClass::Visualisation);
        assert_eq!(Tag::composite(2).class(), TagClass::Compositing);
        assert_eq!(Tag::steering(2).class(), TagClass::Steering);
        assert_eq!(Tag::user(0).class(), TagClass::User);
        assert_eq!(Tag(5).class(), TagClass::User);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the ordering of the bases IS the invariant
    fn ranges_are_ordered_and_disjoint() {
        assert!(Tag::COLLECTIVE_BASE < Tag::HALO_BASE);
        assert!(Tag::HALO_BASE < Tag::GEOMETRY_BASE);
        assert!(Tag::GEOMETRY_BASE < Tag::MIGRATION_BASE);
        assert!(Tag::MIGRATION_BASE < Tag::VIS_BASE);
        assert!(Tag::VIS_BASE < Tag::COMPOSITE_BASE);
        assert!(Tag::COMPOSITE_BASE < Tag::STEERING_BASE);
        assert!(Tag::STEERING_BASE < Tag::USER_BASE);
    }
}
