//! Ranks, worlds and point-to-point messaging.
//!
//! A [`World`] owns the mailboxes of `P` ranks; each rank holds one
//! [`Communicator`] (its MPI-communicator analogue) through which it sends
//! and receives tagged byte payloads. Semantics mirror MPI:
//!
//! * sends are asynchronous and never block (buffered channels);
//! * receives match on `(source, tag)` and are FIFO within a match;
//! * messages arriving before they are wanted are buffered locally;
//! * collectives receive **per source rank**, never "from anyone":
//!   FIFO `(source, tag)` matching then guarantees that back-to-back
//!   invocations of the same collective cannot mix rounds, even when
//!   some ranks race ahead (a rank completes a collective as soon as
//!   *its* messages arrived, not when everyone's have).
//!
//! Every send is recorded in the rank's [`CommStats`] under the
//! [`TagClass`](crate::stats::TagClass) derived from the tag, which is how
//! the experiment harness attributes traffic to halo exchange,
//! visualisation, steering, and so on.

use crate::error::{CommError, CommResult};
use crate::fault::{FaultSession, RankKilled, WorldAborted};
use crate::stats::{CommStats, FaultStat};
use crate::tag::Tag;
use crate::wire::{Wire, WireReader, WireWriter};
use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hemelb_obs::{ObsReport, Recorder};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One in-flight message. `seq` is a per-`(src, dst)` sequence number
/// assigned only when a fault session is active (0 = unsequenced); it is
/// what lets receivers drop injected duplicates exactly.
#[derive(Debug, Clone)]
struct Envelope {
    src: usize,
    tag: Tag,
    payload: Bytes,
    seq: u64,
}

/// Factory for a set of connected [`Communicator`]s.
///
/// Usually constructed indirectly through [`run_spmd`](crate::run_spmd);
/// exposed for callers that manage their own threads (e.g. the steering
/// server embeds rank 0 in the simulation driver thread).
#[derive(Debug)]
pub struct World;

impl World {
    /// Create `size` connected communicators, one per rank.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn communicators(size: usize) -> Vec<Communicator> {
        Self::communicators_faulty(size, None)
    }

    /// Like [`World::communicators`], with an optional shared fault
    /// session every communicator consults (the SPMD runner's entry
    /// point for fault-injected worlds).
    pub(crate) fn communicators_faulty(
        size: usize,
        fault: Option<Arc<FaultSession>>,
    ) -> Vec<Communicator> {
        assert!(size > 0, "world size must be positive");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| {
                // A rank holds no sender to itself: self-sends are
                // delivered locally in `send`, and — crucially — a rank
                // that dies drops its senders, so peers blocked on it see
                // a disconnect instead of hanging forever.
                let peer_senders: Vec<Option<Sender<Envelope>>> = senders
                    .iter()
                    .enumerate()
                    .map(|(dst, tx)| (dst != rank).then(|| tx.clone()))
                    .collect();
                Communicator {
                    rank,
                    size,
                    senders: peer_senders,
                    inbox: rx,
                    pending: RefCell::new(VecDeque::new()),
                    stats: RefCell::new(CommStats::new()),
                    obs: RefCell::new(Recorder::new()),
                    fault: fault.clone(),
                    seq_next: RefCell::new(vec![0; size]),
                    seq_seen: RefCell::new(vec![0; size]),
                }
            })
            .collect()
    }
}

/// A rank's handle onto the world: identity, point-to-point messaging and
/// collectives (the collectives live in this type too; see the
/// `collective` impl block below).
#[derive(Debug)]
pub struct Communicator {
    rank: usize,
    size: usize,
    /// `senders[dst]` is `Some` for every peer, `None` for `dst == rank`.
    senders: Vec<Option<Sender<Envelope>>>,
    inbox: Receiver<Envelope>,
    /// Messages received from the channel but not yet matched.
    pending: RefCell<VecDeque<Envelope>>,
    stats: RefCell<CommStats>,
    /// Per-rank observability recorder: higher layers (solver phases,
    /// steering loop, pipelines) record named spans here so one report
    /// per rank covers the whole stack.
    obs: RefCell<Recorder>,
    /// Shared fault-injection session, if this world runs under a
    /// [`FaultPlan`](crate::fault::FaultPlan). `None` costs one branch
    /// per operation.
    fault: Option<Arc<FaultSession>>,
    /// `seq_next[dst]`: last sequence number assigned to a network send
    /// towards `dst` (fault sessions only).
    seq_next: RefCell<Vec<u64>>,
    /// `seq_seen[src]`: highest sequence number accepted from `src`
    /// (fault sessions only); lower or equal arrivals are duplicates.
    seq_seen: RefCell<Vec<u64>>,
}

/// Reserved tag used to wake every rank out of blocking receives when a
/// killed rank aborts the world attempt. Kept at the top of the
/// collective range, far from the per-round tags real collectives use.
const T_ABORT: Tag = Tag::collective(0x00FF_FFFF);

impl Communicator {
    /// This rank's index in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether this rank is rank 0 (the conventional master).
    #[inline]
    pub fn is_master(&self) -> bool {
        self.rank == 0
    }

    /// Snapshot of this rank's communication counters.
    pub fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    /// Record a synchronisation point (used by blocking collectives; also
    /// available to higher layers that implement their own sync
    /// structure, e.g. the compositing tree).
    pub fn note_sync(&self) {
        self.stats.borrow_mut().record_sync();
    }

    /// Record participation in one repartition event (adaptive or
    /// steered); the migrated bytes themselves are accounted under
    /// [`TagClass::Migration`](crate::stats::TagClass::Migration).
    pub fn note_rebalance(&self) {
        self.stats.borrow_mut().record_rebalance();
    }

    /// Run `f` with this rank's observability recorder borrowed mutably.
    /// The recorder is shared by every layer running on this rank, so
    /// phase names should be namespaced (`lb.collide`, `steer.poll`, …).
    pub fn with_obs<R>(&self, f: impl FnOnce(&mut Recorder) -> R) -> R {
        f(&mut self.obs.borrow_mut())
    }

    /// Snapshot this rank's observability report, stamped with the rank.
    pub fn obs_report(&self) -> ObsReport {
        let mut r = self.obs.borrow().report();
        r.rank = Some(self.rank);
        r
    }

    /// Disable (or re-enable) the observability recorder for this rank;
    /// a disabled recorder turns every span into a single-branch no-op.
    pub fn set_obs_enabled(&self, on: bool) {
        self.obs.borrow_mut().set_enabled(on);
    }

    // ----- fault injection -----------------------------------------------

    /// Advance this rank's fault clock (see
    /// [`FaultPlan`](crate::fault::FaultPlan)); message faults arm once
    /// the sending rank's clock reaches their step, and a `KillRank`
    /// event whose step is reached fires here: the rank wakes all peers
    /// with an abort message, then dies like a lost node. A no-op
    /// without an active fault session.
    pub fn set_fault_step(&self, step: u64) {
        let Some(fs) = &self.fault else { return };
        self.abort_check();
        if fs.advance(self.rank, step) {
            self.with_obs(|o| o.count("fault.injected.kill", 1));
            for tx in self.senders.iter().flatten() {
                let _ = tx.send(Envelope {
                    src: self.rank,
                    tag: T_ABORT,
                    payload: Bytes::new(),
                    seq: 0,
                });
            }
            std::panic::panic_any(RankKilled {
                rank: self.rank,
                step,
            });
        }
    }

    /// Die with `WorldAborted` if a kill has aborted this world attempt.
    #[inline]
    fn abort_check(&self) {
        if let Some(fs) = &self.fault {
            if fs.aborted() {
                std::panic::panic_any(WorldAborted);
            }
        }
    }

    /// Admit one envelope from the channel: aborts the attempt on an
    /// abort marker, drops injected duplicates (`None`), passes
    /// everything else through.
    fn intake(&self, env: Envelope) -> Option<Envelope> {
        if let Some(fs) = &self.fault {
            if env.tag == T_ABORT {
                fs.mark_aborted();
                std::panic::panic_any(WorldAborted);
            }
            if env.seq != 0 {
                let mut seen = self.seq_seen.borrow_mut();
                if env.seq <= seen[env.src] {
                    drop(seen);
                    self.note_fault(FaultStat::Dedup);
                    return None;
                }
                seen[env.src] = env.seq;
            }
        }
        Some(env)
    }

    /// Record an injected/absorbed fault in both `CommStats` and the obs
    /// counters.
    fn note_fault(&self, kind: FaultStat) {
        self.stats.borrow_mut().record_fault(kind);
        let name = match kind {
            FaultStat::Delay => "fault.injected.delay",
            FaultStat::Drop => "fault.injected.drop",
            FaultStat::Duplicate => "fault.injected.duplicate",
            FaultStat::Dedup => "fault.deduped",
        };
        self.with_obs(|o| o.count(name, 1));
    }

    // ----- point to point ------------------------------------------------

    /// Send `payload` to `dst` under `tag`. Never blocks (except under
    /// an injected delay fault, which models a slow link by stalling
    /// the sender — preserving per-pair FIFO order).
    pub fn send(&self, dst: usize, tag: Tag, payload: Bytes) -> CommResult<()> {
        if dst >= self.size {
            return Err(CommError::InvalidRank {
                rank: dst,
                size: self.size,
            });
        }
        let mut env = Envelope {
            src: self.rank,
            tag,
            payload,
            seq: 0,
        };
        match &self.senders[dst] {
            // Self-sends are delivered locally, do not count as network
            // traffic, and are never fault-injected.
            None => {
                self.pending.borrow_mut().push_back(env);
                Ok(())
            }
            Some(tx) => {
                let mut duplicate = false;
                if let Some(fs) = &self.fault {
                    self.abort_check();
                    let f = fs.send_faults(self.rank, tag.class());
                    if f.delay_ms > 0 {
                        self.note_fault(FaultStat::Delay);
                        std::thread::sleep(Duration::from_millis(f.delay_ms));
                    }
                    // Sequence every network send (a dropped message
                    // still consumes its number, so dedup stays exact).
                    let seq = {
                        let mut seqs = self.seq_next.borrow_mut();
                        seqs[dst] += 1;
                        seqs[dst]
                    };
                    if f.drop {
                        self.note_fault(FaultStat::Drop);
                        return Ok(());
                    }
                    env.seq = seq;
                    duplicate = f.duplicate;
                }
                let len = env.payload.len();
                let t0 = Instant::now();
                let retransmit = duplicate.then(|| env.clone());
                let result = tx
                    .send(env)
                    .map_err(|_| CommError::Disconnected { peer: dst });
                if let Some(again) = retransmit {
                    // Identical envelope, identical sequence number: the
                    // receiver's dedup drops it silently.
                    self.note_fault(FaultStat::Duplicate);
                    let _ = tx.send(again);
                }
                let mut stats = self.stats.borrow_mut();
                stats.record_send(tag.class(), len);
                stats.record_send_time(tag.class(), t0.elapsed().as_secs_f64());
                result
            }
        }
    }

    /// Send an encodable value to `dst` under `tag`.
    pub fn send_wire<T: Wire>(&self, dst: usize, tag: Tag, value: &T) -> CommResult<()> {
        let mut w = WireWriter::new();
        value.encode(&mut w);
        self.send(dst, tag, w.finish())
    }

    /// Blocking receive of the next message from `src` under `tag`.
    pub fn recv(&self, src: usize, tag: Tag) -> CommResult<Bytes> {
        if src >= self.size {
            return Err(CommError::InvalidRank {
                rank: src,
                size: self.size,
            });
        }
        self.abort_check();
        // Check already-buffered messages first (FIFO within a match).
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|e| e.src == src && e.tag == tag) {
                return Ok(pending.remove(pos).expect("position valid").payload);
            }
        }
        // Nothing buffered: the rest of this call is genuine wait time,
        // attributed to the tag's class (the halo-wait / composite-wait
        // split the observability layer reports).
        let t0 = Instant::now();
        let result = loop {
            let env = match self.inbox.recv() {
                Ok(env) => env,
                Err(_) => break Err(CommError::Disconnected { peer: src }),
            };
            let Some(env) = self.intake(env) else {
                continue;
            };
            if env.src == src && env.tag == tag {
                break Ok(env.payload);
            }
            self.pending.borrow_mut().push_back(env);
        };
        self.stats
            .borrow_mut()
            .record_recv_wait(tag.class(), t0.elapsed().as_secs_f64());
        result
    }

    /// Like [`recv`](Self::recv), but gives up with
    /// [`CommError::Timeout`] if no matching message arrives within
    /// `timeout` — the degradation primitive: a caller that would
    /// otherwise hang forever on a slow or dead peer can drop the
    /// contribution and move on.
    pub fn recv_deadline(&self, src: usize, tag: Tag, timeout: Duration) -> CommResult<Bytes> {
        if src >= self.size {
            return Err(CommError::InvalidRank {
                rank: src,
                size: self.size,
            });
        }
        self.abort_check();
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|e| e.src == src && e.tag == tag) {
                return Ok(pending.remove(pos).expect("position valid").payload);
            }
        }
        let t0 = Instant::now();
        let deadline = t0 + timeout;
        let timed_out = || CommError::Timeout {
            peer: src,
            waited_ms: timeout.as_millis() as u64,
        };
        let result = loop {
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                break Err(timed_out());
            };
            match self.inbox.recv_timeout(remaining) {
                Ok(env) => {
                    let Some(env) = self.intake(env) else {
                        continue;
                    };
                    if env.src == src && env.tag == tag {
                        break Ok(env.payload);
                    }
                    self.pending.borrow_mut().push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => break Err(timed_out()),
                Err(RecvTimeoutError::Disconnected) => {
                    break Err(CommError::Disconnected { peer: src })
                }
            }
        };
        self.stats
            .borrow_mut()
            .record_recv_wait(tag.class(), t0.elapsed().as_secs_f64());
        result
    }

    /// Blocking receive of the next message under `tag` from *any* source.
    /// Returns `(source, payload)`.
    pub fn recv_any(&self, tag: Tag) -> CommResult<(usize, Bytes)> {
        self.abort_check();
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|e| e.tag == tag) {
                let env = pending.remove(pos).expect("position valid");
                return Ok((env.src, env.payload));
            }
        }
        let t0 = Instant::now();
        let result = loop {
            let env = match self.inbox.recv() {
                Ok(env) => env,
                Err(_) => break Err(CommError::Disconnected { peer: usize::MAX }),
            };
            let Some(env) = self.intake(env) else {
                continue;
            };
            if env.tag == tag {
                break Ok((env.src, env.payload));
            }
            self.pending.borrow_mut().push_back(env);
        };
        self.stats
            .borrow_mut()
            .record_recv_wait(tag.class(), t0.elapsed().as_secs_f64());
        result
    }

    /// Non-blocking receive from `src` under `tag`.
    pub fn try_recv(&self, src: usize, tag: Tag) -> CommResult<Option<Bytes>> {
        if src >= self.size {
            return Err(CommError::InvalidRank {
                rank: src,
                size: self.size,
            });
        }
        self.drain_inbox();
        let mut pending = self.pending.borrow_mut();
        if let Some(pos) = pending.iter().position(|e| e.src == src && e.tag == tag) {
            return Ok(Some(pending.remove(pos).expect("position valid").payload));
        }
        Ok(None)
    }

    /// Non-blocking receive under `tag` from any source.
    pub fn try_recv_any(&self, tag: Tag) -> Option<(usize, Bytes)> {
        self.drain_inbox();
        let mut pending = self.pending.borrow_mut();
        if let Some(pos) = pending.iter().position(|e| e.tag == tag) {
            let env = pending.remove(pos).expect("position valid");
            return Some((env.src, env.payload));
        }
        None
    }

    /// Blocking receive and decode from `src` under `tag`.
    pub fn recv_wire<T: Wire>(&self, src: usize, tag: Tag) -> CommResult<T> {
        let payload = self.recv(src, tag)?;
        T::from_bytes(payload)
    }

    /// Move everything waiting in the channel into the local buffer.
    fn drain_inbox(&self) {
        while let Ok(env) = self.inbox.try_recv() {
            let Some(env) = self.intake(env) else {
                continue;
            };
            self.pending.borrow_mut().push_back(env);
        }
    }

    // ----- neighbourhood exchange ----------------------------------------

    /// Sparse neighbourhood all-to-all: send `outgoing[i] = (peer, bytes)`
    /// and receive exactly one message under `tag` from each rank in
    /// `expect_from`. Returns received payloads in the order of
    /// `expect_from`.
    ///
    /// Deadlock-free because sends are buffered; this is the idiom the LB
    /// halo exchange and the particle hand-off both use, and its traffic
    /// is what the paper's Table I calls "communication cost".
    ///
    /// Internally the receives drain in **arrival order** (one slow peer
    /// does not serialize handling of already-delivered payloads); only
    /// the returned vector is laid out in `expect_from` order.
    pub fn exchange(
        &self,
        tag: Tag,
        outgoing: &[(usize, Bytes)],
        expect_from: &[usize],
    ) -> CommResult<Vec<Bytes>> {
        self.exchange_start(tag, outgoing)?;
        let arrived = self.exchange_finish(tag, expect_from)?;
        // Reorder into `expect_from` order for callers that index the
        // result positionally. `expect_from` may repeat a source (the
        // pairwise tests do); consume arrivals per source FIFO.
        let mut slots: Vec<Option<Bytes>> = vec![None; expect_from.len()];
        for (src, payload) in arrived {
            let slot = expect_from
                .iter()
                .zip(&slots)
                .position(|(&want, filled)| want == src && filled.is_none())
                .expect("exchange_finish returns only expected sources");
            slots[slot] = Some(payload);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("exchange_finish filled every expected slot"))
            .collect())
    }

    /// First half of a split [`exchange`](Self::exchange): post all sends
    /// and return immediately, leaving the messages in flight. Pair with
    /// [`exchange_finish`](Self::exchange_finish) (or per-peer
    /// [`recv_any_of`](Self::recv_any_of) calls) after doing useful work
    /// — the communication/computation overlap the overlapped LB step is
    /// built on.
    pub fn exchange_start(&self, tag: Tag, outgoing: &[(usize, Bytes)]) -> CommResult<()> {
        for (dst, payload) in outgoing {
            self.send(*dst, tag, payload.clone())?;
        }
        Ok(())
    }

    /// Blocking receive of the next message under `tag` from any source
    /// in `sources`. Returns `(source, payload)` in arrival order across
    /// calls. Buffered messages are consulted first (FIFO within the
    /// match); only genuinely blocked time is recorded as recv wait.
    pub fn recv_any_of(&self, tag: Tag, sources: &[usize]) -> CommResult<(usize, Bytes)> {
        self.abort_check();
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending
                .iter()
                .position(|e| e.tag == tag && sources.contains(&e.src))
            {
                let env = pending.remove(pos).expect("position valid");
                return Ok((env.src, env.payload));
            }
        }
        let t0 = Instant::now();
        let result = loop {
            let env = match self.inbox.recv() {
                Ok(env) => env,
                Err(_) => {
                    break Err(CommError::Disconnected {
                        peer: sources.first().copied().unwrap_or(usize::MAX),
                    })
                }
            };
            let Some(env) = self.intake(env) else {
                continue;
            };
            if env.tag == tag && sources.contains(&env.src) {
                break Ok((env.src, env.payload));
            }
            self.pending.borrow_mut().push_back(env);
        };
        self.stats
            .borrow_mut()
            .record_recv_wait(tag.class(), t0.elapsed().as_secs_f64());
        result
    }

    /// Second half of a split [`exchange`](Self::exchange): collect one
    /// message under `tag` from each rank in `expect_from`, returned as
    /// `(source, payload)` pairs in **arrival order** so the caller can
    /// start unpacking the fastest peer while slower ones are still in
    /// flight. A source listed `k` times yields `k` of its messages.
    pub fn exchange_finish(
        &self,
        tag: Tag,
        expect_from: &[usize],
    ) -> CommResult<Vec<(usize, Bytes)>> {
        let mut remaining = expect_from.to_vec();
        let mut received = Vec::with_capacity(expect_from.len());
        while !remaining.is_empty() {
            let (src, payload) = self.recv_any_of(tag, &remaining)?;
            let pos = remaining
                .iter()
                .position(|&s| s == src)
                .expect("recv_any_of returns only listed sources");
            remaining.swap_remove(pos);
            received.push((src, payload));
        }
        Ok(received)
    }

    /// Record one overlapped exchange in this rank's [`CommStats`]:
    /// `compute` seconds of useful work done under in-flight messages
    /// and `residual` seconds still blocked afterwards.
    pub fn note_overlap(&self, compute: f64, residual: f64) {
        self.stats.borrow_mut().record_overlap(compute, residual);
    }
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

const T_BARRIER: Tag = Tag::collective(0);
const T_BCAST: Tag = Tag::collective(1);
const T_GATHER: Tag = Tag::collective(2);
const T_REDUCE: Tag = Tag::collective(3);
const T_SCAN: Tag = Tag::collective(4);
const T_ALLTOALL: Tag = Tag::collective(5);
/// Round tags for the deadline barrier, kept disjoint from the plain
/// barrier's rounds so the two variants can never match each other's
/// messages.
const T_BARRIER_DL: Tag = Tag::collective(32);

impl Communicator {
    /// Dissemination barrier: ⌈log₂ P⌉ rounds, each rank sends one empty
    /// message per round. All ranks must call it.
    pub fn barrier(&self) -> CommResult<()> {
        self.note_sync();
        let p = self.size;
        if p == 1 {
            return Ok(());
        }
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < p {
            let dst = (self.rank + dist) % p;
            let src = (self.rank + p - dist % p) % p;
            let tag = Tag(T_BARRIER.0 + round);
            self.send(dst, tag, Bytes::new())?;
            self.recv(src, tag)?;
            dist *= 2;
            round += 1;
        }
        Ok(())
    }

    /// Dissemination barrier with an overall deadline: returns
    /// [`CommError::Timeout`] if any round's partner message fails to
    /// arrive before `timeout` elapses (measured across the whole
    /// barrier). All ranks must call it together, like
    /// [`barrier`](Self::barrier).
    ///
    /// A timed-out deadline barrier is *torn*: some peers may have
    /// completed it, others not, and round messages may still be in
    /// flight. Callers must treat a timeout as "this world is degraded"
    /// and either abandon the synchronisation structure or restart, not
    /// simply retry.
    pub fn barrier_deadline(&self, timeout: Duration) -> CommResult<()> {
        self.note_sync();
        let p = self.size;
        if p == 1 {
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < p {
            let dst = (self.rank + dist) % p;
            let src = (self.rank + p - dist % p) % p;
            let tag = Tag(T_BARRIER_DL.0 + round);
            self.send(dst, tag, Bytes::new())?;
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .unwrap_or(Duration::ZERO);
            self.recv_deadline(src, tag, remaining)?;
            dist *= 2;
            round += 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast of a byte payload from `root`.
    pub fn broadcast(&self, root: usize, payload: Option<Bytes>) -> CommResult<Bytes> {
        self.note_sync();
        let p = self.size;
        // Virtual rank with root relabelled to 0.
        let vrank = (self.rank + p - root) % p;
        let mut data = if self.rank == root {
            payload.ok_or_else(|| CommError::CollectiveMismatch {
                reason: "broadcast root must supply a payload".into(),
            })?
        } else {
            // Receive from virtual parent.
            let mut mask = 1usize;
            while mask < p {
                if vrank & mask != 0 {
                    break;
                }
                mask <<= 1;
            }
            let vparent = vrank & !mask;
            let parent = (vparent + root) % p;
            self.recv(parent, T_BCAST)?
        };
        // Forward to virtual children.
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                break;
            }
            let vchild = vrank | mask;
            if vchild < p {
                let child = (vchild + root) % p;
                self.send(child, T_BCAST, data.clone())?;
            }
            mask <<= 1;
        }
        if self.rank == root {
            // `data` already correct.
        } else {
            data = data.clone();
        }
        Ok(data)
    }

    /// Broadcast an encodable value from `root`. Non-root ranks pass
    /// `None`.
    pub fn broadcast_wire<T: Wire>(&self, root: usize, value: Option<&T>) -> CommResult<T> {
        let payload = value.map(|v| v.to_bytes());
        if self.rank == root && payload.is_none() {
            return Err(CommError::CollectiveMismatch {
                reason: "broadcast_wire root must supply a value".into(),
            });
        }
        let data = self.broadcast(root, payload)?;
        T::from_bytes(data)
    }

    /// Gather each rank's payload at `root`; returns `Some(vec)` indexed
    /// by rank at the root, `None` elsewhere.
    ///
    /// The root receives per source rank (not `recv_any`): `(src, tag)`
    /// matching is FIFO, so back-to-back gathers stay **round-safe** even
    /// though non-root ranks return as soon as their send is buffered — a
    /// fast rank's next-round message can never be consumed as this
    /// round's.
    pub fn gather(&self, root: usize, payload: Bytes) -> CommResult<Option<Vec<Bytes>>> {
        self.note_sync();
        if self.rank == root {
            let mut out: Vec<Option<Bytes>> = vec![None; self.size];
            out[root] = Some(payload);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.recv(src, T_GATHER)?);
                }
            }
            Ok(Some(
                out.into_iter()
                    .map(|o| o.expect("all ranks reported"))
                    .collect(),
            ))
        } else {
            self.send(root, T_GATHER, payload)?;
            Ok(None)
        }
    }

    /// All-gather: every rank ends with every rank's payload, indexed by
    /// rank. Implemented as gather-to-0 + broadcast.
    pub fn all_gather(&self, payload: Bytes) -> CommResult<Vec<Bytes>> {
        let gathered = self.gather(0, payload)?;
        let packed = if self.rank == 0 {
            let parts = gathered.expect("root holds gathered parts");
            let mut w = WireWriter::new();
            w.put_usize(parts.len());
            for p in &parts {
                w.put_bytes(p);
            }
            Some(w.finish())
        } else {
            None
        };
        let all = self.broadcast(0, packed)?;
        let mut r = WireReader::new(all);
        let n = r.get_usize()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(r.get_bytes()?);
        }
        Ok(out)
    }

    /// Binomial-tree reduction of `value` with the associative,
    /// commutative combiner `op`; result at `root` only.
    pub fn reduce_f64_vec<F>(
        &self,
        root: usize,
        mut value: Vec<f64>,
        op: F,
    ) -> CommResult<Option<Vec<f64>>>
    where
        F: Fn(f64, f64) -> f64,
    {
        self.note_sync();
        let p = self.size;
        let vrank = (self.rank + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask == 0 {
                let vpeer = vrank | mask;
                if vpeer < p {
                    let peer = (vpeer + root) % p;
                    let theirs = self.recv(peer, T_REDUCE)?;
                    let mut r = WireReader::new(theirs);
                    let other = r.get_f64_vec()?;
                    if other.len() != value.len() {
                        return Err(CommError::CollectiveMismatch {
                            reason: format!(
                                "reduce vector lengths differ: {} vs {}",
                                value.len(),
                                other.len()
                            ),
                        });
                    }
                    for (v, o) in value.iter_mut().zip(other) {
                        *v = op(*v, o);
                    }
                }
            } else {
                let vpeer = vrank & !mask;
                let peer = (vpeer + root) % p;
                let mut w = WireWriter::with_capacity(8 + value.len() * 8);
                w.put_f64_slice(&value);
                self.send(peer, T_REDUCE, w.finish())?;
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(value))
    }

    /// All-reduce of an `f64` vector (reduce to 0, then broadcast).
    pub fn all_reduce_f64_vec<F>(&self, value: Vec<f64>, op: F) -> CommResult<Vec<f64>>
    where
        F: Fn(f64, f64) -> f64,
    {
        let reduced = self.reduce_f64_vec(0, value, op)?;
        let packed = reduced.map(|v| {
            let mut w = WireWriter::with_capacity(8 + v.len() * 8);
            w.put_f64_slice(&v);
            w.finish()
        });
        let data = self.broadcast(0, packed)?;
        let mut r = WireReader::new(data);
        r.get_f64_vec()
    }

    /// All-reduce of a single `f64`.
    pub fn all_reduce_f64<F>(&self, value: f64, op: F) -> CommResult<f64>
    where
        F: Fn(f64, f64) -> f64,
    {
        Ok(self.all_reduce_f64_vec(vec![value], op)?[0])
    }

    /// All-reduce of a single `u64` (values are representable exactly in
    /// `f64` only up to 2^53, so this uses its own integer path).
    pub fn all_reduce_u64<F>(&self, value: u64, op: F) -> CommResult<u64>
    where
        F: Fn(u64, u64) -> u64,
    {
        self.note_sync();
        // Gather to 0, fold, broadcast — P is modest in-process.
        let gathered = self.gather(0, value.to_bytes())?;
        let result = if let Some(parts) = gathered {
            let mut acc: Option<u64> = None;
            for part in parts {
                let v = u64::from_bytes(part)?;
                acc = Some(match acc {
                    None => v,
                    Some(a) => op(a, v),
                });
            }
            Some(acc.expect("world nonempty").to_bytes())
        } else {
            None
        };
        let data = self.broadcast(0, result)?;
        u64::from_bytes(data)
    }

    /// Exclusive prefix sum of `value` over ranks: rank r receives
    /// `sum(values[0..r])`; rank 0 receives 0. Linear chain.
    pub fn exscan_u64(&self, value: u64) -> CommResult<u64> {
        self.note_sync();
        let prefix = if self.rank == 0 {
            0u64
        } else {
            u64::from_bytes(self.recv(self.rank - 1, T_SCAN)?)?
        };
        if self.rank + 1 < self.size {
            let next = prefix + value;
            self.send(self.rank + 1, T_SCAN, next.to_bytes())?;
        }
        Ok(prefix)
    }

    /// Personalised all-to-all: `outgoing[r]` goes to rank `r`; returns
    /// the payloads received from each rank, indexed by source rank
    /// (including this rank's own `outgoing[self.rank]`, delivered
    /// locally without touching the network counters).
    pub fn all_to_all(&self, outgoing: Vec<Bytes>) -> CommResult<Vec<Bytes>> {
        if outgoing.len() != self.size {
            return Err(CommError::CollectiveMismatch {
                reason: format!(
                    "all_to_all needs {} payloads, got {}",
                    self.size,
                    outgoing.len()
                ),
            });
        }
        self.note_sync();
        let mut incoming: Vec<Option<Bytes>> = vec![None; self.size];
        for (dst, payload) in outgoing.into_iter().enumerate() {
            if dst == self.rank {
                incoming[dst] = Some(payload);
            } else {
                self.send(dst, T_ALLTOALL, payload)?;
            }
        }
        // Receive per source rank, never `recv_any`: an `all_to_all`
        // completes locally once this rank has its own messages, so a
        // fast peer may already be sending the *next* invocation's
        // payloads. Per-source `(src, tag)` FIFO matching keeps those
        // future messages buffered instead of letting them corrupt (and
        // deadlock) the current round.
        for (src, slot) in incoming.iter_mut().enumerate() {
            if src != self.rank {
                *slot = Some(self.recv(src, T_ALLTOALL)?);
            }
        }
        Ok(incoming
            .into_iter()
            .map(|o| o.expect("all ranks delivered"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_spmd;

    #[test]
    fn p2p_fifo_per_source_and_tag() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u64 {
                    comm.send_wire(1, Tag::user(0), &i).unwrap();
                }
                Vec::new()
            } else {
                (0..10)
                    .map(|_| comm.recv_wire::<u64>(0, Tag::user(0)).unwrap())
                    .collect::<Vec<_>>()
            }
        });
        assert_eq!(results[1], (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send_wire(1, Tag::user(1), &111u64).unwrap();
                comm.send_wire(1, Tag::user(2), &222u64).unwrap();
                (0, 0)
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b = comm.recv_wire::<u64>(0, Tag::user(2)).unwrap();
                let a = comm.recv_wire::<u64>(0, Tag::user(1)).unwrap();
                (a, b)
            }
        });
        assert_eq!(results[1], (111, 222));
    }

    #[test]
    fn barrier_all_sizes() {
        for p in 1..=7 {
            run_spmd(p, |comm| {
                for _ in 0..3 {
                    comm.barrier().unwrap();
                }
            });
        }
    }

    #[test]
    fn broadcast_from_each_root() {
        for p in 1..=6 {
            for root in 0..p {
                let results = run_spmd(p, move |comm| {
                    let v = if comm.rank() == root {
                        Some(&123_456u64)
                    } else {
                        None
                    };
                    comm.broadcast_wire::<u64>(root, v).unwrap()
                });
                assert!(results.iter().all(|&v| v == 123_456));
            }
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let results = run_spmd(5, |comm| {
            let payload = (comm.rank() as u64 * 10).to_bytes();
            comm.gather(2, payload).unwrap()
        });
        let at_root = results[2].as_ref().unwrap();
        for (r, b) in at_root.iter().enumerate() {
            assert_eq!(u64::from_bytes(b.clone()).unwrap(), r as u64 * 10);
        }
        assert!(results[0].is_none());
    }

    #[test]
    fn all_gather_consistent_everywhere() {
        let results = run_spmd(4, |comm| {
            let payload = (comm.rank() as u64).to_bytes();
            comm.all_gather(payload)
                .unwrap()
                .into_iter()
                .map(|b| u64::from_bytes(b).unwrap())
                .collect::<Vec<_>>()
        });
        for r in &results {
            assert_eq!(*r, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn reduce_and_allreduce() {
        for p in 1..=8 {
            let results = run_spmd(p, |comm| {
                let x = (comm.rank() + 1) as f64;
                comm.all_reduce_f64(x, |a, b| a + b).unwrap()
            });
            let expect = (p * (p + 1)) as f64 / 2.0;
            for r in results {
                assert!((r - expect).abs() < 1e-12, "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_vec_elementwise_max() {
        let results = run_spmd(3, |comm| {
            let r = comm.rank() as f64;
            comm.all_reduce_f64_vec(vec![r, -r, r * r], f64::max)
                .unwrap()
        });
        for r in &results {
            assert_eq!(*r, vec![2.0, 0.0, 4.0]);
        }
    }

    #[test]
    fn exscan_prefix_sums() {
        let results = run_spmd(5, |comm| comm.exscan_u64(comm.rank() as u64 + 1).unwrap());
        assert_eq!(results, vec![0, 1, 3, 6, 10]);
    }

    #[test]
    fn all_to_all_personalised() {
        let results = run_spmd(4, |comm| {
            let out: Vec<Bytes> = (0..4)
                .map(|dst| ((comm.rank() * 100 + dst) as u64).to_bytes())
                .collect();
            comm.all_to_all(out)
                .unwrap()
                .into_iter()
                .map(|b| u64::from_bytes(b).unwrap())
                .collect::<Vec<_>>()
        });
        for (me, r) in results.iter().enumerate() {
            let expect: Vec<u64> = (0..4).map(|src| (src * 100 + me) as u64).collect();
            assert_eq!(*r, expect);
        }
    }

    #[test]
    fn exchange_pairs() {
        let results = run_spmd(4, |comm| {
            let me = comm.rank();
            let peer = me ^ 1;
            let out = vec![(peer, (me as u64).to_bytes())];
            let rcvd = comm.exchange(Tag::halo(0), &out, &[peer]).unwrap();
            u64::from_bytes(rcvd[0].clone()).unwrap()
        });
        assert_eq!(results, vec![1, 0, 3, 2]);
    }

    /// A `Delay` fault on the *first* peer in the plan must not hold up
    /// delivery of the other peer's already-sent payload: `exchange_finish`
    /// hands messages over in arrival order, and `exchange` still returns
    /// them in plan order.
    #[test]
    fn exchange_drains_in_arrival_order_under_slow_first_peer() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};
        use crate::runner::{run_spmd_opts, SpmdOptions};
        use crate::stats::TagClass;

        let plan = FaultPlan::new(vec![FaultEvent {
            rank: 1,
            class: TagClass::Halo,
            step: 0,
            kind: FaultKind::Delay { millis: 150 },
        }]);
        let out = run_spmd_opts(3, SpmdOptions::with_faults(plan), |comm| {
            let me = comm.rank();
            if me == 0 {
                // Rank 1 (delayed) is deliberately FIRST in the plan.
                comm.exchange_start(Tag::halo(0), &[]).unwrap();
                let arrived = comm.exchange_finish(Tag::halo(0), &[1, 2]).unwrap();
                let order: Vec<usize> = arrived.iter().map(|(src, _)| *src).collect();
                assert_eq!(order, vec![2, 1], "fast peer must be drained first");

                // Same topology through the plan-order wrapper: payloads
                // land in `expect_from` slots regardless of arrival.
                let rcvd = comm.exchange(Tag::halo(0), &[], &[1, 2]).unwrap();
                assert_eq!(u64::from_bytes(rcvd[0].clone()).unwrap(), 100);
                assert_eq!(u64::from_bytes(rcvd[1].clone()).unwrap(), 200);
                comm.stats()
            } else {
                for _round in 0..2 {
                    comm.send_wire(0, Tag::halo(0), &(me as u64 * 100)).unwrap();
                }
                comm.stats()
            }
        });
        // The delayed sender recorded its injected delays (2 sends).
        assert_eq!(out.results[1].faults(crate::stats::FaultStat::Delay), 2);
    }

    /// `recv_any_of` consults the pending buffer first (FIFO within the
    /// match) and only accepts listed sources.
    #[test]
    fn recv_any_of_prefers_buffered_and_filters_sources() {
        run_spmd(3, |comm| {
            if comm.rank() == 0 {
                // Wait until both messages are buffered locally.
                let mut have = 0;
                while have < 2 {
                    comm.drain_inbox();
                    have = comm.pending.borrow().len();
                }
                // Only rank 2 is listed: rank 1's earlier message must
                // stay buffered.
                let (src, payload) = comm.recv_any_of(Tag::user(0), &[2]).unwrap();
                assert_eq!(src, 2);
                assert_eq!(u64::from_bytes(payload).unwrap(), 22);
                let (src, payload) = comm.recv_any_of(Tag::user(0), &[1, 2]).unwrap();
                assert_eq!(src, 1);
                assert_eq!(u64::from_bytes(payload).unwrap(), 11);
            } else {
                let v = comm.rank() as u64 * 11;
                comm.send_wire(0, Tag::user(0), &v).unwrap();
            }
        });
    }

    #[test]
    fn stats_count_sends() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag::halo(0), Bytes::from_static(&[0u8; 64]))
                    .unwrap();
                comm.send(1, Tag::vis(0), Bytes::from_static(&[0u8; 32]))
                    .unwrap();
            } else {
                comm.recv(0, Tag::halo(0)).unwrap();
                comm.recv(0, Tag::vis(0)).unwrap();
            }
            comm.stats()
        });
        use crate::stats::TagClass;
        assert_eq!(results[0].bytes(TagClass::Halo), 64);
        assert_eq!(results[0].bytes(TagClass::Visualisation), 32);
        assert_eq!(results[1].total_bytes(), 0);
    }

    #[test]
    fn invalid_rank_is_an_error() {
        run_spmd(2, |comm| {
            assert!(matches!(
                comm.send(9, Tag::user(0), Bytes::new()),
                Err(CommError::InvalidRank { rank: 9, size: 2 })
            ));
            assert!(matches!(
                comm.recv(7, Tag::user(0)),
                Err(CommError::InvalidRank { rank: 7, size: 2 })
            ));
        });
    }

    #[test]
    fn try_recv_returns_none_before_arrival() {
        run_spmd(2, |comm| {
            if comm.rank() == 1 {
                // Probe strictly before rank 0 is allowed to send.
                assert!(comm.try_recv(0, Tag::user(5)).unwrap().is_none());
                comm.send(0, Tag::user(6), Bytes::new()).unwrap(); // release
                let mut got = None;
                while got.is_none() {
                    got = comm.try_recv(0, Tag::user(5)).unwrap();
                }
                assert_eq!(u64::from_bytes(got.unwrap()).unwrap(), 9);
            } else {
                comm.recv(1, Tag::user(6)).unwrap(); // wait for the probe
                comm.send_wire(1, Tag::user(5), &9u64).unwrap();
            }
        });
    }

    #[test]
    fn recv_deadline_times_out_then_delivers() {
        use std::time::Duration;
        run_spmd(2, |comm| {
            if comm.rank() == 0 {
                // Nothing has been sent yet: the deadline must expire.
                let err = comm
                    .recv_deadline(1, Tag::user(0), Duration::from_millis(30))
                    .unwrap_err();
                assert!(matches!(err, CommError::Timeout { peer: 1, .. }), "{err}");
                comm.send(1, Tag::user(1), Bytes::new()).unwrap(); // release
                let got = comm
                    .recv_deadline(1, Tag::user(0), Duration::from_secs(10))
                    .unwrap();
                assert_eq!(u64::from_bytes(got).unwrap(), 5);
            } else {
                comm.recv(0, Tag::user(1)).unwrap(); // wait out the timeout
                comm.send_wire(0, Tag::user(0), &5u64).unwrap();
            }
        });
    }

    #[test]
    fn recv_deadline_finds_buffered_messages() {
        use std::time::Duration;
        run_spmd(1, |comm| {
            comm.send_wire(0, Tag::user(3), &9u64).unwrap();
            // Already buffered: succeeds even with a zero deadline.
            let got = comm.recv_deadline(0, Tag::user(3), Duration::ZERO).unwrap();
            assert_eq!(u64::from_bytes(got).unwrap(), 9);
        });
    }

    #[test]
    fn barrier_deadline_passes_and_expires() {
        use std::time::Duration;
        for p in 1..=5 {
            run_spmd(p, |comm| {
                for _ in 0..3 {
                    comm.barrier_deadline(Duration::from_secs(10)).unwrap();
                }
            });
        }
        // One rank never shows up (never calls the barrier): the others
        // time out instead of hanging. The defector stays alive until
        // both survivors report, so they observe a clean timeout rather
        // than a racy channel disconnect.
        let results = run_spmd(3, |comm| {
            if comm.rank() == 2 {
                comm.recv(0, Tag::user(9)).unwrap();
                comm.recv(1, Tag::user(9)).unwrap();
                Ok(())
            } else {
                let r = comm.barrier_deadline(Duration::from_millis(40));
                comm.send(2, Tag::user(9), Bytes::new()).unwrap();
                r
            }
        });
        assert!(matches!(results[0], Err(CommError::Timeout { .. })));
        assert!(matches!(results[1], Err(CommError::Timeout { .. })));
    }

    #[test]
    fn self_send_delivers_locally_without_counting() {
        run_spmd(1, |comm| {
            comm.send_wire(0, Tag::user(0), &77u64).unwrap();
            let v: u64 = comm.recv_wire(0, Tag::user(0)).unwrap();
            assert_eq!(v, 77);
            assert_eq!(comm.stats().total_msgs(), 0);
        });
    }
}
