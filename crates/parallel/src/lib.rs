//! # hemelb-parallel
//!
//! A deterministic, instrumented message-passing substrate that plays the
//! role MPI plays in the original HemeLB: a set of SPMD *ranks* exchanging
//! typed point-to-point messages and participating in collectives.
//!
//! The SC'12 co-design paper this repository reproduces reasons about
//! *communication volume*, *synchronisation structure* and *load balance*
//! of in situ algorithms — not about a particular interconnect. This crate
//! therefore executes the same SPMD communication patterns a real MPI code
//! would, on one OS thread per rank, while **counting every message and
//! byte** ([`CommStats`]); an α–β–γ cost model ([`CostModel`]) converts the
//! exact counts into projected times for machines we do not have, so that
//! the paper's qualitative orderings (its Table I) become measurable.
//!
//! ## Quick tour
//!
//! ```
//! use hemelb_parallel::run_spmd;
//!
//! // Four ranks compute a global sum of their rank indices.
//! let results = run_spmd(4, |comm| {
//!     let mine = comm.rank() as u64;
//!     comm.all_reduce_u64(mine, |a, b| a + b).unwrap()
//! });
//! assert!(results.iter().all(|&s| s == 0 + 1 + 2 + 3));
//! ```
//!
//! Point-to-point messages are matched on `(source, tag)` exactly like
//! MPI: messages from the same source with the same tag are received in
//! send order; messages that arrive early are buffered.
//!
//! ## Determinism
//!
//! All algorithms in this workspace are written so that the *set* of
//! messages (sources, tags, payloads, counts) is a pure function of the
//! inputs; scheduling may interleave arrivals but matching restores a
//! deterministic order. Tests assert bit-equality between serial and
//! distributed runs of the solver built on top of this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod cost;
pub mod error;
pub mod fault;
pub mod runner;
pub mod stats;
pub mod tag;
pub mod wire;

pub use comm::{Communicator, World};
pub use cost::calibrate::{fit as calibrate_fit, CalSample, CalibratedModel, CalibrationError};
pub use cost::{CostModel, MachineModel, ProjectedCost};
pub use error::{CommError, CommResult};
pub use fault::{
    install_quiet_panic_hook, FaultEvent, FaultKind, FaultPlan, InjectedJobFault, RankKilled,
    WorldAborted,
};
pub use runner::{run_spmd, run_spmd_opts, run_spmd_with_stats, SpmdOptions, SpmdOutput};
pub use stats::{CommStats, FaultStat, StatsSummary, TagClass};
pub use tag::Tag;
pub use wire::{Wire, WireReader, WireWriter};
