//! Measurement-driven calibration of the α–β–γ cost model.
//!
//! The presets in [`CostModel::for_machine`] are folklore constants; a
//! projection built on them inherits their error unquantified. This
//! module replaces them with a **least-squares fit** over real
//! measurements: every sample pairs exact communication counts (from
//! [`CommStats`](crate::stats::CommStats)) and a work count (site
//! updates, from the solver) with a measured wall time (obs span totals
//! or a timed step loop), and the fit finds the non-negative
//! coefficients of
//!
//! ```text
//! T ≈ α · msgs + bytes / β + work / γ
//! ```
//!
//! that minimise the squared residual. The result is a
//! [`CalibratedModel`]: the fitted [`CostModel`] *plus its own fit
//! quality* — per-sample residuals, R², sample count — so every
//! consumer of a projection can see how much to trust it, following the
//! measurement-driven HemeLB performance model of Groen et al.
//! (arXiv:1209.3972).
//!
//! Unit note: γ's work unit is whatever the samples' `work` column
//! counts. This repository calibrates it in **site updates**, not
//! flops, which retires the hand-guessed "~250 flops per site" constant
//! — the model predicts seconds from site counts directly.
//!
//! The fit is a pure function of its inputs (fixed-order float
//! arithmetic, no randomness), so identical samples produce a
//! bit-identical model on every rank — the property that lets SPMD
//! ranks calibrate independently from all-reduced measurements and
//! still reach collectively consistent decisions.

use super::CostModel;
use hemelb_obs::{ObsReport, Recorder};
use serde::{Deserialize, Serialize};

/// One calibration observation: exact counts against a measured time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalSample {
    /// Messages sent/received during the measured interval.
    pub msgs: u64,
    /// Payload bytes moved during the measured interval.
    pub bytes: u64,
    /// Work units performed (site updates in this repository).
    pub work: u64,
    /// Measured wall seconds for the interval.
    pub secs: f64,
}

/// Why a fit could not be produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CalibrationError {
    /// Fewer usable samples than free coefficients.
    TooFewSamples {
        /// Samples provided after filtering.
        usable: usize,
        /// Minimum required.
        needed: usize,
    },
    /// Every sample had zero msgs, bytes and work — nothing to fit.
    DegenerateInputs,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::TooFewSamples { usable, needed } => {
                write!(
                    f,
                    "calibration needs ≥{needed} usable samples, got {usable}"
                )
            }
            CalibrationError::DegenerateInputs => {
                write!(f, "calibration samples carry no msgs, bytes or work")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// A fitted cost model that carries its own fit quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibratedModel {
    /// The fitted α–β–γ model. A term whose coefficient the
    /// non-negativity constraint forced to zero appears as `alpha == 0`
    /// (free messages) or an infinite `beta`/`gamma` (free bytes/work);
    /// [`CalibratedModel::is_usable`] reports whether the comm terms
    /// came out finite and positive.
    pub model: CostModel,
    /// Per-sample `predicted − measured` seconds, in input order.
    pub residuals: Vec<f64>,
    /// Coefficient of determination of the fit (1 = perfect; can be
    /// negative when the model fits worse than the sample mean).
    pub r2: f64,
    /// Samples the fit consumed.
    pub samples: usize,
}

impl CalibratedModel {
    /// Predicted seconds for a workload, under the fitted model.
    pub fn predict(&self, msgs: u64, bytes: u64, work: u64) -> f64 {
        self.model.time(msgs, bytes, work)
    }

    /// Largest absolute residual, seconds (0 when no residuals).
    pub fn max_abs_residual(&self) -> f64 {
        self.residuals.iter().fold(0.0, |a, r| a.max(r.abs()))
    }

    /// Whether the fit produced a model safe to price communication
    /// with: finite positive bandwidth and compute rate, non-negative
    /// finite latency. A fit over samples that never exercised a term
    /// fails this test, and callers should fall back to a preset.
    pub fn is_usable(&self) -> bool {
        self.model.alpha.is_finite()
            && self.model.alpha >= 0.0
            && self.model.beta.is_finite()
            && self.model.beta > 0.0
            && self.model.gamma.is_finite()
            && self.model.gamma > 0.0
    }

    /// Record the model losslessly into an obs recorder under
    /// `{prefix}.` counter names, so a `BENCH_*.json` report carries
    /// its own calibration. Obs counters are `u64` rendered through
    /// `f64` JSON numbers, which is exact only below 2⁵³ — so every
    /// `f64` is split into two 32-bit halves of its IEEE-754 bit
    /// pattern (`*_hi`/`*_lo`), which round-trip exactly.
    /// [`CalibratedModel::from_report`] reassembles them bit-for-bit.
    pub fn record_to(&self, rec: &mut Recorder, prefix: &str) {
        let mut put = |name: &str, v: f64| {
            let bits = v.to_bits();
            rec.count(&format!("{prefix}.{name}_hi"), bits >> 32);
            rec.count(&format!("{prefix}.{name}_lo"), bits & 0xFFFF_FFFF);
        };
        put("alpha", self.model.alpha);
        put("beta", self.model.beta);
        put("gamma", self.model.gamma);
        put("r2", self.r2);
        for (i, &r) in self.residuals.iter().enumerate() {
            put(&format!("resid{i:04}"), r);
        }
        rec.count(&format!("{prefix}.residuals"), self.residuals.len() as u64);
        rec.count(&format!("{prefix}.samples"), self.samples as u64);
    }

    /// Rebuild a model recorded with [`CalibratedModel::record_to`]
    /// from a report. Returns `None` when any expected counter is
    /// missing.
    pub fn from_report(report: &ObsReport, prefix: &str) -> Option<CalibratedModel> {
        let get = |name: &str| -> Option<f64> {
            let hi = *report.counters.get(&format!("{prefix}.{name}_hi"))?;
            let lo = *report.counters.get(&format!("{prefix}.{name}_lo"))?;
            Some(f64::from_bits((hi << 32) | lo))
        };
        let nresid = *report.counters.get(&format!("{prefix}.residuals"))? as usize;
        let mut residuals = Vec::with_capacity(nresid);
        for i in 0..nresid {
            residuals.push(get(&format!("resid{i:04}"))?);
        }
        Some(CalibratedModel {
            model: CostModel {
                alpha: get("alpha")?,
                beta: get("beta")?,
                gamma: get("gamma")?,
            },
            residuals,
            r2: get("r2")?,
            samples: *report.counters.get(&format!("{prefix}.samples"))? as usize,
        })
    }
}

/// Fit α, β, γ to `samples` by non-negative least squares.
///
/// The linear form is `secs ≈ a·msgs + b·bytes + c·work` with
/// `a = α`, `b = 1/β`, `c = 1/γ` and `a, b, c ≥ 0` (a negative rate has
/// no physical reading). The solver enumerates the active sets of the
/// three coefficients — solve the normal equations over each subset of
/// columns, keep the feasible (all-non-negative) solution with the
/// smallest squared residual — which is exact for three features and
/// entirely deterministic. Columns that are zero in every sample are
/// excluded up front (their coefficient is unidentifiable) and come
/// back as a zero coefficient.
///
/// # Errors
/// [`CalibrationError::TooFewSamples`] when fewer finite-time samples
/// than identifiable coefficients remain;
/// [`CalibrationError::DegenerateInputs`] when no column carries any
/// signal.
pub fn fit(samples: &[CalSample]) -> Result<CalibratedModel, CalibrationError> {
    let usable: Vec<&CalSample> = samples
        .iter()
        .filter(|s| s.secs.is_finite() && s.secs >= 0.0)
        .collect();
    // Which of the three columns carry any signal?
    let active_cols: Vec<usize> = (0..3)
        .filter(|&c| usable.iter().any(|s| col(s, c) > 0.0))
        .collect();
    if active_cols.is_empty() {
        return Err(CalibrationError::DegenerateInputs);
    }
    if usable.len() < active_cols.len() {
        return Err(CalibrationError::TooFewSamples {
            usable: usable.len(),
            needed: active_cols.len(),
        });
    }

    // Enumerate non-empty subsets of the identifiable columns; keep the
    // feasible solution with the least squared error. Subset order is
    // fixed, so ties resolve deterministically.
    let mut best: Option<(f64, [f64; 3])> = None;
    for mask in 1u32..8 {
        let cols: Vec<usize> = active_cols
            .iter()
            .copied()
            .filter(|&c| mask & (1 << c) != 0)
            .collect();
        if cols.is_empty() || !(0..3).all(|c| mask & (1 << c) == 0 || active_cols.contains(&c)) {
            continue;
        }
        let Some(coef) = solve_normal_equations(&usable, &cols) else {
            continue;
        };
        if coef.iter().any(|&v| v < 0.0 || !v.is_finite()) {
            continue;
        }
        let mut full = [0.0f64; 3];
        for (i, &c) in cols.iter().enumerate() {
            full[c] = coef[i];
        }
        let sse: f64 = usable
            .iter()
            .map(|s| {
                let p =
                    full[0] * s.msgs as f64 + full[1] * s.bytes as f64 + full[2] * s.work as f64;
                let d = p - s.secs;
                d * d
            })
            .sum();
        if best.as_ref().is_none_or(|(b, _)| sse < *b) {
            best = Some((sse, full));
        }
    }
    let (sse, [a, b, c]) = best.ok_or(CalibrationError::DegenerateInputs)?;

    let model = CostModel {
        alpha: a,
        beta: if b > 0.0 { 1.0 / b } else { f64::INFINITY },
        gamma: if c > 0.0 { 1.0 / c } else { f64::INFINITY },
    };
    let residuals: Vec<f64> = usable
        .iter()
        .map(|s| model.time(s.msgs, s.bytes, s.work) - s.secs)
        .collect();
    let mean = usable.iter().map(|s| s.secs).sum::<f64>() / usable.len() as f64;
    let ss_tot: f64 = usable
        .iter()
        .map(|s| {
            let d = s.secs - mean;
            d * d
        })
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - sse / ss_tot
    } else if sse == 0.0 {
        1.0
    } else {
        0.0
    };
    Ok(CalibratedModel {
        model,
        residuals,
        r2,
        samples: usable.len(),
    })
}

#[inline]
fn col(s: &CalSample, c: usize) -> f64 {
    match c {
        0 => s.msgs as f64,
        1 => s.bytes as f64,
        _ => s.work as f64,
    }
}

/// Ordinary least squares over the chosen columns via the normal
/// equations, solved by Gaussian elimination with partial pivoting.
/// Returns `None` when the system is singular (collinear columns).
fn solve_normal_equations(samples: &[&CalSample], cols: &[usize]) -> Option<Vec<f64>> {
    let n = cols.len();
    let mut ata = vec![vec![0.0f64; n]; n];
    let mut aty = vec![0.0f64; n];
    for s in samples {
        for (i, &ci) in cols.iter().enumerate() {
            let xi = col(s, ci);
            aty[i] += xi * s.secs;
            for (j, &cj) in cols.iter().enumerate() {
                ata[i][j] += xi * col(s, cj);
            }
        }
    }
    // Gaussian elimination.
    for k in 0..n {
        let (pivot_row, pivot) =
            (k..n)
                .map(|r| (r, ata[r][k].abs()))
                .fold(
                    (k, -1.0),
                    |best, cur| if cur.1 > best.1 { cur } else { best },
                );
        if pivot <= 1e-300 {
            return None;
        }
        ata.swap(k, pivot_row);
        aty.swap(k, pivot_row);
        for r in k + 1..n {
            let f = ata[r][k] / ata[k][k];
            let (top, bottom) = ata.split_at_mut(r);
            let pivot_row = &top[k];
            for (cell, p) in bottom[0][k..n].iter_mut().zip(&pivot_row[k..n]) {
                *cell -= f * p;
            }
            aty[r] -= f * aty[k];
        }
    }
    let mut x = vec![0.0f64; n];
    for k in (0..n).rev() {
        let mut v = aty[k];
        for c in k + 1..n {
            v -= ata[k][c] * x[c];
        }
        x[k] = v / ata[k][k];
        if !x[k].is_finite() {
            return None;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(alpha: f64, beta: f64, gamma: f64) -> Vec<CalSample> {
        // A grid of workloads measured under an exact linear model.
        let mut out = Vec::new();
        for m in [0u64, 10, 100, 1000] {
            for b in [0u64, 1 << 10, 1 << 16, 1 << 20] {
                for w in [0u64, 500, 5_000, 50_000] {
                    let secs = alpha * m as f64 + b as f64 / beta + w as f64 / gamma;
                    out.push(CalSample {
                        msgs: m,
                        bytes: b,
                        work: w,
                        secs,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn recovers_an_exact_linear_model() {
        let cal = fit(&synth(2e-6, 4e9, 8e8)).unwrap();
        assert!((cal.model.alpha - 2e-6).abs() / 2e-6 < 1e-9, "{cal:?}");
        assert!((cal.model.beta - 4e9).abs() / 4e9 < 1e-9);
        assert!((cal.model.gamma - 8e8).abs() / 8e8 < 1e-9);
        assert!(cal.r2 > 0.999_999);
        assert!(cal.max_abs_residual() < 1e-12);
        assert!(cal.is_usable());
    }

    #[test]
    fn tolerates_measurement_noise() {
        let mut samples = synth(1e-6, 1e9, 1e8);
        // Deterministic ±5% "noise".
        for (i, s) in samples.iter_mut().enumerate() {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            s.secs *= 1.0 + sign * 0.05;
        }
        let cal = fit(&samples).unwrap();
        assert!(cal.is_usable());
        assert!(cal.r2 > 0.9, "r2={}", cal.r2);
        assert!((cal.model.alpha - 1e-6).abs() / 1e-6 < 0.2);
    }

    #[test]
    fn non_negativity_zeroes_hostile_columns() {
        // Time *decreases* with messages here; the unconstrained fit
        // would want α < 0, the constrained one must clamp it away.
        let samples: Vec<CalSample> = (1..20)
            .map(|i| CalSample {
                msgs: i,
                bytes: 0,
                work: 1000 * (20 - i),
                secs: (20 - i) as f64 * 1e-3,
            })
            .collect();
        let cal = fit(&samples).unwrap();
        assert!(cal.model.alpha >= 0.0);
        assert!(cal.model.gamma > 0.0 && cal.model.gamma.is_finite());
    }

    #[test]
    fn unexercised_terms_come_back_free_and_unusable() {
        // Pure compute samples: no message or byte signal at all.
        let samples: Vec<CalSample> = (1..10)
            .map(|i| CalSample {
                msgs: 0,
                bytes: 0,
                work: i * 1000,
                secs: i as f64 * 1e-4,
            })
            .collect();
        let cal = fit(&samples).unwrap();
        assert_eq!(cal.model.alpha, 0.0);
        assert_eq!(cal.model.beta, f64::INFINITY);
        assert!((cal.model.gamma - 1e7).abs() / 1e7 < 1e-9);
        assert!(!cal.is_usable(), "comm terms never measured");
        // The free terms predict zero cost.
        assert_eq!(cal.predict(1000, 1 << 30, 0), 0.0);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert_eq!(fit(&[]), Err(CalibrationError::DegenerateInputs));
        let zeros = vec![
            CalSample {
                msgs: 0,
                bytes: 0,
                work: 0,
                secs: 1.0
            };
            5
        ];
        assert_eq!(fit(&zeros), Err(CalibrationError::DegenerateInputs));
        let one = [CalSample {
            msgs: 1,
            bytes: 1,
            work: 1,
            secs: f64::NAN,
        }];
        assert!(matches!(fit(&one), Err(CalibrationError::DegenerateInputs)));
    }

    #[test]
    fn fit_is_deterministic() {
        let samples = synth(1.5e-6, 5e9, 1e10);
        let a = fit(&samples).unwrap();
        let b = fit(&samples).unwrap();
        assert_eq!(a.model.alpha.to_bits(), b.model.alpha.to_bits());
        assert_eq!(a.model.beta.to_bits(), b.model.beta.to_bits());
        assert_eq!(a.model.gamma.to_bits(), b.model.gamma.to_bits());
        assert_eq!(a.r2.to_bits(), b.r2.to_bits());
        assert_eq!(a.residuals.len(), b.residuals.len());
    }

    #[test]
    fn obs_round_trip_is_bit_exact() {
        let cal = fit(&synth(1.5e-6, 5e9, 1e10)).unwrap();
        let mut rec = Recorder::new();
        cal.record_to(&mut rec, "proj.model");
        let json = rec.report().to_json();
        let report = ObsReport::from_json(&json).unwrap();
        let back = CalibratedModel::from_report(&report, "proj.model").unwrap();
        assert_eq!(back.model.alpha.to_bits(), cal.model.alpha.to_bits());
        assert_eq!(back.model.beta.to_bits(), cal.model.beta.to_bits());
        assert_eq!(back.model.gamma.to_bits(), cal.model.gamma.to_bits());
        assert_eq!(back.r2.to_bits(), cal.r2.to_bits());
        assert_eq!(back.samples, cal.samples);
        assert_eq!(back.residuals.len(), cal.residuals.len());
        for (a, b) in back.residuals.iter().zip(cal.residuals.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Missing prefix → None, not garbage.
        assert!(CalibratedModel::from_report(&report, "other").is_none());
    }
}
