//! Discrete velocity sets (lattice models).
//!
//! HemeLB historically uses D3Q15; D3Q19 is provided for cross-checks.
//! Both share `cs² = 1/3` and satisfy the usual isotropy constraints,
//! which the constructors verify eagerly.

use crate::CS2;

/// A discrete velocity set: directions, weights and opposites.
#[derive(Debug, Clone, PartialEq)]
pub struct LatticeModel {
    /// Human-readable name ("D3Q15" / "D3Q19").
    pub name: &'static str,
    /// Number of discrete velocities.
    pub q: usize,
    /// Velocity vectors `c_i` (components in {-1, 0, 1}).
    pub c: Vec<[i32; 3]>,
    /// Quadrature weights `w_i`.
    pub w: Vec<f64>,
    /// `opp[i]` is the index of `-c_i`.
    pub opp: Vec<usize>,
}

impl LatticeModel {
    /// The D3Q15 velocity set: rest + 6 axis + 8 cube-corner directions.
    pub fn d3q15() -> Self {
        let mut c = vec![[0, 0, 0]];
        let mut w = vec![2.0 / 9.0];
        for a in 0..3 {
            for s in [1, -1] {
                let mut v = [0, 0, 0];
                v[a] = s;
                c.push(v);
                w.push(1.0 / 9.0);
            }
        }
        for sx in [1, -1] {
            for sy in [1, -1] {
                for sz in [1, -1] {
                    c.push([sx, sy, sz]);
                    w.push(1.0 / 72.0);
                }
            }
        }
        Self::build("D3Q15", c, w)
    }

    /// The D3Q19 velocity set: rest + 6 axis + 12 face-diagonal
    /// directions.
    pub fn d3q19() -> Self {
        let mut c = vec![[0, 0, 0]];
        let mut w = vec![1.0 / 3.0];
        for a in 0..3 {
            for s in [1, -1] {
                let mut v = [0, 0, 0];
                v[a] = s;
                c.push(v);
                w.push(1.0 / 18.0);
            }
        }
        let planes = [(0usize, 1usize), (0, 2), (1, 2)];
        for (a, b) in planes {
            for sa in [1, -1] {
                for sb in [1, -1] {
                    let mut v = [0, 0, 0];
                    v[a] = sa;
                    v[b] = sb;
                    c.push(v);
                    w.push(1.0 / 36.0);
                }
            }
        }
        Self::build("D3Q19", c, w)
    }

    fn build(name: &'static str, c: Vec<[i32; 3]>, w: Vec<f64>) -> Self {
        let q = c.len();
        let mut opp = vec![usize::MAX; q];
        for i in 0..q {
            let neg = [-c[i][0], -c[i][1], -c[i][2]];
            opp[i] = c
                .iter()
                .position(|&v| v == neg)
                .expect("velocity set must be symmetric");
        }
        let model = LatticeModel { name, q, c, w, opp };
        model.validate();
        model
    }

    /// Check the isotropy/normalisation constraints of an isothermal
    /// lattice (weights sum to 1, odd moments vanish, second moment is
    /// `cs² δ_ab`).
    fn validate(&self) {
        let tol = 1e-12;
        let sum_w: f64 = self.w.iter().sum();
        assert!((sum_w - 1.0).abs() < tol, "weights must sum to 1");
        for a in 0..3 {
            let m1: f64 = (0..self.q).map(|i| self.w[i] * self.c[i][a] as f64).sum();
            assert!(m1.abs() < tol, "first moment must vanish");
            for b in 0..3 {
                let m2: f64 = (0..self.q)
                    .map(|i| self.w[i] * self.c[i][a] as f64 * self.c[i][b] as f64)
                    .sum();
                let expect = if a == b { CS2 } else { 0.0 };
                assert!((m2 - expect).abs() < tol, "second moment must be cs² δ");
            }
        }
        for i in 0..self.q {
            assert_eq!(self.opp[self.opp[i]], i, "opposite must be an involution");
        }
    }

    /// Dot product `c_i · u`.
    #[inline]
    pub fn ci_dot(&self, i: usize, u: [f64; 3]) -> f64 {
        self.c[i][0] as f64 * u[0] + self.c[i][1] as f64 * u[1] + self.c[i][2] as f64 * u[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d3q15_has_15_directions() {
        let m = LatticeModel::d3q15();
        assert_eq!(m.q, 15);
        assert_eq!(m.c[0], [0, 0, 0]);
        assert_eq!(m.opp[0], 0);
    }

    #[test]
    fn d3q19_has_19_directions() {
        let m = LatticeModel::d3q19();
        assert_eq!(m.q, 19);
        // No cube-corner directions in D3Q19.
        assert!(m
            .c
            .iter()
            .all(|v| v[0].abs() + v[1].abs() + v[2].abs() <= 2));
    }

    #[test]
    fn directions_are_unique() {
        for m in [LatticeModel::d3q15(), LatticeModel::d3q19()] {
            let set: std::collections::HashSet<_> = m.c.iter().collect();
            assert_eq!(set.len(), m.q, "{}", m.name);
        }
    }

    #[test]
    fn opposites_negate_velocities() {
        for m in [LatticeModel::d3q15(), LatticeModel::d3q19()] {
            for i in 0..m.q {
                let o = m.opp[i];
                assert_eq!(m.c[o][0], -m.c[i][0]);
                assert_eq!(m.c[o][1], -m.c[i][1]);
                assert_eq!(m.c[o][2], -m.c[i][2]);
            }
        }
    }

    #[test]
    fn fourth_moment_isotropy_d3q19() {
        // Σ w c_a c_b c_g c_d = cs⁴ (δab δgd + δag δbd + δad δbg)
        let m = LatticeModel::d3q19();
        let cs4 = CS2 * CS2;
        for a in 0..3 {
            for b in 0..3 {
                let m4: f64 = (0..m.q)
                    .map(|i| {
                        let ca = m.c[i][a] as f64;
                        let cb = m.c[i][b] as f64;
                        m.w[i] * ca * ca * cb * cb
                    })
                    .sum();
                let expect = if a == b { 3.0 * cs4 } else { cs4 };
                assert!((m4 - expect).abs() < 1e-12);
            }
        }
    }
}
