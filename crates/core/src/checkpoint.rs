//! Checkpoint / restart — the pragmatic answer to the paper's §III
//! exascale challenge 3 ("Resiliency problem. Computation with millions
//! and billions of cores will pose a challenge to error resiliency.").
//!
//! A checkpoint stores the complete dynamical state (all distribution
//! functions plus the step counter) with an integrity checksum, so a
//! failed run resumes *bit-exactly* where it stopped. The distributed
//! variant writes one file per rank (the scalable pattern) and verifies
//! the decomposition on restore.

use crate::solver::Solver;
use crate::DistSolver;
use hemelb_parallel::CommResult;
use std::io::{self, Read, Write};
use std::path::Path;

/// Checkpoint file magic.
pub const MAGIC: &[u8; 8] = b"HLBCHKP1";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// FNV-1a over the raw bytes — cheap corruption detection, not crypto.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Serialised state common to serial and per-rank checkpoints.
struct RawState {
    step: u64,
    site_count: u64,
    q: u64,
    f: Vec<f64>,
}

fn write_state(state: &RawState, w: &mut impl Write) -> io::Result<()> {
    let mut body = Vec::with_capacity(24 + state.f.len() * 8);
    body.extend(state.step.to_le_bytes());
    body.extend(state.site_count.to_le_bytes());
    body.extend(state.q.to_le_bytes());
    for &v in &state.f {
        body.extend(v.to_le_bytes());
    }
    w.write_all(MAGIC)?;
    w.write_all(&checksum(&body).to_le_bytes())?;
    w.write_all(&body)
}

fn read_state(r: &mut impl Read) -> io::Result<RawState> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a checkpoint (bad magic)"));
    }
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    let expected = u64::from_le_bytes(sum);
    let mut body = Vec::new();
    r.read_to_end(&mut body)?;
    if checksum(&body) != expected {
        return Err(bad("checkpoint corrupted (checksum mismatch)"));
    }
    if body.len() < 24 {
        return Err(bad("checkpoint truncated"));
    }
    let step = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
    let site_count = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
    let q = u64::from_le_bytes(body[16..24].try_into().expect("8 bytes"));
    let expect_len = (site_count * q) as usize * 8;
    if body.len() - 24 != expect_len {
        return Err(bad(format!(
            "checkpoint body {} bytes, expected {expect_len}",
            body.len() - 24
        )));
    }
    let f = body[24..]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    Ok(RawState {
        step,
        site_count,
        q,
        f,
    })
}

impl Solver {
    /// Write the complete state to `path`.
    pub fn checkpoint(&self, path: &Path) -> io::Result<()> {
        let state = RawState {
            step: self.step_count(),
            site_count: self.geometry().fluid_count() as u64,
            q: self.model().q as u64,
            f: self.raw_distributions().to_vec(),
        };
        let mut file = std::fs::File::create(path)?;
        write_state(&state, &mut file)
    }

    /// Restore the state written by [`Solver::checkpoint`]. The solver
    /// must have been constructed over the same geometry and velocity
    /// set; mismatches are rejected.
    pub fn restore(&mut self, path: &Path) -> io::Result<()> {
        let mut file = std::fs::File::open(path)?;
        let state = read_state(&mut file)?;
        if state.site_count as usize != self.geometry().fluid_count() {
            return Err(bad(format!(
                "checkpoint has {} sites, solver has {}",
                state.site_count,
                self.geometry().fluid_count()
            )));
        }
        if state.q as usize != self.model().q {
            return Err(bad("checkpoint velocity set differs"));
        }
        self.install_state(state.step, state.f);
        Ok(())
    }
}

impl<'a> DistSolver<'a> {
    /// Collective checkpoint: every rank writes `dir/rank_<r>.chkp` with
    /// its own sites (the scalable one-file-per-rank pattern).
    pub fn checkpoint(&self, dir: &Path) -> CommResult<()> {
        std::fs::create_dir_all(dir).expect("checkpoint directory");
        let path = dir.join(format!("rank_{}.chkp", self.comm_rank()));
        let state = RawState {
            step: self.step_count(),
            site_count: self.local_sites().len() as u64,
            q: self.model_q() as u64,
            f: self.raw_distributions().to_vec(),
        };
        let mut file = std::fs::File::create(&path).expect("checkpoint file");
        write_state(&state, &mut file).expect("checkpoint write");
        // Nobody proceeds until every rank's file is on disk.
        self.barrier()
    }

    /// The step recorded in this rank's checkpoint under `dir`, if the
    /// file exists, passes its checksum and matches this solver's
    /// decomposition. `None` means "no usable checkpoint" — corruption
    /// degrades to a cold restart rather than an error.
    pub fn checkpoint_step(&self, dir: &Path) -> Option<u64> {
        let path = dir.join(format!("rank_{}.chkp", self.comm_rank()));
        let mut file = std::fs::File::open(&path).ok()?;
        let state = read_state(&mut file).ok()?;
        (state.site_count as usize == self.local_sites().len()
            && state.q as usize == self.model_q())
        .then_some(state.step)
    }

    /// Collective conditional restore — the restart handle a job
    /// scheduler calls unconditionally at the top of every (re)attempt.
    ///
    /// If *every* rank holds a usable checkpoint under `dir` and they
    /// all record the same step (a consistent cut), the set is restored
    /// and `Ok(true)` returned; otherwise every rank returns
    /// `Ok(false)` and the run starts cold. Agreement is established by
    /// all-reduce, so the decision is identical on all ranks even when
    /// only some files survived.
    ///
    /// # Panics
    /// Panics if the surviving checkpoints disagree on the step — a
    /// torn cut should never exist (`checkpoint` fences with a barrier
    /// before returning) and restoring it would silently fork the
    /// physics.
    pub fn try_restore(&mut self, dir: &Path) -> CommResult<bool> {
        let step = self.checkpoint_step(dir);
        let have = self
            .comm()
            .all_reduce_u64(u64::from(step.is_some()), |a, b| a.min(b))?;
        if have == 0 {
            return Ok(false);
        }
        let s = step.expect("all ranks agreed a checkpoint exists");
        let lo = self.comm().all_reduce_u64(s, |a, b| a.min(b))?;
        let hi = self.comm().all_reduce_u64(s, |a, b| a.max(b))?;
        assert_eq!(
            lo, hi,
            "checkpoint cut is torn: ranks hold steps {lo}..={hi} under {dir:?}"
        );
        self.restore(dir)?;
        Ok(true)
    }

    /// Collective restore of a checkpoint written with the *same*
    /// decomposition.
    ///
    /// # Panics
    /// Panics on I/O errors or mismatched decomposition (an unusable
    /// checkpoint is unrecoverable for the job).
    pub fn restore(&mut self, dir: &Path) -> CommResult<()> {
        let path = dir.join(format!("rank_{}.chkp", self.comm_rank()));
        let mut file = std::fs::File::open(&path).expect("checkpoint file");
        let state = read_state(&mut file).expect("checkpoint parse");
        assert_eq!(
            state.site_count as usize,
            self.local_sites().len(),
            "checkpoint decomposition differs; repartition before restoring"
        );
        assert_eq!(state.q as usize, self.model_q());
        self.install_state(state.step, state.f);
        self.barrier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolverConfig;
    use hemelb_geometry::VesselBuilder;
    use hemelb_parallel::run_spmd;
    use std::sync::Arc;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hemelb_chkp_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn serial_checkpoint_resumes_bit_exactly() {
        let geo = Arc::new(VesselBuilder::straight_tube(14.0, 3.0).voxelise(1.0));
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let mut reference = Solver::new(geo.clone(), cfg.clone());
        reference.step_n(30);

        let mut s = Solver::new(geo.clone(), cfg.clone());
        s.step_n(15);
        let dir = scratch_dir("serial");
        let path = dir.join("state.chkp");
        s.checkpoint(&path).unwrap();

        // "Crash": a fresh solver restores and continues.
        let mut resumed = Solver::new(geo, cfg);
        resumed.restore(&path).unwrap();
        assert_eq!(resumed.step_count(), 15);
        resumed.step_n(15);
        assert_eq!(resumed.snapshot().rho, reference.snapshot().rho);
        assert_eq!(resumed.snapshot().u, reference.snapshot().u);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_checkpoint_is_rejected() {
        let geo = Arc::new(VesselBuilder::straight_tube(10.0, 2.0).voxelise(1.0));
        let cfg = SolverConfig::pressure_driven(1.0, 1.0);
        let s = Solver::new(geo.clone(), cfg.clone());
        let dir = scratch_dir("corrupt");
        let path = dir.join("state.chkp");
        s.checkpoint(&path).unwrap();
        // Flip one byte in the body.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        let mut fresh = Solver::new(geo, cfg);
        let err = fresh.restore(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_geometry_rejected() {
        let geo_a = Arc::new(VesselBuilder::straight_tube(10.0, 2.0).voxelise(1.0));
        let geo_b = Arc::new(VesselBuilder::straight_tube(12.0, 3.0).voxelise(1.0));
        let cfg = SolverConfig::pressure_driven(1.0, 1.0);
        let s = Solver::new(geo_a, cfg.clone());
        let dir = scratch_dir("mismatch");
        let path = dir.join("state.chkp");
        s.checkpoint(&path).unwrap();
        let mut other = Solver::new(geo_b, cfg);
        assert!(other.restore(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn try_restore_agrees_collectively_and_survives_corruption() {
        let geo = Arc::new(VesselBuilder::straight_tube(14.0, 3.0).voxelise(1.0));
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let dir = scratch_dir("try_restore");
        let dir2 = dir.clone();
        let geo2 = geo.clone();
        let results = run_spmd(2, move |comm| {
            let owner: Vec<usize> = (0..geo2.fluid_count())
                .map(|s| (s * comm.size() / geo2.fluid_count()).min(comm.size() - 1))
                .collect();
            let mut ds = DistSolver::new(geo2.clone(), owner, cfg.clone(), comm).unwrap();
            // Nothing on disk yet: everyone must agree on a cold start.
            let cold = ds.try_restore(&dir2).unwrap();
            ds.step_n(6).unwrap();
            ds.checkpoint(&dir2).unwrap();
            let mut fresh =
                DistSolver::new(geo2.clone(), ds.owner().to_vec(), cfg.clone(), comm).unwrap();
            let warm = fresh.try_restore(&dir2).unwrap();
            let step_after = fresh.step_count();
            // Corrupt rank 0's file (everyone waits for the write, so
            // the next decision sees the damaged set on both ranks).
            fresh.barrier().unwrap();
            if comm.rank() == 0 {
                let path = dir2.join("rank_0.chkp");
                let mut bytes = std::fs::read(&path).unwrap();
                let n = bytes.len();
                bytes[n / 2] ^= 0xFF;
                std::fs::write(&path, bytes).unwrap();
            }
            fresh.barrier().unwrap();
            let mut third =
                DistSolver::new(geo2.clone(), fresh.owner().to_vec(), cfg.clone(), comm).unwrap();
            let torn = third.try_restore(&dir2).unwrap();
            (cold, warm, step_after, torn)
        });
        for &(cold, warm, step_after, torn) in &results {
            assert!(!cold, "no files means no restore");
            assert!(warm, "a complete cut restores");
            assert_eq!(step_after, 6);
            assert!(!torn, "a damaged set degrades to a cold start on all ranks");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distributed_checkpoint_resumes_bit_exactly() {
        let geo = Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0));
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let mut reference = Solver::new(geo.clone(), cfg.clone());
        reference.step_n(20);
        let ref_snap = reference.snapshot();

        let dir = scratch_dir("dist");
        let dir2 = dir.clone();
        let geo2 = geo.clone();
        let results = run_spmd(3, move |comm| {
            let owner: Vec<usize> = (0..geo2.fluid_count())
                .map(|s| (s * comm.size() / geo2.fluid_count()).min(comm.size() - 1))
                .collect();
            let mut ds = DistSolver::new(geo2.clone(), owner.clone(), cfg.clone(), comm).unwrap();
            ds.step_n(12).unwrap();
            ds.checkpoint(&dir2).unwrap();
            // Fresh solver restores mid-flight and finishes the run.
            let mut resumed = DistSolver::new(geo2.clone(), owner, cfg.clone(), comm).unwrap();
            resumed.restore(&dir2).unwrap();
            assert_eq!(resumed.step_count(), 12);
            resumed.step_n(8).unwrap();
            resumed.gather_snapshot().unwrap()
        });
        let snap = results[0].as_ref().unwrap();
        assert_eq!(snap.rho, ref_snap.rho);
        std::fs::remove_dir_all(&dir).ok();
    }
}
