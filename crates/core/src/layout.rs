//! Data-oriented memory layout for the LB kernels: the structure-of-
//! arrays (SoA) fluid-site list.
//!
//! The legacy layout stores distributions site-major (`f[site][dir]`,
//! one contiguous block per site). The SoA layout of this module keeps
//! **one contiguous `f64` lane per velocity direction** (`f[dir][site]`)
//! plus a streaming-index table built once at setup: `stream[dir][site]`
//! names the site whose direction-`dir` population streams *into*
//! `site` (pull streaming), with missing links resolved to the sentinel
//! [`LINK_BOUNDARY`] (bounce-back / iolet rule) and cross-rank links to
//! `HALO_FLAG | slot`. Sites are additionally classified into runs
//! ([`SiteRun`]): maximal index ranges whose links are all plain local
//! sources, so the bulk streaming loop is a branch-free per-lane gather
//! and only the (thin) boundary runs pay the per-link dispatch.
//!
//! The site *numbering* is untouched — site `s` is the same fluid site
//! in every layout — so snapshots, checkpoints (site-major on disk),
//! in situ sampling and the distributed owner maps are layout-agnostic.
//!
//! ## Bitwise parity
//!
//! Every code path over this layout performs the exact per-site
//! operation sequence of the legacy kernels (same associativity, same
//! visit order within a site), so `legacy == SoA-scalar == SoA-SIMD`
//! holds by `f64::to_bits` for **all** collision operators and boundary
//! conditions — there are no documented-divergent cases in the solver
//! core (contrast the renderer's LUT fast path, which is documented as
//! tolerance-compared). The equivalence suite `tests/kernel_layout.rs`
//! and the golden fixtures pin this.

use crate::collision::{collide, CollisionKind};
use crate::equilibrium::{moments as site_moments, pi_neq, shear_rate_magnitude};
use crate::model::LatticeModel;
use crate::mrt::MrtOperator;
use crate::solver::{boundary_rule, SolverConfig};
use crate::CS2;
use hemelb_geometry::SiteKind;
use serde::{Deserialize, Serialize};

/// Sentinel in streaming/pull tables marking a missing (boundary) link.
/// Shared by the serial, thread-parallel and distributed tables.
pub(crate) const LINK_BOUNDARY: u32 = u32::MAX;

/// Flag bit marking a streaming source that lives in the halo buffer of
/// the distributed solver; the low bits are the halo slot. Check
/// [`LINK_BOUNDARY`] first — the sentinel has this bit set too.
pub(crate) const HALO_FLAG: u32 = 1 << 31;

/// Which kernel memory layout / instruction mix a solver runs.
///
/// All three produce bit-identical states; the layout only changes how
/// fast the same arithmetic runs. Selectable per solver via
/// [`SolverConfig::with_layout`](crate::SolverConfig::with_layout).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelLayout {
    /// Site-major two-buffer layout (the original reference kernels).
    Legacy,
    /// SoA fluid-site list, scalar per-site collision.
    SoaScalar,
    /// SoA fluid-site list with the chunked-lane vectorised BGK
    /// collision path (TRT/MRT fall back to the scalar site loop over
    /// the same lanes).
    #[default]
    SoaSimd,
}

/// A maximal run of consecutive site indices with uniform streaming
/// character: `bulk` runs have every link resolved to a plain local
/// source (branch-free gather), non-bulk runs contain at least one
/// boundary or halo link per site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteRun {
    /// First site index of the run.
    pub start: u32,
    /// Number of sites in the run.
    pub len: u32,
    /// Whether every `(site, dir)` link in the run is a local source.
    pub bulk: bool,
}

/// One contiguous copy segment of the bulk streaming plan: destination
/// sites `dst..dst+len` of a lane pull from the consecutive sources
/// `src..src+len` of the same lane, so the gather collapses to a
/// `copy_from_slice` (bit-identical by construction — it moves the same
/// values to the same places). Raster site numbering makes such
/// segments long: within a column of fluid sites every direction's
/// sources are themselves consecutive.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CopySeg {
    /// First destination site.
    pub dst: u32,
    /// First source site.
    pub src: u32,
    /// Segment length in sites.
    pub len: u32,
}

/// The fully resolved streaming schedule: every `(site, dir)` link of
/// the table appears in exactly one of the three lists, so the
/// streaming phase has no per-link dispatch left — local links run as
/// segment copies, boundary links as a flat list of rule applications,
/// halo links as a flat list of buffer reads. Link order never matters
/// for the result: each output slot is written exactly once from inputs
/// that the phase only reads.
pub(crate) struct StreamPlan {
    /// Per-direction contiguous-copy segments over all plain-local
    /// links, sorted by destination.
    pub copy: Vec<Vec<CopySeg>>,
    /// `(site, dir)` links resolved by the boundary rule, sorted by site.
    pub boundary: Vec<(u32, u32)>,
    /// `(site, dir, slot)` links fed from the halo buffer, sorted by site.
    pub halo: Vec<(u32, u32, u32)>,
}

/// Compile the streaming table into a [`StreamPlan`].
fn build_stream_plan(stream: &[Vec<u32>], n: usize) -> StreamPlan {
    let mut boundary = Vec::new();
    let mut halo = Vec::new();
    for s in 0..n {
        for (i, lane) in stream.iter().enumerate() {
            let e = lane[s];
            if e == LINK_BOUNDARY {
                boundary.push((s as u32, i as u32));
            } else if e & HALO_FLAG != 0 {
                halo.push((s as u32, i as u32, e & !HALO_FLAG));
            }
        }
    }
    let copy = stream
        .iter()
        .map(|lane| {
            let mut segs = Vec::new();
            let mut s = 0;
            while s < n {
                let e = lane[s];
                if e == LINK_BOUNDARY || e & HALO_FLAG != 0 {
                    s += 1;
                    continue;
                }
                let mut len = 1usize;
                while s + len < n {
                    let e2 = lane[s + len];
                    if e2 == LINK_BOUNDARY || e2 & HALO_FLAG != 0 || e2 != e + len as u32 {
                        break;
                    }
                    len += 1;
                }
                segs.push(CopySeg {
                    dst: s as u32,
                    src: e,
                    len: len as u32,
                });
                s += len;
            }
            segs
        })
        .collect();
    StreamPlan {
        copy,
        boundary,
        halo,
    }
}

fn site_is_bulk(stream: &[Vec<u32>], s: usize) -> bool {
    stream.iter().all(|lane| {
        let e = lane[s];
        e != LINK_BOUNDARY && e & HALO_FLAG == 0
    })
}

fn classify_runs(stream: &[Vec<u32>], n: usize) -> Vec<SiteRun> {
    let mut runs = Vec::new();
    let mut s = 0;
    while s < n {
        let bulk = site_is_bulk(stream, s);
        let start = s;
        s += 1;
        while s < n && site_is_bulk(stream, s) == bulk {
            s += 1;
        }
        runs.push(SiteRun {
            start: start as u32,
            len: (s - start) as u32,
            bulk,
        });
    }
    runs
}

/// The SoA state of one solver (or one rank): per-direction lanes for
/// the double-buffered distributions plus the lane-major streaming
/// table and its run classification.
pub struct SoaLattice {
    n: usize,
    q: usize,
    /// Current distributions, `f[dir][site]`.
    pub(crate) f: Vec<Vec<f64>>,
    /// Streaming destination buffer, same shape.
    pub(crate) f_next: Vec<Vec<f64>>,
    /// Streaming source table, `stream[dir][site]`: local site index,
    /// `HALO_FLAG | slot`, or [`LINK_BOUNDARY`].
    pub(crate) stream: Vec<Vec<u32>>,
    runs: Vec<SiteRun>,
    /// The compiled streaming schedule (copies + boundary + halo lists).
    plan: StreamPlan,
}

impl SoaLattice {
    /// Build the SoA state from a site-major pull table and the
    /// site-major initial distributions (both `n × q`).
    pub(crate) fn new(q: usize, pull: &[u32], f_site_major: &[f64]) -> Self {
        assert!(q > 0 && pull.len().is_multiple_of(q), "pull table shape");
        let n = pull.len() / q;
        assert_eq!(f_site_major.len(), n * q, "distribution array shape");
        let mut f = vec![vec![0.0f64; n]; q];
        let mut stream = vec![vec![0u32; n]; q];
        for s in 0..n {
            for i in 0..q {
                f[i][s] = f_site_major[s * q + i];
                stream[i][s] = pull[s * q + i];
            }
        }
        let runs = classify_runs(&stream, n);
        let plan = build_stream_plan(&stream, n);
        SoaLattice {
            n,
            q,
            f_next: f.clone(),
            f,
            stream,
            runs,
            plan,
        }
    }

    /// Number of fluid sites.
    pub fn site_count(&self) -> usize {
        self.n
    }

    /// The run classification (bulk runs stream branch-free).
    pub fn runs(&self) -> &[SiteRun] {
        &self.runs
    }

    /// Fraction of sites living in branch-free bulk runs.
    pub fn bulk_fraction(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let bulk: usize = self
            .runs
            .iter()
            .filter(|r| r.bulk)
            .map(|r| r.len as usize)
            .sum();
        bulk as f64 / self.n as f64
    }

    /// The streaming source entry for `(dir, site)` (tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn stream_entry(&self, dir: usize, site: usize) -> u32 {
        self.stream[dir][site]
    }

    /// Transpose the current distributions back to the canonical
    /// site-major order (checkpointing, cross-layout comparison).
    pub(crate) fn to_site_major(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.n * self.q];
        for (i, lane) in self.f.iter().enumerate() {
            for (s, &v) in lane.iter().enumerate() {
                out[s * self.q + i] = v;
            }
        }
        out
    }

    /// Overwrite the current distributions from a site-major array
    /// (checkpoint restore).
    pub(crate) fn install_site_major(&mut self, f_site_major: &[f64]) {
        assert_eq!(f_site_major.len(), self.n * self.q);
        for s in 0..self.n {
            for i in 0..self.q {
                self.f[i][s] = f_site_major[s * self.q + i];
            }
        }
    }

    /// The `q` populations of one site, in direction order.
    pub(crate) fn site_values(&self, s: usize) -> Vec<f64> {
        self.f.iter().map(|lane| lane[s]).collect()
    }

    /// Overwrite the `q` populations of one site.
    pub(crate) fn set_site_values(&mut self, s: usize, values: &[f64]) {
        assert_eq!(values.len(), self.q);
        for (lane, &v) in self.f.iter_mut().zip(values) {
            lane[s] = v;
        }
    }

    /// Total mass, summed in the canonical site-major order so the
    /// result is bit-identical to the legacy `f.iter().sum()`.
    pub(crate) fn mass(&self) -> f64 {
        let mut acc = 0.0;
        for s in 0..self.n {
            for lane in &self.f {
                acc += lane[s];
            }
        }
        acc
    }

    /// Swap the double buffers after streaming.
    pub(crate) fn swap_buffers(&mut self) {
        std::mem::swap(&mut self.f, &mut self.f_next);
    }

    /// Disjoint borrows for the streaming phase:
    /// `(f_old, f_next, plan)`.
    pub(crate) fn split_for_stream(&mut self) -> (&[Vec<f64>], &mut [Vec<f64>], &StreamPlan) {
        (&self.f, &mut self.f_next, &self.plan)
    }

    /// Deliberately corrupt the streaming table by swapping the sources
    /// of two `(dir, site)` links, then re-classify runs so the corrupt
    /// table is still self-consistent (no out-of-range bulk gathers).
    /// Returns `true` if the two entries actually differed. Test-only
    /// hook for the golden-digest negative test.
    #[doc(hidden)]
    pub fn debug_swap_stream_entries(&mut self, dir: usize, a: usize, b: usize) -> bool {
        let lane = &mut self.stream[dir];
        if lane[a] == lane[b] {
            return false;
        }
        lane.swap(a, b);
        self.runs = classify_runs(&self.stream, self.n);
        self.plan = build_stream_plan(&self.stream, self.n);
        true
    }
}

/// The interior/frontier split of a rank's site list, compiled once at
/// setup for the overlapped halo exchange.
///
/// **Frontier** sites are the communication surface: their
/// post-collision populations are sent to peers (they appear in the
/// send plan) or they pull at least one population *from* a peer (their
/// pull table contains a halo link). **Interior** sites are everything
/// else — by construction their streaming reads touch no halo slot, so
/// they can collide and stream while halo messages are still in flight.
///
/// Both classes are stored as ascending, disjoint, maximal
/// `(start, len)` ranges over the local site indices; together the two
/// lists tile `0..site_count` exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SitePartition {
    n: usize,
    frontier: Vec<(u32, u32)>,
    interior: Vec<(u32, u32)>,
    frontier_count: usize,
}

impl SitePartition {
    /// Compile the partition from a per-site frontier flag vector.
    pub fn from_flags(flags: &[bool]) -> Self {
        let n = flags.len();
        let mut frontier = Vec::new();
        let mut interior = Vec::new();
        let mut frontier_count = 0usize;
        let mut s = 0usize;
        while s < n {
            let is_frontier = flags[s];
            let start = s;
            s += 1;
            while s < n && flags[s] == is_frontier {
                s += 1;
            }
            let range = (start as u32, (s - start) as u32);
            if is_frontier {
                frontier_count += s - start;
                frontier.push(range);
            } else {
                interior.push(range);
            }
        }
        SitePartition {
            n,
            frontier,
            interior,
            frontier_count,
        }
    }

    /// Number of local sites covered by the partition.
    pub fn site_count(&self) -> usize {
        self.n
    }

    /// Frontier ranges, ascending and disjoint.
    pub fn frontier_ranges(&self) -> &[(u32, u32)] {
        &self.frontier
    }

    /// Interior ranges, ascending and disjoint.
    pub fn interior_ranges(&self) -> &[(u32, u32)] {
        &self.interior
    }

    /// Number of frontier sites.
    pub fn frontier_count(&self) -> usize {
        self.frontier_count
    }

    /// Number of interior sites.
    pub fn interior_count(&self) -> usize {
        self.n - self.frontier_count
    }

    /// Whether local site `s` is on the frontier.
    pub fn is_frontier(&self, s: usize) -> bool {
        debug_assert!(s < self.n);
        let s = s as u32;
        self.frontier
            .iter()
            .any(|&(start, len)| s >= start && s < start + len)
    }
}

/// Collide a span of sites over per-lane chunks, recording pre-collision
/// moments. `lanes[i]` and `moments` cover the same site span. The SIMD
/// flag routes BGK through the chunked-lane vectorised path; TRT/MRT
/// always take the scalar gather/scatter site loop (identical values
/// either way — the chunked path replicates the scalar operation order).
pub(crate) fn collide_span_soa(
    model: &LatticeModel,
    collision: CollisionKind,
    tau: f64,
    mut mrt: Option<&mut MrtOperator>,
    lanes: &mut [&mut [f64]],
    moments: &mut [(f64, [f64; 3])],
    simd: bool,
) {
    debug_assert_eq!(lanes.len(), model.q);
    if simd && matches!(collision, CollisionKind::Bgk) && mrt.is_none() {
        bgk_collide_chunked(model, tau, lanes, moments);
        return;
    }
    let q = model.q;
    let mut buf = vec![0.0; q];
    let mut scratch = vec![0.0; q];
    for (s, m) in moments.iter_mut().enumerate() {
        for (b, lane) in buf.iter_mut().zip(lanes.iter()) {
            *b = lane[s];
        }
        *m = match mrt.as_deref_mut() {
            Some(op) => op.collide(model, tau, &mut buf),
            None => collide(model, collision, tau, &mut buf, &mut scratch),
        };
        for (b, lane) in buf.iter().zip(lanes.iter_mut()) {
            lane[s] = *b;
        }
    }
}

/// Width of the chunked-lane BGK path: small fixed-size accumulator
/// arrays the compiler keeps in vector registers.
const CHUNK: usize = 8;

/// The vectorised BGK collision: process `CHUNK` sites at a time, one
/// lane pass for the moments, one lane pass per opposite-direction pair
/// for the relaxation. Every per-site operation sequence (moment
/// accumulation order, the guarded `u = m/ρ`, the equilibrium
/// polynomial, the `f += ω (f_eq − f)` update) matches the scalar
/// kernels operand-for-operand — the only rewrites are exact IEEE-754
/// identities (`1 − t ≡ 1 + (−t)`, `(−x)/c ≡ −(x/c)`, `(−x)² ≡ x²`,
/// `x ± 0 ≡ x` in the polynomial), so the result is bit-identical.
fn bgk_collide_chunked(
    model: &LatticeModel,
    tau: f64,
    lanes: &mut [&mut [f64]],
    moments: &mut [(f64, [f64; 3])],
) {
    let q = model.q;
    let omega = 1.0 / tau;
    let n = moments.len();
    let cs: Vec<[f64; 3]> = model
        .c
        .iter()
        .map(|c| [c[0] as f64, c[1] as f64, c[2] as f64])
        .collect();
    // Opposite-direction pairs share the two equilibrium divisions:
    // `c_j = −c_i` gives `cu_j = −cu_i` exactly (IEEE negation commutes
    // with the dot product), so `cu_j / cs² = −(cu_i / cs²)` and
    // `cu_j² = cu_i²` bit-for-bit — half the fdivs of the naive loop.
    // The rest direction (`c = 0`, its own opposite) has `cu = ±0`, so
    // its polynomial collapses to `1 − u²/2cs²` with no division at all.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut rests: Vec<usize> = Vec::new();
    for i in 0..q {
        match model.opp[i] {
            j if i < j => pairs.push((i, j)),
            j if i == j => rests.push(i),
            _ => {}
        }
    }
    let mut s0 = 0;
    // Full chunks: fixed-size `[f64; CHUNK]` windows, so every index is
    // statically in range (no bounds checks) and the loops vectorise.
    while s0 + CHUNK <= n {
        let mut rho = [0.0f64; CHUNK];
        let mut mx = [0.0f64; CHUNK];
        let mut my = [0.0f64; CHUNK];
        let mut mz = [0.0f64; CHUNK];
        for i in 0..q {
            let [cx, cy, cz] = cs[i];
            let lane: &[f64; CHUNK] = lanes[i][s0..s0 + CHUNK].try_into().expect("chunk window");
            for l in 0..CHUNK {
                let fi = lane[l];
                rho[l] += fi;
                mx[l] += cx * fi;
                my[l] += cy * fi;
                mz[l] += cz * fi;
            }
        }
        let mut ux = [0.0f64; CHUNK];
        let mut uy = [0.0f64; CHUNK];
        let mut uz = [0.0f64; CHUNK];
        let mut u2h = [0.0f64; CHUNK];
        for l in 0..CHUNK {
            // Branchless form of the `ρ ≠ 0` guard: compute the
            // quotients unconditionally, keep them only when the guard
            // holds — identical values, and the lane loop vectorises.
            let nz = rho[l] != 0.0;
            let qx = mx[l] / rho[l];
            let qy = my[l] / rho[l];
            let qz = mz[l] / rho[l];
            ux[l] = if nz { qx } else { 0.0 };
            uy[l] = if nz { qy } else { 0.0 };
            uz[l] = if nz { qz } else { 0.0 };
            // The direction-independent `u² / (2 cs²)` term of the
            // equilibrium, hoisted out of the lane loop: same operands,
            // same operation, computed once instead of q times.
            let u2 = ux[l] * ux[l] + uy[l] * uy[l] + uz[l] * uz[l];
            u2h[l] = u2 / (2.0 * CS2);
        }
        for &(i, j) in &pairs {
            let [cx, cy, cz] = cs[i];
            let wi = model.w[i];
            let wj = model.w[j];
            let mut t = [0.0f64; CHUNK];
            let mut sq = [0.0f64; CHUNK];
            for l in 0..CHUNK {
                let cu = cx * ux[l] + cy * uy[l] + cz * uz[l];
                t[l] = cu / CS2;
                sq[l] = cu * cu / (2.0 * CS2 * CS2);
            }
            let (left, right) = lanes.split_at_mut(j);
            let li: &mut [f64; CHUNK] = (&mut left[i][s0..s0 + CHUNK])
                .try_into()
                .expect("chunk window");
            for l in 0..CHUNK {
                let fi = li[l];
                let fe = wi * rho[l] * (1.0 + t[l] + sq[l] - u2h[l]);
                li[l] = fi + omega * (fe - fi);
            }
            let lj: &mut [f64; CHUNK] = (&mut right[0][s0..s0 + CHUNK])
                .try_into()
                .expect("chunk window");
            for l in 0..CHUNK {
                let fj = lj[l];
                let fe = wj * rho[l] * (1.0 - t[l] + sq[l] - u2h[l]);
                lj[l] = fj + omega * (fe - fj);
            }
        }
        for &i in &rests {
            let wi = model.w[i];
            let lane: &mut [f64; CHUNK] = (&mut lanes[i][s0..s0 + CHUNK])
                .try_into()
                .expect("chunk window");
            for l in 0..CHUNK {
                let fi = lane[l];
                let fe = wi * rho[l] * (1.0 - u2h[l]);
                lane[l] = fi + omega * (fe - fi);
            }
        }
        for (l, m) in moments[s0..s0 + CHUNK].iter_mut().enumerate() {
            *m = (rho[l], [ux[l], uy[l], uz[l]]);
        }
        s0 += CHUNK;
    }
    // Ragged tail (< CHUNK sites): same operation order, plain loops.
    if s0 < n {
        let w = n - s0;
        let mut rho = [0.0f64; CHUNK];
        let mut mx = [0.0f64; CHUNK];
        let mut my = [0.0f64; CHUNK];
        let mut mz = [0.0f64; CHUNK];
        for i in 0..q {
            let [cx, cy, cz] = cs[i];
            let lane = &lanes[i][s0..s0 + w];
            for (l, &fi) in lane.iter().enumerate() {
                rho[l] += fi;
                mx[l] += cx * fi;
                my[l] += cy * fi;
                mz[l] += cz * fi;
            }
        }
        let mut ux = [0.0f64; CHUNK];
        let mut uy = [0.0f64; CHUNK];
        let mut uz = [0.0f64; CHUNK];
        let mut u2h = [0.0f64; CHUNK];
        for l in 0..w {
            if rho[l] != 0.0 {
                ux[l] = mx[l] / rho[l];
                uy[l] = my[l] / rho[l];
                uz[l] = mz[l] / rho[l];
            }
            let u2 = ux[l] * ux[l] + uy[l] * uy[l] + uz[l] * uz[l];
            u2h[l] = u2 / (2.0 * CS2);
        }
        for i in 0..q {
            let [cx, cy, cz] = cs[i];
            let wi = model.w[i];
            let lane = &mut lanes[i][s0..s0 + w];
            for (l, fi) in lane.iter_mut().enumerate() {
                let cu = cx * ux[l] + cy * uy[l] + cz * uz[l];
                let fe = wi * rho[l] * (1.0 + cu / CS2 + cu * cu / (2.0 * CS2 * CS2) - u2h[l]);
                *fi += omega * (fe - *fi);
            }
        }
        for (l, m) in moments[s0..s0 + w].iter_mut().enumerate() {
            *m = (rho[l], [ux[l], uy[l], uz[l]]);
        }
    }
}

/// Pull-stream a span of sites into per-lane output chunks. `out[i]`
/// covers sites `first..first + out[i].len()`. The whole phase runs off
/// the compiled [`StreamPlan`]: plain-local links as clipped segment
/// copies (`copy_from_slice` — the dominant case under raster site
/// numbering), boundary links as a flat list of rule applications, halo
/// links as a flat list of buffer reads. No per-link dispatch remains.
/// `halo` feeds the halo list (empty slice for non-distributed
/// solvers); `kinds` and `bc_velocity` are indexed by (local) site.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stream_span_soa(
    model: &LatticeModel,
    cfg: &SolverConfig,
    kinds: &[SiteKind],
    f_old: &[Vec<f64>],
    plan: &StreamPlan,
    moments: &[(f64, [f64; 3])],
    bc_velocity: &[[f64; 3]],
    halo: &[f64],
    step: u64,
    first: usize,
    out: &mut [&mut [f64]],
) {
    let q = model.q;
    debug_assert_eq!(out.len(), q);
    let hi = first + out[0].len();

    // Local links: clipped segment copies. Segments are sorted by
    // destination, so skip straight to the first one overlapping the
    // span and stop at the first one past it.
    for i in 0..q {
        let fo = &f_old[i][..];
        let o = &mut *out[i];
        let segs = &plan.copy[i];
        let k0 = segs.partition_point(|seg| (seg.dst + seg.len) as usize <= first);
        for seg in &segs[k0..] {
            let d = seg.dst as usize;
            if d >= hi {
                break;
            }
            let a = d.max(first);
            let b = (d + seg.len as usize).min(hi);
            let s = seg.src as usize + (a - d);
            o[a - first..b - first].copy_from_slice(&fo[s..s + (b - a)]);
        }
    }

    // Boundary links: bounce-back / iolet rule per listed link.
    let k0 = plan
        .boundary
        .partition_point(|&(s, _)| (s as usize) < first);
    for &(s, i) in &plan.boundary[k0..] {
        let s = s as usize;
        if s >= hi {
            break;
        }
        let i = i as usize;
        out[i][s - first] = boundary_rule(
            model,
            cfg,
            kinds[s],
            bc_velocity[s],
            i,
            f_old[model.opp[i]][s],
            moments[s],
            step,
        );
    }

    // Halo links: direct reads from the exchanged buffer.
    let k0 = plan.halo.partition_point(|&(s, _, _)| (s as usize) < first);
    for &(s, i, slot) in &plan.halo[k0..] {
        let s = s as usize;
        if s >= hi {
            break;
        }
        out[i as usize][s - first] = halo[slot as usize];
    }
}

/// Macroscopic fields of the site span `first..first + rho.len()` over
/// SoA lanes: gather each site into a scratch buffer and reuse the
/// scalar moment/stress code, so values are bit-identical to the
/// site-major extraction.
pub(crate) fn macroscopics_span_soa(
    model: &LatticeModel,
    tau: f64,
    f: &[Vec<f64>],
    first: usize,
    rho: &mut [f64],
    u: &mut [[f64; 3]],
    shear: &mut [f64],
) {
    let q = model.q;
    let mut buf = vec![0.0; q];
    for k in 0..rho.len() {
        let s = first + k;
        for (b, lane) in buf.iter_mut().zip(f.iter()) {
            *b = lane[s];
        }
        let (r, v) = site_moments(model, &buf);
        let pi = pi_neq(model, &buf, r, v);
        rho[k] = r;
        u[k] = v;
        shear[k] = shear_rate_magnitude(pi, r, tau);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::feq_all;
    use crate::solver::build_pull_table;
    use hemelb_geometry::{SparseGeometry, VesselBuilder};
    use std::sync::Arc;

    fn tube() -> Arc<SparseGeometry> {
        Arc::new(VesselBuilder::straight_tube(12.0, 3.0).voxelise(1.0))
    }

    fn soa_for(geo: &SparseGeometry, model: &LatticeModel) -> SoaLattice {
        let n = geo.fluid_count();
        let q = model.q;
        let pull = build_pull_table(geo, model);
        // Distinct per-entry values so transposition bugs cannot cancel.
        let f: Vec<f64> = (0..n * q).map(|k| k as f64 + 0.25).collect();
        SoaLattice::new(q, &pull, &f)
    }

    #[test]
    fn transpose_round_trips_site_major() {
        let geo = tube();
        let model = LatticeModel::d3q15();
        let n = geo.fluid_count();
        let q = model.q;
        let f: Vec<f64> = (0..n * q).map(|k| (k as f64).sin()).collect();
        let pull = build_pull_table(&geo, &model);
        let mut soa = SoaLattice::new(q, &pull, &f);
        assert_eq!(soa.to_site_major(), f);
        let g: Vec<f64> = f.iter().map(|v| v * 2.0 + 1.0).collect();
        soa.install_site_major(&g);
        assert_eq!(soa.to_site_major(), g);
        assert_eq!(soa.site_values(3), g[3 * q..4 * q].to_vec());
    }

    #[test]
    fn runs_partition_the_site_range_and_bulk_runs_are_all_local() {
        let geo = tube();
        for model in [LatticeModel::d3q15(), LatticeModel::d3q19()] {
            let soa = soa_for(&geo, &model);
            let mut next = 0u32;
            for run in soa.runs() {
                assert_eq!(run.start, next, "runs must tile the range in order");
                assert!(run.len > 0);
                next += run.len;
                for s in run.start..run.start + run.len {
                    assert_eq!(
                        run.bulk,
                        site_is_bulk(&soa.stream, s as usize),
                        "site {s} misclassified"
                    );
                }
            }
            assert_eq!(next as usize, geo.fluid_count());
            assert!(soa.bulk_fraction() > 0.0, "a tube interior has bulk sites");
            assert!(soa.bulk_fraction() < 1.0, "a tube has boundary sites");
        }
    }

    /// Satellite: validate streaming-index construction at **domain
    /// edges per boundary orientation** — for every one of the q link
    /// directions, every site's entry must agree with an independent
    /// geometry query (fluid neighbour upstream ⇒ its index; otherwise
    /// the boundary sentinel). Covers all ±x/±y/±z faces and the
    /// diagonal links of both velocity sets, not just end-to-end digests.
    #[test]
    fn stream_table_matches_geometry_per_orientation() {
        let geo = tube();
        for model in [LatticeModel::d3q15(), LatticeModel::d3q19()] {
            let soa = soa_for(&geo, &model);
            for i in 0..model.q {
                let c = model.c[i];
                let mut boundary_links = 0usize;
                for s in 0..geo.fluid_count() as u32 {
                    let [x, y, z] = geo.position(s);
                    let src = geo.site_at(
                        x as i64 - c[0] as i64,
                        y as i64 - c[1] as i64,
                        z as i64 - c[2] as i64,
                    );
                    let entry = soa.stream_entry(i, s as usize);
                    match src {
                        Some(g) => assert_eq!(
                            entry, g,
                            "dir {i} (c = {c:?}) at site {s}: wrong local source"
                        ),
                        None => {
                            assert_eq!(
                                entry, LINK_BOUNDARY,
                                "dir {i} (c = {c:?}) at site {s}: missing link not marked"
                            );
                            boundary_links += 1;
                        }
                    }
                }
                if c != [0, 0, 0] {
                    assert!(
                        boundary_links > 0,
                        "a closed tube must clip direction {i} (c = {c:?}) somewhere"
                    );
                }
            }
        }
    }

    #[test]
    fn chunked_bgk_is_bit_identical_to_scalar_collide() {
        let model = LatticeModel::d3q19();
        let q = model.q;
        // 37 sites: exercises full chunks and a ragged tail.
        let n = 37;
        let mut site_major = vec![0.0; n * q];
        for s in 0..n {
            let u = [
                0.03 * ((s % 5) as f64 - 2.0),
                0.02 * ((s % 3) as f64 - 1.0),
                0.01 * ((s % 7) as f64 - 3.0),
            ];
            feq_all(
                &model,
                1.0 + 0.01 * s as f64,
                u,
                &mut site_major[s * q..(s + 1) * q],
            );
            site_major[s * q + (s % q)] += 1e-3; // off-equilibrium
        }
        // Scalar reference via the legacy collide().
        let mut reference = site_major.clone();
        let mut moments_ref = vec![(0.0, [0.0; 3]); n];
        let mut scratch = vec![0.0; q];
        for (s, m) in moments_ref.iter_mut().enumerate() {
            *m = collide(
                &model,
                CollisionKind::Bgk,
                0.8,
                &mut reference[s * q..(s + 1) * q],
                &mut scratch,
            );
        }
        // Chunked path over lanes.
        let mut lanes_store: Vec<Vec<f64>> = (0..q)
            .map(|i| (0..n).map(|s| site_major[s * q + i]).collect())
            .collect();
        let mut lanes: Vec<&mut [f64]> = lanes_store.iter_mut().map(|l| l.as_mut_slice()).collect();
        let mut moments = vec![(0.0, [0.0; 3]); n];
        bgk_collide_chunked(&model, 0.8, &mut lanes, &mut moments);
        for s in 0..n {
            for i in 0..q {
                assert_eq!(
                    lanes_store[i][s].to_bits(),
                    reference[s * q + i].to_bits(),
                    "site {s} dir {i}"
                );
            }
            assert_eq!(moments[s].0.to_bits(), moments_ref[s].0.to_bits());
            for k in 0..3 {
                assert_eq!(moments[s].1[k].to_bits(), moments_ref[s].1[k].to_bits());
            }
        }
    }

    #[test]
    fn site_partition_tiles_the_range() {
        // Mixed pattern with runs of both classes at both ends.
        let flags = [true, true, false, false, false, true, false, true, true];
        let p = SitePartition::from_flags(&flags);
        assert_eq!(p.site_count(), flags.len());
        assert_eq!(p.frontier_ranges(), &[(0, 2), (5, 1), (7, 2)]);
        assert_eq!(p.interior_ranges(), &[(2, 3), (6, 1)]);
        assert_eq!(p.frontier_count(), 5);
        assert_eq!(p.interior_count(), 4);
        for (s, &f) in flags.iter().enumerate() {
            assert_eq!(p.is_frontier(s), f, "site {s}");
        }
        // The two lists merged and sorted must tile 0..n exactly.
        let mut all: Vec<(u32, u32)> = p
            .frontier_ranges()
            .iter()
            .chain(p.interior_ranges())
            .copied()
            .collect();
        all.sort_unstable();
        let mut next = 0u32;
        for (start, len) in all {
            assert_eq!(start, next);
            assert!(len > 0);
            next += len;
        }
        assert_eq!(next as usize, flags.len());
    }

    #[test]
    fn site_partition_degenerate_cases() {
        let empty = SitePartition::from_flags(&[]);
        assert_eq!(empty.site_count(), 0);
        assert!(empty.frontier_ranges().is_empty());
        assert!(empty.interior_ranges().is_empty());

        let all_frontier = SitePartition::from_flags(&[true; 4]);
        assert_eq!(all_frontier.frontier_ranges(), &[(0, 4)]);
        assert!(all_frontier.interior_ranges().is_empty());
        assert_eq!(all_frontier.interior_count(), 0);

        let all_interior = SitePartition::from_flags(&[false; 4]);
        assert!(all_interior.frontier_ranges().is_empty());
        assert_eq!(all_interior.interior_ranges(), &[(0, 4)]);
        assert_eq!(all_interior.frontier_count(), 0);
    }

    #[test]
    fn swapping_stream_entries_corrupts_and_reclassifies() {
        let geo = tube();
        let model = LatticeModel::d3q15();
        let mut soa = soa_for(&geo, &model);
        // Find two sites with different sources in direction 1.
        let (mut a, mut b) = (usize::MAX, usize::MAX);
        'outer: for s in 0..soa.site_count() {
            for t in s + 1..soa.site_count() {
                if soa.stream_entry(1, s) != soa.stream_entry(1, t) {
                    (a, b) = (s, t);
                    break 'outer;
                }
            }
        }
        assert!(a != usize::MAX, "tube must have differing sources");
        let ea = soa.stream_entry(1, a);
        let eb = soa.stream_entry(1, b);
        assert!(soa.debug_swap_stream_entries(1, a, b));
        assert_eq!(soa.stream_entry(1, a), eb);
        assert_eq!(soa.stream_entry(1, b), ea);
        // Runs still tile the range after reclassification.
        let mut next = 0u32;
        for run in soa.runs() {
            assert_eq!(run.start, next);
            next += run.len;
        }
        assert_eq!(next as usize, soa.site_count());
    }
}
