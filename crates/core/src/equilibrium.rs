//! Maxwell–Boltzmann equilibrium (second-order expansion) and moment
//! computation.

use crate::model::LatticeModel;
use crate::CS2;

/// Equilibrium distribution
/// `f_i^eq = w_i ρ (1 + c·u/cs² + (c·u)²/2cs⁴ − u²/2cs²)`.
#[inline]
pub fn feq(model: &LatticeModel, i: usize, rho: f64, u: [f64; 3]) -> f64 {
    let cu = model.ci_dot(i, u);
    let u2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    model.w[i] * rho * (1.0 + cu / CS2 + cu * cu / (2.0 * CS2 * CS2) - u2 / (2.0 * CS2))
}

/// Fill `out[0..q]` with the equilibrium for `(rho, u)`.
pub fn feq_all(model: &LatticeModel, rho: f64, u: [f64; 3], out: &mut [f64]) {
    debug_assert_eq!(out.len(), model.q);
    let u2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    for (i, o) in out.iter_mut().enumerate() {
        let cu = model.ci_dot(i, u);
        *o = model.w[i] * rho * (1.0 + cu / CS2 + cu * cu / (2.0 * CS2 * CS2) - u2 / (2.0 * CS2));
    }
}

/// Density and velocity moments of a distribution: `ρ = Σ f_i`,
/// `ρ u = Σ c_i f_i`.
#[inline]
pub fn moments(model: &LatticeModel, f: &[f64]) -> (f64, [f64; 3]) {
    debug_assert_eq!(f.len(), model.q);
    let mut rho = 0.0;
    let mut mom = [0.0f64; 3];
    for (&fi, c) in f.iter().zip(&model.c) {
        rho += fi;
        mom[0] += c[0] as f64 * fi;
        mom[1] += c[1] as f64 * fi;
        mom[2] += c[2] as f64 * fi;
    }
    let u = if rho != 0.0 {
        [mom[0] / rho, mom[1] / rho, mom[2] / rho]
    } else {
        [0.0; 3]
    };
    (rho, u)
}

/// Deviatoric non-equilibrium momentum-flux tensor
/// `Π^neq_ab = Σ c_ia c_ib (f_i − f_i^eq)`, returned as the 6 unique
/// components `[xx, yy, zz, xy, xz, yz]`. Used for the shear-rate and
/// wall-shear-stress observables (the paper's "wall stress
/// distributions").
pub fn pi_neq(model: &LatticeModel, f: &[f64], rho: f64, u: [f64; 3]) -> [f64; 6] {
    let mut pi = [0.0f64; 6];
    for (i, &fi) in f.iter().enumerate() {
        let fi_neq = fi - feq(model, i, rho, u);
        let cx = model.c[i][0] as f64;
        let cy = model.c[i][1] as f64;
        let cz = model.c[i][2] as f64;
        pi[0] += cx * cx * fi_neq;
        pi[1] += cy * cy * fi_neq;
        pi[2] += cz * cz * fi_neq;
        pi[3] += cx * cy * fi_neq;
        pi[4] += cx * cz * fi_neq;
        pi[5] += cy * cz * fi_neq;
    }
    pi
}

/// Shear-rate magnitude `|S| = sqrt(2 S:S)` from the non-equilibrium
/// stress, with `S_ab = −Π^neq_ab / (2 ρ cs² τ)`.
pub fn shear_rate_magnitude(pi: [f64; 6], rho: f64, tau: f64) -> f64 {
    let scale = -1.0 / (2.0 * rho * CS2 * tau);
    let s = [
        pi[0] * scale,
        pi[1] * scale,
        pi[2] * scale,
        pi[3] * scale,
        pi[4] * scale,
        pi[5] * scale,
    ];
    let ss =
        s[0] * s[0] + s[1] * s[1] + s[2] * s[2] + 2.0 * (s[3] * s[3] + s[4] * s[4] + s[5] * s[5]);
    (2.0 * ss).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equilibrium_reproduces_its_moments() {
        for model in [LatticeModel::d3q15(), LatticeModel::d3q19()] {
            let rho = 1.05;
            let u = [0.04, -0.02, 0.01];
            let mut f = vec![0.0; model.q];
            feq_all(&model, rho, u, &mut f);
            let (r2, u2) = moments(&model, &f);
            assert!((r2 - rho).abs() < 1e-12, "{}", model.name);
            for a in 0..3 {
                assert!((u2[a] - u[a]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn equilibrium_at_rest_is_weights_times_rho() {
        let model = LatticeModel::d3q15();
        for i in 0..model.q {
            let f = feq(&model, i, 2.0, [0.0; 3]);
            assert!((f - 2.0 * model.w[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn pi_neq_vanishes_at_equilibrium() {
        let model = LatticeModel::d3q19();
        let mut f = vec![0.0; model.q];
        feq_all(&model, 0.98, [0.03, 0.01, -0.02], &mut f);
        let (rho, u) = moments(&model, &f);
        let pi = pi_neq(&model, &f, rho, u);
        for c in pi {
            assert!(c.abs() < 1e-12);
        }
        assert!(shear_rate_magnitude(pi, rho, 0.8).abs() < 1e-10);
    }

    #[test]
    fn feq_positive_at_low_mach() {
        let model = LatticeModel::d3q15();
        for i in 0..model.q {
            assert!(feq(&model, i, 1.0, [0.1, 0.05, -0.08]) > 0.0);
        }
    }
}
