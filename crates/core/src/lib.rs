//! # hemelb-core
//!
//! A sparse-geometry lattice-Boltzmann solver in the mould of HemeLB:
//! D3Q15/D3Q19 velocity sets, LBGK and TRT collision kernels, halfway
//! bounce-back walls, velocity inlets and pressure outlets, and — the
//! part the SC'12 co-design paper cares about — a distributed SPMD
//! stepper over the instrumented [`hemelb_parallel`] substrate whose halo
//! traffic is exactly the communication the paper's load-balance
//! arguments are about.
//!
//! The solver stores *only fluid sites* (indirect addressing over
//! [`hemelb_geometry::SparseGeometry`]); the regular-lattice structure of
//! the method (paper Fig. 1) shows up purely in the neighbour offsets of
//! the velocity set.
//!
//! ```
//! use hemelb_core::{Solver, SolverConfig};
//! use hemelb_geometry::VesselBuilder;
//!
//! let geo = VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0);
//! let cfg = SolverConfig::pressure_driven(1.002, 0.998).with_tau(0.8);
//! let mut solver = Solver::new(std::sync::Arc::new(geo), cfg);
//! solver.step_n(10);
//! let snap = solver.snapshot();
//! assert!(snap.max_speed() < 0.3, "stable low-Mach flow");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
pub mod checkpoint;
pub mod collision;
pub mod dist;
pub mod equilibrium;
pub mod fields;
pub mod kernel;
pub mod layout;
pub mod model;
pub mod mrt;
pub mod solver;
pub mod units;

pub use dist::DistSolver;
pub use fields::FieldSnapshot;
pub use kernel::ParallelSolver;
pub use layout::{KernelLayout, SitePartition};
pub use model::LatticeModel;
pub use solver::{Solver, SolverConfig};
pub use units::UnitConverter;

/// Speed of sound squared of the standard isothermal lattices, in lattice
/// units (`cs² = 1/3`).
pub const CS2: f64 = 1.0 / 3.0;
