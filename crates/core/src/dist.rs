//! The distributed SPMD solver.
//!
//! Domain decomposition by an arbitrary site→rank owner map (produced by
//! any partitioner in `hemelb-partition`); each rank stores distributions
//! only for its own sites, and the pull streaming of cross-rank links is
//! fed by a per-step **halo exchange** of post-collision populations —
//! the communication whose volume the partitioners minimise and the
//! paper's load-balance discussion revolves around.
//!
//! The distributed stepper is bit-for-bit identical to the serial
//! [`Solver`](crate::Solver) (asserted in tests): both perform the same
//! per-site arithmetic in the same order; only the storage and transport
//! differ.

use crate::equilibrium::feq_all;
use crate::fields::FieldSnapshot;
use crate::layout::{KernelLayout, SoaLattice, HALO_FLAG, LINK_BOUNDARY as BOUNDARY};
use crate::model::LatticeModel;
use crate::solver::{boundary_rule, precompute_bc_velocities, SolverConfig};
use bytes::Bytes;
use hemelb_geometry::{SiteKind, SparseGeometry};
use hemelb_parallel::{CommResult, Communicator, Tag, WireReader, WireWriter};
use std::borrow::Cow;
use std::sync::Arc;

const T_HALO: Tag = Tag::halo(0);
const T_MIGRATE: Tag = Tag::migration(0);

/// One rank's share of the distributed solver. Construct collectively
/// with the same arguments on every rank.
pub struct DistSolver<'a> {
    comm: &'a Communicator,
    geo: Arc<SparseGeometry>,
    owner: Vec<usize>,
    /// Global ids of the sites this rank owns, ascending.
    locals: Vec<u32>,
    model: LatticeModel,
    cfg: SolverConfig,
    /// Local distributions, `[local_site][direction]`.
    f: Vec<f64>,
    f_next: Vec<f64>,
    moments: Vec<(f64, [f64; 3])>,
    bc_velocity: Vec<[f64; 3]>,
    /// Local pull table: local src index, `HALO_FLAG | slot`, or
    /// `BOUNDARY`.
    pull: Vec<u32>,
    /// Per peer rank: `(peer, requests)` where requests are
    /// `(local_src, dir)` pairs to ship each step, in the peer's order.
    send_plan: Vec<(usize, Vec<(u32, u16)>)>,
    /// Per peer rank: `(peer, halo slot range start, count)`.
    recv_plan: Vec<(usize, usize, usize)>,
    /// Halo buffer of received post-collision populations.
    halo: Vec<f64>,
    /// MRT operator when configured.
    mrt: Option<crate::mrt::MrtOperator>,
    /// SoA state when `cfg.layout` is not [`KernelLayout::Legacy`]; the
    /// site-major `f`/`f_next` stay empty in that case.
    soa: Option<SoaLattice>,
    /// Site kinds of the owned sites, local order.
    kinds: Vec<SiteKind>,
    step: u64,
}

/// Pull-stream a span of a rank's local sites into `out` (the slice of
/// `f_next` starting at local site `first`). The distributed twin of
/// [`crate::kernel::stream_span`]: identical per-site arithmetic, plus
/// the halo branch for cross-rank links. Reads only immutable
/// previous-step state, so spans may run concurrently.
#[allow(clippy::too_many_arguments)]
fn stream_halo_span(
    model: &LatticeModel,
    cfg: &SolverConfig,
    geo: &SparseGeometry,
    locals: &[u32],
    f_old: &[f64],
    moments: &[(f64, [f64; 3])],
    bc_velocity: &[[f64; 3]],
    pull: &[u32],
    halo: &[f64],
    step: u64,
    first: usize,
    out: &mut [f64],
) {
    let q = model.q;
    for k in 0..out.len() / q {
        let l = first + k;
        let kind = geo.kind(locals[l]);
        for i in 0..q {
            let entry = pull[l * q + i];
            out[k * q + i] = if entry == BOUNDARY {
                boundary_rule(
                    model,
                    cfg,
                    kind,
                    bc_velocity[l],
                    i,
                    f_old[l * q + model.opp[i]],
                    moments[l],
                    step,
                )
            } else if entry & HALO_FLAG != 0 {
                halo[(entry & !HALO_FLAG) as usize]
            } else {
                f_old[entry as usize * q + i]
            };
        }
    }
}

/// Compute the ascending list of global site ids owned by `rank`.
pub fn locals_of(owner: &[usize], rank: usize) -> Vec<u32> {
    owner
        .iter()
        .enumerate()
        .filter(|(_, &o)| o == rank)
        .map(|(s, _)| s as u32)
        .collect()
}

impl<'a> DistSolver<'a> {
    /// Collective constructor: every rank passes the same geometry,
    /// owner map and configuration.
    ///
    /// # Panics
    /// Panics if `owner.len() != geo.fluid_count()` or an owner index is
    /// out of range.
    pub fn new(
        geo: Arc<SparseGeometry>,
        owner: Vec<usize>,
        cfg: SolverConfig,
        comm: &'a Communicator,
    ) -> CommResult<Self> {
        assert_eq!(
            owner.len(),
            geo.fluid_count(),
            "owner map must cover all sites"
        );
        assert!(
            owner.iter().all(|&o| o < comm.size()),
            "owner rank out of range"
        );
        let me = comm.rank();
        let model = cfg.model.build();
        let q = model.q;
        let locals = locals_of(&owner, me);
        let nl = locals.len();

        // Global → local index for owned sites.
        let mut g2l = vec![u32::MAX; geo.fluid_count()];
        for (l, &g) in locals.iter().enumerate() {
            g2l[g as usize] = l as u32;
        }

        // Build the pull table, registering remote sources per peer.
        let mut pull = vec![BOUNDARY; nl * q];
        // needed[r] = list of (global_src, dir) this rank must receive
        // from r each step, in deterministic (local site, dir) order.
        let mut needed: Vec<Vec<(u32, u16)>> = vec![Vec::new(); comm.size()];
        let mut halo_slot_of: Vec<Vec<usize>> = vec![Vec::new(); comm.size()];
        let mut n_halo = 0usize;
        for (l, &g) in locals.iter().enumerate() {
            let [x, y, z] = geo.position(g);
            for i in 0..q {
                let c = model.c[i];
                let src = geo.site_at(
                    x as i64 - c[0] as i64,
                    y as i64 - c[1] as i64,
                    z as i64 - c[2] as i64,
                );
                match src {
                    None => {} // boundary, already marked
                    Some(sg) => {
                        let o = owner[sg as usize];
                        if o == me {
                            pull[l * q + i] = g2l[sg as usize];
                        } else {
                            needed[o].push((sg, i as u16));
                            halo_slot_of[o].push(n_halo);
                            pull[l * q + i] = HALO_FLAG | n_halo as u32;
                            n_halo += 1;
                        }
                    }
                }
            }
        }

        // Exchange request lists so each rank learns what to send.
        // (One all-to-all at construction; steady-state steps use only
        // the sparse neighbourhood exchange.)
        let outgoing: Vec<Bytes> = needed
            .iter()
            .map(|list| {
                let mut w = WireWriter::with_capacity(8 + list.len() * 6);
                w.put_usize(list.len());
                for &(g, d) in list {
                    w.put_u32(g);
                    w.put_u32(d as u32);
                }
                w.finish()
            })
            .collect();
        let incoming = comm.all_to_all(outgoing)?;

        let mut send_plan = Vec::new();
        for (peer, payload) in incoming.into_iter().enumerate() {
            if peer == me {
                continue;
            }
            let mut r = WireReader::new(payload);
            let count = r.get_usize()?;
            if count == 0 {
                continue;
            }
            let mut requests = Vec::with_capacity(count);
            for _ in 0..count {
                let g = r.get_u32()?;
                let d = r.get_u32()? as u16;
                let l = g2l[g as usize];
                assert_ne!(l, u32::MAX, "peer requested a site we do not own");
                requests.push((l, d));
            }
            send_plan.push((peer, requests));
        }
        send_plan.sort_unstable_by_key(|(peer, _)| *peer);

        // Receive plan: contiguousise halo slots per peer. Slots were
        // allocated interleaved across peers, so build a remap.
        let mut recv_plan = Vec::new();
        let mut remap = vec![0usize; n_halo];
        let mut next = 0usize;
        for (peer, slots) in halo_slot_of.iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            let start = next;
            for &old in slots {
                remap[old] = next;
                next += 1;
            }
            recv_plan.push((peer, start, slots.len()));
        }
        for entry in pull.iter_mut() {
            if *entry != BOUNDARY && *entry & HALO_FLAG != 0 {
                let old = (*entry & !HALO_FLAG) as usize;
                *entry = HALO_FLAG | remap[old] as u32;
            }
        }

        // Initialise at rest.
        let mut f = vec![0.0; nl * q];
        for l in 0..nl {
            feq_all(&model, 1.0, [0.0; 3], &mut f[l * q..(l + 1) * q]);
        }

        // Boundary velocities for owned sites only.
        let bc_all = precompute_bc_velocities(&geo, &cfg);
        let bc_velocity = locals.iter().map(|&g| bc_all[g as usize]).collect();

        let mrt = match cfg.collision {
            crate::collision::CollisionKind::Mrt { omega_ghost } => {
                Some(crate::mrt::MrtOperator::new(&model, omega_ghost))
            }
            _ => None,
        };
        let kinds: Vec<SiteKind> = locals.iter().map(|&g| geo.kind(g)).collect();
        let soa = match cfg.layout {
            KernelLayout::Legacy => None,
            _ => Some(SoaLattice::new(q, &pull, &f)),
        };
        let (f, f_next) = if soa.is_some() {
            (Vec::new(), Vec::new())
        } else {
            (f.clone(), f)
        };
        Ok(DistSolver {
            comm,
            geo,
            owner,
            locals,
            model,
            cfg,
            f_next,
            moments: vec![(1.0, [0.0; 3]); nl],
            f,
            bc_velocity,
            pull,
            send_plan,
            recv_plan,
            halo: vec![0.0; n_halo],
            mrt,
            soa,
            kinds,
            step: 0,
        })
    }

    /// Global ids of this rank's sites (ascending).
    pub fn local_sites(&self) -> &[u32] {
        &self.locals
    }

    /// Number of peer ranks this rank exchanges halo data with.
    pub fn neighbour_count(&self) -> usize {
        self.recv_plan.len().max(self.send_plan.len())
    }

    /// Halo values (f64 populations) this rank sends per step.
    pub fn halo_send_volume(&self) -> usize {
        self.send_plan.iter().map(|(_, l)| l.len()).sum()
    }

    /// Replace the BC of inlet `id` at runtime (steering). Must be
    /// called identically on every rank.
    pub fn set_inlet_bc(&mut self, id: usize, bc: crate::boundary::IoletBc) {
        if id >= self.cfg.inlet_bcs.len() {
            self.cfg.inlet_bcs.resize(id + 1, bc);
        }
        self.cfg.inlet_bcs[id] = bc;
        let bc_all = precompute_bc_velocities(&self.geo, &self.cfg);
        self.bc_velocity = self.locals.iter().map(|&g| bc_all[g as usize]).collect();
    }

    /// Replace the BC of outlet `id` at runtime (steering). Must be
    /// called identically on every rank.
    pub fn set_outlet_bc(&mut self, id: usize, bc: crate::boundary::IoletBc) {
        if id >= self.cfg.outlet_bcs.len() {
            self.cfg.outlet_bcs.resize(id + 1, bc);
        }
        self.cfg.outlet_bcs[id] = bc;
        let bc_all = precompute_bc_velocities(&self.geo, &self.cfg);
        self.bc_velocity = self.locals.iter().map(|&g| bc_all[g as usize]).collect();
    }

    /// Advance one time step: collide, halo-exchange, stream.
    ///
    /// Collide and stream run through the chunked kernels in
    /// [`crate::kernel`]: inside a rayon pool (the runner's
    /// threads-per-rank knob) the site loops split across worker
    /// threads, and with one thread they degenerate to the exact serial
    /// loops — bit-identical either way.
    pub fn step(&mut self) -> CommResult<()> {
        let q = self.model.q;
        let nl = self.locals.len();

        // The LB step drives the fault clock: a `FaultPlan` keyed by
        // step sees the simulation's notion of time (no-op without an
        // active plan).
        self.comm.set_fault_step(self.step);

        // Collide in place (f becomes f*).
        let span = self.comm.with_obs(|o| o.begin());
        if let Some(soa) = self.soa.as_mut() {
            let simd = self.cfg.layout == KernelLayout::SoaSimd;
            crate::kernel::par_collide_soa(
                &self.model,
                self.cfg.collision,
                self.cfg.tau,
                self.mrt.as_ref(),
                &mut soa.f,
                &mut self.moments,
                simd,
            );
        } else {
            crate::kernel::par_collide(
                &self.model,
                self.cfg.collision,
                self.cfg.tau,
                self.mrt.as_ref(),
                &mut self.f,
                &mut self.moments,
            );
        }
        self.comm.with_obs(|o| span.end(o, "lb.collide"));

        // Halo exchange of requested post-collision populations.
        let span = self.comm.with_obs(|o| o.begin());
        let outgoing: Vec<(usize, Bytes)> = self
            .send_plan
            .iter()
            .map(|(peer, requests)| {
                let mut w = WireWriter::with_capacity(requests.len() * 8);
                match &self.soa {
                    Some(soa) => {
                        for &(l, d) in requests {
                            w.put_f64(soa.f[d as usize][l as usize]);
                        }
                    }
                    None => {
                        for &(l, d) in requests {
                            w.put_f64(self.f[l as usize * q + d as usize]);
                        }
                    }
                }
                (*peer, w.finish())
            })
            .collect();
        self.comm.with_obs(|o| span.end(o, "lb.halo-pack"));
        // The exchange span is the per-step halo wait: sends are
        // buffered, so its time is dominated by blocking on peers'
        // post-collision data.
        let span = self.comm.with_obs(|o| o.begin());
        let expect_from: Vec<usize> = self.recv_plan.iter().map(|(peer, _, _)| *peer).collect();
        let received = self.comm.exchange(T_HALO, &outgoing, &expect_from)?;
        self.comm.with_obs(|o| span.end(o, "lb.halo-wait"));
        for ((_, start, count), payload) in self.recv_plan.iter().zip(received) {
            let mut r = WireReader::new(payload);
            for slot in 0..*count {
                self.halo[start + slot] = r.get_f64()?;
            }
        }

        // Stream: disjoint chunks of f_next, all reading the immutable
        // post-collision state (local f + halo) — race-free, bit-exact.
        if let Some(soa) = self.soa.as_mut() {
            let model = &self.model;
            let cfg = &self.cfg;
            let kinds = &self.kinds[..];
            let moments = &self.moments[..];
            let bc_velocity = &self.bc_velocity[..];
            let halo = &self.halo[..];
            let step = self.step;
            let comm = self.comm;
            let (f_old, f_next, plan) = soa.split_for_stream();
            let span = comm.with_obs(|o| o.begin());
            crate::kernel::par_stream_soa(
                model,
                cfg,
                kinds,
                f_old,
                plan,
                moments,
                bc_velocity,
                halo,
                step,
                f_next,
            );
            comm.with_obs(|o| span.end(o, "lb.stream"));
            soa.swap_buffers();
        } else {
            let model = &self.model;
            let cfg = &self.cfg;
            let geo = &*self.geo;
            let locals = &self.locals[..];
            let f_old = &self.f[..];
            let moments = &self.moments[..];
            let bc_velocity = &self.bc_velocity[..];
            let pull = &self.pull[..];
            let halo = &self.halo[..];
            let step = self.step;
            let span = self.comm.with_obs(|o| o.begin());
            rayon::scope(|sc| {
                let mut rest = self.f_next.as_mut_slice();
                for (first, len) in crate::kernel::site_chunks(nl) {
                    let (out, tail) = rest.split_at_mut(len * q);
                    rest = tail;
                    sc.spawn(move |_| {
                        stream_halo_span(
                            model,
                            cfg,
                            geo,
                            locals,
                            f_old,
                            moments,
                            bc_velocity,
                            pull,
                            halo,
                            step,
                            first,
                            out,
                        )
                    });
                }
            });
            self.comm.with_obs(|o| span.end(o, "lb.stream"));
            std::mem::swap(&mut self.f, &mut self.f_next);
        }
        self.step += 1;
        Ok(())
    }

    /// Advance `count` steps.
    pub fn step_n(&mut self, count: u64) -> CommResult<()> {
        for _ in 0..count {
            self.step()?;
        }
        Ok(())
    }

    /// Adopt a new domain decomposition **mid-run**, migrating each
    /// site's distributions to its new owner (paper §IV-B: "the
    /// opportunity to adjust the partitioning mid-term is introduced.
    /// This repartitioning helps to improve load balance greatly").
    ///
    /// Collective; every rank passes the same `new_owner`. The physics
    /// is untouched: stepping after a repartition is bit-identical to
    /// never having repartitioned (asserted in tests). Returns the
    /// number of sites this rank shipped away.
    pub fn repartition(&mut self, new_owner: Vec<usize>) -> CommResult<usize> {
        let span = self.comm.with_obs(|o| o.begin());
        assert_eq!(new_owner.len(), self.geo.fluid_count());
        assert!(new_owner.iter().all(|&o| o < self.comm.size()));
        let me = self.comm.rank();
        let q = self.model.q;

        // Partition my sites into kept and outgoing-by-new-owner.
        let mut kept: Vec<(u32, Vec<f64>)> = Vec::new();
        let mut outgoing: Vec<Vec<(u32, Vec<f64>)>> = vec![Vec::new(); self.comm.size()];
        let mut moved = 0usize;
        for (l, &g) in self.locals.iter().enumerate() {
            let fs = self.site_f(l);
            let no = new_owner[g as usize];
            if no == me {
                kept.push((g, fs));
            } else {
                outgoing[no].push((g, fs));
                moved += 1;
            }
        }

        // Counts first (collective control), then payloads under the
        // migration tag so the traffic is attributed correctly.
        let counts: Vec<Bytes> = outgoing
            .iter()
            .map(|b| {
                let mut w = WireWriter::with_capacity(8);
                w.put_u64(b.len() as u64);
                w.finish()
            })
            .collect();
        let incoming_counts = self.comm.all_to_all(counts)?;
        for (dst, batch) in outgoing.iter().enumerate() {
            if dst != me && !batch.is_empty() {
                let mut w = WireWriter::with_capacity(batch.len() * (4 + q * 8));
                for (g, fs) in batch {
                    w.put_u32(*g);
                    for &v in fs {
                        w.put_f64(v);
                    }
                }
                self.comm.send(dst, T_MIGRATE, w.finish())?;
            }
        }
        for (src, payload) in incoming_counts.into_iter().enumerate() {
            if src == me {
                continue;
            }
            let mut r = WireReader::new(payload);
            let n = r.get_u64()?;
            if n == 0 {
                continue;
            }
            let mut rr = WireReader::new(self.comm.recv(src, T_MIGRATE)?);
            for _ in 0..n {
                let g = rr.get_u32()?;
                let mut fs = Vec::with_capacity(q);
                for _ in 0..q {
                    fs.push(rr.get_f64()?);
                }
                kept.push((g, fs));
            }
        }

        // Rebuild the solver state for the new decomposition and install
        // the migrated distributions.
        let step = self.step;
        let mut fresh = DistSolver::new(self.geo.clone(), new_owner, self.cfg.clone(), self.comm)?;
        let mut g2l = vec![u32::MAX; self.geo.fluid_count()];
        for (l, &g) in fresh.locals.iter().enumerate() {
            g2l[g as usize] = l as u32;
        }
        let mut installed = 0usize;
        for (g, fs) in kept {
            let l = g2l[g as usize];
            assert_ne!(l, u32::MAX, "migrated site {g} not owned under new map");
            fresh.set_site_f(l as usize, &fs);
            installed += 1;
        }
        assert_eq!(
            installed,
            fresh.locals.len(),
            "every new-local site received data"
        );
        fresh.step = step;
        *self = fresh;
        self.comm.note_rebalance();
        self.comm.with_obs(|o| {
            o.count("lb.rebalance.count", 1);
            o.count("lb.rebalance.sites_moved", moved as u64);
            span.end(o, "lb.repartition")
        });
        Ok(moved)
    }

    /// Snapshot of this rank's sites only (indexed like
    /// [`DistSolver::local_sites`]).
    pub fn local_snapshot(&self) -> FieldSnapshot {
        let nl = self.locals.len();
        let mut rho = vec![0.0; nl];
        let mut u = vec![[0.0; 3]; nl];
        let mut shear = vec![0.0; nl];
        let span = self.comm.with_obs(|o| o.begin());
        match &self.soa {
            Some(soa) => crate::kernel::par_macroscopics_soa(
                &self.model,
                self.cfg.tau,
                &soa.f,
                &mut rho,
                &mut u,
                &mut shear,
            ),
            None => crate::kernel::par_macroscopics(
                &self.model,
                self.cfg.tau,
                &self.f,
                &mut rho,
                &mut u,
                &mut shear,
            ),
        }
        self.comm.with_obs(|o| span.end(o, "lb.macroscopics"));
        FieldSnapshot {
            step: self.step,
            rho,
            u,
            shear,
        }
    }

    /// Gather the global snapshot at rank 0 (collective). Non-root ranks
    /// receive `None`.
    pub fn gather_snapshot(&self) -> CommResult<Option<FieldSnapshot>> {
        let local = self.local_snapshot();
        let mut w = WireWriter::with_capacity(local.len() * 40);
        w.put_f64_slice(&local.rho);
        w.put_usize(local.u.len());
        for v in &local.u {
            w.put(&[v[0], v[1], v[2]]);
        }
        w.put_f64_slice(&local.shear);
        let gathered = self.comm.gather(0, w.finish())?;
        let Some(parts) = gathered else {
            return Ok(None);
        };
        let n = self.geo.fluid_count();
        let mut rho = vec![0.0; n];
        let mut u = vec![[0.0; 3]; n];
        let mut shear = vec![0.0; n];
        for (rank, payload) in parts.into_iter().enumerate() {
            let ids = locals_of(&self.owner, rank);
            let mut r = WireReader::new(payload);
            let rho_l = r.get_f64_vec()?;
            let nu = r.get_usize()?;
            let mut u_l = Vec::with_capacity(nu);
            for _ in 0..nu {
                let a: [f64; 3] = r.get()?;
                u_l.push(a);
            }
            let shear_l = r.get_f64_vec()?;
            assert_eq!(ids.len(), rho_l.len(), "rank {rank} payload mismatch");
            for (k, &g) in ids.iter().enumerate() {
                rho[g as usize] = rho_l[k];
                u[g as usize] = u_l[k];
                shear[g as usize] = shear_l[k];
            }
        }
        Ok(Some(FieldSnapshot {
            step: self.step,
            rho,
            u,
            shear,
        }))
    }

    /// Global mass via all-reduce (collective).
    pub fn mass(&self) -> CommResult<f64> {
        let local: f64 = match &self.soa {
            Some(soa) => soa.mass(),
            None => self.f.iter().sum(),
        };
        self.comm.all_reduce_f64(local, |a, b| a + b)
    }

    /// Completed steps.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// This rank's index (checkpoint naming).
    pub fn comm_rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of discrete velocities.
    pub fn model_q(&self) -> usize {
        self.model.q
    }

    /// This rank's whole local distribution array in the canonical
    /// site-major order (borrowed for the legacy layout, transposed on
    /// the fly for SoA).
    pub fn raw_distributions(&self) -> Cow<'_, [f64]> {
        match &self.soa {
            Some(soa) => Cow::Owned(soa.to_site_major()),
            None => Cow::Borrowed(&self.f),
        }
    }

    /// The `q` populations of local site `l`, direction order.
    fn site_f(&self, l: usize) -> Vec<f64> {
        match &self.soa {
            Some(soa) => soa.site_values(l),
            None => {
                let q = self.model.q;
                self.f[l * q..(l + 1) * q].to_vec()
            }
        }
    }

    /// Overwrite the `q` populations of local site `l`.
    fn set_site_f(&mut self, l: usize, values: &[f64]) {
        match self.soa.as_mut() {
            Some(soa) => soa.set_site_values(l, values),
            None => {
                let q = self.model.q;
                self.f[l * q..(l + 1) * q].copy_from_slice(values);
            }
        }
    }

    /// Block until every rank reaches this point (checkpoint fencing).
    pub fn barrier(&self) -> CommResult<()> {
        self.comm.barrier()
    }

    /// Overwrite the local dynamical state from a site-major array
    /// (checkpoint restore); layout-agnostic.
    pub(crate) fn install_state(&mut self, step: u64, f: Vec<f64>) {
        assert_eq!(f.len(), self.locals.len() * self.model.q);
        match self.soa.as_mut() {
            Some(soa) => soa.install_site_major(&f),
            None => self.f = f,
        }
        self.step = step;
    }

    /// The geometry.
    pub fn geometry(&self) -> &Arc<SparseGeometry> {
        &self.geo
    }

    /// The owner map.
    pub fn owner(&self) -> &[usize] {
        &self.owner
    }

    /// The configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.cfg
    }

    /// The lattice model in use (the adaptive load balancer sizes
    /// migration payloads from `model().q`).
    pub fn model(&self) -> &LatticeModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use hemelb_geometry::VesselBuilder;
    use hemelb_parallel::{run_spmd, run_spmd_with_stats, TagClass};

    fn demo_geo() -> Arc<SparseGeometry> {
        Arc::new(VesselBuilder::straight_tube(16.0, 3.0).voxelise(1.0))
    }

    /// Contiguous owner map splitting sites evenly by index.
    fn even_owner(n: usize, p: usize) -> Vec<usize> {
        (0..n).map(|s| (s * p / n).min(p - 1)).collect()
    }

    #[test]
    fn distributed_equals_serial_bitwise() {
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        serial.step_n(20);
        let reference = serial.snapshot();

        for p in [1, 2, 3, 4] {
            let geo2 = geo.clone();
            let cfg2 = cfg.clone();
            let results = run_spmd(p, move |comm| {
                let owner = even_owner(geo2.fluid_count(), comm.size());
                let mut ds = DistSolver::new(geo2.clone(), owner, cfg2.clone(), comm).unwrap();
                ds.step_n(20).unwrap();
                ds.gather_snapshot().unwrap()
            });
            let gathered = results[0].as_ref().expect("root gathers");
            assert_eq!(gathered.rho.len(), reference.rho.len());
            for s in 0..reference.rho.len() {
                assert_eq!(gathered.rho[s], reference.rho[s], "rho at site {s}, p={p}");
                assert_eq!(gathered.u[s], reference.u[s], "u at site {s}, p={p}");
            }
        }
    }

    #[test]
    fn distributed_with_threads_per_rank_equals_serial_bitwise() {
        // Hybrid decomposition: ranks × on-rank rayon workers. The
        // chunked kernels keep every (p, t) combination bit-identical
        // to the serial solver.
        use hemelb_parallel::{run_spmd_opts, SpmdOptions};
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        serial.step_n(20);
        let reference = serial.snapshot();

        for (p, t) in [(1, 4), (2, 2), (3, 3)] {
            let geo2 = geo.clone();
            let cfg2 = cfg.clone();
            let out = run_spmd_opts(
                p,
                SpmdOptions {
                    threads_per_rank: t,
                    ..Default::default()
                },
                move |comm| {
                    let owner = even_owner(geo2.fluid_count(), comm.size());
                    let mut ds = DistSolver::new(geo2.clone(), owner, cfg2.clone(), comm).unwrap();
                    ds.step_n(20).unwrap();
                    ds.gather_snapshot().unwrap()
                },
            );
            let gathered = out.results[0].as_ref().expect("root gathers");
            for s in 0..reference.rho.len() {
                assert_eq!(
                    gathered.rho[s], reference.rho[s],
                    "rho at {s}, p={p}, t={t}"
                );
                assert_eq!(gathered.u[s], reference.u[s], "u at {s}, p={p}, t={t}");
            }
        }
    }

    #[test]
    fn halo_traffic_scales_with_cut_not_volume() {
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let geo2 = geo.clone();
        let out = run_spmd_with_stats(4, move |comm| {
            let owner = even_owner(geo2.fluid_count(), comm.size());
            let mut ds = DistSolver::new(geo2.clone(), owner, cfg.clone(), comm).unwrap();
            ds.step_n(5).unwrap();
            ds.halo_send_volume()
        });
        let halo_bytes = out.summary.total.bytes(TagClass::Halo);
        assert!(halo_bytes > 0, "cross-rank links must exist");
        // Halo per step = f64 per (site, dir) crossing the cut; 5 steps.
        let per_step: usize = out.results.iter().sum::<usize>() * 8;
        // Construction also used halo-tagged plan messages; bound loosely.
        assert!(
            halo_bytes as usize >= per_step * 5,
            "expected at least {} bytes, saw {halo_bytes}",
            per_step * 5
        );
        // The cut is tiny compared with shipping whole subdomains.
        let q = cfg_q();
        let full_volume = geo.fluid_count() * q * 8 * 5;
        assert!((halo_bytes as usize) < full_volume / 2);
    }

    fn cfg_q() -> usize {
        crate::model::LatticeModel::d3q15().q
    }

    #[test]
    fn mass_agrees_with_serial() {
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.0, 1.0);
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        serial.step_n(3);
        let m_serial = serial.mass();
        let geo2 = geo.clone();
        let results = run_spmd(3, move |comm| {
            let owner = even_owner(geo2.fluid_count(), comm.size());
            let mut ds = DistSolver::new(geo2.clone(), owner, cfg.clone(), comm).unwrap();
            ds.step_n(3).unwrap();
            ds.mass().unwrap()
        });
        for m in results {
            assert!((m - m_serial).abs() < 1e-9);
        }
    }

    #[test]
    fn single_rank_dist_solver_matches_serial_without_comm() {
        let geo = demo_geo();
        let cfg = SolverConfig::velocity_driven(0.03);
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        serial.step_n(10);
        let reference = serial.snapshot();
        let geo2 = geo.clone();
        let out = run_spmd_with_stats(1, move |comm| {
            let owner = vec![0; geo2.fluid_count()];
            let mut ds = DistSolver::new(geo2.clone(), owner, cfg.clone(), comm).unwrap();
            ds.step_n(10).unwrap();
            ds.local_snapshot()
        });
        assert_eq!(out.results[0].rho, reference.rho);
        assert_eq!(
            out.summary.total.bytes(TagClass::Halo),
            0,
            "no peers, no halo"
        );
    }

    #[test]
    fn repartition_mid_run_preserves_physics_bitwise() {
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.01, 0.99);
        let mut serial = Solver::new(geo.clone(), cfg.clone());
        serial.step_n(20);
        let reference = serial.snapshot();

        let geo2 = geo.clone();
        let out = run_spmd_with_stats(4, move |comm| {
            let n = geo2.fluid_count();
            let owner_a = even_owner(n, comm.size());
            // A completely different (reversed) decomposition.
            let owner_b: Vec<usize> = owner_a.iter().map(|&o| comm.size() - 1 - o).collect();
            let mut ds = DistSolver::new(geo2.clone(), owner_a, cfg.clone(), comm).unwrap();
            ds.step_n(10).unwrap();
            let moved = ds.repartition(owner_b.clone()).unwrap();
            assert_eq!(ds.owner(), &owner_b[..], "owner map adopted");
            ds.step_n(10).unwrap();
            (ds.gather_snapshot().unwrap(), moved, ds.step_count())
        });
        let (snap, _, steps) = &out.results[0];
        assert_eq!(*steps, 20);
        let gathered = snap.as_ref().unwrap();
        for s in 0..reference.rho.len() {
            assert_eq!(gathered.rho[s], reference.rho[s], "site {s}");
            assert_eq!(gathered.u[s], reference.u[s], "site {s}");
        }
        // Everything moved (reversed map) and was counted as migration
        // traffic.
        let moved_total: usize = out.results.iter().map(|r| r.1).sum();
        assert_eq!(moved_total, geo.fluid_count());
        assert!(out.summary.total.bytes(TagClass::Migration) > 0);
    }

    #[test]
    fn repartition_to_same_owner_is_a_no_op_migration() {
        let geo = demo_geo();
        let cfg = SolverConfig::pressure_driven(1.0, 1.0);
        let geo2 = geo.clone();
        let out = run_spmd_with_stats(3, move |comm| {
            let owner = even_owner(geo2.fluid_count(), comm.size());
            let mut ds = DistSolver::new(geo2.clone(), owner.clone(), cfg.clone(), comm).unwrap();
            ds.step_n(3).unwrap();
            ds.repartition(owner).unwrap()
        });
        assert!(out.results.iter().all(|&m| m == 0), "nothing moves");
        assert_eq!(out.summary.total.bytes(TagClass::Migration), 0);
    }

    /// Satellite: validate streaming-index construction at **rank
    /// boundaries per link orientation**. With an explicit x-slab
    /// decomposition, every pull entry must agree with an independent
    /// geometry + owner-map query: boundary sentinel for missing links,
    /// a local index resolving to the right global site for owned
    /// sources, and a halo slot exactly when the source belongs to the
    /// peer. Orientation coverage: the low-x rank may only have halo
    /// links on directions pulling from higher x (`c_x = −1`), the
    /// high-x rank only on `c_x = +1`, and x-neutral directions never
    /// cross the cut.
    #[test]
    fn halo_slots_marked_per_orientation_at_rank_boundaries() {
        let geo = demo_geo();
        let x_cut = geo.shape()[0] as u32 / 2;
        let owner: Vec<usize> = (0..geo.fluid_count() as u32)
            .map(|s| usize::from(geo.position(s)[0] >= x_cut))
            .collect();
        for layout in [KernelLayout::Legacy, KernelLayout::SoaSimd] {
            let cfg = SolverConfig::pressure_driven(1.01, 0.99).with_layout(layout);
            let geo2 = geo.clone();
            let owner2 = owner.clone();
            run_spmd(2, move |comm| {
                let ds = DistSolver::new(geo2.clone(), owner2.clone(), cfg.clone(), comm).unwrap();
                let me = comm.rank();
                let q = ds.model.q;
                let mut halo_links = vec![0usize; q];
                for (l, &g) in ds.locals.iter().enumerate() {
                    let [x, y, z] = geo2.position(g);
                    for (i, links) in halo_links.iter_mut().enumerate() {
                        let c = ds.model.c[i];
                        let src = geo2.site_at(
                            x as i64 - c[0] as i64,
                            y as i64 - c[1] as i64,
                            z as i64 - c[2] as i64,
                        );
                        let entry = ds.pull[l * q + i];
                        if let Some(soa) = &ds.soa {
                            assert_eq!(
                                soa.stream_entry(i, l),
                                entry,
                                "SoA stream table must mirror the pull table"
                            );
                        }
                        match src {
                            None => assert_eq!(entry, BOUNDARY, "dir {i} at local {l}"),
                            Some(sg) if owner2[sg as usize] == me => {
                                assert_eq!(entry & HALO_FLAG, 0, "owned source marked halo");
                                assert_eq!(
                                    ds.locals[entry as usize], sg,
                                    "dir {i} at local {l}: wrong local source"
                                );
                            }
                            Some(_) => {
                                assert_ne!(entry, BOUNDARY);
                                assert_ne!(entry & HALO_FLAG, 0, "peer source must be a halo slot");
                                assert!(((entry & !HALO_FLAG) as usize) < ds.halo.len());
                                *links += 1;
                            }
                        }
                    }
                }
                for (i, &links) in halo_links.iter().enumerate().take(q) {
                    let cx = ds.model.c[i][0];
                    let crosses = (me == 0 && cx == -1) || (me == 1 && cx == 1);
                    if crosses {
                        assert!(
                            links > 0,
                            "rank {me}: direction {i} (c_x = {cx}) must cross the cut"
                        );
                    } else {
                        assert_eq!(
                            links, 0,
                            "rank {me}: direction {i} (c_x = {cx}) must not cross the cut"
                        );
                    }
                }
            });
        }
    }

    #[test]
    fn local_sites_partition_the_domain() {
        let geo = demo_geo();
        let n = geo.fluid_count();
        let owner = even_owner(n, 3);
        let mut seen = vec![false; n];
        for r in 0..3 {
            for g in locals_of(&owner, r) {
                assert!(!seen[g as usize], "site {g} owned twice");
                seen[g as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every site owned");
    }
}
